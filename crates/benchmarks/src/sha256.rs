//! SHA256 (CEP suite): message schedule + compression core + a serial
//! digest round unit.
//!
//! Table 1 shape: 3 redactable modules / 3 instances, module I/O pins in
//! [38, 774]. Only the 38-pin `sha_round` fits either configuration's pin
//! budget, but it carries a full compression round over internal 256-bit
//! state — so its eFPGA is large (the paper reports a 12×12 fabric),
//! illustrating that pin count and logic volume are independent axes.

use crate::Benchmark;

/// The Verilog source.
pub fn source() -> String {
    r#"
module sha_w_mem(
  input wire clk,
  input wire [511:0] msg,
  input wire [5:0] idx,
  output reg [31:0] w_out
);
  wire [511:0] shifted;
  assign shifted = msg >> {idx[3:0], 5'd0};
  always @(posedge clk) w_out <= shifted[31:0] ^ {27'd0, idx[4:0]};
endmodule

module sha_core(
  input wire clk,
  input wire rst,
  input wire en,
  input wire start,
  input wire [255:0] state_in,
  input wire [255:0] w_blk,
  output reg [255:0] state_out,
  output reg valid,
  output wire busy
);
  reg [2:0] round;
  assign busy = round != 3'd0;
  always @(posedge clk) begin
    if (rst) begin
      state_out <= 256'd0;
      round <= 3'd0;
      valid <= 1'b0;
    end
    else begin
      valid <= 1'b0;
      if (start) begin
        state_out <= state_in;
        round <= 3'd1;
      end
      else if (en) begin
        if (round != 3'd0) begin
          state_out <= {state_out[223:0], state_out[255:224] ^ w_blk[31:0]};
          round <= round + 3'd1;
          if (round == 3'd7) valid <= 1'b1;
        end
      end
    end
  end
endmodule

module sha_round(
  input wire clk,
  input wire rst,
  input wire en,
  input wire ld,
  input wire [7:0] byte_in,
  output wire [23:0] digest,
  output wire rdy,
  output reg busy
);
  reg [15:0] a;
  reg [15:0] b;
  reg [15:0] c;
  reg [15:0] d;
  reg [15:0] e;
  reg [15:0] f;
  reg [15:0] g;
  reg [15:0] h;
  reg [5:0] cnt;
  wire [15:0] s1;
  wire [15:0] ch;
  wire [15:0] s0;
  wire [15:0] maj;
  wire [15:0] t1;
  wire [15:0] t2;
  wire [15:0] w;
  assign w = {g[7:0], byte_in};
  assign s1 = {e[5:0], e[15:6]} ^ {e[10:0], e[15:11]} ^ {e[12:0], e[15:13]};
  assign ch = (e & f) ^ (~e & g);
  assign s0 = {a[1:0], a[15:2]} ^ {a[12:0], a[15:13]} ^ {a[8:0], a[15:9]};
  assign maj = (a & b) ^ (a & c) ^ (b & c);
  assign t1 = h + s1 + (ch ^ w ^ 16'h2f98);
  assign t2 = s0 ^ maj;
  always @(posedge clk) begin
    if (rst) begin
      a <= 16'he667;
      b <= 16'hae85;
      c <= 16'hf372;
      d <= 16'hf53a;
      e <= 16'h527f;
      f <= 16'h688c;
      g <= 16'hd9ab;
      h <= 16'hcd19;
      cnt <= 6'd0;
      busy <= 1'b0;
    end
    else begin
      if (ld) begin
        cnt <= 6'd0;
        busy <= 1'b1;
      end
      else if (en & busy) begin
        h <= g;
        g <= f;
        f <= e;
        e <= d + t1;
        d <= c;
        c <= b;
        b <= a;
        a <= t1 + t2;
        cnt <= cnt + 6'd1;
        if (cnt == 6'd63) busy <= 1'b0;
      end
    end
  end
  assign digest = {a, e[7:0]};
  assign rdy = ~busy;
endmodule

module sha256(
  input wire clk,
  input wire rst,
  input wire start,
  input wire [511:0] msg_in,
  input wire [7:0] msg_byte,
  output wire [23:0] digest_out,
  output wire digest_rdy
);
  wire [31:0] w_word;
  wire [255:0] core_state;
  wire core_valid;
  wire core_busy;
  wire round_busy;
  reg [5:0] widx;

  always @(posedge clk) begin
    if (rst) widx <= 6'd0;
    else widx <= widx + 6'd1;
  end

  sha_w_mem u_w(.clk(clk), .msg(msg_in), .idx(widx), .w_out(w_word));
  sha_core u_core(.clk(clk), .rst(rst), .en(1'b1), .start(start),
                  .state_in({8{w_word}}), .w_blk({w_word, w_word, w_word, w_word, w_word, w_word, w_word, w_word}),
                  .state_out(core_state), .valid(core_valid), .busy(core_busy));
  sha_round u_round(.clk(clk), .rst(rst), .en(core_valid | core_busy), .ld(start),
                    .byte_in(core_state[7:0] ^ w_word[7:0] ^ msg_byte),
                    .digest(digest_out), .rdy(digest_rdy), .busy(round_busy));
endmodule
"#
    .to_string()
}

/// The benchmark descriptor (selected outputs: `digest_out`, `digest_rdy`).
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "SHA256",
        suite: "CEP",
        source: source(),
        top: "sha256",
        selected_outputs: vec!["digest_out".to_string(), "digest_rdy".to_string()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape() {
        let b = benchmark();
        let d = b.design().expect("load");
        let (modules, instances, min_io, max_io) = b.table1_stats(&d);
        assert_eq!(modules, 3);
        assert_eq!(instances, 3);
        assert_eq!(min_io, 38);
        assert_eq!(max_io, 774);
    }

    #[test]
    fn round_unit_fits_both_configs() {
        let b = benchmark();
        let d = b.design().expect("load");
        let round = d.hierarchy.module_info("sha_round").expect("sha_round");
        assert!(round.io_pins <= 64);
        // The other two exceed even cfg2's 96-pin budget.
        for m in ["sha_w_mem", "sha_core"] {
            assert!(
                d.hierarchy.module_info(m).expect("module").io_pins > 96,
                "{m}"
            );
        }
    }
}
