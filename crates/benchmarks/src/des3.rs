//! DES3 (CEP suite): triple-DES-style Feistel core.
//!
//! Table 1 shape: 11 redactable modules / 11 instances, module I/O pins in
//! [12, 301]. The eight S-boxes (12 pins each) are the only modules below
//! both pin budgets, giving the paper's |R| = 8; under cfg1 (64 pins) up
//! to five S-boxes cluster (`Σ C(8,k), k≤5 = 218` candidate clusters) and
//! under cfg2 (96 pins) all eight do (`2^8 − 1 = 255`) — the exact |C|
//! values of Table 2.
//!
//! The S-box bodies are generated from the real DES substitution tables,
//! two chained lookups per box so each instance carries a realistic amount
//! of logic.

use crate::Benchmark;
use std::fmt::Write;

/// The eight DES S-boxes as flat 64-entry tables (indexed directly by the
/// 6-bit input; the row/column permutation of the standard is immaterial
/// for synthesis benchmarks).
const SBOX_TABLES: [[u8; 64]; 8] = [
    [
        14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7, 0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12,
        11, 9, 5, 3, 8, 4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0, 15, 12, 8, 2, 4, 9,
        1, 7, 5, 11, 3, 14, 10, 0, 6, 13,
    ],
    [
        15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10, 3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1,
        10, 6, 9, 11, 5, 0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15, 13, 8, 10, 1, 3, 15,
        4, 2, 11, 6, 7, 12, 0, 5, 14, 9,
    ],
    [
        10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8, 13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5,
        14, 12, 11, 15, 1, 13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7, 1, 10, 13, 0, 6,
        9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12,
    ],
    [
        7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15, 13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2,
        12, 1, 10, 14, 9, 10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4, 3, 15, 0, 6, 10, 1,
        13, 8, 9, 4, 5, 11, 12, 7, 2, 14,
    ],
    [
        2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9, 14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15,
        10, 3, 9, 8, 6, 4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14, 11, 8, 12, 7, 1, 14,
        2, 13, 6, 15, 0, 9, 10, 4, 5, 3,
    ],
    [
        12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11, 10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13,
        14, 0, 11, 3, 8, 9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6, 4, 3, 2, 12, 9, 5,
        15, 10, 11, 14, 1, 7, 6, 0, 8, 13,
    ],
    [
        4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1, 13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5,
        12, 2, 15, 8, 6, 1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2, 6, 11, 13, 8, 1, 4,
        10, 7, 9, 5, 0, 15, 14, 2, 3, 12,
    ],
    [
        13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7, 1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6,
        11, 0, 14, 9, 2, 7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8, 2, 1, 14, 7, 4, 10,
        8, 13, 15, 12, 9, 0, 3, 5, 6, 11,
    ],
];

fn sbox_module(i: usize) -> String {
    // Half-table lookup (32 entries over x[4:0]) with an x[5]-keyed tweak:
    // sized so that a cluster of all eight S-boxes fills a 14x14 fabric,
    // matching the paper's DES3/cfg2 implementation.
    let lo: [u8; 64] = SBOX_TABLES[i];
    let tweak1 = SBOX_TABLES[(i + 1) % 8][7] & 0xF;
    let tweak2 = SBOX_TABLES[(i + 3) % 8][11] & 0xF;
    let mut v = String::new();
    let _ = writeln!(
        v,
        "module des3_sbox{n}(\n  input wire clk,\n  input wire en,\n  input wire [5:0] x,\n  output reg [3:0] y\n);",
        n = i + 1
    );
    let _ = writeln!(v, "  reg [3:0] t;");
    let _ = writeln!(v, "  always @(*) begin");
    let _ = writeln!(v, "    case (x[4:0])");
    #[allow(clippy::needless_range_loop)]
    for idx in 0..32 {
        let _ = writeln!(v, "      5'd{idx}: t = 4'd{};", lo[idx]);
    }
    let _ = writeln!(v, "      default: t = 4'd0;");
    let _ = writeln!(v, "    endcase");
    let _ = writeln!(v, "  end");
    let _ = writeln!(v, "  always @(posedge clk) begin");
    let _ = writeln!(
        v,
        "    if (en) y <= x[5] ? (t ^ 4'd{tweak1}) : ({{t[0], t[3:1]}} ^ 4'd{tweak2});"
    );
    let _ = writeln!(v, "  end");
    let _ = writeln!(v, "endmodule");
    v
}

/// The Verilog source (S-box bodies generated from `SBOX_TABLES`).
pub fn source() -> String {
    let mut v = String::new();
    for i in 0..8 {
        v.push_str(&sbox_module(i));
        v.push('\n');
    }
    // DES P-permutation (0-based input bit indices, output MSB first).
    let p_perm: [u8; 32] = [
        15, 6, 19, 20, 28, 11, 27, 16, 0, 14, 22, 25, 4, 17, 30, 9, 1, 7, 23, 13, 31, 26, 2, 8, 18,
        12, 29, 5, 21, 10, 3, 24,
    ];
    let pbox: Vec<String> = p_perm.iter().map(|&b| format!("sb[{b}]")).collect();
    let _ = write!(
        v,
        r#"
module des3_roundf(
  input wire clk,
  input wire en,
  input wire [31:0] r,
  input wire [47:0] k,
  output reg [47:0] e
);
  wire [47:0] expanded;
  assign expanded = {{r[1:0], r[31:26], r[26:23], r[26:23], r[22:19], r[22:19],
                     r[18:15], r[18:15], r[14:11], r[14:11], r[7:4], r[3:0]}};
  always @(posedge clk) begin
    if (en) e <= expanded ^ k;
  end
endmodule

module des3_key_sel(
  input wire clk,
  input wire [167:0] key,
  input wire [5:0] rnd,
  output reg [47:0] k
);
  wire [167:0] rot;
  assign rot = (key << {{rnd[2:0], 1'b0}}) | (key >> (168 - {{rnd[2:0], 1'b0}}));
  always @(posedge clk) k <= rot[47:0] ^ {{rot[167:144], rot[143:120]}};
endmodule

module des3_crp(
  input wire clk,
  input wire rst,
  input wire en,
  input wire start,
  input wire [63:0] d_in,
  input wire [167:0] key,
  output wire [63:0] d_out,
  output reg valid
);
  reg [31:0] lft;
  reg [31:0] rgt;
  reg [4:0] rnd;
  reg [1:0] phase;
  reg running;
  wire [47:0] rk;
  wire [47:0] e;
  wire [31:0] sb;
  wire [31:0] p;

  des3_key_sel u_ks(.clk(clk), .key(key), .rnd({{1'b0, rnd}}), .k(rk));
  des3_roundf u_rf(.clk(clk), .en(phase == 2'd0), .r(rgt), .k(rk), .e(e));
  des3_sbox1 u_s1(.clk(clk), .en(phase == 2'd1), .x(e[5:0]), .y(sb[3:0]));
  des3_sbox2 u_s2(.clk(clk), .en(phase == 2'd1), .x(e[11:6]), .y(sb[7:4]));
  des3_sbox3 u_s3(.clk(clk), .en(phase == 2'd1), .x(e[17:12]), .y(sb[11:8]));
  des3_sbox4 u_s4(.clk(clk), .en(phase == 2'd1), .x(e[23:18]), .y(sb[15:12]));
  des3_sbox5 u_s5(.clk(clk), .en(phase == 2'd1), .x(e[29:24]), .y(sb[19:16]));
  des3_sbox6 u_s6(.clk(clk), .en(phase == 2'd1), .x(e[35:30]), .y(sb[23:20]));
  des3_sbox7 u_s7(.clk(clk), .en(phase == 2'd1), .x(e[41:36]), .y(sb[27:24]));
  des3_sbox8 u_s8(.clk(clk), .en(phase == 2'd1), .x(e[47:42]), .y(sb[31:28]));
  assign p = {{{pbox}}};
  assign d_out = {{lft, rgt}};
  always @(posedge clk) begin
    if (rst) begin
      lft <= 32'd0;
      rgt <= 32'd0;
      rnd <= 5'd0;
      phase <= 2'd0;
      running <= 1'b0;
      valid <= 1'b0;
    end
    else if (en) begin
      if (start) begin
        lft <= d_in[63:32];
        rgt <= d_in[31:0];
        rnd <= 5'd0;
        phase <= 2'd0;
        running <= 1'b1;
        valid <= 1'b0;
      end
      else if (running) begin
        phase <= phase + 2'd1;
        if (phase == 2'd2) begin
          phase <= 2'd0;
          lft <= rgt;
          rgt <= lft ^ p;
          rnd <= rnd + 5'd1;
          if (rnd == 5'd15) begin
            running <= 1'b0;
            valid <= 1'b1;
          end
        end
      end
    end
  end
endmodule

module des3(
  input wire clk,
  input wire rst,
  input wire start,
  input wire [63:0] d_in,
  input wire [167:0] key,
  output wire [63:0] d_out,
  output wire valid
);
  des3_crp u_crp(.clk(clk), .rst(rst), .en(1'b1), .start(start), .d_in(d_in),
                 .key(key), .d_out(d_out), .valid(valid));
endmodule
"#,
        pbox = pbox.join(", ")
    );
    v
}

/// The benchmark descriptor (selected outputs: `d_out`, `valid`).
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "DES3",
        suite: "CEP",
        source: source(),
        top: "des3",
        selected_outputs: vec!["d_out".to_string(), "valid".to_string()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alice_netlist::sim::Simulator;
    use alice_verilog::Bits;

    #[test]
    fn table1_shape() {
        let b = benchmark();
        let d = b.design().expect("load");
        let (modules, instances, min_io, max_io) = b.table1_stats(&d);
        assert_eq!(modules, 11);
        assert_eq!(instances, 11);
        assert_eq!(min_io, 12);
        assert_eq!(max_io, 301);
    }

    #[test]
    fn sboxes_are_the_candidates() {
        let b = benchmark();
        let d = b.design().expect("load");
        let sbox_pins: Vec<u32> = (1..=8)
            .map(|i| {
                d.hierarchy
                    .module_info(format!("des3_sbox{i}").as_str())
                    .expect("sbox")
                    .io_pins
            })
            .collect();
        assert!(sbox_pins.iter().all(|&p| p == 12), "{sbox_pins:?}");
        for m in ["des3_roundf", "des3_key_sel", "des3_crp"] {
            assert!(
                d.hierarchy.module_info(m).expect("module").io_pins > 96,
                "{m}"
            );
        }
    }

    #[test]
    fn encryption_runs_and_depends_on_key() {
        let b = benchmark();
        let d = b.design().expect("load");
        let n = alice_netlist::elaborate::elaborate(&d.file, "des3").expect("elab");
        let run = |key: u64| {
            let mut sim = Simulator::new(&n);
            sim.set_input("rst", &Bits::from_u64(1, 1));
            sim.step();
            sim.set_input("rst", &Bits::from_u64(0, 1));
            sim.set_input("d_in", &Bits::from_u64(0x0123_4567_89ab_cdef, 64));
            sim.set_input("key", &Bits::from_u64(key, 168));
            sim.set_input("start", &Bits::from_u64(1, 1));
            sim.step();
            sim.set_input("start", &Bits::from_u64(0, 1));
            for _ in 0..80 {
                sim.step();
                if sim.output("valid").to_u64() == Some(1) {
                    break;
                }
            }
            assert_eq!(sim.output("valid").to_u64(), Some(1), "must finish");
            sim.output("d_out")
        };
        let c1 = run(0xdead_beef);
        let c2 = run(0xdead_beee);
        assert_ne!(c1, c2, "ciphertext must depend on the key");
    }
}
