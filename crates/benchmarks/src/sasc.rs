//! SASC (IWLS05 suite): simple asynchronous serial controller.
//!
//! Table 1 shape: 2 redactable module types / 3 instances (the FIFO is
//! instantiated for both directions), module I/O pins in [23, 28]. The
//! selected output `so_data` depends only on the transmit FIFO, so module
//! filtering returns a single candidate in both configurations — the
//! paper's |R| = 1 rows.

use crate::Benchmark;

/// The Verilog source.
pub fn source() -> String {
    r#"
module sasc_brg(
  input wire clk,
  input wire rst,
  input wire [15:0] div,
  output reg tick,
  output reg half,
  output reg [2:0] frame
);
  reg [15:0] cnt;
  always @(posedge clk) begin
    if (rst) begin
      cnt <= 16'd0;
      tick <= 1'b0;
      half <= 1'b0;
      frame <= 3'd0;
    end
    else begin
      tick <= 1'b0;
      half <= 1'b0;
      if (cnt == div) begin
        cnt <= 16'd0;
        tick <= 1'b1;
        frame <= frame + 3'd1;
      end
      else begin
        cnt <= cnt + 16'd1;
        if (cnt == {1'b0, div[15:1]}) half <= 1'b1;
      end
    end
  end
endmodule

module sasc_fifo(
  input wire clk,
  input wire rst,
  input wire we,
  input wire re,
  input wire [7:0] din,
  output reg [7:0] dout,
  output wire full,
  output wire empty,
  output reg [5:0] level
);
  reg [7:0] mem0;
  reg [7:0] mem1;
  reg [7:0] mem2;
  reg [7:0] mem3;
  reg [1:0] wp;
  reg [1:0] rp;
  reg [7:0] crc;
  assign full = level == 6'd4;
  assign empty = level == 6'd0;
  always @(posedge clk) begin
    if (rst) begin
      wp <= 2'd0;
      rp <= 2'd0;
      level <= 6'd0;
      dout <= 8'd0;
      crc <= 8'hff;
    end
    else begin
      if (we & ~full) begin
        case (wp)
          2'd0: mem0 <= din;
          2'd1: mem1 <= din;
          2'd2: mem2 <= din;
          default: mem3 <= din;
        endcase
        wp <= wp + 2'd1;
        crc <= {crc[6:0], 1'b0} ^ (crc[7] ? (din ^ 8'h07) : din);
        if (~(re & ~empty)) level <= level + 6'd1;
      end
      if (re & ~empty) begin
        case (rp)
          2'd0: dout <= mem0 ^ {7'd0, crc[7]};
          2'd1: dout <= mem1 ^ {7'd0, crc[6]};
          2'd2: dout <= mem2 ^ {7'd0, crc[5]};
          default: dout <= mem3 ^ {7'd0, crc[4]};
        endcase
        rp <= rp + 2'd1;
        if (~(we & ~full)) level <= level - 6'd1;
      end
    end
  end
endmodule

module sasc(
  input wire clk,
  input wire rst,
  input wire [15:0] baud_div,
  input wire we,
  input wire [7:0] din,
  input wire si_data,
  input wire rx_pop,
  output wire so_data,
  output wire tx_full,
  output wire [7:0] rx_dout,
  output wire rx_empty,
  output wire baud_o
);
  wire tick;
  wire half;
  wire [2:0] frame;
  wire [7:0] tx_byte;
  wire tx_empty;
  wire rx_full;
  wire [5:0] tx_level;
  wire [5:0] rx_level;
  reg [2:0] tx_bit;
  reg tx_shift_en;

  always @(posedge clk) begin
    if (rst) begin
      tx_bit <= 3'd0;
      tx_shift_en <= 1'b0;
    end
    else begin
      tx_bit <= tx_bit + 3'd1;
      tx_shift_en <= tx_bit == 3'd7;
    end
  end

  sasc_brg u_brg(.clk(clk), .rst(rst), .div(baud_div), .tick(tick), .half(half), .frame(frame));
  sasc_fifo u_tx_fifo(.clk(clk), .rst(rst), .we(we), .re(tx_shift_en), .din(din),
                      .dout(tx_byte), .full(tx_full), .empty(tx_empty), .level(tx_level));
  sasc_fifo u_rx_fifo(.clk(clk), .rst(rst), .we(tick), .re(rx_pop),
                      .din({7'd0, si_data}), .dout(rx_dout), .full(rx_full),
                      .empty(rx_empty), .level(rx_level));
  assign so_data = tx_byte[0] ^ (tx_byte[7] & ~tx_empty);
  assign baud_o = tick | (half & frame[0]);
endmodule
"#
    .to_string()
}

/// The benchmark descriptor (selected output: `so_data`).
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "SASC",
        suite: "IWLS05",
        source: source(),
        top: "sasc",
        selected_outputs: vec!["so_data".to_string()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape() {
        let b = benchmark();
        let d = b.design().expect("load");
        let (modules, instances, min_io, max_io) = b.table1_stats(&d);
        assert_eq!(modules, 2);
        assert_eq!(instances, 3);
        assert_eq!(min_io, 23);
        assert_eq!(max_io, 28);
    }

    #[test]
    fn only_tx_fifo_affects_so_data() {
        let b = benchmark();
        let d = b.design().expect("load");
        let df = alice_dataflow::analyze(&d.file, "sasc").expect("df");
        let cone = df.cone_of("so_data").expect("cone");
        assert!(
            cone.contains(&alice_intern::Symbol::intern("sasc.u_tx_fifo")),
            "{cone:?}"
        );
        assert!(
            !cone.contains(&alice_intern::Symbol::intern("sasc.u_brg")),
            "{cone:?}"
        );
        assert!(
            !cone.contains(&alice_intern::Symbol::intern("sasc.u_rx_fifo")),
            "{cone:?}"
        );
    }
}
