//! FIR (CEP suite): direct-form FIR filter slice.
//!
//! Table 1 shape: 5 redactable modules / 5 instances, module I/O pins in
//! [64, 384]. Under cfg1 only `fir_tap` (exactly 64 pins) is a candidate;
//! under cfg2 `fir_mac` (80) and `fir_acc` (96) join, but no pair fits the
//! 96-pin budget, so |C| stays at the singletons — reproducing the paper's
//! FIR rows.

use crate::Benchmark;

/// The Verilog source.
pub fn source() -> String {
    r#"
module fir_tap(
  input wire clk,
  input wire en,
  input wire [30:0] x,
  output reg [30:0] y
);
  wire [30:0] scaled;
  assign scaled = (x << 6);
  always @(posedge clk) begin
    if (en) y <= (scaled + x) ^ {x[15:0], x[30:16]};
  end
endmodule

module fir_mac(
  input wire [31:0] a,
  input wire [15:0] b,
  output wire [31:0] p
);
  assign p = a * {16'd0, b};
endmodule

module fir_acc(
  input wire clk,
  input wire [31:0] a,
  input wire [31:0] b,
  output reg [16:0] s
);
  wire [16:0] sum;
  assign sum = a[16:0] + b[16:0];
  always @(posedge clk) s <= sum;
endmodule

module fir_coeff_bank(
  input wire [255:0] x,
  output wire [127:0] y
);
  assign y = x[127:0] ^ x[255:128] ^ {x[63:0], x[127:64]};
endmodule

module fir_tree(
  input wire clk,
  input wire rst,
  input wire [255:0] d,
  output reg [32:0] s
);
  wire [32:0] s0;
  wire [32:0] s1;
  assign s0 = {1'b0, d[31:0]} + {1'b0, d[63:32]} + {1'b0, d[95:64]} + {1'b0, d[127:96]};
  assign s1 = {1'b0, d[159:128]} + {1'b0, d[191:160]} + {1'b0, d[223:192]} + {1'b0, d[255:224]};
  always @(posedge clk) begin
    if (rst) s <= 33'd0;
    else s <= s0 + s1;
  end
endmodule

module fir(
  input wire clk,
  input wire rst,
  input wire en,
  input wire [15:0] sample,
  input wire [255:0] window,
  output wire [32:0] dout
);
  wire [30:0] tapped;
  wire [31:0] product;
  wire [16:0] accum;
  wire [127:0] coeffs;
  wire [32:0] tree_sum;

  fir_tap u_tap(.clk(clk), .en(en), .x({15'd0, sample}), .y(tapped));
  fir_coeff_bank u_coeff(.x(window), .y(coeffs));
  fir_mac u_mac(.a({1'b0, tapped}), .b(coeffs[15:0]), .p(product));
  fir_acc u_acc(.clk(clk), .a(product), .b({1'b0, tapped}), .s(accum));
  fir_tree u_tree(.clk(clk), .rst(rst), .d({window[127:0], product, {15'd0, accum}, product, 32'd0}), .s(tree_sum));
  assign dout = tree_sum + {16'd0, accum};
endmodule
"#
    .to_string()
}

/// The benchmark descriptor (selected output: `dout`).
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "FIR",
        suite: "CEP",
        source: source(),
        top: "fir",
        selected_outputs: vec!["dout".to_string()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape() {
        let b = benchmark();
        let d = b.design().expect("load");
        let (modules, instances, min_io, max_io) = b.table1_stats(&d);
        assert_eq!(modules, 5);
        assert_eq!(instances, 5);
        assert_eq!(min_io, 64);
        assert!(max_io >= 256, "coeff bank dominates: {max_io}");
    }

    #[test]
    fn tap_is_the_only_cfg1_candidate() {
        let b = benchmark();
        let d = b.design().expect("load");
        let h = &d.hierarchy;
        let under_64: Vec<_> = h
            .modules
            .values()
            .filter(|m| m.name != "fir" && m.io_pins <= 64)
            .collect();
        assert_eq!(under_64.len(), 1);
        assert_eq!(under_64[0].name, "fir_tap");
        assert_eq!(under_64[0].io_pins, 64);
    }
}
