//! The DAC'22 ALICE benchmark suite (Table 1), re-implemented in the
//! supported Verilog subset, plus a synthetic design generator.
//!
//! | Suite | Design | Modules | Instances | I/O pins |
//! |-------|--------|---------|-----------|----------|
//! | CEP | [`des3`] | 11 | 11 | [12, 301] |
//! | CEP | [`fir`] | 5 | 5 | [64, 384] |
//! | CEP | [`iir`] | 5 | 5 | [66, 384] |
//! | CEP | [`sha256`] | 3 | 3 | [38, 774] |
//! | IWLS05 | [`sasc`] | 2 | 3 | [23, 28] |
//! | IWLS05 | [`usb_phy`] | 3 | 3 | [17, 33] |
//! | OpenROAD | [`gcd`] | 10 | 11 | [6, 68] |
//!
//! # Example
//!
//! ```
//! use alice_core::config::AliceConfig;
//! use alice_core::flow::Flow;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bench = alice_benchmarks::gcd::benchmark();
//! let design = bench.design()?;
//! let outcome = Flow::new(bench.config(AliceConfig::cfg1())).run(&design)?;
//! assert!(outcome.report.candidates > 0);
//! # Ok(())
//! # }
//! ```

pub mod des3;
pub mod fir;
pub mod gcd;
pub mod generator;
pub mod iir;
pub mod sasc;
pub mod sha256;
pub mod usb_phy;

use alice_core::config::AliceConfig;
use alice_core::design::{Design, DesignError};

/// One benchmark: source, top module and the outputs to protect.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Design name as printed in the paper's tables.
    pub name: &'static str,
    /// Originating suite (CEP / IWLS05 / OpenROAD).
    pub suite: &'static str,
    /// Verilog source text.
    pub source: String,
    /// Top module name.
    pub top: &'static str,
    /// The "main output(s)" selected for protection (§7).
    pub selected_outputs: Vec<String>,
}

impl Benchmark {
    /// Loads the design.
    ///
    /// # Errors
    ///
    /// Propagates parse/hierarchy failures (none for the shipped suite).
    pub fn design(&self) -> Result<Design, DesignError> {
        Design::from_source(self.name, &self.source, Some(self.top))
    }

    /// Returns `base` with this benchmark's selected outputs filled in.
    pub fn config(&self, base: AliceConfig) -> AliceConfig {
        AliceConfig {
            selected_outputs: self.selected_outputs.clone(),
            ..base
        }
    }

    /// Table 1 statistics: (modules, instances, min I/O pins, max I/O pins),
    /// where modules/pins are counted over redactable (non-top) modules.
    pub fn table1_stats(&self, design: &Design) -> (usize, usize, u32, u32) {
        let modules: Vec<_> = design
            .hierarchy
            .modules
            .values()
            .filter(|m| m.name != self.top)
            .collect();
        let instances = design.instance_paths().len();
        let min_io = modules.iter().map(|m| m.io_pins).min().unwrap_or(0);
        let max_io = modules.iter().map(|m| m.io_pins).max().unwrap_or(0);
        (modules.len(), instances, min_io, max_io)
    }
}

/// The full suite in Table 1 order.
pub fn suite() -> Vec<Benchmark> {
    vec![
        des3::benchmark(),
        fir::benchmark(),
        iir::benchmark(),
        sha256::benchmark(),
        sasc::benchmark(),
        usb_phy::benchmark(),
        gcd::benchmark(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_load() {
        for b in suite() {
            let d = b.design().unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert_eq!(d.hierarchy.top, b.top, "{}", b.name);
        }
    }

    #[test]
    fn suite_matches_table1() {
        // (name, modules, instances, min_io, max_io) from Table 1.
        let expected = [
            ("DES3", 11, 11, 12, 301),
            ("FIR", 5, 5, 64, 384),
            ("IIR", 5, 5, 66, 384),
            ("SHA256", 3, 3, 38, 774),
            ("SASC", 2, 3, 23, 28),
            ("USB_PHY", 3, 3, 17, 33),
            ("GCD", 10, 11, 6, 68),
        ];
        for (b, (name, m, i, lo, hi)) in suite().iter().zip(expected) {
            assert_eq!(b.name, name);
            let d = b.design().expect("load");
            let (bm, bi, blo, bhi) = b.table1_stats(&d);
            assert_eq!((bm, bi, blo, bhi), (m, i, lo, hi), "{name}");
        }
    }

    #[test]
    fn selected_outputs_exist() {
        for b in suite() {
            let d = b.design().expect("load");
            let top = d.file.module(b.top).expect("top");
            for o in &b.selected_outputs {
                assert!(top.port(o).is_some(), "{}: output {o}", b.name);
            }
        }
    }
}
