//! IIR (CEP suite): biquad-style infinite impulse response filter.
//!
//! Table 1 shape: 5 redactable modules / 5 instances, module I/O pins in
//! [66, 384]. The *smallest* module already has 66 pins, which exceeds
//! cfg1's 64-pin budget — module filtering returns an empty candidate set
//! and the flow cannot continue, exactly the paper's IIR/cfg1 outcome.
//! Under cfg2 the two sub-96-pin modules are candidates; both map to large
//! fabrics (the "two large solutions" remark in §7).

use crate::Benchmark;

/// The Verilog source.
pub fn source() -> String {
    r#"
module iir_sos(
  input wire clk,
  input wire en,
  input wire [31:0] x,
  output reg [31:0] y
);
  reg [31:0] w1;
  reg [31:0] w2;
  wire [31:0] m1;
  wire [31:0] m2;
  wire [31:0] m3;
  assign m1 = {22'd0, x[9:0]} * {22'd0, w1[9:0]};
  assign m2 = {24'd0, w1[23:16]} * {24'd0, w2[7:0]};
  assign m3 = {24'd0, w2[31:24]} * {28'd0, x[31:28]};
  always @(posedge clk) begin
    if (en) begin
      w1 <= x + m1;
      w2 <= w1 + m2;
      y <= m1 + m2 + m3;
    end
  end
endmodule

module iir_qmul(
  input wire [47:0] a,
  input wire [31:0] b,
  output wire [15:0] p
);
  wire [31:0] p1;
  wire [31:0] p2;
  wire [31:0] p3;
  assign p1 = {20'd0, a[11:0]} * {20'd0, b[11:0]};
  assign p2 = {22'd0, a[31:22]} * {22'd0, b[31:22]};
  assign p3 = {24'd0, a[47:40]} * {24'd0, b[15:8] ^ b[31:24]};
  assign p = p1[15:0] + p2[31:16] + p3[23:8];
endmodule

module iir_coeffs(
  input wire [191:0] c,
  output wire [191:0] q
);
  assign q = {c[95:0], c[191:96]} ^ {c[47:0], c[191:48]};
endmodule

module iir_delay(
  input wire clk,
  input wire en,
  input wire [63:0] x,
  output reg [63:0] y
);
  always @(posedge clk) begin
    if (en) y <= x;
  end
endmodule

module iir_scale(
  input wire clk,
  input wire en,
  input wire [53:0] x,
  output reg [53:0] y
);
  always @(posedge clk) begin
    if (en) y <= {x[52:0], x[53]} + 54'd77;
  end
endmodule

module iir(
  input wire clk,
  input wire en,
  input wire [15:0] x_in,
  input wire [191:0] coef_in,
  output wire [31:0] y_out
);
  wire [191:0] coefs;
  wire [63:0] delayed;
  wire [53:0] scaled;
  wire [31:0] sos_y;
  wire [15:0] q;

  iir_coeffs u_coeffs(.c(coef_in), .q(coefs));
  iir_delay u_delay(.clk(clk), .en(en), .x({x_in, coefs[47:0]}), .y(delayed));
  iir_scale u_scale(.clk(clk), .en(en), .x(delayed[53:0]), .y(scaled));
  iir_sos u_sos(.clk(clk), .en(en), .x({scaled[31:16], x_in}), .y(sos_y));
  iir_qmul u_qmul(.a(delayed[47:0]), .b(sos_y), .p(q));
  assign y_out = {sos_y[31:16], q};
endmodule
"#
    .to_string()
}

/// The benchmark descriptor (selected output: `y_out`).
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "IIR",
        suite: "CEP",
        source: source(),
        top: "iir",
        selected_outputs: vec!["y_out".to_string()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape() {
        let b = benchmark();
        let d = b.design().expect("load");
        let (modules, instances, min_io, max_io) = b.table1_stats(&d);
        assert_eq!(modules, 5);
        assert_eq!(instances, 5);
        assert_eq!(min_io, 66, "smallest module must exceed cfg1's 64 pins");
        assert!(max_io >= 128);
    }

    #[test]
    fn cfg1_has_no_candidates() {
        let b = benchmark();
        let d = b.design().expect("load");
        // The structural filter at 64 pins excludes every module.
        let smallest = d
            .hierarchy
            .modules
            .values()
            .filter(|m| m.name != "iir")
            .map(|m| m.io_pins)
            .min()
            .expect("has modules");
        assert!(smallest > 64);
        assert!(smallest <= 96, "but cfg2 must find candidates");
    }
}
