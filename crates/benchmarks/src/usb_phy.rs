//! USB_PHY (IWLS05 suite): USB 1.1 transceiver front-end.
//!
//! Table 1 shape: 3 redactable modules / 3 instances, module I/O pins in
//! [17, 33]. Both PHY halves affect the selected outputs (|R| = 2; the
//! control unit only drives debug pins), and clustering yields 3 candidate
//! clusters. The transmit PHY models a data-dependent clock divider
//! (`period / rate`); the elaborator lowers it to a restoring divider
//! array, so — unlike early revisions of this flow, where the divider
//! made characterization fail — every cluster now characterizes and the
//! design verifies end-to-end.

use crate::Benchmark;

/// The Verilog source.
pub fn source() -> String {
    r#"
module usb_rx_phy(
  input wire clk,
  input wire rst,
  input wire fs_ce,
  input wire rxd,
  input wire rxdp,
  input wire rxdn,
  output reg [7:0] rx_data,
  output reg rx_valid,
  output reg rx_active,
  output reg rx_error,
  output wire [1:0] line_state,
  output reg sync_err,
  output reg [4:0] pid,
  output reg [7:0] byte_cnt
);
  reg [7:0] shift;
  reg [2:0] bit_cnt;
  reg [2:0] ones_run;
  reg [1:0] dpll;
  reg last_j;
  reg [15:0] crc;
  reg [15:0] crc2;
  wire nrzi_bit;
  wire stuffed;
  wire crc_fb;
  assign line_state = {rxdp, rxdn};
  assign nrzi_bit = ~(rxd ^ last_j);
  assign stuffed = ones_run == 3'd6;
  assign crc_fb = crc[15] ^ nrzi_bit;
  always @(posedge clk) begin
    if (rst) begin
      shift <= 8'd0;
      bit_cnt <= 3'd0;
      ones_run <= 3'd0;
      dpll <= 2'd0;
      last_j <= 1'b0;
      rx_data <= 8'd0;
      rx_valid <= 1'b0;
      rx_active <= 1'b0;
      rx_error <= 1'b0;
      sync_err <= 1'b0;
      pid <= 5'd0;
      byte_cnt <= 8'd0;
      crc <= 16'hffff;
      crc2 <= 16'haaaa;
    end
    else begin
      rx_valid <= 1'b0;
      if (fs_ce) begin
        dpll <= dpll + 2'd1;
        last_j <= rxd;
        if (~stuffed) begin
          shift <= {nrzi_bit, shift[7:1]};
          bit_cnt <= bit_cnt + 3'd1;
          ones_run <= nrzi_bit ? (ones_run + 3'd1) : 3'd0;
          crc <= {crc[14:0], 1'b0} ^ (crc_fb ? 16'h8005 : 16'h0000);
          crc2 <= {crc2[0], crc2[15:1]} ^ (crc2[0] ^ nrzi_bit ? 16'ha001 : 16'h0000);
          if (bit_cnt == 3'd7) begin
            rx_data <= {nrzi_bit, shift[7:1]};
            rx_valid <= 1'b1;
            byte_cnt <= byte_cnt + 8'd1;
            if (byte_cnt == 8'd0) begin
              pid <= {^shift[7:4], shift[3:0]};
              rx_active <= shift[3:0] == ~shift[7:4];
              sync_err <= (shift != 8'h80) | (crc[15:8] == crc2[7:0]);
            end
          end
        end
        else begin
          ones_run <= 3'd0;
          rx_error <= rxdp & rxdn;
        end
      end
      if (rxdp & rxdn) rx_active <= 1'b0;
    end
  end
endmodule

module usb_tx_phy(
  input wire clk,
  input wire rst,
  input wire fs_ce,
  input wire [7:0] tx_data,
  input wire tx_valid,
  input wire [7:0] rate,
  output reg txdp,
  output reg txdn,
  output reg txoe,
  output reg tx_ready,
  output reg hold,
  output wire [4:0] bit_time
);
  reg [7:0] period;
  // Data-dependent divider, lowered to a restoring divider array.
  assign bit_time = (period / rate);
  always @(posedge clk) begin
    if (rst) begin
      txdp <= 1'b1;
      txdn <= 1'b0;
      txoe <= 1'b0;
      tx_ready <= 1'b0;
      hold <= 1'b0;
      period <= 8'd12;
    end
    else begin
      if (fs_ce & tx_valid) begin
        txdp <= tx_data[0];
        txdn <= ~tx_data[0];
        txoe <= 1'b1;
        hold <= ~hold;
        tx_ready <= hold;
        period <= period + 8'd1;
      end
    end
  end
endmodule

module usb_ctrl(
  input wire clk,
  input wire rst,
  input wire [5:0] ctl_in,
  output reg [7:0] ctl_out,
  output reg mode
);
  always @(posedge clk) begin
    if (rst) begin
      ctl_out <= 8'd0;
      mode <= 1'b0;
    end
    else begin
      ctl_out <= {2'd0, ctl_in} + 8'd3;
      mode <= ^ctl_in;
    end
  end
endmodule

module usb_phy(
  input wire clk,
  input wire rst,
  input wire fs_ce,
  input wire rxd,
  input wire rxdp,
  input wire rxdn,
  input wire [7:0] tx_data,
  input wire tx_valid,
  output wire [7:0] rx_data,
  output wire rx_valid,
  output wire txdp,
  output wire txdn,
  output wire txoe,
  output wire [7:0] dbg_ctl
);
  wire rx_active;
  wire rx_error;
  wire [1:0] line_state;
  wire sync_err;
  wire [4:0] pid;
  wire [7:0] byte_cnt;
  wire tx_ready;
  wire hold;
  wire [4:0] bit_time;
  wire ctl_mode;

  usb_rx_phy u_rx(.clk(clk), .rst(rst), .fs_ce(fs_ce), .rxd(rxd), .rxdp(rxdp), .rxdn(rxdn),
                  .rx_data(rx_data), .rx_valid(rx_valid), .rx_active(rx_active),
                  .rx_error(rx_error), .line_state(line_state), .sync_err(sync_err),
                  .pid(pid), .byte_cnt(byte_cnt));
  usb_tx_phy u_tx(.clk(clk), .rst(rst), .fs_ce(fs_ce), .tx_data(tx_data), .tx_valid(tx_valid),
                  .rate(byte_cnt), .txdp(txdp), .txdn(txdn), .txoe(txoe),
                  .tx_ready(tx_ready), .hold(hold), .bit_time(bit_time));
  usb_ctrl u_ctl(.clk(clk), .rst(rst), .ctl_in({line_state, hold, sync_err, rx_error, tx_ready}),
                 .ctl_out(dbg_ctl), .mode(ctl_mode));
endmodule
"#
    .to_string()
}

/// The benchmark descriptor (selected outputs: `txdp`, `rx_data`).
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "USB_PHY",
        suite: "IWLS05",
        source: source(),
        top: "usb_phy",
        selected_outputs: vec!["txdp".to_string(), "rx_data".to_string()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape() {
        let b = benchmark();
        let d = b.design().expect("load");
        let (modules, instances, min_io, max_io) = b.table1_stats(&d);
        assert_eq!(modules, 3);
        assert_eq!(instances, 3);
        assert_eq!(min_io, 17);
        assert_eq!(max_io, 33);
    }

    #[test]
    fn tx_phy_elaborates_with_its_dynamic_divider() {
        let b = benchmark();
        let d = b.design().expect("load");
        let n = alice_netlist::elaborate::elaborate(&d.file, "usb_tx_phy")
            .expect("dynamic division lowers to a restoring divider");
        // bit_time = period / rate with reset state period = 12.
        use alice_verilog::Bits;
        let mut sim = alice_netlist::sim::Simulator::new(&n);
        sim.set_input("rst", &Bits::from_u64(1, 1));
        sim.step();
        sim.set_input("rst", &Bits::from_u64(0, 1));
        sim.set_input("rate", &Bits::from_u64(5, 8));
        sim.settle();
        assert_eq!(sim.output("bit_time").to_u64(), Some(12 / 5));
        // The receive PHY elaborates fine too.
        assert!(alice_netlist::elaborate::elaborate(&d.file, "usb_rx_phy").is_ok());
    }
}
