//! GCD (OpenROAD suite): iterative subtraction-based greatest common
//! divisor, 16-bit datapath.
//!
//! Re-implemented in the supported Verilog subset with the Table 1
//! characteristics of the paper's GCD: 10 redactable module types, 11
//! instances (the operand register is used twice), module I/O pins
//! spanning [6, 68]. The `gcd_lzc` debug unit feeds only an unselected
//! debug output, so it is functionally filtered out (giving the paper's
//! |R| = 9 under cfg1 and |R| = 10 under cfg2).

use crate::Benchmark;

/// The Verilog source.
pub fn source() -> String {
    r#"
module gcd_ctrl(
  input wire clk,
  input wire rst,
  input wire start,
  input wire neq,
  output reg busy,
  output wire done
);
  always @(posedge clk) begin
    if (rst) busy <= 1'b0;
    else begin
      if (start) busy <= 1'b1;
      else if (~neq) busy <= 1'b0;
    end
  end
  assign done = busy & ~neq;
endmodule

module gcd_cmp(
  input wire [15:0] a,
  input wire [15:0] b,
  output wire gt,
  output wire eq
);
  wire [16:0] d;
  wire nz;
  assign d = {1'b0, a} - {1'b0, b};
  assign nz = d[15:0] != 16'd0;
  assign gt = ~d[16] & nz;
  assign eq = ~nz;
endmodule

module gcd_sub(
  input wire [15:0] a,
  input wire [15:0] b,
  output wire [15:0] diff
);
  assign diff = a - b;
endmodule

module gcd_mux(
  input wire sel,
  input wire [15:0] a,
  input wire [15:0] b,
  output wire [15:0] y
);
  assign y = sel ? a : b;
endmodule

module gcd_reg(
  input wire clk,
  input wire rst,
  input wire en,
  input wire [15:0] d,
  output reg [15:0] q
);
  always @(posedge clk) begin
    if (rst) q <= 16'd0;
    else if (en) q <= d;
  end
endmodule

module gcd_swap(
  input wire sel,
  input wire [15:0] a,
  input wire [15:0] b,
  output wire [15:0] x,
  output wire [15:0] y,
  output wire [2:0] flags
);
  assign x = sel ? b : a;
  assign y = sel ? a : b;
  assign flags = {sel, a == b, a < b};
endmodule

module gcd_lzc(
  input wire [15:0] x,
  output reg [4:0] cnt
);
  always @(*) begin
    cnt = 5'd16;
    if (x[0]) cnt = 5'd0;
    else if (x[1]) cnt = 5'd1;
    else if (x[2]) cnt = 5'd2;
    else if (x[3]) cnt = 5'd3;
    else if (x[4]) cnt = 5'd4;
    else if (x[5]) cnt = 5'd5;
    else if (x[6]) cnt = 5'd6;
    else if (x[7]) cnt = 5'd7;
    else if (x[8]) cnt = 5'd8;
    else if (x[9]) cnt = 5'd9;
    else if (x[10]) cnt = 5'd10;
    else if (x[11]) cnt = 5'd11;
    else if (x[12]) cnt = 5'd12;
    else if (x[13]) cnt = 5'd13;
    else if (x[14]) cnt = 5'd14;
    else if (x[15]) cnt = 5'd15;
  end
endmodule

module gcd_done(
  input wire [15:0] x,
  input wire eq_in,
  output wire zero,
  output wire valid
);
  wire [15:0] dec;
  wire [15:0] dec2;
  wire pow2;
  wire near2;
  assign dec = x - 16'd1;
  assign dec2 = x - 16'd2;
  assign pow2 = (x & dec) == 16'd0;
  assign near2 = (x & dec2) == 16'd2;
  assign zero = x == 16'd0;
  assign valid = eq_in | zero | (pow2 & x[0]) | (near2 & ~x[0]);
endmodule

module gcd_out_reg(
  input wire clk,
  input wire en,
  input wire [15:0] d,
  output reg [15:0] q
);
  always @(posedge clk) begin
    if (en) q <= d;
  end
endmodule

module gcd_parity(
  input wire [19:0] x,
  output wire p
);
  assign p = ^(x ^ {x[9:0], x[19:10]});
endmodule

module gcd(
  input wire clk,
  input wire rst,
  input wire start,
  input wire [15:0] a_in,
  input wire [15:0] b_in,
  output wire [15:0] result,
  output wire done,
  output wire [4:0] dbg_lzc,
  output wire par_out
);
  wire [15:0] qa;
  wire [15:0] qb;
  wire [15:0] big;
  wire [15:0] small;
  wire [15:0] diff;
  wire [15:0] next_a;
  wire gt;
  wire eq;
  wire busy;
  wire zero_b;
  wire res_valid;
  wire [2:0] swap_flags;

  gcd_swap u_swap(.sel(a_in < b_in), .a(a_in), .b(b_in), .x(big), .y(small), .flags(swap_flags));
  gcd_cmp u_cmp(.a(qa), .b(qb), .gt(gt), .eq(eq));
  gcd_sub u_sub(.a(gt ? qa : qb), .b(gt ? qb : qa), .diff(diff));
  gcd_ctrl u_ctrl(.clk(clk), .rst(rst), .start(start), .neq(~eq), .busy(busy), .done(done));
  gcd_mux u_mux(.sel(start), .a(big), .b(gt ? diff : qa), .y(next_a));
  gcd_reg u_rega(.clk(clk), .rst(rst), .en(start | (busy & ~eq)), .d(next_a), .q(qa));
  gcd_reg u_regb(.clk(clk), .rst(rst), .en(start | (busy & ~eq)),
                 .d(start ? small : (gt ? qb : diff)), .q(qb));
  gcd_done u_done(.x(qb), .eq_in(eq), .zero(zero_b), .valid(res_valid));
  gcd_out_reg u_out(.clk(clk), .en(done & res_valid), .d(qa), .q(result));
  gcd_parity u_par(.x({4'd0, qa}), .p(par_out));
  gcd_lzc u_lzc(.x(b_in), .cnt(dbg_lzc));
endmodule
"#
    .to_string()
}

/// The benchmark descriptor (selected outputs: `result`, `done`).
pub fn benchmark() -> Benchmark {
    Benchmark {
        name: "GCD",
        suite: "OpenROAD",
        source: source(),
        top: "gcd",
        selected_outputs: vec![
            "result".to_string(),
            "done".to_string(),
            "par_out".to_string(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alice_netlist::sim::Simulator;
    use alice_verilog::Bits;

    fn gcd_ref(mut a: u64, mut b: u64) -> u64 {
        if a == 0 {
            return b;
        }
        if b == 0 {
            return a;
        }
        while a != b {
            if a > b {
                a -= b;
            } else {
                b -= a;
            }
        }
        a
    }

    #[test]
    fn table1_shape() {
        let b = benchmark();
        let d = b.design().expect("load");
        let (modules, instances, min_io, max_io) = b.table1_stats(&d);
        assert_eq!(modules, 10);
        assert_eq!(instances, 11);
        assert_eq!(min_io, 6);
        assert_eq!(max_io, 68);
    }

    #[test]
    fn computes_gcd() {
        let b = benchmark();
        let d = b.design().expect("load");
        let n = alice_netlist::elaborate::elaborate(&d.file, "gcd").expect("elab");
        let mut sim = Simulator::new(&n);
        for (a, bb) in [(48u64, 36u64), (7, 13), (100, 75), (5, 5), (1, 9)] {
            sim.reset();
            sim.set_input("rst", &Bits::from_u64(1, 1));
            sim.set_input("start", &Bits::from_u64(0, 1));
            sim.step();
            sim.set_input("rst", &Bits::from_u64(0, 1));
            sim.set_input("a_in", &Bits::from_u64(a, 16));
            sim.set_input("b_in", &Bits::from_u64(bb, 16));
            sim.set_input("start", &Bits::from_u64(1, 1));
            sim.step();
            sim.set_input("start", &Bits::from_u64(0, 1));
            for _ in 0..300 {
                sim.step();
                if sim.output("done").to_u64() == Some(1) {
                    break;
                }
            }
            sim.step();
            assert_eq!(
                sim.output("result").to_u64(),
                Some(gcd_ref(a, bb)),
                "gcd({a},{bb})"
            );
        }
    }
}
