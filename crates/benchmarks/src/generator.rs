//! Seeded synthetic design generator for stress and property testing.
//!
//! Produces random-but-valid hierarchical designs in the supported Verilog
//! subset: a top module instantiating `n` leaf blocks with configurable
//! pin widths and logic depth. Used by property tests (flow invariants
//! must hold on arbitrary designs, not just the 7 paper benchmarks) and by
//! the scaling benchmarks.

use std::fmt::Write;
use std::ops::RangeInclusive;

/// Minimal seeded PRNG (splitmix64) so generation stays deterministic
/// without an external `rand` dependency.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn gen_range(&mut self, range: RangeInclusive<u32>) -> u32 {
        let (lo, hi) = (*range.start(), *range.end());
        lo + (self.next_u64() % u64::from(hi - lo + 1)) as u32
    }
}

/// Parameters for the synthetic generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneratorParams {
    /// Number of leaf modules (each instantiated once).
    pub leaves: usize,
    /// Minimum data width of a leaf.
    pub min_width: u32,
    /// Maximum data width of a leaf.
    pub max_width: u32,
    /// Arithmetic stages per leaf (controls LUT count).
    pub depth: u32,
}

impl Default for GeneratorParams {
    fn default() -> Self {
        GeneratorParams {
            leaves: 6,
            min_width: 4,
            max_width: 16,
            depth: 2,
        }
    }
}

/// Generates a synthetic design; deterministic for a given `seed`.
///
/// # Example
///
/// ```
/// let src = alice_benchmarks::generator::generate(7, Default::default());
/// let d = alice_core::design::Design::from_source("synth", &src, None).unwrap();
/// assert_eq!(d.hierarchy.top, "synth_top");
/// ```
pub fn generate(seed: u64, params: GeneratorParams) -> String {
    let mut rng = SplitMix64(seed);
    let mut v = String::new();
    let mut widths = Vec::new();
    for i in 0..params.leaves {
        let w = rng.gen_range(params.min_width..=params.max_width);
        widths.push(w);
        let _ = writeln!(
            v,
            "module synth_leaf{i}(\n  input wire clk,\n  input wire [{msb}:0] a,\n  input wire [{msb}:0] b,\n  output reg [{msb}:0] y\n);",
            msb = w - 1
        );
        let _ = writeln!(v, "  wire [{}:0] s0;", w - 1);
        let mut prev = "(a ^ b)".to_string();
        for s in 0..params.depth {
            let op = match rng.gen_range(0..=3) {
                0 => "+",
                1 => "-",
                2 => "&",
                _ => "^",
            };
            let shift = rng.gen_range(0..=w.min(7) - 1);
            prev = format!("({prev} {op} (b >> {shift}))");
            let _ = s;
        }
        let _ = writeln!(v, "  assign s0 = {prev};");
        let _ = writeln!(v, "  always @(posedge clk) y <= s0;");
        let _ = writeln!(v, "endmodule");
    }
    // Top: chain the leaves, expose one output per leaf.
    let _ = writeln!(v, "module synth_top(");
    let _ = writeln!(v, "  input wire clk,");
    let _ = writeln!(v, "  input wire [{}:0] x,", params.max_width - 1);
    let outs: Vec<String> = (0..params.leaves)
        .map(|i| format!("  output wire [{}:0] o{i}", widths[i] - 1))
        .collect();
    let _ = writeln!(v, "{}", outs.join(",\n"));
    let _ = writeln!(v, ");");
    for (i, w) in widths.iter().enumerate() {
        // Chain the leaves through one bit of the previous output so every
        // leaf lands in the dataflow cone of the last output.
        let conn_a = if i == 0 {
            format!("x[{}:0]", w - 1)
        } else {
            format!("x[{}:0] ^ {{{}{{o{}[0]}}}}", w - 1, w, i - 1)
        };
        let _ = writeln!(
            v,
            "  synth_leaf{i} u{i}(.clk(clk), .a({conn_a}), .b(x[{}:0]), .y(o{i}));",
            w - 1
        );
    }
    let _ = writeln!(v, "endmodule");
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use alice_core::design::Design;

    #[test]
    fn generated_designs_parse_and_elaborate() {
        for seed in 0..10u64 {
            let src = generate(seed, GeneratorParams::default());
            let d = Design::from_source("synth", &src, None)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            assert_eq!(d.instance_paths().len(), 6);
            // Leaves must elaborate (they feed the flow's characterization).
            for i in 0..6 {
                alice_netlist::elaborate::elaborate(&d.file, &format!("synth_leaf{i}"))
                    .unwrap_or_else(|e| panic!("seed {seed} leaf {i}: {e}"));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = GeneratorParams::default();
        assert_eq!(generate(42, p), generate(42, p));
        assert_ne!(generate(42, p), generate(43, p));
    }
}
