//! eFPGA fabric architecture parameters and geometry.
//!
//! The architecture family follows the paper's fixed configuration (§7):
//! CLBs built from four 4-input fracturable LUTs and I/O tiles carrying
//! 8 GPIOs each, so a W×H fabric exposes `8·(W+H)` I/O pins — a 4×4
//! fabric has 64, matching the "a 4×4 fabric configuration has no more
//! than 64 I/O pins" remark in §3.

use std::fmt;

/// Architecture-level parameters of the eFPGA family.
#[derive(Debug, Clone, PartialEq)]
pub struct FabricArch {
    /// LUT input count (k). The paper fixes k = 4.
    pub lut_inputs: u32,
    /// Logic elements (LUT+FF pairs) per CLB. The paper fixes 4.
    pub les_per_clb: u32,
    /// GPIO pins per I/O tile. The paper fixes 8.
    pub gpio_per_tile: u32,
    /// Largest permitted fabric dimension (squares up to `max_dim × max_dim`).
    pub max_dim: u32,
    /// Routing channel width (tracks) used by the bitstream size model.
    pub channel_width: u32,
}

impl Default for FabricArch {
    fn default() -> Self {
        FabricArch {
            lut_inputs: 4,
            les_per_clb: 4,
            gpio_per_tile: 8,
            max_dim: 20,
            channel_width: 8,
        }
    }
}

impl FabricArch {
    /// The paper's architecture (4×4-LUT CLBs, 8-GPIO I/O tiles).
    pub fn new() -> Self {
        Self::default()
    }

    /// I/O pin capacity of a W×H fabric: `gpio_per_tile · (W + H)`.
    pub fn io_capacity(&self, width: u32, height: u32) -> u32 {
        self.gpio_per_tile * (width + height)
    }

    /// CLB capacity of a W×H fabric.
    pub fn clb_capacity(&self, width: u32, height: u32) -> u32 {
        width * height
    }

    /// LUT (logic element) capacity of a W×H fabric.
    pub fn le_capacity(&self, width: u32, height: u32) -> u32 {
        self.clb_capacity(width, height) * self.les_per_clb
    }
}

/// A concrete fabric size chosen for one eFPGA instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FabricSize {
    /// Width in CLBs.
    pub width: u32,
    /// Height in CLBs.
    pub height: u32,
}

impl FabricSize {
    /// Creates a square fabric.
    pub fn square(dim: u32) -> Self {
        FabricSize {
            width: dim,
            height: dim,
        }
    }

    /// Total CLB count.
    pub fn clbs(&self) -> u32 {
        self.width * self.height
    }
}

impl fmt::Display for FabricSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_io_capacity_anchor() {
        let arch = FabricArch::default();
        // §3: a 4x4 fabric has no more than 64 I/O pins.
        assert_eq!(arch.io_capacity(4, 4), 64);
        assert_eq!(arch.io_capacity(5, 5), 80);
        assert_eq!(arch.io_capacity(14, 14), 224);
    }

    #[test]
    fn capacities_scale() {
        let arch = FabricArch::default();
        assert_eq!(arch.clb_capacity(8, 8), 64);
        assert_eq!(arch.le_capacity(8, 8), 256);
    }

    #[test]
    fn size_display() {
        assert_eq!(FabricSize::square(12).to_string(), "12x12");
        assert_eq!(FabricSize::square(12).clbs(), 144);
    }
}
