//! Packing: groups mapped LUTs and flip-flops into CLB-sized clusters.
//!
//! A logic element (LE) hosts one LUT and one optional flip-flop; a FF is
//! paired with the LUT that drives its D input (the fracturable-LE model of
//! the paper's architecture). Remaining FFs occupy their own LE. CLBs are
//! filled with a greedy connectivity-driven heuristic (VPR's AAPack in
//! spirit): seed with the unclustered LE with most connections, then absorb
//! the most-attracted LEs until the CLB is full.

use crate::arch::FabricArch;
use alice_netlist::lutmap::{MappedNetlist, MappedSrc};
use std::collections::{HashMap, HashSet};

/// One logic element: a LUT and/or a flip-flop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogicElement {
    /// Index into [`MappedNetlist::luts`], if the LE carries a LUT.
    pub lut: Option<usize>,
    /// Index into [`MappedNetlist::dffs`], if the LE carries a FF.
    pub dff: Option<usize>,
}

/// A packed CLB: up to `les_per_clb` logic elements.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Clb {
    /// The logic elements in this CLB.
    pub les: Vec<LogicElement>,
}

/// The result of packing.
#[derive(Debug, Clone, Default)]
pub struct Packing {
    /// Packed CLBs.
    pub clbs: Vec<Clb>,
    /// Total logic elements used.
    pub le_count: usize,
}

impl Packing {
    /// Number of CLBs used.
    pub fn clb_count(&self) -> usize {
        self.clbs.len()
    }
}

/// Packs a mapped netlist into CLBs for the given architecture.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let src = "module m(input wire [7:0] a, output wire y); assign y = ^a; endmodule";
/// let f = alice_verilog::parse_source(src)?;
/// let n = alice_netlist::elaborate::elaborate(&f, "m")?;
/// let mapped = alice_netlist::lutmap::map_luts(&n, 4)?;
/// let packing = alice_fabric::pack::pack(&mapped, &alice_fabric::FabricArch::default());
/// assert!(packing.clb_count() >= 1);
/// # Ok(())
/// # }
/// ```
pub fn pack(mapped: &MappedNetlist, arch: &FabricArch) -> Packing {
    // 1. Form LEs: pair a FF with its driving LUT only when that FF is the
    //    LUT's sole consumer (the LE exposes a single output, so a LUT that
    //    also feeds combinational logic cannot be registered in place).
    let mut lut_uses: HashMap<usize, u32> = HashMap::new();
    let bump = |s: &MappedSrc, lut_uses: &mut HashMap<usize, u32>| {
        if let MappedSrc::Lut(l) = s {
            *lut_uses.entry(*l).or_insert(0) += 1;
        }
    };
    for lut in &mapped.luts {
        for s in &lut.inputs {
            bump(s, &mut lut_uses);
        }
    }
    for d in &mapped.dffs {
        bump(&d.d, &mut lut_uses);
    }
    for (_, bits) in &mapped.outputs {
        for s in bits {
            bump(s, &mut lut_uses);
        }
    }
    let mut lut_paired: HashMap<usize, usize> = HashMap::new(); // lut -> dff
    let mut lone_dffs: Vec<usize> = Vec::new();
    for (di, dff) in mapped.dffs.iter().enumerate() {
        match dff.d {
            MappedSrc::Lut(li)
                if !lut_paired.contains_key(&li)
                    && lut_uses.get(&li).copied().unwrap_or(0) == 1 =>
            {
                lut_paired.insert(li, di);
            }
            _ => lone_dffs.push(di),
        }
    }
    let mut les: Vec<LogicElement> = Vec::new();
    for li in 0..mapped.luts.len() {
        les.push(LogicElement {
            lut: Some(li),
            dff: lut_paired.get(&li).copied(),
        });
    }
    for di in lone_dffs {
        les.push(LogicElement {
            lut: None,
            dff: Some(di),
        });
    }

    // 2. Connectivity between LEs (shared nets attract).
    // Net id space: LUT outputs and DFF outputs.
    let le_of_lut: HashMap<usize, usize> = les
        .iter()
        .enumerate()
        .filter_map(|(i, le)| le.lut.map(|l| (l, i)))
        .collect();
    let le_of_dff: HashMap<usize, usize> = les
        .iter()
        .enumerate()
        .filter_map(|(i, le)| le.dff.map(|d| (d, i)))
        .collect();
    let src_le = |s: &MappedSrc| -> Option<usize> {
        match s {
            MappedSrc::Lut(l) => le_of_lut.get(l).copied(),
            MappedSrc::Dff(d) => le_of_dff.get(d).copied(),
            _ => None,
        }
    };
    let mut adj: Vec<HashMap<usize, u32>> = vec![HashMap::new(); les.len()];
    let connect = |a: usize, b: usize, adj: &mut Vec<HashMap<usize, u32>>| {
        if a != b {
            *adj[a].entry(b).or_insert(0) += 1;
            *adj[b].entry(a).or_insert(0) += 1;
        }
    };
    for (i, le) in les.iter().enumerate() {
        if let Some(li) = le.lut {
            for inp in &mapped.luts[li].inputs {
                if let Some(j) = src_le(inp) {
                    connect(i, j, &mut adj);
                }
            }
        }
        if let Some(di) = le.dff {
            if let Some(j) = src_le(&mapped.dffs[di].d) {
                connect(i, j, &mut adj);
            }
        }
    }

    // 3. Greedy clustering.
    let cap = arch.les_per_clb as usize;
    let mut unplaced: HashSet<usize> = (0..les.len()).collect();
    let mut clbs: Vec<Clb> = Vec::new();
    while !unplaced.is_empty() {
        // Seed: the unplaced LE with the highest total connectivity.
        let &seed = unplaced
            .iter()
            .max_by_key(|&&i| (adj[i].values().sum::<u32>(), std::cmp::Reverse(i)))
            .expect("non-empty");
        unplaced.remove(&seed);
        let mut members = vec![seed];
        while members.len() < cap {
            // Most-attracted unplaced LE.
            let best = unplaced
                .iter()
                .map(|&i| {
                    let attraction: u32 = members
                        .iter()
                        .map(|&m| adj[i].get(&m).copied().unwrap_or(0))
                        .sum();
                    (attraction, std::cmp::Reverse(i), i)
                })
                .max();
            // Fill the CLB fully (density first, like the paper's
            // minimal-fabric objective); attraction only orders candidates.
            match best {
                Some((_, _, i)) => {
                    unplaced.remove(&i);
                    members.push(i);
                }
                None => break,
            }
        }
        clbs.push(Clb {
            les: members.iter().map(|&i| les[i]).collect(),
        });
    }
    Packing {
        le_count: les.len(),
        clbs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alice_netlist::elaborate::elaborate;
    use alice_netlist::lutmap::map_luts;
    use alice_verilog::parse_source;

    fn mapped(src: &str, top: &str) -> MappedNetlist {
        let f = parse_source(src).expect("parse");
        let n = elaborate(&f, top).expect("elab");
        map_luts(&n, 4).expect("map")
    }

    #[test]
    fn ff_pairs_with_driving_lut() {
        let src = r#"
module m(input wire clk, input wire [3:0] a, output reg q);
  always @(posedge clk) q <= ^a;
endmodule
"#;
        let m = mapped(src, "m");
        let p = pack(&m, &FabricArch::default());
        // One LUT + one FF paired into a single LE.
        assert_eq!(p.le_count, m.lut_count().max(1));
        let paired = p
            .clbs
            .iter()
            .flat_map(|c| &c.les)
            .any(|le| le.lut.is_some() && le.dff.is_some());
        assert!(paired, "FF should share an LE with its driving LUT");
    }

    #[test]
    fn clb_capacity_respected() {
        let src = "module m(input wire [15:0] a, input wire [15:0] b, output wire [15:0] y);\
                   assign y = a ^ b; endmodule";
        let m = mapped(src, "m");
        let arch = FabricArch::default();
        let p = pack(&m, &arch);
        for clb in &p.clbs {
            assert!(clb.les.len() <= arch.les_per_clb as usize);
        }
        let total: usize = p.clbs.iter().map(|c| c.les.len()).sum();
        assert_eq!(total, p.le_count);
    }

    #[test]
    fn clb_count_close_to_optimal() {
        // 16 XOR LUTs at 4 LEs per CLB -> 4 CLBs optimal.
        let src = "module m(input wire [15:0] a, input wire [15:0] b, output wire [15:0] y);\
                   assign y = a ^ b; endmodule";
        let m = mapped(src, "m");
        let p = pack(&m, &FabricArch::default());
        assert_eq!(m.lut_count(), 16);
        assert_eq!(p.clb_count(), 4);
    }

    #[test]
    fn passthrough_dffs_get_own_les() {
        let src = r#"
module m(input wire clk, input wire [3:0] d, output reg [3:0] q);
  always @(posedge clk) q <= d;
endmodule
"#;
        let m = mapped(src, "m");
        let p = pack(&m, &FabricArch::default());
        assert_eq!(m.dff_count(), 4);
        // D comes straight from PIs: no LUT to pair with.
        assert_eq!(p.le_count, 4);
    }
}
