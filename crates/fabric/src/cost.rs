//! Fabric cost model: silicon area, critical-path delay, and power.
//!
//! Area is calibrated against the paper's Figure 4 data points for the
//! NanGate 45nm library: two 4×4 fabrics plus residual GCD logic occupy
//! 52,629 µm², and one 5×5 fabric with the same logic occupies 54,512 µm².
//! Those two points imply strongly super-linear growth with CLB count
//! (routing channels and configuration chains widen with the array), which
//! we model as a power law `area = K_TILE · (W·H)^AREA_EXP`; the exponent
//! reproduces the observed 4×4 → 5×5 ratio.

use crate::arch::{FabricArch, FabricSize};

/// Calibration constant (µm² per CLB^AREA_EXP), fit to Figure 4.
pub const K_TILE: f64 = 284.5;
/// Area exponent over CLB count, fit to Figure 4.
pub const AREA_EXP: f64 = 1.63;
/// Intrinsic LUT4 delay (ns), 45nm-class.
pub const LUT_DELAY_NS: f64 = 0.22;
/// Average inter-CLB routing delay per LUT level (ns).
pub const ROUTE_DELAY_NS: f64 = 0.35;
/// Leakage per logic element (µW), 45nm-class.
pub const LE_LEAKAGE_UW: f64 = 0.9;
/// Configuration-memory leakage per bit (µW).
pub const CFG_LEAKAGE_UW: f64 = 0.004;
/// Dynamic energy per LE toggle (µW per MHz at 20% activity).
pub const LE_DYN_UW_PER_MHZ: f64 = 0.055;

/// Cost report for one fabric instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FabricCost {
    /// Silicon area in µm².
    pub area_um2: f64,
    /// Critical-path delay in ns (LUT levels × (LUT + route delay)).
    pub critical_path_ns: f64,
    /// Total power at the given clock in µW.
    pub power_uw: f64,
}

/// Computes the silicon area of a fabric.
///
/// # Example
///
/// ```
/// use alice_fabric::arch::FabricSize;
/// use alice_fabric::cost::fabric_area_um2;
///
/// let a44 = fabric_area_um2(FabricSize::square(4));
/// let a55 = fabric_area_um2(FabricSize::square(5));
/// // Figure 4: one 5x5 is roughly twice the area of one 4x4.
/// assert!(a55 / a44 > 1.8 && a55 / a44 < 2.3);
/// ```
pub fn fabric_area_um2(size: FabricSize) -> f64 {
    K_TILE * (size.clbs() as f64).powf(AREA_EXP)
}

/// Full cost model for a fabric running a design of the given LUT depth
/// and logic-element usage at `clock_mhz`.
pub fn fabric_cost(
    arch: &FabricArch,
    size: FabricSize,
    depth: u32,
    les_used: u32,
    clock_mhz: f64,
) -> FabricCost {
    let area_um2 = fabric_area_um2(size);
    let critical_path_ns = depth as f64 * (LUT_DELAY_NS + ROUTE_DELAY_NS);
    let total_les = size.clbs() * arch.les_per_clb;
    let cfg_bits = crate::bitstream::expected_len(arch, size) as f64;
    let leakage = total_les as f64 * LE_LEAKAGE_UW + cfg_bits * CFG_LEAKAGE_UW;
    let dynamic = les_used as f64 * LE_DYN_UW_PER_MHZ * clock_mhz;
    FabricCost {
        area_um2,
        critical_path_ns,
        power_uw: leakage + dynamic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_calibration_anchors() {
        // Figure 4(a): two 4x4 fabrics + ~500 µm² of residual logic.
        let two_small = 2.0 * fabric_area_um2(FabricSize::square(4)) + 500.0;
        assert!(
            (two_small - 52_629.0).abs() / 52_629.0 < 0.03,
            "cfg1 area {two_small}"
        );
        // Figure 4(b): one 5x5 fabric + the same residual logic.
        let one_large = fabric_area_um2(FabricSize::square(5)) + 500.0;
        assert!(
            (one_large - 54_512.0).abs() / 54_512.0 < 0.03,
            "cfg2 area {one_large}"
        );
    }

    #[test]
    fn area_monotone_in_size() {
        let mut prev = 0.0;
        for d in 1..=20 {
            let a = fabric_area_um2(FabricSize::square(d));
            assert!(a > prev);
            prev = a;
        }
    }

    #[test]
    fn cost_components_positive() {
        let arch = FabricArch::default();
        let c = fabric_cost(&arch, FabricSize::square(4), 5, 40, 100.0);
        assert!(c.area_um2 > 0.0);
        assert!(c.critical_path_ns > 0.0);
        assert!(c.power_uw > 0.0);
        // Deeper design is slower.
        let c2 = fabric_cost(&arch, FabricSize::square(4), 10, 40, 100.0);
        assert!(c2.critical_path_ns > c.critical_path_ns);
    }
}
