//! Configuration bitstream generation.
//!
//! The bitstream is the *secret* of eFPGA redaction: the fabric ships to
//! the foundry unconfigured, and only the bitstream restores the design's
//! functionality. The layout below mirrors an OpenFPGA-style configuration
//! chain:
//!
//! * per logic element: `2^k` LUT truth-table bits + 1 FF-bypass bit,
//! * per LE input pin: crossbar select bits
//!   (`ceil(log2(les_per_clb + 2·channel_width))` each),
//! * per CLB: switch-block bits (`4 · channel_width`).
//!
//! LUT truth tables and FF-bypass bits are real (they reproduce the mapped
//! design); routing-select values are derived from a deterministic hash of
//! the packing so the stream is reproducible. The *count* of routing bits
//! follows the size model, which is what the security metrics need.

use crate::arch::{FabricArch, FabricSize};
use crate::pack::Packing;
use alice_netlist::lutmap::MappedNetlist;

/// A fabric configuration bitstream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitstream {
    bits: Vec<bool>,
    lut_bits: usize,
    routing_bits: usize,
}

impl Bitstream {
    /// Reassembles a bitstream from its raw parts — the inverse of
    /// reading [`Bitstream::as_slice`]/[`Bitstream::lut_bits`]/
    /// [`Bitstream::routing_bits`]. Intended for deserialization; callers
    /// are trusted to pass a split that sums to `bits.len()`.
    pub fn from_parts(bits: Vec<bool>, lut_bits: usize, routing_bits: usize) -> Bitstream {
        Bitstream {
            bits,
            lut_bits,
            routing_bits,
        }
    }

    /// Total configuration bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True if the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Bits holding LUT truth tables and FF-bypass flags.
    pub fn lut_bits(&self) -> usize {
        self.lut_bits
    }

    /// Bits modelling routing configuration.
    pub fn routing_bits(&self) -> usize {
        self.routing_bits
    }

    /// Raw bit access.
    pub fn bit(&self, i: usize) -> bool {
        self.bits[i]
    }

    /// The bits as a slice.
    pub fn as_slice(&self) -> &[bool] {
        &self.bits
    }
}

/// Generates the bitstream for a packed design on a sized fabric.
///
/// Unused logic elements are configured with all-zero truth tables, which
/// is also what an attacker observes pre-configuration: every fabric of a
/// given size yields the same *length* of stream, regardless of content.
pub fn generate(
    mapped: &MappedNetlist,
    packing: &Packing,
    arch: &FabricArch,
    size: FabricSize,
) -> Bitstream {
    let k = arch.lut_inputs;
    let tt_bits = 1usize << k;
    let les_total = (size.clbs() * arch.les_per_clb) as usize;
    let xbar_choices = arch.les_per_clb + 2 * arch.channel_width;
    let xbar_bits = (32 - (xbar_choices - 1).leading_zeros()) as usize;
    let sb_bits_per_clb = (4 * arch.channel_width) as usize;

    let mut bits = Vec::new();
    let mut lut_bits = 0usize;
    // Per-LE configuration, in packing order then padding for unused LEs.
    let mut le_iter = packing.clbs.iter().flat_map(|c| c.les.iter());
    for le_idx in 0..les_total {
        let le = le_iter.next();
        // LUT truth table. A lone-FF LE routes its D through the LUT, so
        // its table is the identity on input 0 (0xAAAA for k = 4).
        let identity: u64 = {
            let mut t = 0u64;
            for p in 0..(1u64 << k) {
                if p & 1 == 1 {
                    t |= 1 << p;
                }
            }
            t
        };
        let tt: u64 = match le {
            Some(le) => match (le.lut, le.dff) {
                (Some(l), _) => mapped.luts[l].tt,
                (None, Some(_)) => identity,
                (None, None) => 0,
            },
            None => 0,
        };
        for b in 0..tt_bits {
            bits.push((tt >> b) & 1 == 1);
        }
        // FF bypass: 1 = combinational output, 0 = registered.
        let bypass = le.map(|le| le.dff.is_none()).unwrap_or(true);
        bits.push(bypass);
        lut_bits += tt_bits + 1;
        // Crossbar selects for each LUT input pin: deterministic filler
        // derived from position (real routing is fixed by our model).
        for pin in 0..k as usize {
            let sel = hash2(le_idx as u64, pin as u64) % xbar_choices as u64;
            for b in 0..xbar_bits {
                bits.push((sel >> b) & 1 == 1);
            }
        }
    }
    // Switch-block bits per CLB tile.
    for clb in 0..size.clbs() as usize {
        for t in 0..sb_bits_per_clb {
            bits.push(hash2(clb as u64, t as u64) & 1 == 1);
        }
    }
    let routing_bits = bits.len() - lut_bits;
    Bitstream {
        bits,
        lut_bits,
        routing_bits,
    }
}

/// Expected bitstream length for a fabric size (content-independent).
pub fn expected_len(arch: &FabricArch, size: FabricSize) -> usize {
    let tt_bits = 1usize << arch.lut_inputs;
    let les_total = (size.clbs() * arch.les_per_clb) as usize;
    let xbar_choices = arch.les_per_clb + 2 * arch.channel_width;
    let xbar_bits = (32 - (xbar_choices - 1).leading_zeros()) as usize;
    let per_le = tt_bits + 1 + arch.lut_inputs as usize * xbar_bits;
    les_total * per_le + size.clbs() as usize * (4 * arch.channel_width) as usize
}

fn hash2(a: u64, b: u64) -> u64 {
    let mut x = a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_add(0x6C62_272E_07BB_0142);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::pack;
    use alice_netlist::elaborate::elaborate;
    use alice_netlist::lutmap::map_luts;
    use alice_verilog::parse_source;

    fn fixture() -> (MappedNetlist, Packing) {
        let src = "module m(input wire [7:0] a, output wire y); assign y = ^a; endmodule";
        let f = parse_source(src).expect("parse");
        let n = elaborate(&f, "m").expect("elab");
        let m = map_luts(&n, 4).expect("map");
        let p = pack(&m, &FabricArch::default());
        (m, p)
    }

    #[test]
    fn length_matches_model() {
        let (m, p) = fixture();
        let arch = FabricArch::default();
        let size = FabricSize::square(2);
        let bs = generate(&m, &p, &arch, size);
        assert_eq!(bs.len(), expected_len(&arch, size));
        assert_eq!(bs.len(), bs.lut_bits() + bs.routing_bits());
    }

    #[test]
    fn length_is_content_independent() {
        let (m, p) = fixture();
        let arch = FabricArch::default();
        let size = FabricSize::square(3);
        let bs1 = generate(&m, &p, &arch, size);
        let empty_map = MappedNetlist::default();
        let empty_pack = Packing::default();
        let bs2 = generate(&empty_map, &empty_pack, &arch, size);
        assert_eq!(bs1.len(), bs2.len());
    }

    #[test]
    fn truth_tables_appear_in_stream() {
        let (m, p) = fixture();
        let arch = FabricArch::default();
        let bs = generate(&m, &p, &arch, FabricSize::square(2));
        // First LE's first 16 bits are the first packed LUT's truth table.
        let first_lut = p.clbs[0].les[0].lut.expect("has lut");
        let tt = m.luts[first_lut].tt;
        for b in 0..16 {
            assert_eq!(bs.bit(b), (tt >> b) & 1 == 1, "bit {b}");
        }
    }

    #[test]
    fn bigger_fabric_longer_stream() {
        let arch = FabricArch::default();
        assert!(
            expected_len(&arch, FabricSize::square(5)) > expected_len(&arch, FabricSize::square(4))
        );
    }
}
