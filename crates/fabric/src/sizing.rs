//! Fabric sizing: the `CreateEFPGA` oracle of Algorithm 3.
//!
//! Given a mapped cluster, find the smallest square fabric that fits both
//! its I/O pins and its packed CLBs (OpenFPGA's "most suitable fabric"
//! search in §7), then generate the bitstream and report utilization.

use crate::arch::{FabricArch, FabricSize};
use crate::bitstream::{generate, Bitstream};
use crate::cost::{fabric_cost, FabricCost};
use crate::pack::{pack, Packing};
use alice_netlist::lutmap::MappedNetlist;
use std::fmt;

/// A characterized eFPGA implementation of one cluster.
#[derive(Debug, Clone)]
pub struct EfpgaImpl {
    /// Chosen fabric size.
    pub size: FabricSize,
    /// The packed design.
    pub packing: Packing,
    /// The configuration bitstream (the redaction secret).
    pub bitstream: Bitstream,
    /// I/O utilization: used pins / fabric pin capacity (0..=1).
    pub io_util: f64,
    /// CLB utilization: used CLBs / fabric CLB capacity (0..=1).
    pub clb_util: f64,
    /// Cost report at the default 100 MHz operating point.
    pub cost: FabricCost,
    /// LUT depth of the mapped design.
    pub depth: u32,
    /// I/O pins used by the cluster.
    pub io_used: u32,
}

/// Why a cluster cannot be implemented on any permitted fabric.
#[derive(Debug, Clone, PartialEq)]
pub enum FabricError {
    /// Pins exceed the largest permitted fabric's capacity.
    TooManyIos {
        /// Pins required.
        need: u32,
        /// Capacity of the largest permitted fabric.
        max: u32,
    },
    /// CLBs exceed the largest permitted fabric's capacity.
    TooManyClbs {
        /// CLBs required.
        need: u32,
        /// Capacity of the largest permitted fabric.
        max: u32,
    },
    /// The cluster has no logic at all (nothing to redact).
    EmptyCluster,
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::TooManyIos { need, max } => {
                write!(f, "cluster needs {need} I/O pins, largest fabric has {max}")
            }
            FabricError::TooManyClbs { need, max } => {
                write!(f, "cluster needs {need} CLBs, largest fabric has {max}")
            }
            FabricError::EmptyCluster => write!(f, "cluster contains no logic"),
        }
    }
}

impl std::error::Error for FabricError {}

/// Creates the minimal square eFPGA for a mapped cluster.
///
/// # Errors
///
/// Returns a [`FabricError`] when no fabric up to `arch.max_dim` fits.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let src = "module m(input wire [7:0] a, input wire [7:0] b, output wire [7:0] y);
///              assign y = a + b;
///            endmodule";
/// let f = alice_verilog::parse_source(src)?;
/// let n = alice_netlist::elaborate::elaborate(&f, "m")?;
/// let mapped = alice_netlist::lutmap::map_luts(&n, 4)?;
/// let arch = alice_fabric::FabricArch::default();
/// let efpga = alice_fabric::create_efpga(&mapped, &arch)?;
/// assert!(efpga.size.width >= 2);
/// assert!(efpga.io_util > 0.0 && efpga.io_util <= 1.0);
/// # Ok(())
/// # }
/// ```
pub fn create_efpga(mapped: &MappedNetlist, arch: &FabricArch) -> Result<EfpgaImpl, FabricError> {
    let io_used = mapped.io_pins() as u32;
    let packing = pack(mapped, arch);
    let clbs_used = packing.clb_count() as u32;
    if io_used == 0 && clbs_used == 0 {
        return Err(FabricError::EmptyCluster);
    }
    let max = arch.max_dim;
    let dim = (1..=max)
        .find(|&d| arch.io_capacity(d, d) >= io_used && arch.clb_capacity(d, d) >= clbs_used);
    let Some(dim) = dim else {
        if arch.io_capacity(max, max) < io_used {
            return Err(FabricError::TooManyIos {
                need: io_used,
                max: arch.io_capacity(max, max),
            });
        }
        return Err(FabricError::TooManyClbs {
            need: clbs_used,
            max: arch.clb_capacity(max, max),
        });
    };
    let size = FabricSize::square(dim);
    let bitstream = generate(mapped, &packing, arch, size);
    let io_util = io_used as f64 / arch.io_capacity(dim, dim) as f64;
    let clb_util = clbs_used as f64 / arch.clb_capacity(dim, dim) as f64;
    let depth = mapped.depth();
    let cost = fabric_cost(arch, size, depth, packing.le_count as u32, 100.0);
    Ok(EfpgaImpl {
        size,
        packing,
        bitstream,
        io_util,
        clb_util,
        cost,
        depth,
        io_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use alice_netlist::elaborate::elaborate;
    use alice_netlist::lutmap::map_luts;
    use alice_verilog::parse_source;

    fn mapped(src: &str, top: &str) -> MappedNetlist {
        let f = parse_source(src).expect("parse");
        let n = elaborate(&f, top).expect("elab");
        map_luts(&n, 4).expect("map")
    }

    #[test]
    fn io_bound_sizing() {
        // 60 pins of pass-through wiring: I/O dominates.
        let src = "module m(input wire [29:0] a, output wire [29:0] y); assign y = ~a; endmodule";
        let m = mapped(src, "m");
        let arch = FabricArch::default();
        let e = create_efpga(&m, &arch).expect("fits");
        // 60 pins need 8*(d+d) >= 60 -> d >= 3.75 -> 4x4.
        assert_eq!(e.size, FabricSize::square(4));
        assert!(e.io_util > 0.9);
    }

    #[test]
    fn clb_bound_sizing() {
        // Few pins, lots of logic: CLBs dominate.
        let src = "module m(input wire [15:0] a, output wire y); assign y = &a ^ ^a; endmodule";
        let m = mapped(src, "m");
        let arch = FabricArch::default();
        let e = create_efpga(&m, &arch).expect("fits");
        assert!(arch.clb_capacity(e.size.width, e.size.height) >= e.packing.clb_count() as u32);
        assert!(e.size.width >= 1);
    }

    #[test]
    fn too_many_ios_rejected() {
        let src = "module m(input wire [299:0] a, output wire [299:0] y); assign y = ~a; endmodule";
        let m = mapped(src, "m");
        let arch = FabricArch {
            max_dim: 8,
            ..FabricArch::default()
        };
        // 600 pins > 8*(8+8)=128.
        assert!(matches!(
            create_efpga(&m, &arch),
            Err(FabricError::TooManyIos { .. })
        ));
    }

    #[test]
    fn utilization_in_unit_range() {
        let src =
            "module m(input wire [7:0] a, output wire [7:0] y); assign y = a + 8'd7; endmodule";
        let m = mapped(src, "m");
        let e = create_efpga(&m, &FabricArch::default()).expect("fits");
        assert!(e.io_util > 0.0 && e.io_util <= 1.0);
        assert!(e.clb_util > 0.0 && e.clb_util <= 1.0);
        assert!(!e.bitstream.is_empty());
    }
}
