//! eFPGA fabric modelling for the ALICE reproduction (OpenFPGA substitute).
//!
//! Given a LUT-mapped cluster this crate answers the questions ALICE asks
//! its fabric oracle:
//!
//! * [`arch`] — the fabric architecture family (CLB = four 4-input LUTs,
//!   8-GPIO I/O tiles, `8·(W+H)` pins for a W×H array),
//! * [`mod@pack`] — LUT/FF packing into CLBs,
//! * [`sizing`] — minimal-fabric search ([`create_efpga`], the
//!   `CreateEFPGA` oracle of Algorithm 3) with I/O and CLB utilization,
//! * [`bitstream`] — configuration stream generation (the redaction
//!   secret),
//! * [`cost`] — area/delay/power model calibrated on Figure 4,
//! * [`emit`] — structural Verilog fabric netlist with a config chain.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "module mac(input wire [7:0] a, input wire [7:0] b, output wire [7:0] y);
//!              assign y = a * b;
//!            endmodule";
//! let f = alice_verilog::parse_source(src)?;
//! let n = alice_netlist::elaborate::elaborate(&f, "mac")?;
//! let mapped = alice_netlist::lutmap::map_luts(&n, 4)?;
//! let efpga = alice_fabric::create_efpga(&mapped, &alice_fabric::FabricArch::default())?;
//! println!("fits a {} fabric, {} config bits", efpga.size, efpga.bitstream.len());
//! # Ok(())
//! # }
//! ```

pub mod arch;
pub mod bitstream;
pub mod cost;
pub mod emit;
pub mod pack;
pub mod sizing;

pub use arch::{FabricArch, FabricSize};
pub use bitstream::Bitstream;
pub use cost::{fabric_area_um2, fabric_cost, FabricCost};
pub use pack::{pack, Clb, LogicElement, Packing};
pub use sizing::{create_efpga, EfpgaImpl, FabricError};
