//! Verilog emission of the eFPGA fabric netlist.
//!
//! Produces the "eFPGA netlist" box of Figure 2: a structural Verilog
//! module built from configurable logic-element primitives with a serial
//! configuration chain. The LUT truth tables are *not* present in the
//! netlist — they arrive through the configuration chain (the bitstream),
//! which is exactly the property redaction relies on.
//!
//! Simplification vs. OpenFPGA: routing is hardwired in the emitted
//! netlist (the abstract routing model of [`crate::bitstream`] carries the
//! bit *count*), so the config chain here holds `2^k + 1` bits per LE.

use crate::arch::{FabricArch, FabricSize};
use crate::pack::Packing;
use alice_intern::{HierPath, Symbol};
use alice_netlist::lutmap::{MappedNetlist, MappedSrc};
use std::fmt::Write;

/// The configurable logic-element primitive, shared by all fabrics.
///
/// Parseable by [`alice_verilog`]; ships once per output file.
pub fn le_primitive() -> String {
    r#"module alice_le(
  input wire cfg_clk,
  input wire cfg_en,
  input wire cfg_in,
  output wire cfg_out,
  input wire clk,
  input wire [3:0] in,
  output wire out,
  output wire ff_q
);
  reg [16:0] cfg;
  always @(posedge cfg_clk) begin
    if (cfg_en) cfg <= {cfg[15:0], cfg_in};
  end
  assign cfg_out = cfg[16];
  wire lut_out;
  assign lut_out = cfg[in];
  reg ff;
  always @(posedge clk) begin
    if (~cfg_en) ff <= lut_out;
  end
  assign out = cfg[16] ? lut_out : ff;
  assign ff_q = ff;
endmodule
"#
    .to_string()
}

/// Emits the fabric netlist for a packed design.
///
/// The module is named `{name}` and exposes the cluster's original ports
/// plus `clk` (if absent) and the configuration chain
/// (`cfg_clk`, `cfg_en`, `cfg_in`, `cfg_out`).
pub fn fabric_netlist(
    name: &str,
    mapped: &MappedNetlist,
    packing: &Packing,
    arch: &FabricArch,
    size: FabricSize,
) -> String {
    let _ = (arch, size);
    let mut v = String::new();
    let _ = writeln!(v, "module {name}(");
    let mut port_lines = vec![
        "  input wire cfg_clk".to_string(),
        "  input wire cfg_en".to_string(),
        "  input wire cfg_in".to_string(),
        "  output wire cfg_out".to_string(),
    ];
    let mut has_clk = false;
    for (pname, bits) in &mapped.inputs {
        if pname == "clk" {
            has_clk = true;
        }
        let range = if bits.len() > 1 {
            format!(" [{}:0]", bits.len() - 1)
        } else {
            String::new()
        };
        port_lines.push(format!("  input wire{range} {pname}"));
    }
    if !has_clk {
        port_lines.push("  input wire clk".to_string());
    }
    for (pname, bits) in &mapped.outputs {
        let range = if bits.len() > 1 {
            format!(" [{}:0]", bits.len() - 1)
        } else {
            String::new()
        };
        port_lines.push(format!("  output wire{range} {pname}"));
    }
    let _ = writeln!(v, "{}", port_lines.join(",\n"));
    let _ = writeln!(v, ");");

    // Net naming helpers.
    let pi_expr = |pi: usize| -> String {
        // Find which port/bit this PI belongs to.
        let mut acc = 0usize;
        for (pname, bits) in &mapped.inputs {
            if pi < acc + bits.len() {
                let bit = pi - acc;
                return if bits.len() > 1 {
                    format!("{pname}[{bit}]")
                } else {
                    pname.to_string()
                };
            }
            acc += bits.len();
        }
        unreachable!("pi index out of range")
    };

    // Each used LE gets a combinational output wire plus the dedicated
    // register output; reading the FF through `ff_q` (instead of the
    // bypass mux) keeps self-referencing registers (`if (en) q <= f(q)`)
    // free of structural combinational cycles.
    let les: Vec<_> = packing.clbs.iter().flat_map(|c| c.les.iter()).collect();
    for (i, _) in les.iter().enumerate() {
        let _ = writeln!(v, "  wire le{i}_out;");
        let _ = writeln!(v, "  wire le{i}_ff;");
    }
    let _ = writeln!(v, "  wire [{}:0] chain;", les.len());

    // Source expression for a mapped signal. LUT outputs come from the LE
    // holding that LUT (bypass path); DFF outputs from the register pin of
    // the LE holding that FF.
    let le_of_lut = |l: usize| les.iter().position(|le| le.lut == Some(l));
    let le_of_dff = |d: usize| les.iter().position(|le| le.dff == Some(d));
    let src_expr = |s: &MappedSrc| -> String {
        match s {
            MappedSrc::Const(false) => "1'b0".into(),
            MappedSrc::Const(true) => "1'b1".into(),
            MappedSrc::Pi(p) => pi_expr(*p),
            MappedSrc::Lut(l) => format!("le{}_out", le_of_lut(*l).expect("lut packed")),
            MappedSrc::Dff(d) => format!("le{}_ff", le_of_dff(*d).expect("dff packed")),
        }
    };

    let _ = writeln!(v, "  assign chain[0] = cfg_in;");
    for (i, le) in les.iter().enumerate() {
        // LE inputs: LUT inputs if a LUT is present, else the FF's D on in[0].
        let mut ins: Vec<String> = Vec::new();
        if let Some(l) = le.lut {
            for s in &mapped.luts[l].inputs {
                ins.push(src_expr(s));
            }
        } else if let Some(d) = le.dff {
            ins.push(src_expr(&mapped.dffs[d].d));
        }
        while ins.len() < 4 {
            ins.push("1'b0".into());
        }
        // Verilog concat is MSB-first.
        let in_concat = format!("{{{}, {}, {}, {}}}", ins[3], ins[2], ins[1], ins[0]);
        let _ = writeln!(
            v,
            "  alice_le le{i}(.cfg_clk(cfg_clk), .cfg_en(cfg_en), .cfg_in(chain[{i}]), \
             .cfg_out(chain[{}]), .clk(clk), .in({in_concat}), .out(le{i}_out), .ff_q(le{i}_ff));",
            i + 1
        );
    }
    let _ = writeln!(v, "  assign cfg_out = chain[{}];", les.len());

    for (pname, bits) in &mapped.outputs {
        for (b, s) in bits.iter().enumerate() {
            let lhs = if bits.len() > 1 {
                format!("{pname}[{b}]")
            } else {
                pname.to_string()
            };
            let _ = writeln!(v, "  assign {lhs} = {};", src_expr(s));
        }
    }
    let _ = writeln!(v, "endmodule");
    v
}

/// The resolved configuration of one emitted logic element: what its
/// `cfg` register holds once the chain has been shifted in. This is the
/// bitstream-to-key binding used by equivalence checking — `cfg[b]` for
/// `b < 16` is truth-table bit `b` and `cfg[16]` is the FF-bypass flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeConfig {
    /// LUT truth table (identity `0xAAAA` for a lone-FF LE, 0 if unused).
    pub tt: u64,
    /// FF-bypass flag (`cfg[16]`): true = combinational output.
    pub bypass: bool,
    /// The mapped LUT this LE implements, if any.
    pub lut: Option<usize>,
    /// The mapped flip-flop this LE hosts, if any.
    pub dff: Option<usize>,
}

impl LeConfig {
    /// The 17 `cfg` register bit values, LSB first.
    pub fn cfg_bits(&self) -> [bool; 17] {
        let mut bits = [false; 17];
        for (b, slot) in bits.iter_mut().enumerate().take(16) {
            *slot = (self.tt >> b) & 1 == 1;
        }
        bits[16] = self.bypass;
        bits
    }
}

/// The hierarchical elaboration path of the `i`-th emitted LE instance
/// under a deployed fabric at `fabric_inst` — the naming contract
/// between [`fabric_netlist`]'s `le{i}` instances and the gate-level
/// elaborator's hierarchical register names. Binding construction
/// (`alice_core::redact`) and equivalence checking resolve bitstream
/// bits to design state through these three helpers, so the scheme
/// lives here, next to the emitter that defines it.
pub fn le_path(fabric_inst: HierPath, i: usize) -> HierPath {
    fabric_inst.join(&format!("le{i}"))
}

/// The hierarchical DFF-bit name of configuration-register bit `bit` of
/// the LE elaborated at `le`: bits `0..16` are the truth table,
/// bit 16 is the FF-bypass flag (see [`LeConfig::cfg_bits`]).
pub fn cfg_bit_name(le: HierPath, bit: usize) -> Symbol {
    Symbol::intern(&format!("{le}.cfg[{bit}]"))
}

/// The hierarchical DFF-bit name of the LE's single state flip-flop.
pub fn ff_bit_name(le: HierPath) -> Symbol {
    Symbol::intern(&format!("{le}.ff[0]"))
}

/// Resolves the per-LE configuration for an emitted fabric, in chain
/// order (the same LE order as [`fabric_netlist`]'s `le{i}` instances
/// and [`config_stream`]'s shift schedule).
pub fn le_configs(mapped: &MappedNetlist, packing: &Packing) -> Vec<LeConfig> {
    packing
        .clbs
        .iter()
        .flat_map(|c| c.les.iter())
        .map(|le| LeConfig {
            tt: match (le.lut, le.dff) {
                (Some(l), _) => mapped.luts[l].tt,
                (None, Some(_)) => 0xAAAA,
                (None, None) => 0,
            },
            bypass: le.dff.is_none(),
            lut: le.lut,
            dff: le.dff,
        })
        .collect()
}

/// Builds the serial configuration stream for the *emitted* netlist (one
/// `alice_le` per used LE, 17 bits each: 16 truth-table bits then the
/// FF-bypass flag). Shift the returned bits in order on `cfg_in`, one per
/// `cfg_clk` cycle with `cfg_en` high; after `stream.len()` cycles every LE
/// holds its configuration.
///
/// This is the functional subset of the full fabric [`crate::bitstream`]
/// (which also carries routing bits and pads unused LEs).
pub fn config_stream(mapped: &MappedNetlist, packing: &Packing) -> Vec<bool> {
    let configs = le_configs(mapped, packing);
    let total = configs.len() * 17;
    let mut stream = vec![false; total];
    for (j, cfg) in configs.iter().enumerate() {
        for (b, &bit) in cfg.cfg_bits().iter().enumerate() {
            // After `total` shifts, chain position 17j+b holds the bit that
            // entered at time total-1-(17j+b).
            stream[total - 1 - (17 * j + b)] = bit;
        }
    }
    stream
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::pack;
    use alice_netlist::elaborate::elaborate;
    use alice_netlist::lutmap::map_luts;
    use alice_verilog::parse_source;

    fn fixture(src: &str, top: &str) -> (MappedNetlist, Packing) {
        let f = parse_source(src).expect("parse");
        let n = elaborate(&f, top).expect("elab");
        let m = map_luts(&n, 4).expect("map");
        let p = pack(&m, &FabricArch::default());
        (m, p)
    }

    #[test]
    fn le_primitive_parses() {
        let f = parse_source(&le_primitive()).expect("LE primitive must parse");
        assert_eq!(f.modules[0].name, "alice_le");
    }

    #[test]
    fn emitted_fabric_parses_with_primitive() {
        let (m, p) = fixture(
            "module m(input wire [3:0] a, input wire [3:0] b, output wire [3:0] y);\
             assign y = a ^ b; endmodule",
            "m",
        );
        let text = format!(
            "{}{}",
            le_primitive(),
            fabric_netlist(
                "m_efpga",
                &m,
                &p,
                &FabricArch::default(),
                crate::arch::FabricSize::square(2)
            )
        );
        let f = parse_source(&text).expect("emitted fabric must parse");
        assert!(f.module("m_efpga").is_some());
        let fab = f.module("m_efpga").expect("exists");
        assert!(fab.port("cfg_in").is_some());
        assert!(fab.port("a").is_some());
        assert!(fab.port("y").is_some());
    }

    #[test]
    fn no_truth_tables_in_netlist() {
        let (m, p) = fixture(
            "module s(input wire [3:0] a, output wire y); assign y = ^a; endmodule",
            "s",
        );
        let text = fabric_netlist(
            "s_efpga",
            &m,
            &p,
            &FabricArch::default(),
            crate::arch::FabricSize::square(1),
        );
        // The secret must not leak: the only constants allowed are 1'b0/1'b1
        // padding, never 16-bit LUT INIT values.
        assert!(!text.contains("16'h"), "truth table leaked:\n{text}");
    }

    /// End-to-end: emit the fabric, elaborate it with the netlist crate,
    /// shift the config stream in through the chain, and check the fabric
    /// now computes the original function.
    #[test]
    fn configured_fabric_matches_original_function() {
        use alice_netlist::sim::Simulator;
        use alice_verilog::Bits;

        let src = "module f(input wire [3:0] a, input wire [3:0] b, output wire [3:0] y);\
                   assign y = (a & b) ^ {b[0], b[3:1]}; endmodule";
        let (m, p) = fixture(src, "f");
        let arch = FabricArch::default();
        let text = format!(
            "{}{}",
            le_primitive(),
            fabric_netlist("f_efpga", &m, &p, &arch, crate::arch::FabricSize::square(2))
        );
        let file = alice_verilog::parse_source(&text).expect("parse");
        let fab = alice_netlist::elaborate::elaborate(&file, "f_efpga").expect("elab fabric");

        // Reference netlist for the original RTL.
        let orig_file = alice_verilog::parse_source(src).expect("parse orig");
        let orig = alice_netlist::elaborate::elaborate(&orig_file, "f").expect("elab orig");

        let stream = config_stream(&m, &p);
        let mut sim = Simulator::new(&fab);
        sim.set_input("cfg_en", &Bits::from_u64(1, 1));
        for &bit in &stream {
            sim.set_input("cfg_in", &Bits::from_u64(bit as u64, 1));
            sim.step();
        }
        sim.set_input("cfg_en", &Bits::from_u64(0, 1));

        let mut oref = Simulator::new(&orig);
        for a in 0..16u64 {
            for b in 0..16u64 {
                sim.set_input("a", &Bits::from_u64(a, 4));
                sim.set_input("b", &Bits::from_u64(b, 4));
                sim.settle();
                oref.set_input("a", &Bits::from_u64(a, 4));
                oref.set_input("b", &Bits::from_u64(b, 4));
                oref.settle();
                assert_eq!(sim.output("y"), oref.output("y"), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn le_configs_agree_with_the_shifted_stream() {
        let (m, p) = fixture(
            "module r(input wire clk, input wire [3:0] d, output reg [3:0] q);\
             always @(posedge clk) q <= d ^ {d[0], d[3:1]}; endmodule",
            "r",
        );
        let configs = le_configs(&m, &p);
        let stream = config_stream(&m, &p);
        assert_eq!(stream.len(), configs.len() * 17);
        // Shifting the stream leaves cfg[b] of LE j = configs[j].cfg_bits()[b].
        for (j, cfg) in configs.iter().enumerate() {
            for (b, &bit) in cfg.cfg_bits().iter().enumerate() {
                assert_eq!(
                    stream[stream.len() - 1 - (17 * j + b)],
                    bit,
                    "le{j} cfg[{b}]"
                );
            }
        }
        // Every mapped FF is hosted by exactly one LE.
        let hosted: Vec<usize> = configs.iter().filter_map(|c| c.dff).collect();
        assert_eq!(hosted.len(), m.dff_count());
    }

    #[test]
    fn naming_helpers_match_the_elaborated_hierarchy() {
        // The contract: `cfg_bit_name`/`ff_bit_name` over `le_path` are
        // exactly the hierarchical DFF-bit names the gate-level
        // elaborator assigns to the emitted netlist's registers.
        let (m, p) = fixture(
            "module r(input wire clk, input wire [3:0] d, output reg [3:0] q);\
             always @(posedge clk) q <= d ^ {d[0], d[3:1]}; endmodule",
            "r",
        );
        let text = format!(
            "{}{}",
            le_primitive(),
            fabric_netlist(
                "r_efpga",
                &m,
                &p,
                &FabricArch::default(),
                crate::arch::FabricSize::square(2)
            )
        );
        let f = parse_source(&text).expect("parse");
        let n = elaborate(&f, "r_efpga").expect("elab");
        let dff_names: std::collections::BTreeSet<Symbol> = n
            .dff_records()
            .iter()
            .map(|(_, name, _, _)| *name)
            .collect();
        let base = HierPath::intern("r_efpga");
        for (i, lc) in le_configs(&m, &p).iter().enumerate() {
            let le = le_path(base, i);
            for b in 0..17 {
                assert!(
                    dff_names.contains(&cfg_bit_name(le, b)),
                    "missing {}",
                    cfg_bit_name(le, b)
                );
            }
            if lc.dff.is_some() {
                assert!(
                    dff_names.contains(&ff_bit_name(le)),
                    "missing {}",
                    ff_bit_name(le)
                );
            }
        }
    }

    #[test]
    fn sequential_design_emits_ff_les() {
        let (m, p) = fixture(
            "module r(input wire clk, input wire d, output reg q);\
             always @(posedge clk) q <= d; endmodule",
            "r",
        );
        let text = fabric_netlist(
            "r_efpga",
            &m,
            &p,
            &FabricArch::default(),
            crate::arch::FabricSize::square(1),
        );
        let f = parse_source(&format!("{}{}", le_primitive(), text)).expect("parses");
        // clk must not be duplicated.
        let fab = f.module("r_efpga").expect("exists");
        let clk_ports = fab.ports.iter().filter(|p| p.name == "clk").count();
        assert_eq!(clk_ports, 1);
    }
}
