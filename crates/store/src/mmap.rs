//! Minimal read-only memory mapping with **no external dependencies**.
//!
//! The workspace deliberately carries no `libc`, so the Linux
//! implementation issues the `mmap`/`munmap` system calls directly via
//! inline assembly (x86_64 and aarch64). Every other platform gets the
//! graceful fallback: [`Mmap::map`] returns `None` and the store serves
//! payloads through the positioned-read + copy path instead — mapping is
//! a pure optimization, never a correctness requirement.
//!
//! Mappings are `MAP_PRIVATE` and read-only: the store never writes
//! through a map (commits go through tempfile + atomic rename, which
//! leaves the mapped inode untouched), so a map taken at open time stays
//! a coherent snapshot of that segment generation for as long as any
//! [`Payload`](crate::Payload) handle holds it alive.

use std::fs;
use std::ops::Deref;

/// A read-only memory mapping of a whole segment file. Dropping the last
/// clone of the owning [`Arc`](std::sync::Arc) unmaps the region, so a
/// zero-copy payload handle keeps exactly the pages it points into
/// alive.
#[derive(Debug)]
pub struct Mmap {
    ptr: *mut u8,
    len: usize,
}

// The region is immutable (PROT_READ) for the mapping's whole lifetime,
// so shared references from any thread are sound.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps the first `len` bytes of `file` read-only. `None` when the
    /// platform has no mapping support, `len` is zero, or the system
    /// call fails — callers fall back to positioned reads.
    pub fn map(file: &fs::File, len: u64) -> Option<Mmap> {
        sys::map(file, len)
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // Sound: the pointer covers `len` readable bytes for the
        // mapping's whole lifetime and is only constructed by a
        // successful `sys::map`.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        // Best-effort: a failed unmap merely leaks address space.
        unsafe { sys::unmap(self.ptr, self.len) };
    }
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use std::fs;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    #[cfg(target_arch = "x86_64")]
    const SYS_MMAP: usize = 9;
    #[cfg(target_arch = "x86_64")]
    const SYS_MUNMAP: usize = 11;
    #[cfg(target_arch = "aarch64")]
    const SYS_MMAP: usize = 222;
    #[cfg(target_arch = "aarch64")]
    const SYS_MUNMAP: usize = 215;

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> usize {
        let ret;
        core::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack)
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> usize {
        let ret;
        core::arch::asm!(
            "svc 0",
            inlateout("x0") a => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            in("x8") n,
            options(nostack)
        );
        ret
    }

    /// Kernel error returns land in `[-4095, -1]`; valid mappings never
    /// do.
    fn is_err(ret: usize) -> bool {
        (ret as isize) < 0 && (ret as isize) >= -4095
    }

    pub fn map(file: &fs::File, len: u64) -> Option<super::Mmap> {
        let len = usize::try_from(len).ok()?;
        if len == 0 {
            return None;
        }
        let fd = file.as_raw_fd();
        if fd < 0 {
            return None;
        }
        let ret = unsafe { syscall6(SYS_MMAP, 0, len, PROT_READ, MAP_PRIVATE, fd as usize, 0) };
        if is_err(ret) {
            return None;
        }
        Some(super::Mmap {
            ptr: ret as *mut u8,
            len,
        })
    }

    pub unsafe fn unmap(ptr: *mut u8, len: usize) {
        if !ptr.is_null() && len > 0 {
            let _ = syscall6(SYS_MUNMAP, ptr as usize, len, 0, 0, 0, 0);
        }
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod sys {
    use std::fs;

    /// No mapping support on this platform: the store always uses the
    /// positioned-read fallback.
    pub fn map(_file: &fs::File, _len: u64) -> Option<super::Mmap> {
        None
    }

    pub unsafe fn unmap(_ptr: *mut u8, _len: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    #[test]
    fn maps_file_contents_read_only() {
        let path = std::env::temp_dir().join(format!(
            "alice-mmap-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let payload: Vec<u8> = (0..=255u8).cycle().take(8192).collect();
        {
            let mut f = fs::File::create(&path).expect("create");
            f.write_all(&payload).expect("write");
        }
        let f = fs::File::open(&path).expect("open");
        match Mmap::map(&f, payload.len() as u64) {
            Some(map) => {
                assert_eq!(map.len(), payload.len());
                assert_eq!(&map[..], &payload[..], "mapped bytes match the file");
            }
            None => {
                // Mapping must only be absent on fallback platforms.
                let real_syscalls = cfg!(all(
                    target_os = "linux",
                    any(target_arch = "x86_64", target_arch = "aarch64")
                ));
                assert!(!real_syscalls, "mapping failed on a supported platform");
            }
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn empty_files_do_not_map() {
        let path = std::env::temp_dir().join(format!(
            "alice-mmap-empty-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::File::create(&path).expect("create");
        let f = fs::File::open(&path).expect("open");
        assert!(Mmap::map(&f, 0).is_none());
        let _ = fs::remove_file(&path);
    }
}
