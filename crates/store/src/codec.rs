//! Compact self-describing binary codec for store payloads.
//!
//! A [`Writer`] produces a flat byte buffer from primitives; a [`Reader`]
//! consumes one, failing with a [`CodecError`] (never panicking) on any
//! truncation or malformed value, so a corrupted record degrades to a
//! cache miss instead of an error. Strings are length-prefixed UTF-8;
//! interned [`Symbol`]s serialize as their strings and re-intern on load
//! — symbol identity is process-local and must never reach disk.

use alice_intern::Symbol;
use std::fmt;

/// A decode failure: the payload is truncated or malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// What was being decoded when the payload ran out or made no sense.
    pub context: &'static str,
}

impl CodecError {
    pub(crate) fn new(context: &'static str) -> CodecError {
        CodecError { context }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed store record ({})", self.context)
    }
}

impl std::error::Error for CodecError {}

/// Serializes primitives into a growable byte buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The serialized bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` by bit pattern (exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends a length-prefixed string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends an interned symbol as its string.
    pub fn put_symbol(&mut self, s: Symbol) {
        self.put_str(s.as_str());
    }

    /// Appends a bit vector, packed 8 bits per byte.
    pub fn put_bits(&mut self, bits: &[bool]) {
        self.put_usize(bits.len());
        let mut byte = 0u8;
        for (i, &b) in bits.iter().enumerate() {
            if b {
                byte |= 1 << (i % 8);
            }
            if i % 8 == 7 {
                self.buf.push(byte);
                byte = 0;
            }
        }
        if !bits.len().is_multiple_of(8) {
            self.buf.push(byte);
        }
    }
}

/// Deserializes primitives from a byte slice, tracking its position.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::new(what))?;
        if end > self.buf.len() {
            return Err(CodecError::new(what));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a `usize`, rejecting lengths that cannot fit in memory
    /// anyway (a cheap sanity bound against corrupted length prefixes).
    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| CodecError::new("usize"))
    }

    /// Reads an `f64` by bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a bool (exactly 0 or 1; anything else is corruption).
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::new("bool")),
        }
    }

    /// Reads a length-prefixed string.
    pub fn get_str(&mut self) -> Result<&'a str, CodecError> {
        let len = self.get_usize()?;
        let b = self.take(len, "string body")?;
        std::str::from_utf8(b).map_err(|_| CodecError::new("string utf-8"))
    }

    /// Reads a symbol (re-interned in this process).
    pub fn get_symbol(&mut self) -> Result<Symbol, CodecError> {
        Ok(Symbol::intern(self.get_str()?))
    }

    /// Reads a packed bit vector.
    pub fn get_bits(&mut self) -> Result<Vec<bool>, CodecError> {
        let len = self.get_usize()?;
        let bytes = self.take(len.div_ceil(8), "bit vector")?;
        Ok((0..len).map(|i| bytes[i / 8] >> (i % 8) & 1 == 1).collect())
    }

    /// Reads a `len`-prefixed sequence via `item`, bounding `len` by the
    /// bytes actually remaining so a corrupted prefix cannot trigger a
    /// huge allocation.
    pub fn get_seq<T>(
        &mut self,
        min_item_bytes: usize,
        mut item: impl FnMut(&mut Reader<'a>) -> Result<T, CodecError>,
    ) -> Result<Vec<T>, CodecError> {
        let len = self.get_usize()?;
        let remaining = self.buf.len() - self.pos;
        if len.saturating_mul(min_item_bytes.max(1)) > remaining {
            return Err(CodecError::new("sequence length"));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(item(self)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.125);
        w.put_bool(true);
        w.put_str("héllo");
        w.put_symbol(Symbol::intern("top.u0"));
        w.put_bits(&[true, false, true, true, false, false, false, true, true]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f64().unwrap(), -0.125);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(r.get_symbol().unwrap(), Symbol::intern("top.u0"));
        assert_eq!(
            r.get_bits().unwrap(),
            vec![true, false, true, true, false, false, false, true, true]
        );
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        w.put_str("abcdef");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(r.get_str().is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_length_prefix_is_rejected() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX); // absurd sequence length
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.get_seq(1, |r| r.get_u8()).is_err());
        let mut r2 = Reader::new(&bytes);
        assert!(r2.get_str().is_err());
    }

    #[test]
    fn bad_bool_and_utf8_are_rejected() {
        let mut r = Reader::new(&[2]);
        assert!(r.get_bool().is_err());
        let mut w = Writer::new();
        w.put_usize(2);
        let mut bytes = w.into_bytes();
        bytes.extend_from_slice(&[0xff, 0xfe]);
        let mut r = Reader::new(&bytes);
        assert!(r.get_str().is_err());
    }
}
