//! Serializers for the artifact types the `DesignDb` oracles cache:
//! elaborated [`Netlist`]s, LUT-mapped [`MappedNetlist`]s, and fabric
//! characterizations ([`EfpgaImpl`], or the infeasibility message).
//!
//! Every decoder validates structurally — index references are bounds-
//! checked, enum tags are exhaustive — so a corrupted (but checksum-
//! passing) payload yields a [`CodecError`], never a panic downstream.
//! Interned names serialize as strings and re-intern on load.

use crate::codec::{CodecError, Reader, Writer};
use alice_fabric::pack::{Clb, LogicElement, Packing};
use alice_fabric::{Bitstream, EfpgaImpl, FabricSize};
use alice_netlist::ir::{Lit, Netlist, Node, NodeId};
use alice_netlist::lutmap::{Lut, MappedDff, MappedNetlist, MappedSrc};

fn bad(context: &'static str) -> CodecError {
    CodecError { context }
}

/// Writes a `Result<(), message>`-style tag: `1` then the value follows,
/// or `0` then the error string follows.
pub fn write_result_tag(w: &mut Writer, ok: bool) {
    w.put_u8(ok as u8);
}

/// Reads the tag written by [`write_result_tag`].
pub fn read_result_tag(r: &mut Reader<'_>) -> Result<bool, CodecError> {
    match r.get_u8()? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(bad("result tag")),
    }
}

// ---------------------------------------------------------------- netlist

/// Serializes an elaborated netlist.
pub fn write_netlist(w: &mut Writer, n: &Netlist) {
    w.put_str(&n.name);
    w.put_usize(n.nodes().len());
    for node in n.nodes() {
        match node {
            Node::Const0 => w.put_u8(0),
            Node::Input { name } => {
                w.put_u8(1);
                w.put_symbol(*name);
            }
            Node::And(a, b) => {
                w.put_u8(2);
                w.put_u32(a.raw());
                w.put_u32(b.raw());
            }
            Node::Xor(a, b) => {
                w.put_u8(3);
                w.put_u32(a.raw());
                w.put_u32(b.raw());
            }
            Node::Mux { s, t, e } => {
                w.put_u8(4);
                w.put_u32(s.raw());
                w.put_u32(t.raw());
                w.put_u32(e.raw());
            }
            Node::Dff { d, init, name } => {
                w.put_u8(5);
                w.put_u32(d.raw());
                w.put_bool(*init);
                w.put_symbol(*name);
            }
            Node::Buf(a) => {
                w.put_u8(6);
                w.put_u32(a.raw());
            }
        }
    }
    w.put_usize(n.inputs.len());
    for (name, bits) in &n.inputs {
        w.put_symbol(*name);
        w.put_usize(bits.len());
        for b in bits {
            w.put_u32(b.0);
        }
    }
    w.put_usize(n.outputs.len());
    for (name, bits) in &n.outputs {
        w.put_symbol(*name);
        w.put_usize(bits.len());
        for b in bits {
            w.put_u32(b.raw());
        }
    }
}

/// Deserializes a netlist written by [`write_netlist`].
pub fn read_netlist(r: &mut Reader<'_>) -> Result<Netlist, CodecError> {
    let name = r.get_str()?.to_string();
    let node_count = r.get_usize()?;
    // A literal is valid when its node index stays inside the list.
    let lit = |r: &mut Reader<'_>| -> Result<Lit, CodecError> {
        let raw = r.get_u32()?;
        let node = raw >> 1;
        if node as usize >= node_count {
            return Err(bad("literal node index"));
        }
        Ok(Lit::new(NodeId(node), raw & 1 == 1))
    };
    let mut nodes = Vec::new();
    // Not get_seq: node_count is validated per-item by the tag reads.
    if node_count > u32::MAX as usize {
        return Err(bad("node count"));
    }
    for i in 0..node_count {
        let node = match r.get_u8()? {
            0 => Node::Const0,
            1 => Node::Input {
                name: r.get_symbol()?,
            },
            2 => Node::And(lit(r)?, lit(r)?),
            3 => Node::Xor(lit(r)?, lit(r)?),
            4 => Node::Mux {
                s: lit(r)?,
                t: lit(r)?,
                e: lit(r)?,
            },
            5 => Node::Dff {
                d: lit(r)?,
                init: r.get_bool()?,
                name: r.get_symbol()?,
            },
            6 => Node::Buf(lit(r)?),
            _ => return Err(bad("node tag")),
        };
        if i == 0 && !matches!(node, Node::Const0) {
            return Err(bad("node 0 must be the constant"));
        }
        nodes.push(node);
    }
    let node_id = |r: &mut Reader<'_>| -> Result<NodeId, CodecError> {
        let id = r.get_u32()?;
        if id as usize >= node_count {
            return Err(bad("input node index"));
        }
        Ok(NodeId(id))
    };
    let inputs = r.get_seq(8, |r| {
        let name = r.get_symbol()?;
        let bits = r.get_seq(4, node_id)?;
        Ok((name, bits))
    })?;
    let outputs = r.get_seq(8, |r| {
        let name = r.get_symbol()?;
        let bits = r.get_seq(4, |r| lit(r))?;
        Ok((name, bits))
    })?;
    Ok(Netlist::from_parts(name, nodes, inputs, outputs))
}

// ----------------------------------------------------------- mapped netlist

fn write_src(w: &mut Writer, s: &MappedSrc) {
    match s {
        MappedSrc::Const(b) => {
            w.put_u8(0);
            w.put_bool(*b);
        }
        MappedSrc::Pi(i) => {
            w.put_u8(1);
            w.put_usize(*i);
        }
        MappedSrc::Lut(i) => {
            w.put_u8(2);
            w.put_usize(*i);
        }
        MappedSrc::Dff(i) => {
            w.put_u8(3);
            w.put_usize(*i);
        }
    }
}

fn read_src(
    r: &mut Reader<'_>,
    pis: usize,
    luts: usize,
    dffs: usize,
) -> Result<MappedSrc, CodecError> {
    let check = |i: usize, bound: usize, what: &'static str| {
        if i < bound {
            Ok(i)
        } else {
            Err(bad(what))
        }
    };
    Ok(match r.get_u8()? {
        0 => MappedSrc::Const(r.get_bool()?),
        1 => MappedSrc::Pi(check(r.get_usize()?, pis, "pi index")?),
        2 => MappedSrc::Lut(check(r.get_usize()?, luts, "lut index")?),
        3 => MappedSrc::Dff(check(r.get_usize()?, dffs, "dff index")?),
        _ => Err(bad("mapped-src tag"))?,
    })
}

/// Serializes a LUT-mapped network.
pub fn write_mapped(w: &mut Writer, m: &MappedNetlist) {
    w.put_str(&m.name);
    w.put_u32(m.k);
    w.put_usize(m.input_names.len());
    for n in &m.input_names {
        w.put_symbol(*n);
    }
    w.put_usize(m.inputs.len());
    for (name, idxs) in &m.inputs {
        w.put_symbol(*name);
        w.put_usize(idxs.len());
        for &i in idxs {
            w.put_usize(i);
        }
    }
    w.put_usize(m.luts.len());
    for lut in &m.luts {
        w.put_u64(lut.tt);
        w.put_usize(lut.inputs.len());
        for s in &lut.inputs {
            write_src(w, s);
        }
    }
    w.put_usize(m.dffs.len());
    for d in &m.dffs {
        write_src(w, &d.d);
        w.put_bool(d.init);
    }
    w.put_usize(m.dff_names.len());
    for n in &m.dff_names {
        w.put_symbol(*n);
    }
    w.put_usize(m.outputs.len());
    for (name, bits) in &m.outputs {
        w.put_symbol(*name);
        w.put_usize(bits.len());
        for s in bits {
            write_src(w, s);
        }
    }
}

/// Deserializes a network written by [`write_mapped`].
pub fn read_mapped(r: &mut Reader<'_>) -> Result<MappedNetlist, CodecError> {
    let name = r.get_str()?.to_string();
    let k = r.get_u32()?;
    let input_names = r.get_seq(8, |r| r.get_symbol())?;
    let pis = input_names.len();
    let inputs = r.get_seq(8, |r| {
        let name = r.get_symbol()?;
        let idxs = r.get_seq(8, |r| {
            let i = r.get_usize()?;
            if i >= pis {
                return Err(bad("input pi index"));
            }
            Ok(i)
        })?;
        Ok((name, idxs))
    })?;
    let lut_frames = r.get_seq(16, |r| {
        let tt = r.get_u64()?;
        // Sources may reference later LUT indices only through DFFs, but
        // the index bound needs the final count — collect raw first.
        let srcs = r.get_seq(2, |r| {
            let tag = r.get_u8()?;
            let v = match tag {
                0 => r.get_bool()? as usize,
                1..=3 => r.get_usize()?,
                _ => return Err(bad("mapped-src tag")),
            };
            Ok((tag, v))
        })?;
        Ok((tt, srcs))
    })?;
    let lut_count = lut_frames.len();
    let resolve = |(tag, v): (u8, usize), dffs: usize| -> Result<MappedSrc, CodecError> {
        Ok(match tag {
            0 => MappedSrc::Const(v != 0),
            1 if v < pis => MappedSrc::Pi(v),
            2 if v < lut_count => MappedSrc::Lut(v),
            3 if v < dffs => MappedSrc::Dff(v),
            _ => return Err(bad("mapped-src index")),
        })
    };
    let dff_frames = r.get_seq(3, |r| {
        let tag = r.get_u8()?;
        let v = match tag {
            0 => r.get_bool()? as usize,
            1..=3 => r.get_usize()?,
            _ => return Err(bad("mapped-src tag")),
        };
        let init = r.get_bool()?;
        Ok(((tag, v), init))
    })?;
    let dff_count = dff_frames.len();
    let luts = lut_frames
        .into_iter()
        .map(|(tt, srcs)| {
            let inputs = srcs
                .into_iter()
                .map(|f| resolve(f, dff_count))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Lut { inputs, tt })
        })
        .collect::<Result<Vec<_>, CodecError>>()?;
    let dffs = dff_frames
        .into_iter()
        .map(|(f, init)| {
            Ok(MappedDff {
                d: resolve(f, dff_count)?,
                init,
            })
        })
        .collect::<Result<Vec<_>, CodecError>>()?;
    let dff_names = r.get_seq(8, |r| r.get_symbol())?;
    if dff_names.len() != dff_count {
        return Err(bad("dff name count"));
    }
    let outputs = r.get_seq(8, |r| {
        let name = r.get_symbol()?;
        let bits = r.get_seq(2, |r| read_src(r, pis, lut_count, dff_count))?;
        Ok((name, bits))
    })?;
    Ok(MappedNetlist {
        name,
        k,
        input_names,
        inputs,
        luts,
        dffs,
        dff_names,
        outputs,
    })
}

// ------------------------------------------------------------------ fabric

/// Serializes a fabric characterization.
pub fn write_efpga(w: &mut Writer, e: &EfpgaImpl) {
    w.put_u32(e.size.width);
    w.put_u32(e.size.height);
    w.put_usize(e.packing.le_count);
    w.put_usize(e.packing.clbs.len());
    for clb in &e.packing.clbs {
        w.put_usize(clb.les.len());
        for le in &clb.les {
            let opt = |w: &mut Writer, v: Option<usize>| match v {
                Some(i) => {
                    w.put_u8(1);
                    w.put_usize(i);
                }
                None => w.put_u8(0),
            };
            opt(w, le.lut);
            opt(w, le.dff);
        }
    }
    w.put_bits(e.bitstream.as_slice());
    w.put_usize(e.bitstream.lut_bits());
    w.put_usize(e.bitstream.routing_bits());
    w.put_f64(e.io_util);
    w.put_f64(e.clb_util);
    w.put_f64(e.cost.area_um2);
    w.put_f64(e.cost.critical_path_ns);
    w.put_f64(e.cost.power_uw);
    w.put_u32(e.depth);
    w.put_u32(e.io_used);
}

/// Deserializes a characterization written by [`write_efpga`].
pub fn read_efpga(r: &mut Reader<'_>) -> Result<EfpgaImpl, CodecError> {
    let size = FabricSize {
        width: r.get_u32()?,
        height: r.get_u32()?,
    };
    let le_count = r.get_usize()?;
    let clbs = r.get_seq(8, |r| {
        let les = r.get_seq(2, |r| {
            let opt = |r: &mut Reader<'_>| -> Result<Option<usize>, CodecError> {
                match r.get_u8()? {
                    0 => Ok(None),
                    1 => Ok(Some(r.get_usize()?)),
                    _ => Err(bad("option tag")),
                }
            };
            Ok(LogicElement {
                lut: opt(r)?,
                dff: opt(r)?,
            })
        })?;
        Ok(Clb { les })
    })?;
    let bits = r.get_bits()?;
    let lut_bits = r.get_usize()?;
    let routing_bits = r.get_usize()?;
    if lut_bits.checked_add(routing_bits) != Some(bits.len()) {
        return Err(bad("bitstream split"));
    }
    let bitstream = Bitstream::from_parts(bits, lut_bits, routing_bits);
    let io_util = r.get_f64()?;
    let clb_util = r.get_f64()?;
    let cost = alice_fabric::cost::FabricCost {
        area_um2: r.get_f64()?,
        critical_path_ns: r.get_f64()?,
        power_uw: r.get_f64()?,
    };
    let depth = r.get_u32()?;
    let io_used = r.get_u32()?;
    Ok(EfpgaImpl {
        size,
        packing: Packing { clbs, le_count },
        bitstream,
        io_util,
        clb_util,
        cost,
        depth,
        io_used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use alice_fabric::{create_efpga, FabricArch};
    use alice_netlist::elaborate::elaborate;
    use alice_netlist::lutmap::map_luts;
    use alice_verilog::parse_source;

    const SRC: &str = r#"
module m(input wire clk, input wire [7:0] a, input wire [7:0] b,
         output wire [7:0] y, output reg [7:0] q);
  assign y = (a & b) ^ (a + b);
  always @(posedge clk) q <= y + q;
endmodule
"#;

    fn substrate() -> (Netlist, MappedNetlist, EfpgaImpl) {
        let f = parse_source(SRC).expect("parse");
        let n = elaborate(&f, "m").expect("elaborate");
        let m = map_luts(&n, 4).expect("map");
        let e = create_efpga(&m, &FabricArch::default()).expect("fits");
        (n, m, e)
    }

    #[test]
    fn netlist_round_trips_exactly() {
        let (n, _, _) = substrate();
        let mut w = Writer::new();
        write_netlist(&mut w, &n);
        let bytes = w.into_bytes();
        let back = read_netlist(&mut Reader::new(&bytes)).expect("decode");
        assert_eq!(back.name, n.name);
        assert_eq!(back.len(), n.len());
        assert_eq!(back.structural_hash(), n.structural_hash());
        assert_eq!(
            back.structural_hash_namefree(),
            n.structural_hash_namefree()
        );
        // And the rebuilt netlist maps to the identical network.
        let m1 = map_luts(&n, 4).expect("map");
        let m2 = map_luts(&back, 4).expect("map");
        assert_eq!(m1.structural_hash(), m2.structural_hash());
    }

    #[test]
    fn mapped_round_trips_exactly() {
        let (_, m, _) = substrate();
        let mut w = Writer::new();
        write_mapped(&mut w, &m);
        let bytes = w.into_bytes();
        let back = read_mapped(&mut Reader::new(&bytes)).expect("decode");
        assert_eq!(back.name, m.name);
        assert_eq!(back.k, m.k);
        assert_eq!(back.luts, m.luts);
        assert_eq!(back.dffs, m.dffs);
        assert_eq!(back.dff_names, m.dff_names);
        assert_eq!(back.outputs, m.outputs);
        assert_eq!(back.structural_hash(), m.structural_hash());
    }

    #[test]
    fn efpga_round_trips_exactly() {
        let (_, _, e) = substrate();
        let mut w = Writer::new();
        write_efpga(&mut w, &e);
        let bytes = w.into_bytes();
        let back = read_efpga(&mut Reader::new(&bytes)).expect("decode");
        assert_eq!(back.size, e.size);
        assert_eq!(back.packing.clbs, e.packing.clbs);
        assert_eq!(back.packing.le_count, e.packing.le_count);
        assert_eq!(back.bitstream, e.bitstream);
        assert_eq!(back.bitstream.lut_bits(), e.bitstream.lut_bits());
        assert_eq!(back.io_util, e.io_util);
        assert_eq!(back.clb_util, e.clb_util);
        assert_eq!(back.cost, e.cost);
        assert_eq!(back.depth, e.depth);
        assert_eq!(back.io_used, e.io_used);
    }

    #[test]
    fn every_truncation_fails_cleanly() {
        let (n, m, e) = substrate();
        let mut w = Writer::new();
        write_netlist(&mut w, &n);
        let nb = w.into_bytes();
        let mut w = Writer::new();
        write_mapped(&mut w, &m);
        let mb = w.into_bytes();
        let mut w = Writer::new();
        write_efpga(&mut w, &e);
        let eb = w.into_bytes();
        for cut in (0..nb.len()).step_by(7) {
            assert!(read_netlist(&mut Reader::new(&nb[..cut])).is_err());
        }
        for cut in (0..mb.len()).step_by(7) {
            assert!(read_mapped(&mut Reader::new(&mb[..cut])).is_err());
        }
        for cut in (0..eb.len()).step_by(7) {
            assert!(read_efpga(&mut Reader::new(&eb[..cut])).is_err());
        }
    }

    #[test]
    fn out_of_range_indices_are_rejected() {
        let (_, m, _) = substrate();
        let mut w = Writer::new();
        write_mapped(&mut w, &m);
        let bytes = w.into_bytes();
        // A decode of the pristine bytes works; scan single-bit flips in
        // the tail section and require error-or-valid, never a panic.
        assert!(read_mapped(&mut Reader::new(&bytes)).is_ok());
        for i in (0..bytes.len()).step_by(11) {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0x10;
            let _ = read_mapped(&mut Reader::new(&mutated));
        }
    }
}
