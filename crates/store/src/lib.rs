//! # alice-store
//!
//! A persistent, crash-safe, content-addressed artifact store: the
//! on-disk layer under `alice_core::db::DesignDb` and the CEC proof
//! cache. The in-memory `DesignDb` already makes repeated
//! characterizations free *within* a process; this crate makes them free
//! *across* processes, so a second `alice` CLI run (or an ARIANNA-style
//! parameter sweep of many invocations) starts warm.
//!
//! Layout: one **segment file per artifact kind** ([`Kind::Netlist`],
//! [`Kind::LutMap`], [`Kind::Fabric`], [`Kind::Cec`], [`Kind::Lemma`])
//! under a store directory, each a flat sequence of records
//! `key(16) · payload_len(4) · payload · checksum(16)`, where the
//! checksum is a [`StableHasher`] digest of the **key and payload**
//! (so a key bit-flip cannot re-home a valid payload under the wrong
//! content address); files open with a `magic · format-version · kind`
//! header.
//!
//! **Opens are lazy.** [`Store::open`] scans only the record framing,
//! building an offset index `key → (file offset, len)` without reading
//! a single payload byte — O(records), not O(bytes). The payload is
//! `pread` from the segment and checksum-verified on the first
//! [`Store::get`] of that key, then memoized in the slot. Each segment
//! keeps its open-time file handle, so a concurrent writer's
//! atomic-rename commit never invalidates this handle's offsets: they
//! keep reading the original inode. A flush rewrites any segment with
//! new records to a tempfile, commits it with an atomic rename, and
//! fsyncs the store directory so the rename itself is durable; a crash
//! can lose the newest records but never corrupt existing ones
//! (read-only runs rewrite nothing but the access-stamp sidecar).
//!
//! **Robustness contract:** a corrupt, truncated, or version-mismatched
//! record (or whole file) silently degrades to a cache miss — the flow
//! recomputes and overwrites; nothing in this crate turns bad disk state
//! into an error for the caller. Framing damage (bad header, truncated
//! tail) is caught at open; payload damage is caught at get-time, when
//! the record is first verified. Bumping [`FORMAT_VERSION`] (v1 → v2
//! folded the key into the checksum) invalidates every existing store:
//! old files are treated as empty and recomputed, never misread.
//!
//! Eviction is explicit: [`Store::gc`] compacts to a byte budget,
//! dropping least-recently-accessed records first (access stamps live in
//! a sidecar index, so read-mostly runs never rewrite hot segments).

pub mod artifact;
pub mod codec;

pub use codec::{CodecError, Reader, Writer};

use alice_intern::StableHasher;
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A 128-bit content-addressed key (the same shape `DesignDb` uses).
pub type Key = (u64, u64);

/// The magic bytes opening every store file.
pub const MAGIC: [u8; 8] = *b"ALICSTOR";

/// The on-disk format version. Bumping it invalidates every existing
/// store (old files are treated as empty and rewritten), which is the
/// intended migration story: recompute, never misread. Version 2 folded
/// the record key into the per-record checksum and added the lemma
/// segment.
pub const FORMAT_VERSION: u32 = 2;

/// Fixed per-record framing overhead (key + length + checksum).
const RECORD_OVERHEAD: u64 = 16 + 4 + 16;

/// The artifact kinds the store segregates into segment files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// Elaborated gate-level netlists, keyed by module source-closure
    /// fingerprint.
    Netlist,
    /// LUT-mapped networks, keyed by netlist structural hash + k.
    LutMap,
    /// Fabric characterizations (or their infeasibility verdicts), keyed
    /// by name-free merged-network hash + architecture parameters.
    Fabric,
    /// CEC proof results, keyed by the name-free miter fingerprint
    /// (netlist pair structure + pinned key bits).
    Cec,
    /// SAT-sweep equality lemmas, keyed by the canonical pair of
    /// structural cone hashes they equate — the sub-miter cache that
    /// lets a novel miter over familiar structures start warm.
    Lemma,
}

impl Kind {
    /// Every kind, in segment order.
    pub const ALL: [Kind; 5] = [
        Kind::Netlist,
        Kind::LutMap,
        Kind::Fabric,
        Kind::Cec,
        Kind::Lemma,
    ];

    /// The kind's segment file name inside the store directory.
    pub fn file_name(self) -> &'static str {
        match self {
            Kind::Netlist => "netlists.seg",
            Kind::LutMap => "lutmaps.seg",
            Kind::Fabric => "fabrics.seg",
            Kind::Cec => "cec.seg",
            Kind::Lemma => "lemmas.seg",
        }
    }

    /// Short label for stats output.
    pub fn label(self) -> &'static str {
        match self {
            Kind::Netlist => "netlist",
            Kind::LutMap => "lutmap",
            Kind::Fabric => "fabric",
            Kind::Cec => "cec",
            Kind::Lemma => "lemma",
        }
    }

    fn index(self) -> usize {
        match self {
            Kind::Netlist => 0,
            Kind::LutMap => 1,
            Kind::Fabric => 2,
            Kind::Cec => 3,
            Kind::Lemma => 4,
        }
    }

    fn tag(self) -> u8 {
        self.index() as u8
    }

    fn from_tag(t: u8) -> Option<Kind> {
        Kind::ALL.get(t as usize).copied()
    }
}

/// Where a record's payload currently lives.
#[derive(Debug)]
enum Payload {
    /// Read and checksum-verified (or inserted by this handle).
    Loaded(Arc<Vec<u8>>),
    /// Indexed at open but not yet read: `offset` is the payload's byte
    /// position in the segment's open-time file handle. Verified (and
    /// memoized to `Loaded`) on first get; a failed verify drops the
    /// record — the get-time arm of the degrade-to-miss contract.
    OnDisk { offset: u64 },
}

#[derive(Debug)]
struct RecordSlot {
    payload: Payload,
    /// Payload length in bytes (known from the framing even before the
    /// payload itself is read).
    len: u32,
    /// Logical last-access stamp (monotone across open/flush cycles).
    stamp: u64,
}

#[derive(Debug, Default)]
struct KindState {
    records: HashMap<Key, RecordSlot>,
    /// The segment's open-time file handle. Lazy reads go through this
    /// handle, not the path: a concurrent writer commits by renaming a
    /// new file over the path, and the held handle keeps the original
    /// inode — and therefore this index's offsets — alive and valid.
    file: Option<Arc<fs::File>>,
    /// True when records changed since the last flush (segment rewrite
    /// needed; access-stamp bumps alone only dirty the sidecar index).
    dirty: bool,
    /// Keys this handle deliberately dropped (gc / opportunistic
    /// compaction) since the last flush: the flush-time merge must not
    /// resurrect them from the on-disk copy. Cleared once the compacted
    /// segment is committed.
    evicted: std::collections::HashSet<Key>,
}

impl KindState {
    fn payload_bytes(&self) -> u64 {
        self.records
            .values()
            .map(|r| r.len as u64 + RECORD_OVERHEAD)
            .sum()
    }
}

#[derive(Debug, Default)]
struct Inner {
    kinds: [KindState; 5],
    /// Logical access clock; starts above every loaded stamp.
    clock: u64,
    access_dirty: bool,
    /// Opportunistic-compaction budget: when set, a flush that finds the
    /// store above **2×** this byte count LRU-compacts it back down to
    /// the budget before committing (see [`Store::set_compact_budget`]).
    compact_budget: Option<u64>,
}

/// Per-kind and total size statistics (see [`Store::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Records of this kind.
    pub records: usize,
    /// Bytes of this kind (payload + framing overhead).
    pub bytes: u64,
}

/// Snapshot of the store's contents.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Per-kind statistics, in [`Kind::ALL`] order.
    pub kinds: [KindStats; 5],
}

impl StoreStats {
    /// Total records across all kinds.
    pub fn records(&self) -> usize {
        self.kinds.iter().map(|k| k.records).sum()
    }

    /// Total bytes across all kinds.
    pub fn bytes(&self) -> u64 {
        self.kinds.iter().map(|k| k.bytes).sum()
    }
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (kind, s) in Kind::ALL.iter().zip(self.kinds.iter()) {
            writeln!(
                f,
                "{:<8} {:>7} record(s) {:>12} byte(s)",
                kind.label(),
                s.records,
                s.bytes
            )?;
        }
        write!(
            f,
            "{:<8} {:>7} record(s) {:>12} byte(s)",
            "total",
            self.records(),
            self.bytes()
        )
    }
}

/// What [`Store::gc`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Records kept.
    pub kept: usize,
    /// Records evicted (least-recently-accessed first).
    pub dropped: usize,
    /// Store bytes before compaction.
    pub bytes_before: u64,
    /// Store bytes after compaction.
    pub bytes_after: u64,
}

/// The persistent artifact store. Thread-safe: share it in an `Arc` and
/// call from any thread. Dropping the store flushes pending writes
/// (best-effort); call [`Store::flush`] for a checked commit.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    inner: Mutex<Inner>,
}

/// Process-wide tempfile sequence: two store handles on the *same*
/// directory (concurrent threads, or one store per db) must never pick
/// the same temp name, or one commit's rename steals the other's file.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl Store {
    /// Opens (creating if needed) the store at `dir`, building an
    /// in-memory **offset index** of every readable record. Only the
    /// record framing is scanned — payloads stay on disk until the
    /// first [`Store::get`] reads and verifies them — so open cost
    /// scales with the record count, not the stored bytes. Unreadable,
    /// corrupt, or version-mismatched files are treated as empty.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] only when the directory itself cannot be
    /// created — bad *contents* never error.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Store> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut inner = Inner::default();
        for kind in Kind::ALL {
            let path = dir.join(kind.file_name());
            if let Ok(file) = fs::File::open(&path) {
                if let Some(records) = index_segment(kind, &file) {
                    let state = &mut inner.kinds[kind.index()];
                    state.records = records;
                    state.file = Some(Arc::new(file));
                }
            }
        }
        // Access stamps from the sidecar index (missing entries stay 0 =
        // coldest, which is the right default for gc).
        let mut max_stamp = 0u64;
        if let Ok(bytes) = fs::read(dir.join("access.idx")) {
            if let Some(entries) = parse_access(&bytes) {
                for (kind, key, stamp) in entries {
                    if let Some(slot) = inner.kinds[kind.index()].records.get_mut(&key) {
                        slot.stamp = stamp;
                        max_stamp = max_stamp.max(stamp);
                    }
                }
            }
        }
        inner.clock = max_stamp + 1;
        Ok(Store {
            dir,
            inner: Mutex::new(inner),
        })
    }

    /// The store's directory.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Looks `key` up, returning the stored payload and bumping its
    /// last-access stamp. A record still on disk is read and
    /// checksum-verified here (then memoized); a record that fails the
    /// read or the verify degrades to a miss — the caller recomputes,
    /// exactly as if the eager open had dropped it.
    pub fn get(&self, kind: Kind, key: Key) -> Option<Arc<Vec<u8>>> {
        let mut inner = self.inner.lock().expect("store lock");
        let clock = inner.clock;
        let state = &mut inner.kinds[kind.index()];
        let file = state.file.clone();
        let slot = state.records.get_mut(&key)?;
        let bytes = match &slot.payload {
            Payload::Loaded(bytes) => bytes.clone(),
            Payload::OnDisk { offset } => {
                match file.and_then(|f| read_verified(&f, key, *offset, slot.len)) {
                    Some(payload) => {
                        let payload = Arc::new(payload);
                        slot.payload = Payload::Loaded(payload.clone());
                        payload
                    }
                    None => {
                        // Verify-on-get: the record's payload fails its
                        // read or checksum, so it degrades to a miss.
                        // Dropped without a tombstone and without
                        // dirtying the segment: read-only runs never
                        // rewrite, and a future flush simply omits it.
                        state.records.remove(&key);
                        return None;
                    }
                }
            }
        };
        slot.stamp = clock;
        inner.clock += 1;
        inner.access_dirty = true;
        Some(bytes)
    }

    /// Inserts (or overwrites) a record. The write is committed to disk
    /// on the next [`Store::flush`] (or drop).
    pub fn put(&self, kind: Kind, key: Key, payload: Vec<u8>) {
        let mut inner = self.inner.lock().expect("store lock");
        let stamp = inner.clock;
        inner.clock += 1;
        inner.access_dirty = true;
        let state = &mut inner.kinds[kind.index()];
        state.evicted.remove(&key);
        let len = payload.len() as u32;
        state.records.insert(
            key,
            RecordSlot {
                payload: Payload::Loaded(Arc::new(payload)),
                len,
                stamp,
            },
        );
        state.dirty = true;
    }

    /// Sets (or clears) the opportunistic-compaction budget: whenever a
    /// [`Store::flush`] finds the store holding more than **twice**
    /// `budget_bytes`, it LRU-compacts down to `budget_bytes` before
    /// committing — long-running sweeps stay bounded without an explicit
    /// [`Store::gc`]. The 2× slack keeps steady-state flushes cheap: a
    /// store hovering near its budget is not re-compacted on every
    /// commit.
    pub fn set_compact_budget(&self, budget_bytes: Option<u64>) {
        self.inner.lock().expect("store lock").compact_budget = budget_bytes;
    }

    /// Current contents summary. Record counts and byte totals come
    /// from the offset index, so stats never force payload reads.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().expect("store lock");
        let mut stats = StoreStats::default();
        for kind in Kind::ALL {
            let state = &inner.kinds[kind.index()];
            stats.kinds[kind.index()] = KindStats {
                records: state.records.len(),
                bytes: state.payload_bytes(),
            };
        }
        stats
    }

    /// Commits pending records and access stamps to disk: each dirty
    /// segment is **merged** with its current on-disk copy (records a
    /// concurrent writer committed since this handle opened are kept,
    /// this handle's records win on key conflicts, deliberately-evicted
    /// keys stay gone), then rewritten to a tempfile and atomically
    /// renamed over the old one. Two simultaneous processes over one
    /// store directory therefore both contribute their records — the
    /// last flush unions instead of overwriting.
    ///
    /// With a compaction budget set ([`Store::set_compact_budget`]), a
    /// flush that finds the merged store above 2× the budget LRU-compacts
    /// it down to the budget before committing.
    ///
    /// # Errors
    ///
    /// Returns the first [`io::Error`] hit while writing; the in-memory
    /// state stays intact, so a retry is safe.
    pub fn flush(&self) -> io::Result<()> {
        self.flush_impl(None).map(|_| ())
    }

    /// The engine behind [`Store::flush`] and [`Store::gc`]:
    /// merge → (maybe) evict → commit, under one lock. `force_budget`
    /// compacts unconditionally (gc); otherwise the configured
    /// [`Store::set_compact_budget`] applies with its 2× trigger.
    fn flush_impl(&self, force_budget: Option<u64>) -> io::Result<Option<GcReport>> {
        let mut inner = self.inner.lock().expect("store lock");
        // Merge pass. A compaction may evict from — and therefore
        // rewrite — ANY kind, so when one can run, every kind must be
        // merged first: rewriting a segment from this handle's stale
        // open-time snapshot would silently drop a concurrent writer's
        // records. Without a possible compaction, only dirty segments
        // are rewritten, so only they need the merge. Merging alone
        // never marks a kind dirty (the merged view equals the disk
        // content there).
        let may_compact = force_budget.is_some() || inner.compact_budget.is_some();
        for kind in Kind::ALL {
            if !may_compact && !inner.kinds[kind.index()].dirty {
                continue;
            }
            if let Ok(bytes) = fs::read(self.dir.join(kind.file_name())) {
                let mut disk = KindState::default();
                load_segment(kind, &bytes, &mut disk);
                let state = &mut inner.kinds[kind.index()];
                for (key, slot) in disk.records {
                    // Foreign records arrive with stamp 0 (coldest): this
                    // handle never read them, so they are first out.
                    if !state.records.contains_key(&key) && !state.evicted.contains(&key) {
                        state.records.insert(key, slot);
                    }
                }
            }
        }
        // Eviction accounting runs on the merged union, so a gc (or an
        // auto-compaction) sees — and bounds — the store's true on-disk
        // contents, foreign records included.
        let report = if let Some(budget) = force_budget {
            Some(evict_to_budget(&mut inner, budget))
        } else {
            if let Some(budget) = inner.compact_budget {
                let total: u64 = Kind::ALL
                    .iter()
                    .map(|k| inner.kinds[k.index()].payload_bytes())
                    .sum();
                if total > budget.saturating_mul(2) {
                    evict_to_budget(&mut inner, budget);
                }
            }
            None
        };
        for kind in Kind::ALL {
            if !inner.kinds[kind.index()].dirty {
                continue;
            }
            // Rewriting a segment serializes every surviving record, so
            // lazily-indexed payloads must be read (and verified) now;
            // one that fails its verify degrades to a miss here exactly
            // as it would on get.
            materialize(&mut inner.kinds[kind.index()]);
            let bytes = serialize_segment(kind, &inner.kinds[kind.index()]);
            self.commit_file(kind.file_name(), &bytes)?;
            let state = &mut inner.kinds[kind.index()];
            state.dirty = false;
            // The compacted/merged file is committed; tombstones have
            // done their job.
            state.evicted.clear();
        }
        if inner.access_dirty {
            let bytes = serialize_access(&inner);
            self.commit_file("access.idx", &bytes)?;
            inner.access_dirty = false;
        }
        Ok(report)
    }

    /// Evicts least-recently-accessed records until the store fits in
    /// `budget_bytes`, then commits the compacted segments. The budget
    /// bounds the whole merged store: records a concurrent writer
    /// committed since this handle opened are folded in (and count)
    /// before eviction.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] when the compacted files cannot be
    /// written.
    pub fn gc(&self, budget_bytes: u64) -> io::Result<GcReport> {
        Ok(self
            .flush_impl(Some(budget_bytes))?
            .expect("forced budget always produces a report"))
    }

    /// Removes every record (in memory and on disk).
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] when a segment file cannot be removed.
    pub fn clear(&self) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("store lock");
        for kind in Kind::ALL {
            inner.kinds[kind.index()] = KindState::default();
            let path = self.dir.join(kind.file_name());
            match fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        match fs::remove_file(self.dir.join("access.idx")) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        inner.access_dirty = false;
        Ok(())
    }

    /// Writes `bytes` to a uniquely-named tempfile in the store
    /// directory, renames it over `name` (atomic on POSIX), then fsyncs
    /// the directory itself: the rename lives in directory metadata, so
    /// without the directory fsync a crash shortly after a flush could
    /// roll the commit back despite the crash-safety contract.
    fn commit_file(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!(".{name}.tmp.{}.{seq}", std::process::id()));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        if let Err(e) = fs::rename(&tmp, self.dir.join(name)) {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        fsync_dir(&self.dir)
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        // Best-effort commit; an explicit flush is the checked path.
        let _ = self.flush();
    }
}

/// Syncs a directory's metadata (the rename-durability half of an
/// atomic commit).
#[cfg(unix)]
fn fsync_dir(dir: &Path) -> io::Result<()> {
    fs::File::open(dir)?.sync_all()
}

/// Non-POSIX platforms cannot open a directory handle through std;
/// rename durability is best-effort there.
#[cfg(not(unix))]
fn fsync_dir(_dir: &Path) -> io::Result<()> {
    Ok(())
}

/// Positioned read that never moves a shared cursor (concurrent gets
/// through one handle must not race on a seek position).
#[cfg(unix)]
fn read_exact_at(file: &fs::File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

#[cfg(not(unix))]
fn read_exact_at(file: &fs::File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = file.try_clone()?;
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(buf)
}

/// The per-record checksum: a [`StableHasher`] digest over the key and
/// the payload. Folding the key in means a key bit-flip fails the
/// verify instead of silently re-homing a valid payload under the wrong
/// content address.
fn record_digest(key: Key, payload: &[u8]) -> (u64, u64) {
    let mut h = StableHasher::new();
    h.write_u64(key.0);
    h.write_u64(key.1);
    h.write(payload);
    h.finish()
}

/// Reads one record's payload + checksum at `offset` through the
/// segment's held handle and verifies the digest. `None` on any short
/// read or checksum mismatch — the get-time degrade-to-miss path.
fn read_verified(file: &fs::File, key: Key, offset: u64, len: u32) -> Option<Vec<u8>> {
    let len = len as usize;
    let mut buf = vec![0u8; len + 16];
    read_exact_at(file, &mut buf, offset).ok()?;
    let c0 = u64::from_le_bytes(buf[len..len + 8].try_into().expect("8"));
    let c1 = u64::from_le_bytes(buf[len + 8..].try_into().expect("8"));
    if record_digest(key, &buf[..len]) != (c0, c1) {
        return None;
    }
    buf.truncate(len);
    Some(buf)
}

/// Reads every lazily-indexed payload through the segment's held handle
/// so a rewrite can serialize it; records that fail the read or the
/// checksum are dropped (degrade to a miss, never serialize garbage).
fn materialize(state: &mut KindState) {
    let file = state.file.clone();
    let mut bad: Vec<Key> = Vec::new();
    for (key, slot) in state.records.iter_mut() {
        if let Payload::OnDisk { offset } = slot.payload {
            match file
                .as_deref()
                .and_then(|f| read_verified(f, *key, offset, slot.len))
            {
                Some(payload) => slot.payload = Payload::Loaded(Arc::new(payload)),
                None => bad.push(*key),
            }
        }
    }
    for key in bad {
        state.records.remove(&key);
    }
}

/// LRU-evicts records until the store fits in `budget_bytes`, recording
/// tombstones so the flush-time merge cannot resurrect the dropped keys.
/// The shared engine behind [`Store::gc`] and flush-time opportunistic
/// compaction.
fn evict_to_budget(inner: &mut Inner, budget_bytes: u64) -> GcReport {
    let mut report = GcReport::default();
    // (stamp, kind, key, size) over every record, newest first.
    let mut all: Vec<(u64, Kind, Key, u64)> = Vec::new();
    for kind in Kind::ALL {
        for (key, slot) in &inner.kinds[kind.index()].records {
            all.push((slot.stamp, kind, *key, slot.len as u64 + RECORD_OVERHEAD));
        }
    }
    report.bytes_before = all.iter().map(|&(_, _, _, s)| s).sum();
    all.sort_by(|a, b| {
        b.0.cmp(&a.0)
            .then(a.2.cmp(&b.2))
            .then(a.1.tag().cmp(&b.1.tag()))
    });
    let mut used = 0u64;
    for (_, kind, key, size) in all {
        if used + size <= budget_bytes {
            used += size;
            report.kept += 1;
        } else {
            let state = &mut inner.kinds[kind.index()];
            state.records.remove(&key);
            state.evicted.insert(key);
            state.dirty = true;
            report.dropped += 1;
        }
    }
    report.bytes_after = used;
    inner.access_dirty = true;
    report
}

/// Serializes one kind's records into segment-file bytes. Every slot
/// must already be materialized (a flush does this for dirty kinds).
fn serialize_segment(kind: Kind, state: &KindState) -> Vec<u8> {
    let mut out = Vec::with_capacity(state.payload_bytes() as usize + 16);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.push(kind.tag());
    // Deterministic record order (by key) so identical contents always
    // produce identical files.
    let mut keys: Vec<&Key> = state.records.keys().collect();
    keys.sort();
    for key in keys {
        let slot = &state.records[key];
        let bytes = match &slot.payload {
            Payload::Loaded(bytes) => bytes,
            Payload::OnDisk { .. } => unreachable!("flush materializes before serializing"),
        };
        out.extend_from_slice(&key.0.to_le_bytes());
        out.extend_from_slice(&key.1.to_le_bytes());
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(bytes);
        let (c0, c1) = record_digest(*key, bytes);
        out.extend_from_slice(&c0.to_le_bytes());
        out.extend_from_slice(&c1.to_le_bytes());
    }
    out
}

/// Scans a segment file's record framing into an offset index without
/// reading any payload bytes. `None` when the header is unreadable or
/// mismatched (the whole file is then treated as empty); a truncated
/// tail drops the remainder. Payload verification is deferred to
/// get-time ([`read_verified`]).
fn index_segment(kind: Kind, file: &fs::File) -> Option<HashMap<Key, RecordSlot>> {
    let size = file.metadata().ok()?.len();
    if size < 13 {
        return None;
    }
    let mut header = [0u8; 13];
    read_exact_at(file, &mut header, 0).ok()?;
    if header[..8] != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION || header[12] != kind.tag() {
        return None;
    }
    let mut records = HashMap::new();
    let mut pos = 13u64;
    let mut frame = [0u8; 20];
    while size - pos >= RECORD_OVERHEAD {
        if read_exact_at(file, &mut frame, pos).is_err() {
            break;
        }
        let k0 = u64::from_le_bytes(frame[..8].try_into().expect("8"));
        let k1 = u64::from_le_bytes(frame[8..16].try_into().expect("8"));
        let len = u32::from_le_bytes(frame[16..20].try_into().expect("4"));
        pos += 20;
        if size - pos < len as u64 + 16 {
            break; // truncated tail (e.g. a crash mid-append)
        }
        records.insert(
            (k0, k1),
            RecordSlot {
                payload: Payload::OnDisk { offset: pos },
                len,
                stamp: 0,
            },
        );
        pos += len as u64 + 16;
    }
    Some(records)
}

/// Loads a segment from a full byte image, verifying every record — the
/// eager path the flush-time merge uses on the *current* on-disk copy
/// (whose offsets may not match this handle's held inode). A bad header
/// drops the whole file, a bad checksum drops that record, a truncated
/// tail drops the remainder.
fn load_segment(kind: Kind, bytes: &[u8], state: &mut KindState) {
    if bytes.len() < 13 || bytes[..8] != MAGIC {
        return;
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION || bytes[12] != kind.tag() {
        return;
    }
    let mut pos = 13;
    while bytes.len() - pos >= RECORD_OVERHEAD as usize {
        let k0 = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8"));
        let k1 = u64::from_le_bytes(bytes[pos + 8..pos + 16].try_into().expect("8"));
        let len = u32::from_le_bytes(bytes[pos + 16..pos + 20].try_into().expect("4")) as usize;
        pos += 20;
        if bytes.len() - pos < len + 16 {
            return; // truncated tail (e.g. a crash mid-append)
        }
        let payload = &bytes[pos..pos + len];
        pos += len;
        let c0 = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8"));
        let c1 = u64::from_le_bytes(bytes[pos + 8..pos + 16].try_into().expect("8"));
        pos += 16;
        if record_digest((k0, k1), payload) != (c0, c1) {
            continue; // corrupted record: degrade to a miss
        }
        state.records.insert(
            (k0, k1),
            RecordSlot {
                payload: Payload::Loaded(Arc::new(payload.to_vec())),
                len: len as u32,
                stamp: 0,
            },
        );
    }
}

fn serialize_access(inner: &Inner) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    for kind in Kind::ALL {
        let state = &inner.kinds[kind.index()];
        let mut keys: Vec<&Key> = state.records.keys().collect();
        keys.sort();
        for key in keys {
            out.push(kind.tag());
            out.extend_from_slice(&key.0.to_le_bytes());
            out.extend_from_slice(&key.1.to_le_bytes());
            out.extend_from_slice(&state.records[key].stamp.to_le_bytes());
        }
    }
    out
}

fn parse_access(bytes: &[u8]) -> Option<Vec<(Kind, Key, u64)>> {
    if bytes.len() < 12 || bytes[..8] != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return None;
    }
    let mut out = Vec::new();
    let mut pos = 12;
    while bytes.len() - pos >= 25 {
        let kind = match Kind::from_tag(bytes[pos]) {
            Some(kind) => kind,
            // A corrupt kind tag no longer voids the whole index:
            // entries parsed so far keep their stamps, and only the
            // unparseable remainder degrades to coldest.
            None => break,
        };
        let k0 = u64::from_le_bytes(bytes[pos + 1..pos + 9].try_into().expect("8"));
        let k1 = u64::from_le_bytes(bytes[pos + 9..pos + 17].try_into().expect("8"));
        let stamp = u64::from_le_bytes(bytes[pos + 17..pos + 25].try_into().expect("8"));
        out.push((kind, (k0, k1), stamp));
        pos += 25;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "alice-store-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn records_survive_reopen() {
        let dir = tmp_dir("reopen");
        {
            let s = Store::open(&dir).expect("open");
            s.put(Kind::Netlist, (1, 2), vec![10, 20, 30]);
            s.put(Kind::Fabric, (3, 4), vec![40]);
            s.flush().expect("flush");
        }
        let s = Store::open(&dir).expect("reopen");
        assert_eq!(
            s.get(Kind::Netlist, (1, 2)).map(|b| b.to_vec()),
            Some(vec![10, 20, 30])
        );
        assert_eq!(
            s.get(Kind::Fabric, (3, 4)).map(|b| b.to_vec()),
            Some(vec![40])
        );
        assert_eq!(s.get(Kind::LutMap, (1, 2)), None);
        assert_eq!(s.stats().records(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_flushes() {
        let dir = tmp_dir("drop");
        {
            let s = Store::open(&dir).expect("open");
            s.put(Kind::Cec, (9, 9), vec![1, 2, 3]);
            // no explicit flush
        }
        let s = Store::open(&dir).expect("reopen");
        assert!(s.get(Kind::Cec, (9, 9)).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lemma_records_survive_reopen() {
        let dir = tmp_dir("lemma");
        {
            let s = Store::open(&dir).expect("open");
            s.put(Kind::Lemma, (11, 22), vec![3; 9]);
            s.flush().expect("flush");
        }
        let s = Store::open(&dir).expect("reopen");
        assert_eq!(
            s.get(Kind::Lemma, (11, 22)).map(|b| b.to_vec()),
            Some(vec![3; 9])
        );
        assert!(s.stats().to_string().contains("lemma"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_payload_degrades_to_miss_only_for_that_record() {
        let dir = tmp_dir("corrupt");
        {
            let s = Store::open(&dir).expect("open");
            s.put(Kind::LutMap, (1, 1), vec![7; 64]);
            s.put(Kind::LutMap, (2, 2), vec![8; 64]);
            s.flush().expect("flush");
        }
        // Flip a bit inside the first record's payload.
        let path = dir.join(Kind::LutMap.file_name());
        let mut bytes = fs::read(&path).expect("read segment");
        bytes[13 + 20 + 5] ^= 0x40;
        fs::write(&path, &bytes).expect("rewrite");
        // The lazy open indexes both records (payloads unread); the
        // verify-on-get drops exactly the flipped one.
        let s = Store::open(&dir).expect("reopen");
        assert_eq!(s.stats().kinds[Kind::LutMap.index()].records, 2);
        assert_eq!(s.get(Kind::LutMap, (1, 1)), None, "corrupt record misses");
        assert_eq!(
            s.get(Kind::LutMap, (2, 2)).map(|b| b.to_vec()),
            Some(vec![8; 64]),
            "its neighbor survives"
        );
        let survivors = s.stats().kinds[Kind::LutMap.index()].records;
        assert_eq!(survivors, 1, "exactly the flipped record is dropped");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_key_byte_degrades_to_miss() {
        let dir = tmp_dir("keyflip");
        {
            let s = Store::open(&dir).expect("open");
            s.put(Kind::LutMap, (1, 1), vec![7; 64]);
            s.put(Kind::LutMap, (2, 2), vec![8; 64]);
            s.flush().expect("flush");
        }
        // Flip a bit inside the first record's *key*. The checksum folds
        // the key, so the payload must not resurface under the mutated
        // content address.
        let path = dir.join(Kind::LutMap.file_name());
        let mut bytes = fs::read(&path).expect("read segment");
        bytes[13 + 3] ^= 0x40;
        fs::write(&path, &bytes).expect("rewrite");
        let s = Store::open(&dir).expect("reopen");
        let mutated = (1u64 ^ (0x40u64 << 24), 1u64);
        assert_eq!(s.get(Kind::LutMap, (1, 1)), None, "original key misses");
        assert_eq!(
            s.get(Kind::LutMap, mutated),
            None,
            "payload does not re-home under the flipped key"
        );
        assert_eq!(
            s.get(Kind::LutMap, (2, 2)).map(|b| b.to_vec()),
            Some(vec![8; 64])
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_after_open_degrades_at_get() {
        let dir = tmp_dir("corrupt-late");
        {
            let s = Store::open(&dir).expect("open");
            s.put(Kind::Cec, (1, 1), vec![7; 64]);
            s.put(Kind::Cec, (2, 2), vec![8; 64]);
            s.flush().expect("flush");
        }
        // Open first (lazy index built), corrupt afterwards: the damage
        // lands between open and the first get, and the verify still
        // catches it.
        let s = Store::open(&dir).expect("reopen");
        let path = dir.join(Kind::Cec.file_name());
        let mut bytes = fs::read(&path).expect("read segment");
        bytes[13 + 20 + 5] ^= 0x40;
        fs::write(&path, &bytes).expect("rewrite");
        assert_eq!(s.get(Kind::Cec, (1, 1)), None, "caught at get-time");
        assert_eq!(
            s.get(Kind::Cec, (2, 2)).map(|b| b.to_vec()),
            Some(vec![8; 64])
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_after_open_degrades_at_get() {
        let dir = tmp_dir("trunc-late");
        {
            let s = Store::open(&dir).expect("open");
            s.put(Kind::Netlist, (1, 1), vec![7; 64]);
            s.put(Kind::Netlist, (2, 2), vec![8; 64]);
            s.flush().expect("flush");
        }
        let s = Store::open(&dir).expect("reopen");
        let path = dir.join(Kind::Netlist.file_name());
        let bytes = fs::read(&path).expect("read");
        fs::write(&path, &bytes[..bytes.len() - 10]).expect("truncate");
        assert_eq!(
            s.get(Kind::Netlist, (2, 2)),
            None,
            "short read degrades to a miss"
        );
        assert_eq!(
            s.get(Kind::Netlist, (1, 1)).map(|b| b.to_vec()),
            Some(vec![7; 64])
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_indexes_without_reading_payloads() {
        let dir = tmp_dir("lazy-open");
        let n = 40u64;
        {
            let s = Store::open(&dir).expect("open");
            for k in 0..n {
                s.put(Kind::Fabric, (k, 0), vec![k as u8; 32]);
            }
            s.flush().expect("flush");
        }
        // Invert every payload byte (framing intact). If open read or
        // verified payloads, no record would survive the open; since it
        // only scans framing, all records index fine — and every get
        // then fails its verify.
        let path = dir.join(Kind::Fabric.file_name());
        let mut bytes = fs::read(&path).expect("read");
        let mut pos = 13;
        while pos + 20 <= bytes.len() {
            let len = u32::from_le_bytes(bytes[pos + 16..pos + 20].try_into().expect("4")) as usize;
            pos += 20;
            for b in &mut bytes[pos..pos + len] {
                *b = !*b;
            }
            pos += len + 16;
        }
        fs::write(&path, &bytes).expect("rewrite");
        let s = Store::open(&dir).expect("reopen");
        assert_eq!(
            s.stats().kinds[Kind::Fabric.index()].records,
            n as usize,
            "open indexed every record without touching payloads"
        );
        for k in 0..n {
            assert_eq!(s.get(Kind::Fabric, (k, 0)), None);
        }
        assert_eq!(s.stats().kinds[Kind::Fabric.index()].records, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_is_dropped() {
        let dir = tmp_dir("trunc");
        {
            let s = Store::open(&dir).expect("open");
            s.put(Kind::Netlist, (1, 1), vec![7; 64]);
            s.put(Kind::Netlist, (2, 2), vec![8; 64]);
            s.flush().expect("flush");
        }
        let path = dir.join(Kind::Netlist.file_name());
        let bytes = fs::read(&path).expect("read");
        fs::write(&path, &bytes[..bytes.len() - 10]).expect("truncate");
        let s = Store::open(&dir).expect("reopen");
        assert_eq!(s.stats().kinds[Kind::Netlist.index()].records, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_empties_the_file() {
        let dir = tmp_dir("version");
        {
            let s = Store::open(&dir).expect("open");
            s.put(Kind::Fabric, (5, 5), vec![1]);
            s.flush().expect("flush");
        }
        let path = dir.join(Kind::Fabric.file_name());
        let mut bytes = fs::read(&path).expect("read");
        let future = FORMAT_VERSION + 1;
        bytes[8..12].copy_from_slice(&future.to_le_bytes());
        fs::write(&path, &bytes).expect("rewrite");
        let s = Store::open(&dir).expect("reopen");
        assert_eq!(s.stats().records(), 0, "future-version file is ignored");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn access_index_with_corrupt_tag_keeps_earlier_entries() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        let entry = |out: &mut Vec<u8>, tag: u8, key: Key, stamp: u64| {
            out.push(tag);
            out.extend_from_slice(&key.0.to_le_bytes());
            out.extend_from_slice(&key.1.to_le_bytes());
            out.extend_from_slice(&stamp.to_le_bytes());
        };
        entry(&mut bytes, Kind::Netlist.tag(), (1, 0), 7);
        entry(&mut bytes, 0xEE, (2, 0), 8); // corrupt kind tag
        entry(&mut bytes, Kind::Cec.tag(), (3, 0), 9);
        let parsed = parse_access(&bytes).expect("index still parses");
        assert_eq!(
            parsed,
            vec![(Kind::Netlist, (1, 0), 7)],
            "entries before the corrupt tag survive; the remainder is skipped"
        );
    }

    #[test]
    fn gc_evicts_least_recently_accessed_first() {
        let dir = tmp_dir("gc");
        let s = Store::open(&dir).expect("open");
        s.put(Kind::Netlist, (1, 0), vec![0; 100]);
        s.put(Kind::Netlist, (2, 0), vec![0; 100]);
        s.put(Kind::Netlist, (3, 0), vec![0; 100]);
        // Touch (1,0) so (2,0) becomes the coldest.
        s.get(Kind::Netlist, (1, 0)).expect("present");
        let per_record = 100 + RECORD_OVERHEAD;
        let report = s.gc(2 * per_record).expect("gc");
        assert_eq!(report.kept, 2);
        assert_eq!(report.dropped, 1);
        assert!(report.bytes_after <= 2 * per_record);
        assert!(
            s.get(Kind::Netlist, (1, 0)).is_some(),
            "recently read survives"
        );
        assert!(
            s.get(Kind::Netlist, (3, 0)).is_some(),
            "recently written survives"
        );
        assert!(s.get(Kind::Netlist, (2, 0)).is_none(), "coldest is evicted");
        // And the eviction is durable.
        drop(s);
        let s = Store::open(&dir).expect("reopen");
        assert_eq!(s.stats().records(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_both_contribute_on_flush() {
        let dir = tmp_dir("merge");
        // Two handles on one directory model two simultaneous processes.
        // Each opens before the other flushes, so without the merge the
        // later flush would overwrite the earlier one's additions.
        let a = Store::open(&dir).expect("open a");
        let b = Store::open(&dir).expect("open b");
        a.put(Kind::Netlist, (1, 0), vec![0xAA; 8]);
        b.put(Kind::Netlist, (2, 0), vec![0xBB; 8]);
        a.flush().expect("flush a");
        b.flush().expect("flush b");
        drop(a);
        drop(b);
        let s = Store::open(&dir).expect("reopen");
        assert_eq!(
            s.get(Kind::Netlist, (1, 0)).map(|v| v.to_vec()),
            Some(vec![0xAA; 8]),
            "first writer's record survives the second writer's flush"
        );
        assert_eq!(
            s.get(Kind::Netlist, (2, 0)).map(|v| v.to_vec()),
            Some(vec![0xBB; 8])
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_prefers_this_handles_record_on_conflict() {
        let dir = tmp_dir("merge-conflict");
        let a = Store::open(&dir).expect("open a");
        let b = Store::open(&dir).expect("open b");
        a.put(Kind::Fabric, (7, 7), vec![1]);
        a.flush().expect("flush a");
        b.put(Kind::Fabric, (7, 7), vec![2]);
        b.flush().expect("flush b");
        drop((a, b));
        let s = Store::open(&dir).expect("reopen");
        assert_eq!(
            s.get(Kind::Fabric, (7, 7)).map(|v| v.to_vec()),
            Some(vec![2]),
            "the flushing handle's own record wins its flush"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_eviction_is_not_resurrected_by_the_merge() {
        let dir = tmp_dir("merge-gc");
        let s = Store::open(&dir).expect("open");
        s.put(Kind::Netlist, (1, 0), vec![0; 100]);
        s.put(Kind::Netlist, (2, 0), vec![0; 100]);
        s.flush().expect("flush");
        // Both records are on disk; evicting one must stick even though
        // the gc's own flush re-reads that very file for the merge.
        s.get(Kind::Netlist, (1, 0)).expect("warm");
        let report = s.gc(100 + RECORD_OVERHEAD).expect("gc");
        assert_eq!((report.kept, report.dropped), (1, 1));
        drop(s);
        let s = Store::open(&dir).expect("reopen");
        assert_eq!(s.stats().records(), 1);
        assert!(s.get(Kind::Netlist, (1, 0)).is_some());
        assert!(s.get(Kind::Netlist, (2, 0)).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_rewrites_foreign_kinds_from_the_merged_state() {
        let dir = tmp_dir("merge-foreign-compact");
        let per_record = 100 + RECORD_OVERHEAD;
        // B opens before A commits anything, so B's open-time snapshot
        // of the Fabric kind is empty.
        let a = Store::open(&dir).expect("open a");
        let b = Store::open(&dir).expect("open b");
        for k in 0..3 {
            a.put(Kind::Fabric, (k, 0), vec![0xFA; 100]);
        }
        a.flush().expect("flush a");
        for k in 0..3 {
            b.put(Kind::Netlist, (k, 1), vec![0x11; 100]);
        }
        // B compacts to 4 records: the budget must bound the MERGED
        // store (6 records), evicting the two coldest foreign fabric
        // records — not erase A's kind from a stale snapshot, and not
        // ignore it and leave the store over budget.
        let report = b.gc(4 * per_record).expect("gc");
        assert_eq!(report.bytes_before, 6 * per_record, "union accounted");
        assert_eq!((report.kept, report.dropped), (4, 2));
        drop((a, b));
        let s = Store::open(&dir).expect("reopen");
        assert_eq!(s.stats().records(), 4);
        assert!(s.stats().bytes() <= 4 * per_record, "really under budget");
        for k in 0..3 {
            assert!(
                s.get(Kind::Netlist, (k, 1)).is_some(),
                "B's own (warm) records survive"
            );
        }
        assert_eq!(
            s.stats().kinds[Kind::Fabric.index()].records,
            1,
            "exactly the budget's worth of A's records survives"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_compacts_past_twice_the_budget() {
        let dir = tmp_dir("autogc");
        let s = Store::open(&dir).expect("open");
        let per_record = 100 + RECORD_OVERHEAD;
        s.set_compact_budget(Some(2 * per_record));
        // Two records: exactly the budget — under 2×, flush leaves them.
        s.put(Kind::Netlist, (1, 0), vec![0; 100]);
        s.put(Kind::Netlist, (2, 0), vec![0; 100]);
        s.flush().expect("flush");
        assert_eq!(s.stats().records(), 2, "within 2x budget: no eviction");
        // Three more push the store past 2× the budget: the flush
        // compacts back down to the budget, coldest first.
        s.put(Kind::Netlist, (3, 0), vec![0; 100]);
        s.put(Kind::Netlist, (4, 0), vec![0; 100]);
        s.put(Kind::Netlist, (5, 0), vec![0; 100]);
        // Touch (1,0) so it is warm again.
        s.get(Kind::Netlist, (1, 0)).expect("present");
        s.flush().expect("flush");
        assert_eq!(s.stats().records(), 2, "compacted to the budget");
        assert!(s.stats().bytes() <= 2 * per_record);
        assert!(s.get(Kind::Netlist, (1, 0)).is_some(), "warm survives");
        // And the compaction is durable across reopen.
        drop(s);
        let s = Store::open(&dir).expect("reopen");
        assert_eq!(s.stats().records(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_removes_everything() {
        let dir = tmp_dir("clear");
        let s = Store::open(&dir).expect("open");
        s.put(Kind::Cec, (1, 1), vec![9]);
        s.flush().expect("flush");
        s.clear().expect("clear");
        assert_eq!(s.stats().records(), 0);
        drop(s);
        let s = Store::open(&dir).expect("reopen");
        assert_eq!(s.stats().records(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_stamps_survive_reopen() {
        let dir = tmp_dir("stamps");
        {
            let s = Store::open(&dir).expect("open");
            s.put(Kind::Netlist, (1, 0), vec![0; 10]);
            s.put(Kind::Netlist, (2, 0), vec![0; 10]);
            s.get(Kind::Netlist, (1, 0)).expect("present");
            s.flush().expect("flush");
        }
        // After reopen, (1,0) is still the warmer record.
        let s = Store::open(&dir).expect("reopen");
        let report = s.gc(10 + RECORD_OVERHEAD).expect("gc");
        assert_eq!((report.kept, report.dropped), (1, 1));
        assert!(s.get(Kind::Netlist, (1, 0)).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_display_lists_kinds() {
        let dir = tmp_dir("stats");
        let s = Store::open(&dir).expect("open");
        s.put(Kind::Netlist, (1, 1), vec![0; 8]);
        let text = s.stats().to_string();
        assert!(text.contains("netlist"));
        assert!(text.contains("lemma"));
        assert!(text.contains("total"));
        let _ = fs::remove_dir_all(&dir);
    }
}
