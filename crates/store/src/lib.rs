//! # alice-store
//!
//! A persistent, crash-safe, content-addressed artifact store: the
//! on-disk layer under `alice_core::db::DesignDb` and the CEC proof
//! cache. The in-memory `DesignDb` already makes repeated
//! characterizations free *within* a process; this crate makes them free
//! *across* processes, so a second `alice` CLI run (or an ARIANNA-style
//! parameter sweep of many invocations) starts warm.
//!
//! Layout: each artifact kind ([`Kind::Netlist`], [`Kind::LutMap`],
//! [`Kind::Fabric`], [`Kind::Cec`], [`Kind::Lemma`]) is **sharded** into
//! [`SHARD_COUNT`] segment files (`netlists.00.seg` …
//! `netlists.07.seg`) under the store directory, with the shard chosen
//! by the low bits of the 128-bit content key ([`shard_of`]). Each file
//! is a flat sequence of records
//! `key(16) · payload_len(4) · payload · checksum(16)`, where the
//! checksum is a [`StableHasher`] digest of the **key and payload**
//! (so a key bit-flip cannot re-home a valid payload under the wrong
//! content address); files open with a
//! `magic · format-version · kind · shard` header.
//!
//! **Sharding is the concurrency story.** Every shard has its own lock:
//! concurrent writers whose keys land in different shards never contend
//! on a `put`, `get`, or flush, and a flush-merge rewrites **only the
//! shards that changed** — two threads (or two processes) flushing
//! disjoint shards commit in parallel instead of serializing on one
//! whole-kind segment rewrite. Old v2 single-segment stores migrate in
//! place on first open: records are re-homed by key into their shards
//! **verbatim** (the checksum formula is unchanged, so nothing is
//! recomputed and payloads stay byte-identical).
//!
//! **Opens are lazy, reads are zero-copy.** [`Store::open`] scans only
//! the record framing, building an offset index `key → (offset, len)`
//! without reading a single payload byte — O(records), not O(bytes).
//! Each shard file is also memory-mapped (where the platform supports
//! it; see [`mmap`](self) internals): [`Store::get`] returns a
//! [`Payload`] handle that dereferences straight into the mapped region,
//! so a warm get copies **zero** payload bytes. Checksum verification
//! still happens lazily, on the first get of each record, and a record
//! that fails its verify degrades to a per-record miss. Platforms
//! without mapping support (and records inserted by this handle, which
//! live on the heap) fall back to an owned buffer transparently.
//!
//! Each shard keeps its open-time file handle and mapping, so a
//! concurrent writer's atomic-rename commit never invalidates this
//! handle's offsets: they keep reading the original inode. A flush
//! rewrites any shard with new records to a tempfile, commits it with an
//! atomic rename, and fsyncs the store directory so the rename itself is
//! durable; a crash can lose the newest records but never corrupt
//! existing ones (read-only runs rewrite nothing but the access-stamp
//! sidecar).
//!
//! **Robustness contract:** a corrupt, truncated, or version-mismatched
//! record (or whole file) silently degrades to a cache miss — the flow
//! recomputes and overwrites; nothing in this crate turns bad disk state
//! into an error for the caller. Framing damage (bad header, truncated
//! tail) is caught at open; payload damage is caught at get-time, when
//! the record is first verified. Bumping [`FORMAT_VERSION`] invalidates
//! every existing store — except the v2 → v3 step, which migrates
//! instead (v2 records are already checksummed with the current
//! formula, so re-homing them into shards loses nothing).
//!
//! Eviction is explicit: [`Store::gc`] compacts to a byte budget,
//! dropping least-recently-accessed records first (access stamps live in
//! a sidecar index whose entries carry the shard id, so gc can stamp a
//! record without opening any other shard).

pub mod artifact;
pub mod codec;
mod mmap;

pub use codec::{CodecError, Reader, Writer};

use alice_intern::StableHasher;
use mmap::Mmap;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::ops::Deref;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

static STORE_GETS: alice_obs::Counter = alice_obs::Counter::new(
    "alice_store_gets_total",
    "Successful artifact-store gets across all handles",
);
static STORE_MAPPED_GETS: alice_obs::Counter = alice_obs::Counter::new(
    "alice_store_mapped_gets_total",
    "Store gets served zero-copy from a segment mapping",
);
static STORE_COPIED_GETS: alice_obs::Counter = alice_obs::Counter::new(
    "alice_store_copied_gets_total",
    "Store gets served through the positioned-read + copy fallback",
);
static STORE_BYTES_COPIED: alice_obs::Counter = alice_obs::Counter::new(
    "alice_store_bytes_copied_total",
    "Payload bytes copied by fallback store reads",
);
static STORE_SHARD_FLUSHES: alice_obs::Counter = alice_obs::Counter::new(
    "alice_store_shard_flushes_total",
    "Dirty shard rewrites committed by store flushes",
);

/// A 128-bit content-addressed key (the same shape `DesignDb` uses).
pub type Key = (u64, u64);

/// The magic bytes opening every store file.
pub const MAGIC: [u8; 8] = *b"ALICSTOR";

/// The on-disk format version. Version 2 folded the record key into the
/// per-record checksum and added the lemma segment; version 3 sharded
/// every kind into [`SHARD_COUNT`] segment files (with the shard id in
/// the header) and widened the access-index entries with the shard id.
/// v2 stores migrate in place on open ([`Store::open`]); anything older
/// (or newer) is treated as empty and recomputed, never misread.
pub const FORMAT_VERSION: u32 = 3;

/// The single-segment-per-kind format this version transparently
/// migrates from (see [`Store::open`]).
pub const LEGACY_FORMAT_VERSION: u32 = 2;

/// Shards per kind. A power of two so the shard is a mask of the key's
/// low bits; 8 is enough that flush-merges over distinct working sets
/// rarely collide while keeping the per-store file count (5 kinds × 8)
/// trivial.
pub const SHARD_COUNT: usize = 8;

/// The shard a key lives in: the low bits of the 128-bit content key.
/// Keys are [`StableHasher`] outputs, so the low bits are uniform and
/// shards stay balanced.
pub fn shard_of(key: Key) -> usize {
    (key.0 & (SHARD_COUNT as u64 - 1)) as usize
}

/// Fixed per-record framing overhead (key + length + checksum).
const RECORD_OVERHEAD: u64 = 16 + 4 + 16;

/// v3 segment header: magic(8) + version(4) + kind(1) + shard(1).
const HEADER_LEN: usize = 14;

/// v2 segment header: magic(8) + version(4) + kind(1) — no shard byte.
const LEGACY_HEADER_LEN: usize = 13;

/// The artifact kinds the store segregates into (sharded) segment files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kind {
    /// Elaborated gate-level netlists, keyed by module source-closure
    /// fingerprint.
    Netlist,
    /// LUT-mapped networks, keyed by netlist structural hash + k.
    LutMap,
    /// Fabric characterizations (or their infeasibility verdicts), keyed
    /// by name-free merged-network hash + architecture parameters.
    Fabric,
    /// CEC proof results, keyed by the name-free miter fingerprint
    /// (netlist pair structure + pinned key bits).
    Cec,
    /// SAT-sweep equality lemmas, keyed by the canonical pair of
    /// structural cone hashes they equate — the sub-miter cache that
    /// lets a novel miter over familiar structures start warm.
    Lemma,
}

impl Kind {
    /// Every kind, in segment order.
    pub const ALL: [Kind; 5] = [
        Kind::Netlist,
        Kind::LutMap,
        Kind::Fabric,
        Kind::Cec,
        Kind::Lemma,
    ];

    /// The kind's **legacy** (v2, single-segment) file name inside the
    /// store directory — still recognized so old stores migrate in
    /// place; current files are named per shard
    /// ([`Kind::shard_file_name`]).
    pub fn file_name(self) -> &'static str {
        match self {
            Kind::Netlist => "netlists.seg",
            Kind::LutMap => "lutmaps.seg",
            Kind::Fabric => "fabrics.seg",
            Kind::Cec => "cec.seg",
            Kind::Lemma => "lemmas.seg",
        }
    }

    /// The stem the kind's shard files share (`<stem>.NN.seg`).
    fn file_stem(self) -> &'static str {
        match self {
            Kind::Netlist => "netlists",
            Kind::LutMap => "lutmaps",
            Kind::Fabric => "fabrics",
            Kind::Cec => "cec",
            Kind::Lemma => "lemmas",
        }
    }

    /// The segment file name of one of the kind's shards
    /// (`netlists.03.seg` for shard 3 of [`Kind::Netlist`]).
    pub fn shard_file_name(self, shard: usize) -> String {
        format!("{}.{shard:02}.seg", self.file_stem())
    }

    /// Short label for stats output.
    pub fn label(self) -> &'static str {
        match self {
            Kind::Netlist => "netlist",
            Kind::LutMap => "lutmap",
            Kind::Fabric => "fabric",
            Kind::Cec => "cec",
            Kind::Lemma => "lemma",
        }
    }

    fn index(self) -> usize {
        match self {
            Kind::Netlist => 0,
            Kind::LutMap => 1,
            Kind::Fabric => 2,
            Kind::Cec => 3,
            Kind::Lemma => 4,
        }
    }

    fn tag(self) -> u8 {
        self.index() as u8
    }

    fn from_tag(t: u8) -> Option<Kind> {
        Kind::ALL.get(t as usize).copied()
    }
}

/// Where a record's payload currently lives.
#[derive(Debug)]
enum Slot {
    /// On the heap: inserted by this handle, materialized by a flush, or
    /// read through the positioned-read fallback.
    Owned(Arc<Vec<u8>>),
    /// Indexed at open but still on disk: `offset` is the payload's byte
    /// position in the shard's open-time file (and mapping). `verified`
    /// flips on the first get that checks the record's digest; a failed
    /// verify drops the record — the get-time arm of the
    /// degrade-to-miss contract.
    OnDisk { offset: u64, verified: bool },
}

#[derive(Debug)]
struct RecordSlot {
    payload: Slot,
    /// Payload length in bytes (known from the framing even before the
    /// payload itself is read).
    len: u32,
    /// Logical last-access stamp (monotone across open/flush cycles).
    stamp: u64,
}

/// One shard of one kind: its records, its open-time file handle and
/// mapping, and its pending flush state — everything a `put`, `get`, or
/// per-shard flush needs, behind the shard's own lock.
#[derive(Debug, Default)]
struct ShardState {
    records: HashMap<Key, RecordSlot>,
    /// The shard's open-time file handle. Lazy reads (and the in-place
    /// truncation guard) go through this handle, not the path: a
    /// concurrent writer commits by renaming a new file over the path,
    /// and the held handle keeps the original inode — and therefore
    /// this index's offsets — alive and valid.
    file: Option<Arc<fs::File>>,
    /// Read-only mapping of the open-time inode, when the platform
    /// supports it. [`Store::get`] serves zero-copy [`Payload`] handles
    /// out of this map; `None` falls back to positioned reads.
    map: Option<Arc<Mmap>>,
    /// Keys this handle deliberately dropped (gc / opportunistic
    /// compaction) since the last flush: the flush-time merge must not
    /// resurrect them from the on-disk copy. Cleared once the compacted
    /// shard is committed.
    evicted: HashSet<Key>,
}

impl ShardState {
    fn payload_bytes(&self) -> u64 {
        self.records
            .values()
            .map(|r| r.len as u64 + RECORD_OVERHEAD)
            .sum()
    }
}

/// A zero-copy view of one stored payload, returned by [`Store::get`].
///
/// Dereferences to the payload bytes. The bytes either live in the
/// shard's memory-mapped segment (the warm-read fast path: no heap
/// allocation, no copy — the handle pins the mapping alive) or in an
/// owned buffer (records inserted by this handle, flush-materialized
/// records, and every record on platforms without mapping support).
/// Callers never need to distinguish the two; [`Payload::is_mapped`]
/// exists for benchmarks and tests that want to assert which path
/// served them.
#[derive(Clone)]
pub struct Payload(Repr);

#[derive(Clone)]
enum Repr {
    Owned(Arc<Vec<u8>>),
    Mapped {
        map: Arc<Mmap>,
        offset: usize,
        len: usize,
    },
}

impl Payload {
    fn owned(bytes: Arc<Vec<u8>>) -> Payload {
        Payload(Repr::Owned(bytes))
    }

    fn mapped(map: Arc<Mmap>, offset: usize, len: usize) -> Payload {
        Payload(Repr::Mapped { map, offset, len })
    }

    /// True when the bytes are served straight from the segment mapping
    /// (zero copies); false for the owned-buffer fallback.
    pub fn is_mapped(&self) -> bool {
        matches!(self.0, Repr::Mapped { .. })
    }
}

impl Deref for Payload {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.0 {
            Repr::Owned(bytes) => bytes,
            Repr::Mapped { map, offset, len } => &map[*offset..*offset + *len],
        }
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Payload")
            .field("len", &self[..].len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Payload) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Payload {}

/// Per-kind size statistics (see [`Store::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Records of this kind.
    pub records: usize,
    /// Bytes of this kind (payload + framing overhead).
    pub bytes: u64,
}

/// Per-shard size statistics (see [`StoreStats::shards`]): how one
/// kind's records distribute over its [`SHARD_COUNT`] segment files,
/// including the tombstones a gc left pending for the next flush — the
/// skew observability the `alice store stats` table surfaces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Live records in this shard.
    pub records: usize,
    /// Bytes in this shard (payload + framing overhead).
    pub bytes: u64,
    /// Evictions recorded but not yet flushed (merge tombstones).
    pub tombstones: usize,
}

/// Snapshot of the store's contents.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Per-kind statistics, in [`Kind::ALL`] order.
    pub kinds: [KindStats; 5],
    /// Per-kind, per-shard statistics, in [`Kind::ALL`] × shard order.
    pub shards: [[ShardStats; SHARD_COUNT]; 5],
}

impl StoreStats {
    /// Total records across all kinds.
    pub fn records(&self) -> usize {
        self.kinds.iter().map(|k| k.records).sum()
    }

    /// Total bytes across all kinds.
    pub fn bytes(&self) -> u64 {
        self.kinds.iter().map(|k| k.bytes).sum()
    }

    /// A per-shard table (records, bytes, live-vs-tombstone ratio per
    /// shard, aggregated across kinds) so shard skew is observable from
    /// `alice store stats`.
    pub fn shard_table(&self) -> String {
        let mut out = String::new();
        out.push_str("shard    records        bytes   tombstones   live%\n");
        for shard in 0..SHARD_COUNT {
            let records: usize = (0..5).map(|k| self.shards[k][shard].records).sum();
            let bytes: u64 = (0..5).map(|k| self.shards[k][shard].bytes).sum();
            let tombstones: usize = (0..5).map(|k| self.shards[k][shard].tombstones).sum();
            let live_pct = if records + tombstones == 0 {
                100.0
            } else {
                100.0 * records as f64 / (records + tombstones) as f64
            };
            out.push_str(&format!(
                "{shard:>5} {records:>10} {bytes:>12} {tombstones:>12} {live_pct:>6.1}\n"
            ));
        }
        out
    }
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (kind, s) in Kind::ALL.iter().zip(self.kinds.iter()) {
            writeln!(
                f,
                "{:<8} {:>7} record(s) {:>12} byte(s)",
                kind.label(),
                s.records,
                s.bytes
            )?;
        }
        write!(
            f,
            "{:<8} {:>7} record(s) {:>12} byte(s)",
            "total",
            self.records(),
            self.bytes()
        )
    }
}

/// What [`Store::gc`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Records kept.
    pub kept: usize,
    /// Records evicted (least-recently-accessed first).
    pub dropped: usize,
    /// Store bytes before compaction.
    pub bytes_before: u64,
    /// Store bytes after compaction.
    pub bytes_after: u64,
}

/// Cumulative read-path counters (see [`Store::read_stats`]): how many
/// gets were served zero-copy out of a mapping versus through the
/// positioned-read fallback, and how many payload bytes the fallback
/// copied — the numbers `store_bench` reports as "bytes copied per
/// get".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadStats {
    /// Successful [`Store::get`] calls.
    pub gets: u64,
    /// Gets served zero-copy from a segment mapping.
    pub mapped_gets: u64,
    /// Gets that read + copied the payload off disk (first touch of a
    /// record on a platform or handle without a mapping).
    pub copied_gets: u64,
    /// Payload bytes copied by those fallback reads.
    pub bytes_copied: u64,
}

/// How to open a store (see [`Store::open_with`]).
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Memory-map shard files and serve zero-copy [`Payload`] handles
    /// (the default). Disable to force every read through the
    /// positioned-read + copy fallback — the behaviour of platforms
    /// without mapping support, and the "before" leg of
    /// `store_bench`'s read comparison.
    pub mmap: bool,
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions { mmap: true }
    }
}

/// The persistent artifact store. Thread-safe: share it in an `Arc` and
/// call from any thread — locking is **per shard**, so operations on
/// keys in different shards (and flushes of disjoint shards) run
/// concurrently. Dropping the store flushes pending writes
/// (best-effort); call [`Store::flush`] for a checked commit.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    use_mmap: bool,
    /// `[kind][shard]` → that shard's state behind its own lock. The
    /// only multi-shard lock order in the crate is kind-major,
    /// shard-minor (compacting flushes, stats, the access-index
    /// snapshot), so shard locks cannot deadlock.
    shards: [[Mutex<ShardState>; SHARD_COUNT]; 5],
    /// `[kind][shard]` → records changed since the last flush (shard
    /// rewrite needed; access-stamp bumps alone only dirty the sidecar
    /// index). Kept *outside* the shard locks so a flush can skip clean
    /// shards without touching their mutexes — two handles flushing
    /// disjoint shards never contend, even on the skip scan.
    dirty: [[AtomicBool; SHARD_COUNT]; 5],
    /// Logical access clock; starts above every loaded stamp.
    clock: AtomicU64,
    access_dirty: AtomicBool,
    /// Opportunistic-compaction budget: when set, a flush that finds the
    /// store above **2×** this byte count LRU-compacts it back down to
    /// the budget before committing (see [`Store::set_compact_budget`]).
    compact_budget: Mutex<Option<u64>>,
    gets: AtomicU64,
    mapped_gets: AtomicU64,
    copied_gets: AtomicU64,
    bytes_copied: AtomicU64,
}

/// Process-wide tempfile sequence: two store handles on the *same*
/// directory (concurrent threads, or one store per db) must never pick
/// the same temp name, or one commit's rename steals the other's file.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl Store {
    /// Opens (creating if needed) the store at `dir` with default
    /// options, building an in-memory **offset index** of every readable
    /// record. Only the record framing is scanned — payloads stay on
    /// disk until the first [`Store::get`] verifies them — so open cost
    /// scales with the record count, not the stored bytes. Unreadable,
    /// corrupt, or version-mismatched files are treated as empty.
    ///
    /// A v2 (single-segment) store found at `dir` is **migrated in
    /// place** first: each legacy segment's records are re-homed by key
    /// into their shard files verbatim — same framing, same checksums,
    /// zero recomputation — and the legacy file is removed once every
    /// shard is durably committed.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] only when the directory itself cannot be
    /// created — bad *contents* never error.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Store> {
        Store::open_with(dir, StoreOptions::default())
    }

    /// [`Store::open`] with explicit [`StoreOptions`].
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] only when the directory itself cannot be
    /// created.
    pub fn open_with(dir: impl Into<PathBuf>, options: StoreOptions) -> io::Result<Store> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut states: Vec<Vec<ShardState>> = Vec::with_capacity(5);
        for kind in Kind::ALL {
            migrate_legacy_segment(&dir, kind);
            let mut kind_states = Vec::with_capacity(SHARD_COUNT);
            for shard in 0..SHARD_COUNT {
                let mut state = ShardState::default();
                let path = dir.join(kind.shard_file_name(shard));
                if let Ok(file) = fs::File::open(&path) {
                    if let Some(records) = index_segment(kind, shard, &file) {
                        let size = file.metadata().map(|m| m.len()).unwrap_or(0);
                        state.records = records;
                        if options.mmap {
                            state.map = Mmap::map(&file, size).map(Arc::new);
                        }
                        state.file = Some(Arc::new(file));
                    }
                }
                kind_states.push(state);
            }
            states.push(kind_states);
        }
        // Access stamps from the sidecar index (missing entries stay 0 =
        // coldest, which is the right default for gc). Entries carry
        // their shard id, so stamping is a direct slot lookup.
        let mut max_stamp = 0u64;
        if let Ok(bytes) = fs::read(dir.join("access.idx")) {
            if let Some(entries) = parse_access(&bytes) {
                for (kind, shard, key, stamp) in entries {
                    if let Some(slot) = states[kind.index()][shard].records.get_mut(&key) {
                        slot.stamp = stamp;
                        max_stamp = max_stamp.max(stamp);
                    }
                }
            }
        }
        let mut kind_iter = states.into_iter();
        let shards = std::array::from_fn(|_| {
            let mut shard_iter = kind_iter.next().expect("five kinds").into_iter();
            std::array::from_fn(|_| Mutex::new(shard_iter.next().expect("shard state")))
        });
        Ok(Store {
            dir,
            use_mmap: options.mmap,
            shards,
            dirty: std::array::from_fn(|_| std::array::from_fn(|_| AtomicBool::new(false))),
            clock: AtomicU64::new(max_stamp + 1),
            access_dirty: AtomicBool::new(false),
            compact_budget: Mutex::new(None),
            gets: AtomicU64::new(0),
            mapped_gets: AtomicU64::new(0),
            copied_gets: AtomicU64::new(0),
            bytes_copied: AtomicU64::new(0),
        })
    }

    /// The store's directory.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Whether this handle serves mapped (zero-copy) reads
    /// ([`StoreOptions::mmap`]).
    pub fn mmap_enabled(&self) -> bool {
        self.use_mmap
    }

    fn shard(&self, kind: Kind, shard: usize) -> MutexGuard<'_, ShardState> {
        self.shards[kind.index()][shard]
            .lock()
            .expect("store shard lock")
    }

    fn dirty_flag(&self, kind: Kind, shard: usize) -> &AtomicBool {
        &self.dirty[kind.index()][shard]
    }

    /// Looks `key` up, returning the stored payload and bumping its
    /// last-access stamp. Only the key's shard is locked. A record still
    /// on disk is checksum-verified here — in place, through the shard's
    /// mapping, with zero payload copies (or via a positioned read +
    /// copy where mapping is unavailable) — and a record that fails the
    /// read or the verify degrades to a miss: the caller recomputes,
    /// exactly as if an eager open had dropped it.
    pub fn get(&self, kind: Kind, key: Key) -> Option<Payload> {
        let _span = alice_obs::span("store.get");
        let shard = shard_of(key);
        let mut guard = self.shard(kind, shard);
        let state = &mut *guard;
        let map = state.map.clone();
        let file = state.file.clone();
        let slot = state.records.get_mut(&key)?;
        let len = slot.len;
        // What the slot yielded, and how to update it afterwards.
        struct Served {
            payload: Payload,
            memoize: Option<Arc<Vec<u8>>>,
            mark_verified: bool,
        }
        let served: Option<Served> = match &slot.payload {
            Slot::Owned(bytes) => Some(Served {
                payload: Payload::owned(bytes.clone()),
                memoize: None,
                mark_verified: false,
            }),
            Slot::OnDisk { offset, verified } => {
                let offset = *offset;
                if let Some(map) = &map {
                    let intact = (offset as usize)
                        .checked_add(len as usize + 16)
                        .is_some_and(|end| end <= map.len())
                        && (*verified
                            || mapped_record_intact(file.as_deref(), map, key, offset, len));
                    if intact {
                        self.mapped_gets.fetch_add(1, Ordering::Relaxed);
                        STORE_MAPPED_GETS.inc();
                        Some(Served {
                            payload: Payload::mapped(map.clone(), offset as usize, len as usize),
                            memoize: None,
                            mark_verified: true,
                        })
                    } else {
                        None
                    }
                } else {
                    match file
                        .as_deref()
                        .and_then(|f| read_verified(f, key, offset, len))
                    {
                        Some(payload) => {
                            self.copied_gets.fetch_add(1, Ordering::Relaxed);
                            self.bytes_copied
                                .fetch_add(u64::from(len), Ordering::Relaxed);
                            STORE_COPIED_GETS.inc();
                            STORE_BYTES_COPIED.add(u64::from(len));
                            let payload = Arc::new(payload);
                            Some(Served {
                                payload: Payload::owned(payload.clone()),
                                memoize: Some(payload),
                                mark_verified: false,
                            })
                        }
                        None => None,
                    }
                }
            }
        };
        match served {
            Some(Served {
                payload,
                memoize,
                mark_verified,
            }) => {
                if let Some(owned) = memoize {
                    slot.payload = Slot::Owned(owned);
                } else if mark_verified {
                    if let Slot::OnDisk { verified, .. } = &mut slot.payload {
                        *verified = true;
                    }
                }
                slot.stamp = self.clock.fetch_add(1, Ordering::Relaxed);
                self.gets.fetch_add(1, Ordering::Relaxed);
                STORE_GETS.inc();
                self.access_dirty.store(true, Ordering::Relaxed);
                Some(payload)
            }
            None => {
                // Verify-on-get: the record's payload fails its read or
                // checksum, so it degrades to a miss. Dropped without a
                // tombstone and without dirtying the shard: read-only
                // runs never rewrite, and a future flush simply omits
                // it.
                state.records.remove(&key);
                None
            }
        }
    }

    /// Inserts (or overwrites) a record, locking only the key's shard.
    /// The write is committed to disk on the next [`Store::flush`] (or
    /// drop).
    pub fn put(&self, kind: Kind, key: Key, payload: Vec<u8>) {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        self.access_dirty.store(true, Ordering::Relaxed);
        let mut state = self.shard(kind, shard_of(key));
        state.evicted.remove(&key);
        let len = payload.len() as u32;
        state.records.insert(
            key,
            RecordSlot {
                payload: Slot::Owned(Arc::new(payload)),
                len,
                stamp,
            },
        );
        // Under the shard lock, so a concurrent flush of this shard
        // either sees the flag before clearing it or serializes after
        // this put.
        self.dirty_flag(kind, shard_of(key))
            .store(true, Ordering::SeqCst);
    }

    /// Sets (or clears) the opportunistic-compaction budget: whenever a
    /// [`Store::flush`] finds the store holding more than **twice**
    /// `budget_bytes`, it LRU-compacts down to `budget_bytes` before
    /// committing — long-running sweeps stay bounded without an explicit
    /// [`Store::gc`]. The 2× slack keeps steady-state flushes cheap: a
    /// store hovering near its budget is not re-compacted on every
    /// commit.
    pub fn set_compact_budget(&self, budget_bytes: Option<u64>) {
        *self.compact_budget.lock().expect("budget lock") = budget_bytes;
    }

    /// Current contents summary, including the per-shard breakdown.
    /// Record counts and byte totals come from the offset index, so
    /// stats never force payload reads; shards are locked one at a
    /// time.
    pub fn stats(&self) -> StoreStats {
        let mut stats = StoreStats::default();
        for kind in Kind::ALL {
            for shard in 0..SHARD_COUNT {
                let state = self.shard(kind, shard);
                let cell = ShardStats {
                    records: state.records.len(),
                    bytes: state.payload_bytes(),
                    tombstones: state.evicted.len(),
                };
                stats.shards[kind.index()][shard] = cell;
                stats.kinds[kind.index()].records += cell.records;
                stats.kinds[kind.index()].bytes += cell.bytes;
            }
        }
        stats
    }

    /// Cumulative read-path counters (zero-copy vs copied gets).
    pub fn read_stats(&self) -> ReadStats {
        ReadStats {
            gets: self.gets.load(Ordering::Relaxed),
            mapped_gets: self.mapped_gets.load(Ordering::Relaxed),
            copied_gets: self.copied_gets.load(Ordering::Relaxed),
            bytes_copied: self.bytes_copied.load(Ordering::Relaxed),
        }
    }

    /// Commits pending records and access stamps to disk. Each dirty
    /// shard is **merged** with its current on-disk copy (records a
    /// concurrent writer committed since this handle opened are kept,
    /// this handle's records win on key conflicts, deliberately-evicted
    /// keys stay gone), then rewritten to a tempfile and atomically
    /// renamed over the old one — **only the shards that changed are
    /// rewritten**, one shard lock at a time, so two handles flushing
    /// disjoint shards commit concurrently and a flush never blocks
    /// puts or gets against other shards. Two simultaneous processes
    /// over one store directory therefore both contribute their records
    /// — the last flush unions instead of overwriting.
    ///
    /// With a compaction budget set ([`Store::set_compact_budget`]), a
    /// flush that finds the merged store above 2× the budget LRU-compacts
    /// it down to the budget before committing (that path locks every
    /// shard, since eviction is a whole-store decision).
    ///
    /// # Errors
    ///
    /// Returns the first [`io::Error`] hit while writing; the in-memory
    /// state stays intact, so a retry is safe.
    pub fn flush(&self) -> io::Result<()> {
        self.flush_impl(None).map(|_| ())
    }

    /// The engine behind [`Store::flush`] and [`Store::gc`]:
    /// merge → (maybe) evict → commit. `force_budget` compacts
    /// unconditionally (gc); otherwise the configured
    /// [`Store::set_compact_budget`] applies with its 2× trigger.
    fn flush_impl(&self, force_budget: Option<u64>) -> io::Result<Option<GcReport>> {
        let _span = alice_obs::span("store.flush");
        let configured = *self.compact_budget.lock().expect("budget lock");
        // A compaction may evict from — and therefore rewrite — ANY
        // shard, so when one can run the flush must see (and lock) the
        // whole store at once. Without a possible compaction, each dirty
        // shard is merged + rewritten under its own lock only.
        if force_budget.is_some() || configured.is_some() {
            return self.flush_compacting(force_budget, configured);
        }
        for kind in Kind::ALL {
            for shard in 0..SHARD_COUNT {
                // The skip scan reads a store-level flag, never the
                // shard lock: a clean shard another handle is busy
                // rewriting costs this flush nothing.
                if !self.dirty_flag(kind, shard).load(Ordering::SeqCst) {
                    continue;
                }
                let mut state = self.shard(kind, shard);
                self.merge_shard(kind, shard, &mut state);
                self.rewrite_shard(kind, shard, &mut state)?;
            }
        }
        self.commit_access_if_dirty()?;
        Ok(None)
    }

    /// The whole-store flush path: locks every shard (kind-major order),
    /// merges every shard with its on-disk copy so eviction accounting
    /// sees the store's true contents (foreign records included), evicts
    /// to the budget, and commits every dirty shard.
    fn flush_compacting(
        &self,
        force_budget: Option<u64>,
        configured: Option<u64>,
    ) -> io::Result<Option<GcReport>> {
        let mut guards: Vec<MutexGuard<'_, ShardState>> = Vec::with_capacity(5 * SHARD_COUNT);
        for kind in Kind::ALL {
            for shard in 0..SHARD_COUNT {
                guards.push(self.shard(kind, shard));
            }
        }
        for kind in Kind::ALL {
            for shard in 0..SHARD_COUNT {
                let state = &mut guards[kind.index() * SHARD_COUNT + shard];
                self.merge_shard(kind, shard, state);
            }
        }
        let report = if let Some(budget) = force_budget {
            Some(self.evict_to_budget(&mut guards, budget))
        } else {
            if let Some(budget) = configured {
                let total: u64 = guards.iter().map(|g| g.payload_bytes()).sum();
                if total > budget.saturating_mul(2) {
                    self.evict_to_budget(&mut guards, budget);
                }
            }
            None
        };
        for kind in Kind::ALL {
            for shard in 0..SHARD_COUNT {
                if !self.dirty_flag(kind, shard).load(Ordering::SeqCst) {
                    continue;
                }
                let state = &mut guards[kind.index() * SHARD_COUNT + shard];
                self.rewrite_shard(kind, shard, state)?;
            }
        }
        if self.access_dirty.swap(false, Ordering::SeqCst) {
            let bytes = serialize_access_entries(guards.iter().map(|g| &**g));
            if let Err(e) = commit_file(&self.dir, "access.idx", &bytes) {
                self.access_dirty.store(true, Ordering::SeqCst);
                return Err(e);
            }
        }
        Ok(report)
    }

    /// Folds the current on-disk copy of one shard into `state`:
    /// records a concurrent writer committed since this handle opened
    /// are kept (coldest stamps — this handle never read them), this
    /// handle's records win on key conflicts, tombstoned keys stay
    /// gone. Merging alone never marks a shard dirty (the merged view
    /// equals the disk content there).
    fn merge_shard(&self, kind: Kind, shard: usize, state: &mut ShardState) {
        if let Ok(bytes) = fs::read(self.dir.join(kind.shard_file_name(shard))) {
            let mut disk = ShardState::default();
            load_segment(kind, shard, &bytes, &mut disk);
            for (key, slot) in disk.records {
                if !state.records.contains_key(&key) && !state.evicted.contains(&key) {
                    state.records.insert(key, slot);
                }
            }
        }
    }

    /// Serializes + commits one shard and clears its flush state.
    /// Rewriting serializes every surviving record, so lazily-indexed
    /// payloads are read (and verified) now; one that fails its verify
    /// degrades to a miss here exactly as it would on get.
    fn rewrite_shard(&self, kind: Kind, shard: usize, state: &mut ShardState) -> io::Result<()> {
        let _span = alice_obs::span_with("store.flush.shard", || kind.shard_file_name(shard));
        STORE_SHARD_FLUSHES.inc();
        materialize(state);
        let bytes = serialize_segment(kind, shard, state);
        commit_file(&self.dir, &kind.shard_file_name(shard), &bytes)?;
        self.dirty_flag(kind, shard).store(false, Ordering::SeqCst);
        // The compacted/merged file is committed; tombstones have done
        // their job.
        state.evicted.clear();
        Ok(())
    }

    /// Commits the access-stamp sidecar when any stamp changed, locking
    /// shards one at a time for the snapshot.
    fn commit_access_if_dirty(&self) -> io::Result<()> {
        if !self.access_dirty.swap(false, Ordering::SeqCst) {
            return Ok(());
        }
        let mut entries: Vec<(Kind, usize, Key, u64)> = Vec::new();
        for kind in Kind::ALL {
            for shard in 0..SHARD_COUNT {
                let state = self.shard(kind, shard);
                let mut keys: Vec<&Key> = state.records.keys().collect();
                keys.sort();
                for key in keys {
                    entries.push((kind, shard, *key, state.records[key].stamp));
                }
            }
        }
        let bytes = serialize_access_flat(&entries);
        if let Err(e) = commit_file(&self.dir, "access.idx", &bytes) {
            self.access_dirty.store(true, Ordering::SeqCst);
            return Err(e);
        }
        Ok(())
    }

    /// Evicts least-recently-accessed records until the store fits in
    /// `budget_bytes`, then commits the compacted shards. The budget
    /// bounds the whole merged store: records a concurrent writer
    /// committed since this handle opened are folded in (and count)
    /// before eviction.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] when the compacted files cannot be
    /// written.
    pub fn gc(&self, budget_bytes: u64) -> io::Result<GcReport> {
        Ok(self
            .flush_impl(Some(budget_bytes))?
            .expect("forced budget always produces a report"))
    }

    /// Removes every record (in memory and on disk), including any
    /// legacy v2 segment files still present.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] when a segment file cannot be removed.
    pub fn clear(&self) -> io::Result<()> {
        let mut guards: Vec<MutexGuard<'_, ShardState>> = Vec::with_capacity(5 * SHARD_COUNT);
        for kind in Kind::ALL {
            for shard in 0..SHARD_COUNT {
                guards.push(self.shard(kind, shard));
            }
        }
        for guard in &mut guards {
            **guard = ShardState::default();
        }
        let mut names: Vec<String> = Vec::new();
        for kind in Kind::ALL {
            names.push(kind.file_name().to_string());
            for shard in 0..SHARD_COUNT {
                names.push(kind.shard_file_name(shard));
            }
        }
        names.push("access.idx".to_string());
        for name in names {
            match fs::remove_file(self.dir.join(&name)) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        self.access_dirty.store(false, Ordering::SeqCst);
        Ok(())
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        // Best-effort commit; an explicit flush is the checked path.
        let _ = self.flush();
    }
}

/// Writes `bytes` to a uniquely-named tempfile in the store directory,
/// renames it over `name` (atomic on POSIX), then fsyncs the directory
/// itself: the rename lives in directory metadata, so without the
/// directory fsync a crash shortly after a flush could roll the commit
/// back despite the crash-safety contract.
fn commit_file(dir: &Path, name: &str, bytes: &[u8]) -> io::Result<()> {
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp = dir.join(format!(".{name}.tmp.{}.{seq}", std::process::id()));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    if let Err(e) = fs::rename(&tmp, dir.join(name)) {
        let _ = fs::remove_file(&tmp);
        return Err(e);
    }
    fsync_dir(dir)
}

/// Syncs a directory's metadata (the rename-durability half of an
/// atomic commit).
#[cfg(unix)]
fn fsync_dir(dir: &Path) -> io::Result<()> {
    fs::File::open(dir)?.sync_all()
}

/// Non-POSIX platforms cannot open a directory handle through std;
/// rename durability is best-effort there.
#[cfg(not(unix))]
fn fsync_dir(_dir: &Path) -> io::Result<()> {
    Ok(())
}

/// Positioned read that never moves a shared cursor (concurrent gets
/// through one handle must not race on a seek position).
#[cfg(unix)]
fn read_exact_at(file: &fs::File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

#[cfg(not(unix))]
fn read_exact_at(file: &fs::File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = file.try_clone()?;
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(buf)
}

/// The per-record checksum: a [`StableHasher`] digest over the key and
/// the payload. Folding the key in means a key bit-flip fails the
/// verify instead of silently re-homing a valid payload under the wrong
/// content address. Unchanged since v2 — which is exactly why the
/// v2 → v3 migration can re-home records verbatim.
fn record_digest(key: Key, payload: &[u8]) -> (u64, u64) {
    let mut h = StableHasher::new();
    h.write_u64(key.0);
    h.write_u64(key.1);
    h.write(payload);
    h.finish()
}

/// Verifies one record **in place** through the shard's mapping: no
/// payload copy, just a digest walk over the mapped bytes. The held
/// file handle guards against in-place truncation *after* open (a
/// shrunk inode would make the mapped tail fault, so a record whose
/// frame now hangs past EOF degrades to a miss instead of being
/// touched).
fn mapped_record_intact(
    file: Option<&fs::File>,
    map: &Mmap,
    key: Key,
    offset: u64,
    len: u32,
) -> bool {
    let end = offset + u64::from(len) + 16;
    if let Some(f) = file {
        match f.metadata() {
            Ok(md) if md.len() >= end => {}
            _ => return false,
        }
    }
    let start = offset as usize;
    let payload_end = start + len as usize;
    let payload = &map[start..payload_end];
    let c0 = u64::from_le_bytes(map[payload_end..payload_end + 8].try_into().expect("8"));
    let c1 = u64::from_le_bytes(
        map[payload_end + 8..payload_end + 16]
            .try_into()
            .expect("8"),
    );
    record_digest(key, payload) == (c0, c1)
}

/// Reads one record's payload + checksum at `offset` through the
/// shard's held handle and verifies the digest. `None` on any short
/// read or checksum mismatch — the get-time degrade-to-miss path for
/// handles without a mapping.
fn read_verified(file: &fs::File, key: Key, offset: u64, len: u32) -> Option<Vec<u8>> {
    let len = len as usize;
    let mut buf = vec![0u8; len + 16];
    read_exact_at(file, &mut buf, offset).ok()?;
    let c0 = u64::from_le_bytes(buf[len..len + 8].try_into().expect("8"));
    let c1 = u64::from_le_bytes(buf[len + 8..].try_into().expect("8"));
    if record_digest(key, &buf[..len]) != (c0, c1) {
        return None;
    }
    buf.truncate(len);
    Some(buf)
}

/// Reads every lazily-indexed payload into the heap (through the
/// mapping where available, else the held handle) so a rewrite can
/// serialize it; records that fail the read or the checksum are dropped
/// (degrade to a miss, never serialize garbage).
fn materialize(state: &mut ShardState) {
    let file = state.file.clone();
    let map = state.map.clone();
    let mut bad: Vec<Key> = Vec::new();
    for (key, slot) in state.records.iter_mut() {
        if let Slot::OnDisk { offset, .. } = slot.payload {
            let read = match &map {
                Some(m) => {
                    let in_bounds = (offset as usize)
                        .checked_add(slot.len as usize + 16)
                        .is_some_and(|end| end <= m.len());
                    if in_bounds && mapped_record_intact(file.as_deref(), m, *key, offset, slot.len)
                    {
                        Some(m[offset as usize..offset as usize + slot.len as usize].to_vec())
                    } else {
                        None
                    }
                }
                None => file
                    .as_deref()
                    .and_then(|f| read_verified(f, *key, offset, slot.len)),
            };
            match read {
                Some(payload) => slot.payload = Slot::Owned(Arc::new(payload)),
                None => bad.push(*key),
            }
        }
    }
    for key in bad {
        state.records.remove(&key);
    }
}

impl Store {
    /// LRU-evicts records until the store fits in `budget_bytes`,
    /// recording tombstones so the flush-time merge cannot resurrect
    /// the dropped keys. The shared engine behind [`Store::gc`] and
    /// flush-time opportunistic compaction; expects the caller to hold
    /// every shard's guard in kind-major order.
    fn evict_to_budget(
        &self,
        guards: &mut [MutexGuard<'_, ShardState>],
        budget_bytes: u64,
    ) -> GcReport {
        let mut report = GcReport::default();
        // (stamp, guard index, key, size) over every record.
        let mut all: Vec<(u64, usize, Key, u64)> = Vec::new();
        for (idx, guard) in guards.iter().enumerate() {
            for (key, slot) in &guard.records {
                all.push((slot.stamp, idx, *key, slot.len as u64 + RECORD_OVERHEAD));
            }
        }
        report.bytes_before = all.iter().map(|&(_, _, _, s)| s).sum();
        // Newest first, with deterministic tie-breaks.
        all.sort_by(|a, b| b.0.cmp(&a.0).then(a.2.cmp(&b.2)).then(a.1.cmp(&b.1)));
        let mut used = 0u64;
        for (_, idx, key, size) in all {
            if used + size <= budget_bytes {
                used += size;
                report.kept += 1;
            } else {
                let state = &mut guards[idx];
                state.records.remove(&key);
                state.evicted.insert(key);
                self.dirty[idx / SHARD_COUNT][idx % SHARD_COUNT].store(true, Ordering::SeqCst);
                report.dropped += 1;
            }
        }
        report.bytes_after = used;
        report
    }
}

/// Serializes one shard's records into segment-file bytes. Every slot
/// must already be materialized (a flush does this for dirty shards).
fn serialize_segment(kind: Kind, shard: usize, state: &ShardState) -> Vec<u8> {
    let mut out = Vec::with_capacity(state.payload_bytes() as usize + HEADER_LEN);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.push(kind.tag());
    out.push(shard as u8);
    // Deterministic record order (by key) so identical contents always
    // produce identical files.
    let mut keys: Vec<&Key> = state.records.keys().collect();
    keys.sort();
    for key in keys {
        let slot = &state.records[key];
        let bytes = match &slot.payload {
            Slot::Owned(bytes) => bytes,
            Slot::OnDisk { .. } => unreachable!("flush materializes before serializing"),
        };
        out.extend_from_slice(&key.0.to_le_bytes());
        out.extend_from_slice(&key.1.to_le_bytes());
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(bytes);
        let (c0, c1) = record_digest(*key, bytes);
        out.extend_from_slice(&c0.to_le_bytes());
        out.extend_from_slice(&c1.to_le_bytes());
    }
    out
}

/// Checks a v3 shard header: magic, version, kind tag, shard id.
fn shard_header_ok(header: &[u8], kind: Kind, shard: usize) -> bool {
    header.len() >= HEADER_LEN
        && header[..8] == MAGIC
        && u32::from_le_bytes(header[8..12].try_into().expect("4 bytes")) == FORMAT_VERSION
        && header[12] == kind.tag()
        && header[13] == shard as u8
}

/// Scans a shard file's record framing into an offset index without
/// reading any payload bytes. `None` when the header is unreadable or
/// mismatched (the whole file is then treated as empty); a truncated
/// tail drops the remainder. Payload verification is deferred to
/// get-time.
fn index_segment(kind: Kind, shard: usize, file: &fs::File) -> Option<HashMap<Key, RecordSlot>> {
    let size = file.metadata().ok()?.len();
    if size < HEADER_LEN as u64 {
        return None;
    }
    let mut header = [0u8; HEADER_LEN];
    read_exact_at(file, &mut header, 0).ok()?;
    if !shard_header_ok(&header, kind, shard) {
        return None;
    }
    let mut records = HashMap::new();
    let mut pos = HEADER_LEN as u64;
    let mut frame = [0u8; 20];
    while size - pos >= RECORD_OVERHEAD {
        if read_exact_at(file, &mut frame, pos).is_err() {
            break;
        }
        let k0 = u64::from_le_bytes(frame[..8].try_into().expect("8"));
        let k1 = u64::from_le_bytes(frame[8..16].try_into().expect("8"));
        let len = u32::from_le_bytes(frame[16..20].try_into().expect("4"));
        pos += 20;
        if size - pos < len as u64 + 16 {
            break; // truncated tail (e.g. a crash mid-append)
        }
        records.insert(
            (k0, k1),
            RecordSlot {
                payload: Slot::OnDisk {
                    offset: pos,
                    verified: false,
                },
                len,
                stamp: 0,
            },
        );
        pos += len as u64 + 16;
    }
    Some(records)
}

/// Loads a shard from a full byte image, verifying every record — the
/// eager path the flush-time merge uses on the *current* on-disk copy
/// (whose offsets may not match this handle's held inode). A bad header
/// drops the whole file, a bad checksum drops that record, a truncated
/// tail drops the remainder.
fn load_segment(kind: Kind, shard: usize, bytes: &[u8], state: &mut ShardState) {
    if !shard_header_ok(bytes, kind, shard) {
        return;
    }
    let mut pos = HEADER_LEN;
    while bytes.len() - pos >= RECORD_OVERHEAD as usize {
        let k0 = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8"));
        let k1 = u64::from_le_bytes(bytes[pos + 8..pos + 16].try_into().expect("8"));
        let len = u32::from_le_bytes(bytes[pos + 16..pos + 20].try_into().expect("4")) as usize;
        pos += 20;
        if bytes.len() - pos < len + 16 {
            return; // truncated tail (e.g. a crash mid-append)
        }
        let payload = &bytes[pos..pos + len];
        pos += len;
        let c0 = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8"));
        let c1 = u64::from_le_bytes(bytes[pos + 8..pos + 16].try_into().expect("8"));
        pos += 16;
        if record_digest((k0, k1), payload) != (c0, c1) {
            continue; // corrupted record: degrade to a miss
        }
        state.records.insert(
            (k0, k1),
            RecordSlot {
                payload: Slot::Owned(Arc::new(payload.to_vec())),
                len: len as u32,
                stamp: 0,
            },
        );
    }
}

/// Walks a segment body's record framing (no verification), returning
/// each record's key and its raw byte range — the verbatim-copy
/// primitive the v2 → v3 migration is built on. Stops at the first
/// frame that runs past the end (truncated tail).
fn scan_record_frames(bytes: &[u8], header_len: usize) -> Vec<(Key, std::ops::Range<usize>)> {
    let mut out = Vec::new();
    let mut pos = header_len;
    while bytes.len().saturating_sub(pos) >= RECORD_OVERHEAD as usize {
        let start = pos;
        let k0 = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8"));
        let k1 = u64::from_le_bytes(bytes[pos + 8..pos + 16].try_into().expect("8"));
        let len = u32::from_le_bytes(bytes[pos + 16..pos + 20].try_into().expect("4")) as usize;
        pos += 20;
        if bytes.len() - pos < len + 16 {
            break;
        }
        pos += len + 16;
        out.push(((k0, k1), start..pos));
    }
    out
}

/// One-shot, in-place v2 → v3 migration of one kind: splits the legacy
/// single-segment file's records **verbatim** into per-shard files (the
/// checksum formula is unchanged, so nothing is recomputed and payloads
/// stay byte-identical), unions with any shard content already present
/// (a crash mid-migration re-runs safely; existing shard records win on
/// key conflicts), and removes the legacy file only once every shard is
/// durably committed. Invalid or non-v2 legacy files are left alone and
/// treated as empty.
fn migrate_legacy_segment(dir: &Path, kind: Kind) {
    let legacy_path = dir.join(kind.file_name());
    let Ok(bytes) = fs::read(&legacy_path) else {
        return;
    };
    if bytes.len() < LEGACY_HEADER_LEN
        || bytes[..8] != MAGIC
        || u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) != LEGACY_FORMAT_VERSION
        || bytes[12] != kind.tag()
    {
        return;
    }
    // Bucket the legacy records' raw frames by destination shard.
    let mut buckets: [Vec<(Key, std::ops::Range<usize>)>; SHARD_COUNT] = Default::default();
    for (key, range) in scan_record_frames(&bytes, LEGACY_HEADER_LEN) {
        buckets[shard_of(key)].push((key, range));
    }
    for (shard, bucket) in buckets.iter().enumerate() {
        if bucket.is_empty() {
            continue;
        }
        // Union with whatever this shard already holds (a previous
        // migration attempt, or records flushed between the crash and
        // this re-run): existing records are newer, so they win.
        let existing = fs::read(dir.join(kind.shard_file_name(shard))).unwrap_or_default();
        let mut out = Vec::with_capacity(existing.len() + bytes.len() / SHARD_COUNT + HEADER_LEN);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.push(kind.tag());
        out.push(shard as u8);
        let mut taken: HashSet<Key> = HashSet::new();
        if shard_header_ok(&existing, kind, shard) {
            for (key, range) in scan_record_frames(&existing, HEADER_LEN) {
                taken.insert(key);
                out.extend_from_slice(&existing[range]);
            }
        }
        for (key, range) in bucket {
            if taken.insert(*key) {
                out.extend_from_slice(&bytes[range.clone()]);
            }
        }
        if commit_file(dir, &kind.shard_file_name(shard), &out).is_err() {
            // Leave the legacy file in place: the next open retries the
            // migration, and until then the un-migrated records merely
            // read as misses.
            return;
        }
    }
    let _ = fs::remove_file(&legacy_path);
    let _ = fsync_dir(dir);
}

/// Serializes access entries from held shard guards (the compacting
/// flush path, which cannot re-lock).
fn serialize_access_entries<'a>(states: impl Iterator<Item = &'a ShardState>) -> Vec<u8> {
    let mut entries: Vec<(Kind, usize, Key, u64)> = Vec::new();
    for (idx, state) in states.enumerate() {
        let kind = Kind::ALL[idx / SHARD_COUNT];
        let shard = idx % SHARD_COUNT;
        let mut keys: Vec<&Key> = state.records.keys().collect();
        keys.sort();
        for key in keys {
            entries.push((kind, shard, *key, state.records[key].stamp));
        }
    }
    serialize_access_flat(&entries)
}

/// The access-index wire format: header, then 26-byte entries of
/// `kind(1) · shard(1) · key(16) · stamp(8)`. Entries carry the shard
/// id so a stamp applies with a direct `[kind][shard]` slot lookup —
/// no shard has to be searched (or even opened) to find the key.
fn serialize_access_flat(entries: &[(Kind, usize, Key, u64)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + entries.len() * 26);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    for (kind, shard, key, stamp) in entries {
        out.push(kind.tag());
        out.push(*shard as u8);
        out.extend_from_slice(&key.0.to_le_bytes());
        out.extend_from_slice(&key.1.to_le_bytes());
        out.extend_from_slice(&stamp.to_le_bytes());
    }
    out
}

/// Parses the access-stamp sidecar. A corrupt entry (bad kind tag, bad
/// shard id, or a shard that disagrees with the key's low bits) keeps
/// all earlier entries and degrades only the remainder to coldest.
fn parse_access(bytes: &[u8]) -> Option<Vec<(Kind, usize, Key, u64)>> {
    if bytes.len() < 12 || bytes[..8] != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return None;
    }
    let mut out = Vec::new();
    let mut pos = 12;
    while bytes.len() - pos >= 26 {
        let kind = match Kind::from_tag(bytes[pos]) {
            Some(kind) => kind,
            None => break,
        };
        let shard = bytes[pos + 1] as usize;
        let k0 = u64::from_le_bytes(bytes[pos + 2..pos + 10].try_into().expect("8"));
        let k1 = u64::from_le_bytes(bytes[pos + 10..pos + 18].try_into().expect("8"));
        let stamp = u64::from_le_bytes(bytes[pos + 18..pos + 26].try_into().expect("8"));
        if shard >= SHARD_COUNT || shard != shard_of((k0, k1)) {
            break;
        }
        out.push((kind, shard, (k0, k1), stamp));
        pos += 26;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "alice-store-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// Hand-rolls a segment file image (v2 legacy when `shard` is
    /// `None`, v3 when it carries the shard byte) — the fixture builder
    /// for migration tests.
    fn raw_segment(
        version: u32,
        kind: Kind,
        shard: Option<u8>,
        records: &[(Key, Vec<u8>)],
    ) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        out.push(kind.tag());
        if let Some(s) = shard {
            out.push(s);
        }
        for (key, payload) in records {
            out.extend_from_slice(&key.0.to_le_bytes());
            out.extend_from_slice(&key.1.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(payload);
            let (c0, c1) = record_digest(*key, payload);
            out.extend_from_slice(&c0.to_le_bytes());
            out.extend_from_slice(&c1.to_le_bytes());
        }
        out
    }

    fn contains_subslice(haystack: &[u8], needle: &[u8]) -> bool {
        !needle.is_empty() && haystack.windows(needle.len()).any(|w| w == needle)
    }

    #[test]
    fn shard_of_uses_low_key_bits() {
        assert_eq!(shard_of((0, 99)), 0);
        assert_eq!(shard_of((1, 0)), 1);
        assert_eq!(shard_of((9, 9)), 1, "only key.0's low bits matter");
        assert_eq!(shard_of((u64::MAX, 0)), SHARD_COUNT - 1);
        assert_eq!(Kind::Netlist.shard_file_name(3), "netlists.03.seg");
    }

    #[test]
    fn records_survive_reopen() {
        let dir = tmp_dir("reopen");
        {
            let s = Store::open(&dir).expect("open");
            s.put(Kind::Netlist, (1, 2), vec![10, 20, 30]);
            s.put(Kind::Fabric, (3, 4), vec![40]);
            s.flush().expect("flush");
        }
        let s = Store::open(&dir).expect("reopen");
        assert_eq!(
            s.get(Kind::Netlist, (1, 2)).map(|b| b.to_vec()),
            Some(vec![10, 20, 30])
        );
        assert_eq!(
            s.get(Kind::Fabric, (3, 4)).map(|b| b.to_vec()),
            Some(vec![40])
        );
        assert_eq!(s.get(Kind::LutMap, (1, 2)), None);
        assert_eq!(s.stats().records(), 2);
        // Records landed in their keys' shard files.
        assert!(dir.join(Kind::Netlist.shard_file_name(1)).exists());
        assert!(dir.join(Kind::Fabric.shard_file_name(3)).exists());
        assert!(
            !dir.join(Kind::Netlist.file_name()).exists(),
            "no legacy file"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_flushes() {
        let dir = tmp_dir("drop");
        {
            let s = Store::open(&dir).expect("open");
            s.put(Kind::Cec, (9, 9), vec![1, 2, 3]);
            // no explicit flush
        }
        let s = Store::open(&dir).expect("reopen");
        assert!(s.get(Kind::Cec, (9, 9)).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lemma_records_survive_reopen() {
        let dir = tmp_dir("lemma");
        {
            let s = Store::open(&dir).expect("open");
            s.put(Kind::Lemma, (11, 22), vec![3; 9]);
            s.flush().expect("flush");
        }
        let s = Store::open(&dir).expect("reopen");
        assert_eq!(
            s.get(Kind::Lemma, (11, 22)).map(|b| b.to_vec()),
            Some(vec![3; 9])
        );
        assert!(s.stats().to_string().contains("lemma"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_payload_degrades_to_miss_only_for_that_record() {
        let dir = tmp_dir("corrupt");
        {
            let s = Store::open(&dir).expect("open");
            // Both keys share shard 1, so the flip and its survivor live
            // in one file.
            s.put(Kind::LutMap, (1, 1), vec![7; 64]);
            s.put(Kind::LutMap, (9, 9), vec![8; 64]);
            s.flush().expect("flush");
        }
        // Flip a bit inside the first record's payload.
        let path = dir.join(Kind::LutMap.shard_file_name(1));
        let mut bytes = fs::read(&path).expect("read segment");
        bytes[HEADER_LEN + 20 + 5] ^= 0x40;
        fs::write(&path, &bytes).expect("rewrite");
        // The lazy open indexes both records (payloads unread); the
        // verify-on-get drops exactly the flipped one.
        let s = Store::open(&dir).expect("reopen");
        assert_eq!(s.stats().kinds[Kind::LutMap.index()].records, 2);
        assert_eq!(s.get(Kind::LutMap, (1, 1)), None, "corrupt record misses");
        assert_eq!(
            s.get(Kind::LutMap, (9, 9)).map(|b| b.to_vec()),
            Some(vec![8; 64]),
            "its neighbor survives"
        );
        let survivors = s.stats().kinds[Kind::LutMap.index()].records;
        assert_eq!(survivors, 1, "exactly the flipped record is dropped");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_key_byte_degrades_to_miss() {
        let dir = tmp_dir("keyflip");
        {
            let s = Store::open(&dir).expect("open");
            s.put(Kind::LutMap, (1, 1), vec![7; 64]);
            s.put(Kind::LutMap, (9, 9), vec![8; 64]);
            s.flush().expect("flush");
        }
        // Flip a bit inside the first record's *key* (above the shard
        // bits, so the mutated key still routes to this shard). The
        // checksum folds the key, so the payload must not resurface
        // under the mutated content address.
        let path = dir.join(Kind::LutMap.shard_file_name(1));
        let mut bytes = fs::read(&path).expect("read segment");
        bytes[HEADER_LEN + 3] ^= 0x40;
        fs::write(&path, &bytes).expect("rewrite");
        let s = Store::open(&dir).expect("reopen");
        let mutated = (1u64 ^ (0x40u64 << 24), 1u64);
        assert_eq!(shard_of(mutated), 1, "mutation stays in the shard");
        assert_eq!(s.get(Kind::LutMap, (1, 1)), None, "original key misses");
        assert_eq!(
            s.get(Kind::LutMap, mutated),
            None,
            "payload does not re-home under the flipped key"
        );
        assert_eq!(
            s.get(Kind::LutMap, (9, 9)).map(|b| b.to_vec()),
            Some(vec![8; 64])
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_after_open_degrades_at_get() {
        let dir = tmp_dir("corrupt-late");
        {
            let s = Store::open(&dir).expect("open");
            s.put(Kind::Cec, (1, 1), vec![7; 64]);
            s.put(Kind::Cec, (9, 9), vec![8; 64]);
            s.flush().expect("flush");
        }
        // Open first (lazy index built, shard mapped), corrupt
        // afterwards: the damage lands between open and the first get,
        // and the mmap-path verify still catches it — a per-record
        // miss, not a crash.
        let s = Store::open(&dir).expect("reopen");
        let path = dir.join(Kind::Cec.shard_file_name(1));
        let mut bytes = fs::read(&path).expect("read segment");
        bytes[HEADER_LEN + 20 + 5] ^= 0x40;
        fs::write(&path, &bytes).expect("rewrite");
        assert_eq!(s.get(Kind::Cec, (1, 1)), None, "caught at get-time");
        assert_eq!(
            s.get(Kind::Cec, (9, 9)).map(|b| b.to_vec()),
            Some(vec![8; 64])
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_after_open_degrades_at_get() {
        let dir = tmp_dir("trunc-late");
        {
            let s = Store::open(&dir).expect("open");
            s.put(Kind::Netlist, (1, 1), vec![7; 64]);
            s.put(Kind::Netlist, (9, 9), vec![8; 64]);
            s.flush().expect("flush");
        }
        let s = Store::open(&dir).expect("reopen");
        let path = dir.join(Kind::Netlist.shard_file_name(1));
        let bytes = fs::read(&path).expect("read");
        fs::write(&path, &bytes[..bytes.len() - 10]).expect("truncate");
        assert_eq!(
            s.get(Kind::Netlist, (9, 9)),
            None,
            "short read degrades to a miss"
        );
        assert_eq!(
            s.get(Kind::Netlist, (1, 1)).map(|b| b.to_vec()),
            Some(vec![7; 64])
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_indexes_without_reading_payloads() {
        let dir = tmp_dir("lazy-open");
        let n = 40u64;
        {
            let s = Store::open(&dir).expect("open");
            for k in 0..n {
                s.put(Kind::Fabric, (k, 0), vec![k as u8; 32]);
            }
            s.flush().expect("flush");
        }
        // Invert every payload byte in every shard (framing intact). If
        // open read or verified payloads, no record would survive the
        // open; since it only scans framing, all records index fine —
        // and every get then fails its verify.
        for shard in 0..SHARD_COUNT {
            let path = dir.join(Kind::Fabric.shard_file_name(shard));
            let mut bytes = fs::read(&path).expect("read");
            let mut pos = HEADER_LEN;
            while pos + 20 <= bytes.len() {
                let len =
                    u32::from_le_bytes(bytes[pos + 16..pos + 20].try_into().expect("4")) as usize;
                pos += 20;
                for b in &mut bytes[pos..pos + len] {
                    *b = !*b;
                }
                pos += len + 16;
            }
            fs::write(&path, &bytes).expect("rewrite");
        }
        let s = Store::open(&dir).expect("reopen");
        assert_eq!(
            s.stats().kinds[Kind::Fabric.index()].records,
            n as usize,
            "open indexed every record without touching payloads"
        );
        for k in 0..n {
            assert_eq!(s.get(Kind::Fabric, (k, 0)), None);
        }
        assert_eq!(s.stats().kinds[Kind::Fabric.index()].records, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_is_dropped() {
        let dir = tmp_dir("trunc");
        {
            let s = Store::open(&dir).expect("open");
            s.put(Kind::Netlist, (1, 1), vec![7; 64]);
            s.put(Kind::Netlist, (9, 9), vec![8; 64]);
            s.flush().expect("flush");
        }
        let path = dir.join(Kind::Netlist.shard_file_name(1));
        let bytes = fs::read(&path).expect("read");
        fs::write(&path, &bytes[..bytes.len() - 10]).expect("truncate");
        let s = Store::open(&dir).expect("reopen");
        assert_eq!(s.stats().kinds[Kind::Netlist.index()].records, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_empties_the_file() {
        let dir = tmp_dir("version");
        {
            let s = Store::open(&dir).expect("open");
            s.put(Kind::Fabric, (5, 5), vec![1]);
            s.flush().expect("flush");
        }
        let path = dir.join(Kind::Fabric.shard_file_name(5));
        let mut bytes = fs::read(&path).expect("read");
        let future = FORMAT_VERSION + 1;
        bytes[8..12].copy_from_slice(&future.to_le_bytes());
        fs::write(&path, &bytes).expect("rewrite");
        let s = Store::open(&dir).expect("reopen");
        assert_eq!(s.stats().records(), 0, "future-version file is ignored");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn access_index_with_corrupt_tag_keeps_earlier_entries() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        let entry = |out: &mut Vec<u8>, tag: u8, shard: u8, key: Key, stamp: u64| {
            out.push(tag);
            out.push(shard);
            out.extend_from_slice(&key.0.to_le_bytes());
            out.extend_from_slice(&key.1.to_le_bytes());
            out.extend_from_slice(&stamp.to_le_bytes());
        };
        entry(&mut bytes, Kind::Netlist.tag(), 1, (1, 0), 7);
        entry(&mut bytes, 0xEE, 2, (2, 0), 8); // corrupt kind tag
        entry(&mut bytes, Kind::Cec.tag(), 3, (3, 0), 9);
        let parsed = parse_access(&bytes).expect("index still parses");
        assert_eq!(
            parsed,
            vec![(Kind::Netlist, 1, (1, 0), 7)],
            "entries before the corrupt tag survive; the remainder is skipped"
        );
    }

    #[test]
    fn access_index_entry_with_wrong_shard_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        let entry = |out: &mut Vec<u8>, shard: u8, key: Key, stamp: u64| {
            out.push(Kind::Netlist.tag());
            out.push(shard);
            out.extend_from_slice(&key.0.to_le_bytes());
            out.extend_from_slice(&key.1.to_le_bytes());
            out.extend_from_slice(&stamp.to_le_bytes());
        };
        entry(&mut bytes, 1, (1, 0), 7);
        // Shard byte disagrees with the key's low bits: corrupt.
        entry(&mut bytes, 4, (2, 0), 8);
        entry(&mut bytes, 3, (3, 0), 9);
        let parsed = parse_access(&bytes).expect("index still parses");
        assert_eq!(parsed, vec![(Kind::Netlist, 1, (1, 0), 7)]);
    }

    #[test]
    fn gc_evicts_least_recently_accessed_first() {
        let dir = tmp_dir("gc");
        let s = Store::open(&dir).expect("open");
        s.put(Kind::Netlist, (1, 0), vec![0; 100]);
        s.put(Kind::Netlist, (2, 0), vec![0; 100]);
        s.put(Kind::Netlist, (3, 0), vec![0; 100]);
        // Touch (1,0) so (2,0) becomes the coldest.
        s.get(Kind::Netlist, (1, 0)).expect("present");
        let per_record = 100 + RECORD_OVERHEAD;
        let report = s.gc(2 * per_record).expect("gc");
        assert_eq!(report.kept, 2);
        assert_eq!(report.dropped, 1);
        assert!(report.bytes_after <= 2 * per_record);
        assert!(
            s.get(Kind::Netlist, (1, 0)).is_some(),
            "recently read survives"
        );
        assert!(
            s.get(Kind::Netlist, (3, 0)).is_some(),
            "recently written survives"
        );
        assert!(s.get(Kind::Netlist, (2, 0)).is_none(), "coldest is evicted");
        // And the eviction is durable.
        drop(s);
        let s = Store::open(&dir).expect("reopen");
        assert_eq!(s.stats().records(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_both_contribute_on_flush() {
        let dir = tmp_dir("merge");
        // Two handles on one directory model two simultaneous
        // processes, with their keys in the SAME shard — the contended
        // case; without the merge the later flush would overwrite the
        // earlier one's additions.
        let a = Store::open(&dir).expect("open a");
        let b = Store::open(&dir).expect("open b");
        a.put(Kind::Netlist, (8, 0), vec![0xAA; 8]);
        b.put(Kind::Netlist, (16, 0), vec![0xBB; 8]);
        a.flush().expect("flush a");
        b.flush().expect("flush b");
        drop(a);
        drop(b);
        let s = Store::open(&dir).expect("reopen");
        assert_eq!(
            s.get(Kind::Netlist, (8, 0)).map(|v| v.to_vec()),
            Some(vec![0xAA; 8]),
            "first writer's record survives the second writer's flush"
        );
        assert_eq!(
            s.get(Kind::Netlist, (16, 0)).map(|v| v.to_vec()),
            Some(vec![0xBB; 8])
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn merge_prefers_this_handles_record_on_conflict() {
        let dir = tmp_dir("merge-conflict");
        let a = Store::open(&dir).expect("open a");
        let b = Store::open(&dir).expect("open b");
        a.put(Kind::Fabric, (7, 7), vec![1]);
        a.flush().expect("flush a");
        b.put(Kind::Fabric, (7, 7), vec![2]);
        b.flush().expect("flush b");
        drop((a, b));
        let s = Store::open(&dir).expect("reopen");
        assert_eq!(
            s.get(Kind::Fabric, (7, 7)).map(|v| v.to_vec()),
            Some(vec![2]),
            "the flushing handle's own record wins its flush"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_eviction_is_not_resurrected_by_the_merge() {
        let dir = tmp_dir("merge-gc");
        let s = Store::open(&dir).expect("open");
        s.put(Kind::Netlist, (1, 0), vec![0; 100]);
        s.put(Kind::Netlist, (2, 0), vec![0; 100]);
        s.flush().expect("flush");
        // Both records are on disk (in different shards); evicting one
        // must stick even though the gc's own flush re-reads that very
        // shard file for the merge.
        s.get(Kind::Netlist, (1, 0)).expect("warm");
        let report = s.gc(100 + RECORD_OVERHEAD).expect("gc");
        assert_eq!((report.kept, report.dropped), (1, 1));
        drop(s);
        let s = Store::open(&dir).expect("reopen");
        assert_eq!(s.stats().records(), 1);
        assert!(s.get(Kind::Netlist, (1, 0)).is_some());
        assert!(s.get(Kind::Netlist, (2, 0)).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_tombstones_hold_across_shards() {
        let dir = tmp_dir("gc-shards");
        let s = Store::open(&dir).expect("open");
        // Six records spread over six different shards, all on disk.
        for k in 0..6u64 {
            s.put(Kind::Lemma, (k, k), vec![k as u8; 100]);
        }
        s.flush().expect("flush");
        // Warm two of them, then compact to two records: evictions land
        // in four DIFFERENT shard files, and every one must tombstone.
        s.get(Kind::Lemma, (4, 4)).expect("warm");
        s.get(Kind::Lemma, (5, 5)).expect("warm");
        let per_record = 100 + RECORD_OVERHEAD;
        let report = s.gc(2 * per_record).expect("gc");
        assert_eq!((report.kept, report.dropped), (2, 4));
        drop(s);
        let s = Store::open(&dir).expect("reopen");
        assert_eq!(s.stats().records(), 2);
        assert!(s.get(Kind::Lemma, (4, 4)).is_some());
        assert!(s.get(Kind::Lemma, (5, 5)).is_some());
        for k in 0..4u64 {
            assert!(
                s.get(Kind::Lemma, (k, k)).is_none(),
                "evicted record resurrected from shard {k}"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_rewrites_foreign_kinds_from_the_merged_state() {
        let dir = tmp_dir("merge-foreign-compact");
        let per_record = 100 + RECORD_OVERHEAD;
        // B opens before A commits anything, so B's open-time snapshot
        // of the Fabric kind is empty.
        let a = Store::open(&dir).expect("open a");
        let b = Store::open(&dir).expect("open b");
        for k in 0..3 {
            a.put(Kind::Fabric, (k, 0), vec![0xFA; 100]);
        }
        a.flush().expect("flush a");
        for k in 0..3 {
            b.put(Kind::Netlist, (k, 1), vec![0x11; 100]);
        }
        // B compacts to 4 records: the budget must bound the MERGED
        // store (6 records), evicting the two coldest foreign fabric
        // records — not erase A's kind from a stale snapshot, and not
        // ignore it and leave the store over budget.
        let report = b.gc(4 * per_record).expect("gc");
        assert_eq!(report.bytes_before, 6 * per_record, "union accounted");
        assert_eq!((report.kept, report.dropped), (4, 2));
        drop((a, b));
        let s = Store::open(&dir).expect("reopen");
        assert_eq!(s.stats().records(), 4);
        assert!(s.stats().bytes() <= 4 * per_record, "really under budget");
        for k in 0..3 {
            assert!(
                s.get(Kind::Netlist, (k, 1)).is_some(),
                "B's own (warm) records survive"
            );
        }
        assert_eq!(
            s.stats().kinds[Kind::Fabric.index()].records,
            1,
            "exactly the budget's worth of A's records survives"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_compacts_past_twice_the_budget() {
        let dir = tmp_dir("autogc");
        let s = Store::open(&dir).expect("open");
        let per_record = 100 + RECORD_OVERHEAD;
        s.set_compact_budget(Some(2 * per_record));
        // Two records: exactly the budget — under 2×, flush leaves them.
        s.put(Kind::Netlist, (1, 0), vec![0; 100]);
        s.put(Kind::Netlist, (2, 0), vec![0; 100]);
        s.flush().expect("flush");
        assert_eq!(s.stats().records(), 2, "within 2x budget: no eviction");
        // Three more push the store past 2× the budget: the flush
        // compacts back down to the budget, coldest first.
        s.put(Kind::Netlist, (3, 0), vec![0; 100]);
        s.put(Kind::Netlist, (4, 0), vec![0; 100]);
        s.put(Kind::Netlist, (5, 0), vec![0; 100]);
        // Touch (1,0) so it is warm again.
        s.get(Kind::Netlist, (1, 0)).expect("present");
        s.flush().expect("flush");
        assert_eq!(s.stats().records(), 2, "compacted to the budget");
        assert!(s.stats().bytes() <= 2 * per_record);
        assert!(s.get(Kind::Netlist, (1, 0)).is_some(), "warm survives");
        // And the compaction is durable across reopen.
        drop(s);
        let s = Store::open(&dir).expect("reopen");
        assert_eq!(s.stats().records(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_removes_everything() {
        let dir = tmp_dir("clear");
        let s = Store::open(&dir).expect("open");
        s.put(Kind::Cec, (1, 1), vec![9]);
        s.flush().expect("flush");
        s.clear().expect("clear");
        assert_eq!(s.stats().records(), 0);
        drop(s);
        let s = Store::open(&dir).expect("reopen");
        assert_eq!(s.stats().records(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_stamps_survive_reopen() {
        let dir = tmp_dir("stamps");
        {
            let s = Store::open(&dir).expect("open");
            s.put(Kind::Netlist, (1, 0), vec![0; 10]);
            s.put(Kind::Netlist, (2, 0), vec![0; 10]);
            s.get(Kind::Netlist, (1, 0)).expect("present");
            s.flush().expect("flush");
        }
        // After reopen, (1,0) is still the warmer record.
        let s = Store::open(&dir).expect("reopen");
        let report = s.gc(10 + RECORD_OVERHEAD).expect("gc");
        assert_eq!((report.kept, report.dropped), (1, 1));
        assert!(s.get(Kind::Netlist, (1, 0)).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_display_lists_kinds() {
        let dir = tmp_dir("stats");
        let s = Store::open(&dir).expect("open");
        s.put(Kind::Netlist, (1, 1), vec![0; 8]);
        let text = s.stats().to_string();
        assert!(text.contains("netlist"));
        assert!(text.contains("lemma"));
        assert!(text.contains("total"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_table_reports_per_shard_rows() {
        let dir = tmp_dir("shard-table");
        let s = Store::open(&dir).expect("open");
        s.put(Kind::Netlist, (1, 0), vec![0; 8]); // shard 1
        s.put(Kind::Cec, (9, 0), vec![0; 8]); // shard 1
        s.put(Kind::Lemma, (6, 0), vec![0; 8]); // shard 6
        let stats = s.stats();
        assert_eq!(stats.shards[Kind::Netlist.index()][1].records, 1);
        assert_eq!(stats.shards[Kind::Cec.index()][1].records, 1);
        assert_eq!(stats.shards[Kind::Lemma.index()][6].records, 1);
        assert_eq!(stats.shards[Kind::Lemma.index()][0].records, 0);
        let table = stats.shard_table();
        assert_eq!(
            table.lines().count(),
            SHARD_COUNT + 1,
            "header plus one row per shard"
        );
        assert!(table.contains("tombstones"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disjoint_shard_flushes_survive_concurrent_writers() {
        let dir = tmp_dir("disjoint-flush");
        let s = Arc::new(Store::open(&dir).expect("open"));
        // Writer A owns shards {0, 2}, writer B owns {1, 3}: their puts
        // and flushes never touch a common shard, so both full sets
        // must survive however the two flushes interleave.
        let a = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for i in 0..20u64 {
                    let shard = [0u64, 2][i as usize % 2];
                    s.put(Kind::Netlist, (shard + 8 * i, i), vec![0xA0; 64]);
                    if i % 5 == 4 {
                        s.flush().expect("flush a");
                    }
                }
                s.flush().expect("final flush a");
            })
        };
        let b = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for i in 0..20u64 {
                    let shard = [1u64, 3][i as usize % 2];
                    s.put(Kind::Netlist, (shard + 8 * i, i), vec![0xB0; 64]);
                    if i % 5 == 4 {
                        s.flush().expect("flush b");
                    }
                }
                s.flush().expect("final flush b");
            })
        };
        a.join().expect("writer a");
        b.join().expect("writer b");
        drop(s);
        let s = Store::open(&dir).expect("reopen");
        assert_eq!(s.stats().records(), 40, "no writer lost records");
        for i in 0..20u64 {
            let (ka, kb) = ([0u64, 2][i as usize % 2], [1u64, 3][i as usize % 2]);
            assert!(s.get(Kind::Netlist, (ka + 8 * i, i)).is_some());
            assert!(s.get(Kind::Netlist, (kb + 8 * i, i)).is_some());
        }
        // Only the four owned shards materialized files.
        for shard in 0..SHARD_COUNT {
            let exists = dir.join(Kind::Netlist.shard_file_name(shard)).exists();
            assert_eq!(exists, shard < 4, "shard {shard} file presence");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn v2_store_migrates_in_place_with_verbatim_records() {
        let dir = tmp_dir("migrate");
        fs::create_dir_all(&dir).expect("mkdir");
        // A v2 single-segment store with records destined for many
        // shards, written the way PR 7's code would have.
        let records: Vec<(Key, Vec<u8>)> = (0..20u64)
            .map(|k| ((k * 3, k), vec![k as u8; 48 + k as usize]))
            .collect();
        let legacy = raw_segment(LEGACY_FORMAT_VERSION, Kind::Netlist, None, &records);
        fs::write(dir.join(Kind::Netlist.file_name()), &legacy).expect("write legacy");
        let frames = scan_record_frames(&legacy, LEGACY_HEADER_LEN);
        assert_eq!(frames.len(), records.len());

        let s = Store::open(&dir).expect("open migrates");
        assert!(
            !dir.join(Kind::Netlist.file_name()).exists(),
            "legacy file removed after a successful migration"
        );
        for (key, payload) in &records {
            assert_eq!(
                s.get(Kind::Netlist, *key).map(|b| b.to_vec()),
                Some(payload.clone()),
                "payload byte-identical after migration"
            );
        }
        // Zero recomputation: every record's raw frame (key + len +
        // payload + checksum) appears verbatim in its shard file.
        for (key, range) in &frames {
            let shard_bytes =
                fs::read(dir.join(Kind::Netlist.shard_file_name(shard_of(*key)))).expect("shard");
            assert!(shard_header_ok(&shard_bytes, Kind::Netlist, shard_of(*key)));
            assert!(
                contains_subslice(&shard_bytes, &legacy[range.clone()]),
                "frame copied verbatim into shard {}",
                shard_of(*key)
            );
        }
        drop(s);
        // Second open: nothing left to migrate, still zero misses.
        let s = Store::open(&dir).expect("second open");
        assert_eq!(s.stats().records(), records.len());
        for (key, payload) in &records {
            assert_eq!(
                s.get(Kind::Netlist, *key).map(|b| b.to_vec()),
                Some(payload.clone())
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn migration_unions_with_existing_shards_existing_wins() {
        let dir = tmp_dir("migrate-union");
        fs::create_dir_all(&dir).expect("mkdir");
        // Crash-window scenario: a previous partial migration (or a
        // post-crash flush) already committed shard 1 with a NEWER
        // record for key (1,0); the legacy file still holds the older
        // one plus a key the shard lacks.
        let newer = raw_segment(
            FORMAT_VERSION,
            Kind::Cec,
            Some(1),
            &[((1, 0), vec![0xEE; 8])],
        );
        let legacy = raw_segment(
            LEGACY_FORMAT_VERSION,
            Kind::Cec,
            None,
            &[((1, 0), vec![0x01; 8]), ((9, 0), vec![0x02; 8])],
        );
        fs::write(dir.join(Kind::Cec.shard_file_name(1)), &newer).expect("write shard");
        fs::write(dir.join(Kind::Cec.file_name()), &legacy).expect("write legacy");
        let s = Store::open(&dir).expect("open");
        assert_eq!(
            s.get(Kind::Cec, (1, 0)).map(|b| b.to_vec()),
            Some(vec![0xEE; 8]),
            "the already-migrated (newer) record wins the union"
        );
        assert_eq!(
            s.get(Kind::Cec, (9, 0)).map(|b| b.to_vec()),
            Some(vec![0x02; 8]),
            "the not-yet-migrated record is recovered from the legacy file"
        );
        assert!(!dir.join(Kind::Cec.file_name()).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_legacy_file_is_ignored_not_migrated() {
        let dir = tmp_dir("migrate-bad");
        fs::create_dir_all(&dir).expect("mkdir");
        fs::write(dir.join(Kind::Fabric.file_name()), b"not a store file").expect("write");
        let s = Store::open(&dir).expect("open");
        assert_eq!(s.stats().records(), 0);
        assert!(
            dir.join(Kind::Fabric.file_name()).exists(),
            "unrecognized legacy bytes are left untouched"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_gets_are_zero_copy_where_mapping_exists() {
        let dir = tmp_dir("zero-copy");
        {
            let s = Store::open(&dir).expect("open");
            s.put(Kind::Netlist, (1, 1), vec![7; 256]);
            s.flush().expect("flush");
        }
        let mappable = cfg!(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ));
        let s = Store::open(&dir).expect("reopen");
        let p = s.get(Kind::Netlist, (1, 1)).expect("hit");
        assert_eq!(&p[..], &[7u8; 256][..]);
        assert_eq!(p.is_mapped(), mappable);
        // Second get: still served (verification is memoized), equal.
        let q = s.get(Kind::Netlist, (1, 1)).expect("hit again");
        assert_eq!(p, q);
        let rs = s.read_stats();
        assert_eq!(rs.gets, 2);
        if mappable {
            assert_eq!(rs.mapped_gets, 2);
            assert_eq!(rs.bytes_copied, 0, "mmap path copies nothing");
        } else {
            assert!(rs.bytes_copied >= 256, "fallback path copies the payload");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mmap_disabled_falls_back_to_positioned_reads() {
        let dir = tmp_dir("no-mmap");
        {
            let s = Store::open(&dir).expect("open");
            s.put(Kind::LutMap, (1, 1), vec![9; 128]);
            s.flush().expect("flush");
        }
        let s = Store::open_with(&dir, StoreOptions { mmap: false }).expect("reopen");
        let p = s.get(Kind::LutMap, (1, 1)).expect("hit");
        assert!(!p.is_mapped());
        assert_eq!(&p[..], &[9u8; 128][..]);
        let rs = s.read_stats();
        assert_eq!(rs.mapped_gets, 0);
        assert_eq!(rs.copied_gets, 1);
        assert_eq!(rs.bytes_copied, 128);
        // Corruption still degrades to a miss on this path.
        let path = dir.join(Kind::LutMap.shard_file_name(1));
        let mut bytes = fs::read(&path).expect("read");
        bytes[HEADER_LEN + 20 + 3] ^= 0xFF;
        fs::write(&path, &bytes).expect("rewrite");
        let s = Store::open_with(&dir, StoreOptions { mmap: false }).expect("reopen 2");
        assert_eq!(s.get(Kind::LutMap, (1, 1)), None);
        let _ = fs::remove_dir_all(&dir);
    }
}
