//! Deterministic work-sharding and cooperative racing over scoped
//! threads.
//!
//! The flow's parallel sections (fabric characterization in the select
//! stage, the batch suite driver in `alice-bench`, the portfolio SAT
//! race in `alice-attacks`) all build on the same primitive: N
//! independent index-addressed tasks, pulled from a shared counter by a
//! fixed pool of `std::thread::scope` workers, with results reassembled
//! in index order. Scheduling therefore never affects [`shard`]'s
//! output — `jobs = 1` and `jobs = 64` produce identical results.
//!
//! [`race`] layers a *competitive* mode on top: every worker receives a
//! shared [`CancelToken`], the first worker to produce a result wins and
//! cancels the token, and the scope joins every loser before returning —
//! a finished race can never leave a wedged thread behind.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Resolves a `jobs` knob: the value itself, or the machine's available
/// parallelism when it is `0` ("auto"). The single source of truth for
/// every jobs-style option in the workspace.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs > 0 {
        jobs
    } else {
        std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1)
    }
}

/// Runs `worker` over indices `0..n` on up to `jobs` scoped threads and
/// returns the results in index order.
///
/// `jobs` is clamped to `[1, n]`; with one job (or at most one task) the
/// work runs inline on the caller's thread. A panicking worker poisons
/// the run and propagates the panic once the scope joins.
pub fn shard<T: Send>(n: usize, jobs: usize, worker: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let jobs = jobs.clamp(1, n.max(1));
    if jobs <= 1 || n <= 1 {
        return (0..n).map(worker).collect();
    }
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        let next = &next;
        let done = &done;
        let worker = &worker;
        for w in 0..jobs {
            s.spawn(move || {
                if alice_obs::tracing_enabled() {
                    alice_obs::set_thread_name(&format!("par::shard worker {w}"));
                }
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, worker(i)));
                }
                done.lock().expect("worker panicked").extend(local);
            });
        }
    });
    let mut out = done.into_inner().expect("worker panicked");
    out.sort_by_key(|&(i, _)| i);
    out.into_iter().map(|(_, t)| t).collect()
}

/// A shared, clonable cancellation flag for cooperative racing.
///
/// Long-running workers poll [`CancelToken::is_cancelled`] at natural
/// checkpoints (the CDCL solver checks per decision and per restart) and
/// bail out with an indeterminate answer once it fires. The flag is
/// one-way: there is no reset, a token represents a single race.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fires the token; every clone observes the cancellation.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Has [`CancelToken::cancel`] been called on any clone?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Races `worker` over indices `0..n` on up to `jobs` scoped threads:
/// the first worker to return `Some` wins, the shared [`CancelToken`]
/// fires, and the winning `(index, value)` pair is returned once every
/// worker has joined.
///
/// Workers signal "no answer" (cancelled, or indeterminate on their own
/// merits) by returning `None`; if every worker does, the race returns
/// `None`. Losers that finish after the winner are discarded, so `race`
/// — unlike [`shard`] — is only deterministic if every worker that
/// returns `Some` returns an *equivalent* answer (the portfolio-SAT
/// contract: any definitive verdict is correct, only witnesses differ).
///
/// Built on the same scoped-thread pool as [`shard`]: the scope joins
/// every thread before returning, so a finished race never leaves a
/// wedged worker behind.
pub fn race<T: Send>(
    n: usize,
    jobs: usize,
    worker: impl Fn(usize, &CancelToken) -> Option<T> + Sync,
) -> Option<(usize, T)> {
    let token = CancelToken::new();
    let winner: Mutex<Option<(usize, T)>> = Mutex::new(None);
    let run_one = |i: usize| {
        if token.is_cancelled() {
            return;
        }
        if let Some(v) = worker(i, &token) {
            let mut slot = winner.lock().expect("racer panicked");
            if slot.is_none() {
                *slot = Some((i, v));
                token.cancel();
            }
        }
    };
    let jobs = jobs.clamp(1, n.max(1));
    if jobs <= 1 || n <= 1 {
        // Inline mode: candidates run to completion in index order, the
        // first definitive answer still wins and skips the rest.
        (0..n).for_each(run_one);
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            let next = &next;
            let run_one = &run_one;
            for w in 0..jobs {
                s.spawn(move || {
                    if alice_obs::tracing_enabled() {
                        alice_obs::set_thread_name(&format!("par::race worker {w}"));
                    }
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        run_one(i);
                    }
                });
            }
        });
    }
    winner.into_inner().expect("racer panicked")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order_for_any_job_count() {
        let expect: Vec<usize> = (0..100).map(|i| i * i).collect();
        for jobs in [1, 2, 3, 8, 200] {
            assert_eq!(shard(100, jobs, |i| i * i), expect);
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        assert_eq!(shard(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        shard(64, 7, |i| counts[i].fetch_add(1, Ordering::Relaxed));
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn cancel_token_fires_across_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        t.cancel();
        assert!(u.is_cancelled());
    }

    #[test]
    fn race_returns_a_winner_and_joins_everyone() {
        let finished = AtomicUsize::new(0);
        let won = race(8, 4, |i, token| {
            // Everyone but index 3 spins until cancelled.
            while i != 3 && !token.is_cancelled() {
                std::thread::yield_now();
            }
            finished.fetch_add(1, Ordering::Relaxed);
            (i == 3).then_some(i * 10)
        });
        assert_eq!(won, Some((3, 30)));
        // The scope joined every spawned worker; each either ran to
        // completion or observed the cancellation and bailed.
        assert!(finished.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn race_with_no_answers_returns_none() {
        assert_eq!(race::<usize>(5, 2, |_, _| None), None);
        assert_eq!(race::<usize>(0, 2, |i, _| Some(i)), None);
    }

    #[test]
    fn race_inline_takes_the_first_definitive_answer() {
        let calls = AtomicUsize::new(0);
        let won = race(6, 1, |i, _| {
            calls.fetch_add(1, Ordering::Relaxed);
            (i >= 2).then_some(i)
        });
        assert_eq!(won, Some((2, 2)));
        assert_eq!(calls.load(Ordering::Relaxed), 3, "indices 3..6 skipped");
    }
}
