//! Cut-based k-LUT technology mapping (the ABC/VPR substitute).
//!
//! A depth-oriented priority-cut mapper: for every gate it enumerates up to
//! `CUTS_PER_NODE` k-feasible cuts, ranks them by (depth, size), then
//! extracts a LUT cover from the combinational roots (primary outputs and
//! DFF next-state inputs). Each selected LUT carries its truth table, which
//! later becomes part of the eFPGA configuration bitstream — the "secret"
//! of the redaction scheme.

use crate::ir::{Lit, Netlist, Node, NodeId};
use crate::opt::sweep;
use alice_intern::{StableHasher, Symbol};
use std::collections::HashMap;

/// Maximum cuts kept per node (priority cuts).
const CUTS_PER_NODE: usize = 4;

/// A source reference in the mapped netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappedSrc {
    /// Constant value.
    Const(bool),
    /// Primary-input bit (index into [`MappedNetlist::input_names`]).
    Pi(usize),
    /// Output of LUT `i`.
    Lut(usize),
    /// Q output of flip-flop `i`.
    Dff(usize),
}

/// A mapped k-input LUT.
#[derive(Debug, Clone, PartialEq)]
pub struct Lut {
    /// Input sources, LSB-significant first (≤ k entries).
    pub inputs: Vec<MappedSrc>,
    /// Truth table over the inputs: bit `p` = output when input pattern `p`.
    pub tt: u64,
}

impl Lut {
    /// Evaluates the LUT for a given input pattern.
    pub fn eval(&self, pattern: usize) -> bool {
        (self.tt >> pattern) & 1 == 1
    }
}

/// A mapped flip-flop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappedDff {
    /// Next-state source.
    pub d: MappedSrc,
    /// Power-on value.
    pub init: bool,
}

/// The result of LUT mapping: a LUT+FF network ready for fabric packing.
#[derive(Debug, Clone, Default)]
pub struct MappedNetlist {
    /// Design name.
    pub name: String,
    /// LUT input count (k).
    pub k: u32,
    /// Flat primary-input bit names.
    pub input_names: Vec<Symbol>,
    /// Input ports: name and PI indices (LSB first).
    pub inputs: Vec<(Symbol, Vec<usize>)>,
    /// Mapped LUTs in topological order.
    pub luts: Vec<Lut>,
    /// Mapped flip-flops.
    pub dffs: Vec<MappedDff>,
    /// Hierarchical register-bit names, parallel to [`MappedNetlist::dffs`]
    /// (carried through from elaboration so redaction can pair fabric FFs
    /// with the original design's registers for equivalence checking).
    pub dff_names: Vec<Symbol>,
    /// Output ports: name and sources (LSB first).
    pub outputs: Vec<(Symbol, Vec<MappedSrc>)>,
}

impl MappedNetlist {
    /// Number of LUTs in the cover.
    pub fn lut_count(&self) -> usize {
        self.luts.len()
    }

    /// Number of flip-flops.
    pub fn dff_count(&self) -> usize {
        self.dffs.len()
    }

    /// Primary I/O pin count (input bits + output bits).
    pub fn io_pins(&self) -> usize {
        let ins: usize = self.inputs.iter().map(|(_, b)| b.len()).sum();
        let outs: usize = self.outputs.iter().map(|(_, b)| b.len()).sum();
        ins + outs
    }

    /// Logic depth in LUT levels (0 when there is no logic).
    pub fn depth(&self) -> u32 {
        let mut levels = vec![0u32; self.luts.len()];
        for (i, lut) in self.luts.iter().enumerate() {
            let mut l = 0;
            for inp in &lut.inputs {
                if let MappedSrc::Lut(j) = inp {
                    l = l.max(levels[*j] + 1);
                }
            }
            levels[i] = l;
        }
        levels.iter().copied().max().map(|d| d + 1).unwrap_or(0)
    }

    /// Total configuration bits carried by the LUT truth tables.
    pub fn config_bits(&self) -> usize {
        self.luts.len() * (1usize << self.k)
    }

    /// A deterministic 128-bit *name-free* content hash: LUT structure,
    /// truth tables, FF wiring, and port shapes — but no port or register
    /// names. Fabric characterization ([`create_efpga`]) depends only on
    /// this structure, so two clusters that merge to the same shape (for
    /// example different instances of the same S-box) share one cache
    /// entry even though their prefixed port names differ.
    ///
    /// [`create_efpga`]: https://docs.rs/alice-fabric
    pub fn structural_hash(&self) -> (u64, u64) {
        let mut h = StableHasher::new();
        let src = |h: &mut StableHasher, s: &MappedSrc| match s {
            MappedSrc::Const(b) => {
                h.write_u32(0);
                h.write_u32(*b as u32);
            }
            MappedSrc::Pi(i) => {
                h.write_u32(1);
                h.write_u64(*i as u64);
            }
            MappedSrc::Lut(i) => {
                h.write_u32(2);
                h.write_u64(*i as u64);
            }
            MappedSrc::Dff(i) => {
                h.write_u32(3);
                h.write_u64(*i as u64);
            }
        };
        h.write_u32(self.k);
        h.write_u64(self.input_names.len() as u64);
        h.write_u64(self.inputs.len() as u64);
        for (_, idxs) in &self.inputs {
            h.write_u64(idxs.len() as u64);
            for &i in idxs {
                h.write_u64(i as u64);
            }
        }
        h.write_u64(self.luts.len() as u64);
        for lut in &self.luts {
            h.write_u64(lut.tt);
            h.write_u64(lut.inputs.len() as u64);
            for i in &lut.inputs {
                src(&mut h, i);
            }
        }
        h.write_u64(self.dffs.len() as u64);
        for d in &self.dffs {
            src(&mut h, &d.d);
            h.write_u32(d.init as u32);
        }
        h.write_u64(self.outputs.len() as u64);
        for (_, bits) in &self.outputs {
            h.write_u64(bits.len() as u64);
            for b in bits {
                src(&mut h, b);
            }
        }
        h.finish()
    }
}

/// Errors from mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// k outside the supported 2..=6 range.
    BadK(u32),
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::BadK(k) => write!(f, "unsupported LUT input count k={k} (need 2..=6)"),
        }
    }
}

impl std::error::Error for MapError {}

/// Maps a netlist onto k-input LUTs.
///
/// The netlist is swept first (buffers removed, dead logic dropped).
///
/// # Errors
///
/// Returns [`MapError::BadK`] if `k` is outside 2..=6.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let f = alice_verilog::parse_source(
///     "module m(input wire [7:0] a, input wire [7:0] b, output wire [7:0] y);\
///      assign y = a + b; endmodule")?;
/// let n = alice_netlist::elaborate::elaborate(&f, "m")?;
/// let mapped = alice_netlist::lutmap::map_luts(&n, 4)?;
/// assert!(mapped.lut_count() > 0);
/// assert_eq!(mapped.io_pins(), 24);
/// # Ok(())
/// # }
/// ```
pub fn map_luts(netlist: &Netlist, k: u32) -> Result<MappedNetlist, MapError> {
    if !(2..=6).contains(&k) {
        return Err(MapError::BadK(k));
    }
    let n = sweep(netlist);
    let order = n.comb_topo_order().expect("swept netlist is acyclic");

    // ---- Phase 1: cut enumeration ----
    #[derive(Debug, Clone)]
    struct Cut {
        leaves: Vec<NodeId>, // sorted
        depth: u32,
    }
    let nn = n.len();
    let mut cuts: Vec<Vec<Cut>> = vec![Vec::new(); nn];
    let mut depth: Vec<u32> = vec![0; nn];

    let merge = |a: &[NodeId], b: &[NodeId]| -> Option<Vec<NodeId>> {
        let mut out = Vec::with_capacity(k as usize);
        let (mut i, mut j) = (0, 0);
        while i < a.len() || j < b.len() {
            let next = match (a.get(i), b.get(j)) {
                (Some(&x), Some(&y)) => {
                    if x == y {
                        i += 1;
                        j += 1;
                        x
                    } else if x < y {
                        i += 1;
                        x
                    } else {
                        j += 1;
                        y
                    }
                }
                (Some(&x), None) => {
                    i += 1;
                    x
                }
                (None, Some(&y)) => {
                    j += 1;
                    y
                }
                (None, None) => break,
            };
            if out.len() == k as usize {
                return None;
            }
            out.push(next);
        }
        Some(out)
    };

    for &id in &order {
        let idx = id.0 as usize;
        let node = n.node(id);
        let is_leaf = matches!(node, Node::Const0 | Node::Input { .. } | Node::Dff { .. });
        if is_leaf {
            cuts[idx] = vec![Cut {
                leaves: vec![id],
                depth: 0,
            }];
            depth[idx] = 0;
            continue;
        }
        let fanins = node.fanins();
        let mut cands: Vec<Cut> = Vec::new();
        // Cartesian product of fanin cut lists.
        let fanin_cuts: Vec<&Vec<Cut>> =
            fanins.iter().map(|f| &cuts[f.node().0 as usize]).collect();
        let mut stack: Vec<(usize, Vec<NodeId>)> = vec![(0, Vec::new())];
        while let Some((dim, acc)) = stack.pop() {
            if dim == fanin_cuts.len() {
                // Cut depth in LUT levels: one level on top of the deepest
                // leaf (leaves are mapped LUT outputs or sources).
                let d = acc.iter().map(|l| depth[l.0 as usize]).max().unwrap_or(0);
                cands.push(Cut {
                    leaves: acc,
                    depth: d + 1,
                });
                continue;
            }
            for c in fanin_cuts[dim].iter() {
                if let Some(merged) = merge(&acc, &c.leaves) {
                    stack.push((dim + 1, merged));
                }
            }
        }
        // Deduplicate, rank by (depth, size), keep the best few.
        cands.sort_by(|a, b| {
            a.depth
                .cmp(&b.depth)
                .then(a.leaves.len().cmp(&b.leaves.len()))
                .then(a.leaves.cmp(&b.leaves))
        });
        cands.dedup_by(|a, b| a.leaves == b.leaves);
        cands.truncate(CUTS_PER_NODE);
        depth[idx] = cands.first().map(|c| c.depth).unwrap_or(0);
        // The trivial cut lets fanouts treat this node as a leaf.
        cands.push(Cut {
            leaves: vec![id],
            depth: depth[idx],
        });
        cuts[idx] = cands;
    }

    // ---- Phase 2: cover extraction from the roots ----
    let mut out = MappedNetlist {
        name: n.name.clone(),
        k,
        ..MappedNetlist::default()
    };
    for (name, bits) in &n.inputs {
        let mut idxs = Vec::with_capacity(bits.len());
        for &b in bits {
            let pi = out.input_names.len();
            out.input_names.push(match n.node(b) {
                Node::Input { name } => *name,
                _ => unreachable!("input list holds inputs"),
            });
            idxs.push(pi);
        }
        out.inputs.push((*name, idxs));
    }
    let pi_index: HashMap<NodeId, usize> = n
        .inputs
        .iter()
        .flat_map(|(_, bits)| bits.iter())
        .enumerate()
        .map(|(i, &b)| (b, i))
        .collect();
    let dff_ids = n.dffs();
    let dff_index: HashMap<NodeId, usize> =
        dff_ids.iter().enumerate().map(|(i, &d)| (d, i)).collect();
    out.dff_names = dff_ids
        .iter()
        .map(|&d| match n.node(d) {
            Node::Dff { name, .. } => *name,
            _ => unreachable!("dff list holds DFFs"),
        })
        .collect();

    // mapped (node, phase) -> source. Root complement is absorbed into the
    // LUT truth table, so a complemented root costs nothing extra; only a
    // complemented source node (PI/DFF used inverted at a root) needs a
    // dedicated inverter LUT.
    let mut mapped: HashMap<(NodeId, bool), MappedSrc> = HashMap::new();

    // Resolve a literal (with complement) to a MappedSrc using an explicit
    // post-order stack over the chosen cuts.
    let resolve = |out: &mut MappedNetlist,
                   mapped: &mut HashMap<(NodeId, bool), MappedSrc>,
                   l: Lit|
     -> MappedSrc {
        let root = (l.node(), l.is_compl());
        let mut stack: Vec<((NodeId, bool), bool)> = vec![(root, false)];
        while let Some(((id, phase), expanded)) = stack.pop() {
            if mapped.contains_key(&(id, phase)) {
                continue;
            }
            let node = n.node(id);
            let leaf_src = match node {
                Node::Const0 => Some(MappedSrc::Const(phase)),
                Node::Input { .. } => Some(MappedSrc::Pi(pi_index[&id])),
                Node::Dff { .. } => Some(MappedSrc::Dff(dff_index[&id])),
                _ => None,
            };
            if let Some(src) = leaf_src {
                if phase && !matches!(node, Node::Const0) {
                    // Inverted source: one inverter LUT, cached per node.
                    let lut_idx = out.luts.len();
                    out.luts.push(Lut {
                        inputs: vec![src],
                        tt: 0b01,
                    });
                    mapped.insert((id, true), MappedSrc::Lut(lut_idx));
                } else {
                    mapped.insert((id, phase), src);
                }
                continue;
            }
            let best = &cuts[id.0 as usize][0];
            if !expanded {
                stack.push(((id, phase), true));
                for &leaf in &best.leaves {
                    stack.push(((leaf, false), false));
                }
                continue;
            }
            // All leaves mapped in positive phase: build the LUT.
            let mut tt = cone_truth_table(&n, id, &best.leaves);
            if phase {
                let patterns = 1u32 << best.leaves.len();
                let mask = if patterns == 64 {
                    u64::MAX
                } else {
                    (1u64 << patterns) - 1
                };
                tt = !tt & mask;
            }
            let inputs: Vec<MappedSrc> = best.leaves.iter().map(|l| mapped[&(*l, false)]).collect();
            let lut_idx = out.luts.len();
            out.luts.push(Lut { inputs, tt });
            mapped.insert((id, phase), MappedSrc::Lut(lut_idx));
        }
        mapped[&root]
    };

    // Roots: DFF D inputs first (so feedback resolves), then outputs.
    let mut dff_out: Vec<MappedDff> = Vec::with_capacity(dff_ids.len());
    for &d in &dff_ids {
        let (dl, init) = match n.node(d) {
            Node::Dff { d, init, .. } => (*d, *init),
            _ => unreachable!("dff list"),
        };
        let src = resolve(&mut out, &mut mapped, dl);
        dff_out.push(MappedDff { d: src, init });
    }
    out.dffs = dff_out;
    let output_ports: Vec<(Symbol, Vec<Lit>)> = n.outputs.clone();
    for (name, bits) in output_ports {
        let srcs: Vec<MappedSrc> = bits
            .iter()
            .map(|&l| resolve(&mut out, &mut mapped, l))
            .collect();
        out.outputs.push((name, srcs));
    }
    Ok(out)
}

/// Computes the truth table of `root` over the cut `leaves`.
fn cone_truth_table(n: &Netlist, root: NodeId, leaves: &[NodeId]) -> u64 {
    let patterns = 1usize << leaves.len();
    // Masks: bit p of mask(var i) = value of var i in pattern p.
    let mut masks: HashMap<NodeId, u64> = HashMap::new();
    for (i, &l) in leaves.iter().enumerate() {
        let mut m = 0u64;
        for p in 0..patterns {
            if (p >> i) & 1 == 1 {
                m |= 1 << p;
            }
        }
        masks.insert(l, m);
    }
    let full = eval_mask(n, root, &mut masks);
    if patterns == 64 {
        full
    } else {
        full & ((1u64 << patterns) - 1)
    }
}

fn eval_mask(n: &Netlist, id: NodeId, masks: &mut HashMap<NodeId, u64>) -> u64 {
    if let Some(&m) = masks.get(&id) {
        return m;
    }
    let lit_mask = |n: &Netlist, l: Lit, masks: &mut HashMap<NodeId, u64>| -> u64 {
        let m = eval_mask(n, l.node(), masks);
        if l.is_compl() {
            !m
        } else {
            m
        }
    };
    let m = match n.node(id) {
        Node::Const0 => 0,
        Node::Input { .. } | Node::Dff { .. } => {
            unreachable!("cut leaves cover all sequential/PI boundaries")
        }
        Node::Buf(a) => lit_mask(n, *a, masks),
        Node::And(a, b) => lit_mask(n, *a, masks) & lit_mask(n, *b, masks),
        Node::Xor(a, b) => lit_mask(n, *a, masks) ^ lit_mask(n, *b, masks),
        Node::Mux { s, t, e } => {
            let sm = lit_mask(n, *s, masks);
            let tm = lit_mask(n, *t, masks);
            let em = lit_mask(n, *e, masks);
            (sm & tm) | (!sm & em)
        }
    };
    masks.insert(id, m);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate::elaborate;
    use crate::sim::Simulator;
    use alice_verilog::{parse_source, Bits};

    fn map(src: &str, top: &str, k: u32) -> (Netlist, MappedNetlist) {
        let f = parse_source(src).expect("parse");
        let n = elaborate(&f, top).expect("elaborate");
        let m = map_luts(&n, k).expect("map");
        (n, m)
    }

    /// Software evaluation of a mapped netlist for equivalence checking.
    fn eval_mapped(m: &MappedNetlist, pi: &[bool], state: &[bool]) -> Vec<(String, Vec<bool>)> {
        // (names stringified for assertion convenience)
        let mut lut_vals = vec![false; m.luts.len()];
        let src_val = |s: &MappedSrc, lut_vals: &[bool]| -> bool {
            match s {
                MappedSrc::Const(v) => *v,
                MappedSrc::Pi(i) => pi[*i],
                MappedSrc::Lut(i) => lut_vals[*i],
                MappedSrc::Dff(i) => state[*i],
            }
        };
        for i in 0..m.luts.len() {
            let lut = &m.luts[i];
            let mut pattern = 0usize;
            for (b, inp) in lut.inputs.iter().enumerate() {
                if src_val(inp, &lut_vals) {
                    pattern |= 1 << b;
                }
            }
            lut_vals[i] = lut.eval(pattern);
        }
        m.outputs
            .iter()
            .map(|(name, bits)| {
                (
                    name.to_string(),
                    bits.iter().map(|s| src_val(s, &lut_vals)).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn mapping_is_equivalent_for_comb_logic() {
        let src = "module m(input wire [3:0] a, input wire [3:0] b, output wire [4:0] y);\
                   assign y = {1'b0, a} + {1'b0, b}; endmodule";
        let (n, m) = map(src, "m", 4);
        let mut sim = Simulator::new(&n);
        for a in 0..16u64 {
            for b in 0..16u64 {
                sim.set_input("a", &Bits::from_u64(a, 4));
                sim.set_input("b", &Bits::from_u64(b, 4));
                sim.settle();
                let want = sim.output("y").to_u64().expect("fits");
                let mut pi = vec![false; m.input_names.len()];
                for i in 0..4 {
                    pi[i] = (a >> i) & 1 == 1;
                    pi[4 + i] = (b >> i) & 1 == 1;
                }
                let outs = eval_mapped(&m, &pi, &[]);
                let got: u64 = outs[0]
                    .1
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (v as u64) << i)
                    .sum();
                assert_eq!(got, want, "{a}+{b}");
            }
        }
    }

    #[test]
    fn cuts_respect_k() {
        let src = "module m(input wire [7:0] a, output wire y); assign y = &a; endmodule";
        for k in 2..=6 {
            let (_, m) = map(src, "m", k);
            for lut in &m.luts {
                assert!(lut.inputs.len() <= k as usize, "k={k}");
            }
        }
    }

    #[test]
    fn wide_and_needs_multiple_luts_at_k4() {
        let src = "module m(input wire [15:0] a, output wire y); assign y = &a; endmodule";
        let (_, m) = map(src, "m", 4);
        // 16-input AND at k=4: 4 + 1 = 5 LUTs in a balanced cover.
        assert!(m.lut_count() >= 5, "got {}", m.lut_count());
        assert!(m.depth() >= 2);
    }

    #[test]
    fn sequential_mapping_keeps_dffs() {
        let src = r#"
module c(input wire clk, input wire rst, output reg [3:0] q);
  always @(posedge clk) begin
    if (rst) q <= 4'd0;
    else q <= q + 4'd1;
  end
endmodule
"#;
        let (_, m) = map(src, "c", 4);
        assert_eq!(m.dff_count(), 4);
        assert!(m.lut_count() > 0);
        assert_eq!(m.io_pins(), 2 + 4);
    }

    #[test]
    fn config_bits_scale_with_k() {
        let src = "module m(input wire [7:0] a, output wire y); assign y = ^a; endmodule";
        let (_, m4) = map(src, "m", 4);
        assert_eq!(m4.config_bits(), m4.lut_count() * 16);
    }

    #[test]
    fn bad_k_rejected() {
        let src = "module m(input wire a, output wire y); assign y = a; endmodule";
        let f = parse_source(src).expect("parse");
        let n = elaborate(&f, "m").expect("elab");
        assert!(matches!(map_luts(&n, 9), Err(MapError::BadK(9))));
    }
}
