//! Gate-level intermediate representation.
//!
//! The IR is an AND/XOR/MUX DAG with complemented edges (an AIG extended
//! with XOR and MUX nodes, which keeps LUT mapping and SAT encoding simple
//! while avoiding the node blow-up of a pure AIG for datapath logic).
//! Sequential elements are D flip-flops in a single implicit clock domain.

use alice_intern::{StableHasher, Symbol};
use std::collections::HashMap;
use std::fmt;

/// Index of a node in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// A signal literal: a node reference plus an optional complement.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Constructs a literal from a node and complement flag.
    pub fn new(node: NodeId, compl: bool) -> Lit {
        Lit(node.0 << 1 | compl as u32)
    }

    /// The constant-false literal (node 0 uncomplemented).
    pub const FALSE: Lit = Lit(0);
    /// The constant-true literal (node 0 complemented).
    pub const TRUE: Lit = Lit(1);

    /// The referenced node.
    pub fn node(self) -> NodeId {
        NodeId(self.0 >> 1)
    }

    /// Whether the edge is complemented.
    pub fn is_compl(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complement of this literal.
    #[must_use]
    pub fn compl(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// This literal with complement flag set to `c`.
    #[must_use]
    pub fn with_compl(self, c: bool) -> Lit {
        Lit(self.0 & !1 | c as u32)
    }

    /// The raw packed representation (node index and complement bit),
    /// stable for hashing.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Lit::FALSE {
            return write!(f, "0");
        }
        if *self == Lit::TRUE {
            return write!(f, "1");
        }
        write!(
            f,
            "{}n{}",
            if self.is_compl() { "!" } else { "" },
            self.node().0
        )
    }
}

/// A gate/node in the netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Constant false (always node 0).
    Const0,
    /// A primary input bit. `name` is `port[bit]` flattened.
    Input {
        /// Flattened bit name, e.g. `a[3]` (interned).
        name: Symbol,
    },
    /// 2-input AND.
    And(Lit, Lit),
    /// 2-input XOR.
    Xor(Lit, Lit),
    /// 2:1 multiplexer: `s ? t : e`.
    Mux {
        /// Select.
        s: Lit,
        /// Value when `s` is true.
        t: Lit,
        /// Value when `s` is false.
        e: Lit,
    },
    /// A D flip-flop; `d` is patched after creation to allow feedback.
    Dff {
        /// Next-state input.
        d: Lit,
        /// Power-on value.
        init: bool,
        /// Debug name (register bit, interned).
        name: Symbol,
    },
    /// A combinational buffer (identity). Used as a patchable placeholder at
    /// module-instance boundaries during elaboration; removed by
    /// [`crate::opt::sweep`].
    Buf(Lit),
}

impl Node {
    /// The fanin literals of this node.
    pub fn fanins(&self) -> Vec<Lit> {
        match self {
            Node::Const0 | Node::Input { .. } => vec![],
            Node::And(a, b) | Node::Xor(a, b) => vec![*a, *b],
            Node::Mux { s, t, e } => vec![*s, *t, *e],
            Node::Dff { d, .. } => vec![*d],
            Node::Buf(a) => vec![*a],
        }
    }

    /// True for combinational gates (AND/XOR/MUX).
    pub fn is_gate(&self) -> bool {
        matches!(self, Node::And(..) | Node::Xor(..) | Node::Mux { .. })
    }
}

/// A flattened gate-level netlist with named, vectored ports.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    /// Design name (top module).
    pub name: String,
    nodes: Vec<Node>,
    /// Input ports: name and the input-bit nodes (LSB first).
    pub inputs: Vec<(Symbol, Vec<NodeId>)>,
    /// Output ports: name and driving literals (LSB first).
    pub outputs: Vec<(Symbol, Vec<Lit>)>,
    strash: HashMap<StrashKey, NodeId>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum StrashKey {
    And(Lit, Lit),
    Xor(Lit, Lit),
    Mux(Lit, Lit, Lit),
}

impl Netlist {
    /// Creates an empty netlist named `name` (node 0 is the constant).
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            nodes: vec![Node::Const0],
            inputs: Vec::new(),
            outputs: Vec::new(),
            strash: HashMap::new(),
        }
    }

    /// Number of nodes, including the constant and inputs.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// The raw node list in creation order (serialization support; node 0
    /// is always [`Node::Const0`]).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Reassembles a netlist from its raw parts — the inverse of reading
    /// [`Netlist::nodes`]/`inputs`/`outputs` — rebuilding the structural-
    /// hashing table so the result behaves exactly like the original
    /// (same [`Netlist::structural_hash`], same node reuse on further
    /// construction). Intended for deserialization; `nodes` must be a
    /// creation-order list as produced by this type (constant first,
    /// fanins before fanouts).
    pub fn from_parts(
        name: String,
        nodes: Vec<Node>,
        inputs: Vec<(Symbol, Vec<NodeId>)>,
        outputs: Vec<(Symbol, Vec<Lit>)>,
    ) -> Netlist {
        let mut strash = HashMap::new();
        for (i, n) in nodes.iter().enumerate() {
            let key = match n {
                Node::And(a, b) => StrashKey::And(*a, *b),
                Node::Xor(a, b) => StrashKey::Xor(*a, *b),
                Node::Mux { s, t, e } => StrashKey::Mux(*s, *t, *e),
                _ => continue,
            };
            strash.entry(key).or_insert(NodeId(i as u32));
        }
        Netlist {
            name,
            nodes,
            inputs,
            outputs,
            strash,
        }
    }

    /// True if the netlist has no gates (only the constant node).
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Accesses a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Iterates over `(id, node)` pairs in creation (topological) order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    fn push(&mut self, n: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(n);
        id
    }

    /// Adds a primary input bit and returns its node.
    pub fn add_input_bit(&mut self, name: impl Into<Symbol>) -> NodeId {
        self.push(Node::Input { name: name.into() })
    }

    /// Adds a vectored input port of `width` bits; returns LSB-first literals.
    pub fn add_input(&mut self, name: &str, width: u32) -> Vec<Lit> {
        let bits: Vec<NodeId> = (0..width)
            .map(|i| self.add_input_bit(format!("{name}[{i}]")))
            .collect();
        let lits = bits.iter().map(|&b| Lit::new(b, false)).collect();
        self.inputs.push((Symbol::intern(name), bits));
        lits
    }

    /// Registers a vectored output port driven by `bits` (LSB first).
    pub fn add_output(&mut self, name: impl Into<Symbol>, bits: Vec<Lit>) {
        self.outputs.push((name.into(), bits));
    }

    /// Creates (or reuses) an AND gate.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        // Constant folding.
        if a == Lit::FALSE || b == Lit::FALSE {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if b == Lit::TRUE {
            return a;
        }
        if a == b {
            return a;
        }
        if a == b.compl() {
            return Lit::FALSE;
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        let key = StrashKey::And(a, b);
        if let Some(&id) = self.strash.get(&key) {
            return Lit::new(id, false);
        }
        let id = self.push(Node::And(a, b));
        self.strash.insert(key, id);
        Lit::new(id, false)
    }

    /// Creates (or reuses) an OR gate (via De Morgan on AND).
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        self.and(a.compl(), b.compl()).compl()
    }

    /// Creates (or reuses) an XOR gate.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        if a == Lit::FALSE {
            return b;
        }
        if b == Lit::FALSE {
            return a;
        }
        if a == Lit::TRUE {
            return b.compl();
        }
        if b == Lit::TRUE {
            return a.compl();
        }
        if a == b {
            return Lit::FALSE;
        }
        if a == b.compl() {
            return Lit::TRUE;
        }
        // Normalize: complement marks move to the output.
        let out_compl = a.is_compl() ^ b.is_compl();
        let (mut a, mut b) = (a.with_compl(false), b.with_compl(false));
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        let key = StrashKey::Xor(a, b);
        let id = if let Some(&id) = self.strash.get(&key) {
            id
        } else {
            let id = self.push(Node::Xor(a, b));
            self.strash.insert(key, id);
            id
        };
        Lit::new(id, out_compl)
    }

    /// Creates (or reuses) a 2:1 mux `s ? t : e`.
    pub fn mux(&mut self, s: Lit, t: Lit, e: Lit) -> Lit {
        if s == Lit::TRUE {
            return t;
        }
        if s == Lit::FALSE {
            return e;
        }
        if t == e {
            return t;
        }
        if t == e.compl() {
            // s ? t : ~t  ==  s ^ e
            return self.xor(s, e);
        }
        if t == Lit::TRUE {
            return self.or(s, e);
        }
        if t == Lit::FALSE {
            return self.and(s.compl(), e);
        }
        if e == Lit::TRUE {
            return self.or(s.compl(), t);
        }
        if e == Lit::FALSE {
            return self.and(s, t);
        }
        if s == t {
            return self.or(s, e); // s?s:e == s|e
        }
        if s == e {
            return self.and(s, t); // s?t:s == s&t
        }
        // Normalize select polarity.
        let (s, t, e) = if s.is_compl() {
            (s.compl(), e, t)
        } else {
            (s, t, e)
        };
        let key = StrashKey::Mux(s, t, e);
        if let Some(&id) = self.strash.get(&key) {
            return Lit::new(id, false);
        }
        let id = self.push(Node::Mux { s, t, e });
        self.strash.insert(key, id);
        Lit::new(id, false)
    }

    /// Creates a D flip-flop with a placeholder input; patch it later with
    /// [`Netlist::set_dff_input`]. Returns the Q literal.
    pub fn dff(&mut self, name: impl Into<Symbol>, init: bool) -> Lit {
        let id = self.push(Node::Dff {
            d: Lit::FALSE,
            init,
            name: name.into(),
        });
        Lit::new(id, false)
    }

    /// Patches the D input of a flip-flop created by [`Netlist::dff`].
    ///
    /// # Panics
    ///
    /// Panics if `q` does not refer to a DFF node or is complemented.
    pub fn set_dff_input(&mut self, q: Lit, d: Lit) {
        assert!(!q.is_compl(), "DFF literal must be uncomplemented");
        match &mut self.nodes[q.node().0 as usize] {
            Node::Dff { d: slot, .. } => *slot = d,
            other => panic!("set_dff_input on non-DFF node {other:?}"),
        }
    }

    /// Creates a patchable buffer placeholder; set its source later with
    /// [`Netlist::set_buf_input`]. Used at instance boundaries so that
    /// cross-instance feedback (legal when it passes through registers)
    /// can be elaborated without a resolution order.
    pub fn buf_placeholder(&mut self) -> Lit {
        let id = self.push(Node::Buf(Lit::FALSE));
        Lit::new(id, false)
    }

    /// Patches the source of a buffer created by [`Netlist::buf_placeholder`].
    ///
    /// # Panics
    ///
    /// Panics if `q` does not refer to a buffer or is complemented.
    pub fn set_buf_input(&mut self, q: Lit, d: Lit) {
        assert!(!q.is_compl(), "buffer literal must be uncomplemented");
        match &mut self.nodes[q.node().0 as usize] {
            Node::Buf(slot) => *slot = d,
            other => panic!("set_buf_input on non-buffer node {other:?}"),
        }
    }

    /// Computes a topological order of all nodes over *combinational* edges
    /// (DFF next-state edges are cut). Returns the net name involved if a
    /// combinational cycle exists.
    pub fn comb_topo_order(&self) -> Result<Vec<NodeId>, String> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks = vec![Mark::White; self.nodes.len()];
        let mut order = Vec::with_capacity(self.nodes.len());
        for start in 0..self.nodes.len() {
            if marks[start] != Mark::White {
                continue;
            }
            // Iterative DFS with an explicit stack.
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            while let Some(&mut (node, ref mut edge)) = stack.last_mut() {
                if marks[node] == Mark::Black {
                    stack.pop();
                    continue;
                }
                marks[node] = Mark::Grey;
                let fanins = match &self.nodes[node] {
                    Node::Dff { .. } => vec![], // Q is a sequential source
                    n => n.fanins(),
                };
                if *edge < fanins.len() {
                    let next = fanins[*edge].node().0 as usize;
                    *edge += 1;
                    match marks[next] {
                        Mark::White => stack.push((next, 0)),
                        Mark::Grey => {
                            return Err(format!("combinational cycle through node {next}"))
                        }
                        Mark::Black => {}
                    }
                } else {
                    marks[node] = Mark::Black;
                    order.push(NodeId(node as u32));
                    stack.pop();
                }
            }
        }
        Ok(order)
    }

    /// All DFF nodes in the netlist.
    pub fn dffs(&self) -> Vec<NodeId> {
        self.iter()
            .filter(|(_, n)| matches!(n, Node::Dff { .. }))
            .map(|(id, _)| id)
            .collect()
    }

    /// `(id, name, d, init)` for every DFF, in [`Netlist::dffs`] order.
    ///
    /// The names are the hierarchical register-bit names assigned at
    /// elaboration (e.g. `top.u0.q[3]`), which is what equivalence
    /// checking uses to pair state elements across two netlists.
    pub fn dff_records(&self) -> Vec<(NodeId, Symbol, Lit, bool)> {
        self.iter()
            .filter_map(|(id, n)| match n {
                Node::Dff { d, init, name } => Some((id, *name, *d, *init)),
                _ => None,
            })
            .collect()
    }

    /// A deterministic 128-bit content hash of the netlist: node
    /// structure, port names/shapes, and register names. Two modules with
    /// identical elaborations hash identically regardless of which design
    /// (or process run) produced them — the key of the [`DesignDb`]
    /// LUT-mapping cache.
    ///
    /// [`DesignDb`]: https://docs.rs/alice-core
    pub fn structural_hash(&self) -> (u64, u64) {
        let mut h = StableHasher::new();
        h.write_u64(self.nodes.len() as u64);
        for (_, n) in self.iter() {
            match n {
                Node::Const0 => h.write_u32(0),
                Node::Input { name } => {
                    h.write_u32(1);
                    h.write_str(name.as_str());
                }
                Node::And(a, b) => {
                    h.write_u32(2);
                    h.write_u32(a.raw());
                    h.write_u32(b.raw());
                }
                Node::Xor(a, b) => {
                    h.write_u32(3);
                    h.write_u32(a.raw());
                    h.write_u32(b.raw());
                }
                Node::Mux { s, t, e } => {
                    h.write_u32(4);
                    h.write_u32(s.raw());
                    h.write_u32(t.raw());
                    h.write_u32(e.raw());
                }
                Node::Dff { d, init, name } => {
                    h.write_u32(5);
                    h.write_u32(d.raw());
                    h.write_u32(*init as u32);
                    h.write_str(name.as_str());
                }
                Node::Buf(a) => {
                    h.write_u32(6);
                    h.write_u32(a.raw());
                }
            }
        }
        h.write_u64(self.inputs.len() as u64);
        for (name, bits) in &self.inputs {
            h.write_str(name.as_str());
            for b in bits {
                h.write_u32(b.0);
            }
        }
        h.write_u64(self.outputs.len() as u64);
        for (name, bits) in &self.outputs {
            h.write_str(name.as_str());
            for b in bits {
                h.write_u32(b.raw());
            }
        }
        h.finish()
    }

    /// A deterministic 128-bit *name-free* content hash: node structure,
    /// port shapes, and DFF wiring, but no port, register, or design
    /// names. Two netlists with identical gate-level structure hash
    /// identically even when every hierarchical name differs — the key
    /// lane of the on-disk CEC proof cache, which pairs it with an
    /// equally name-free binding fingerprint so renamed-but-identical
    /// miters share one proof.
    pub fn structural_hash_namefree(&self) -> (u64, u64) {
        let mut h = StableHasher::new();
        h.write_u64(self.nodes.len() as u64);
        for (_, n) in self.iter() {
            match n {
                Node::Const0 => h.write_u32(0),
                Node::Input { .. } => h.write_u32(1),
                Node::And(a, b) => {
                    h.write_u32(2);
                    h.write_u32(a.raw());
                    h.write_u32(b.raw());
                }
                Node::Xor(a, b) => {
                    h.write_u32(3);
                    h.write_u32(a.raw());
                    h.write_u32(b.raw());
                }
                Node::Mux { s, t, e } => {
                    h.write_u32(4);
                    h.write_u32(s.raw());
                    h.write_u32(t.raw());
                    h.write_u32(e.raw());
                }
                Node::Dff { d, init, .. } => {
                    h.write_u32(5);
                    h.write_u32(d.raw());
                    h.write_u32(*init as u32);
                }
                Node::Buf(a) => {
                    h.write_u32(6);
                    h.write_u32(a.raw());
                }
            }
        }
        h.write_u64(self.inputs.len() as u64);
        for (_, bits) in &self.inputs {
            h.write_u64(bits.len() as u64);
            for b in bits {
                h.write_u32(b.0);
            }
        }
        h.write_u64(self.outputs.len() as u64);
        for (_, bits) in &self.outputs {
            h.write_u64(bits.len() as u64);
            for b in bits {
                h.write_u32(b.raw());
            }
        }
        h.finish()
    }

    /// Iterates over combinational gates only (AND/XOR/MUX).
    pub fn gates(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.iter().filter(|(_, n)| n.is_gate())
    }

    /// Maps every primary-input node to its `(port index, bit index)`
    /// position in [`Netlist::inputs`].
    pub fn input_positions(&self) -> HashMap<NodeId, (usize, usize)> {
        self.inputs
            .iter()
            .enumerate()
            .flat_map(|(p, (_, bits))| bits.iter().enumerate().map(move |(b, &id)| (id, (p, b))))
            .collect()
    }

    /// Total primary-output bits across all output ports.
    pub fn output_bits(&self) -> usize {
        self.outputs.iter().map(|(_, b)| b.len()).sum()
    }

    /// Gate-count statistics.
    pub fn stats(&self) -> NetlistStats {
        let mut s = NetlistStats::default();
        for (_, n) in self.iter() {
            match n {
                Node::Const0 => {}
                Node::Input { .. } => s.inputs += 1,
                Node::And(..) => s.ands += 1,
                Node::Xor(..) => s.xors += 1,
                Node::Mux { .. } => s.muxes += 1,
                Node::Dff { .. } => s.dffs += 1,
                Node::Buf(_) => s.bufs += 1,
            }
        }
        s.outputs = self.outputs.iter().map(|(_, b)| b.len()).sum();
        s
    }
}

/// Gate counts of a [`Netlist`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetlistStats {
    /// Primary input bits.
    pub inputs: usize,
    /// Primary output bits.
    pub outputs: usize,
    /// AND gates.
    pub ands: usize,
    /// XOR gates.
    pub xors: usize,
    /// MUX gates.
    pub muxes: usize,
    /// Flip-flops.
    pub dffs: usize,
    /// Placeholder buffers (zero after [`crate::opt::sweep`]).
    pub bufs: usize,
}

impl NetlistStats {
    /// Total combinational gates.
    pub fn gates(&self) -> usize {
        self.ands + self.xors + self.muxes
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in, {} out, {} and, {} xor, {} mux, {} dff",
            self.inputs, self.outputs, self.ands, self.xors, self.muxes, self.dffs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_representation() {
        let l = Lit::new(NodeId(5), true);
        assert_eq!(l.node(), NodeId(5));
        assert!(l.is_compl());
        assert!(!l.compl().is_compl());
        assert_eq!(Lit::FALSE.compl(), Lit::TRUE);
    }

    #[test]
    fn and_constant_folding() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a", 1)[0];
        assert_eq!(n.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(n.and(a, Lit::TRUE), a);
        assert_eq!(n.and(a, a), a);
        assert_eq!(n.and(a, a.compl()), Lit::FALSE);
    }

    #[test]
    fn strash_reuses_nodes() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a", 1)[0];
        let b = n.add_input("b", 1)[0];
        let g1 = n.and(a, b);
        let g2 = n.and(b, a);
        assert_eq!(g1, g2);
        let x1 = n.xor(a, b.compl());
        let x2 = n.xor(a.compl(), b);
        assert_eq!(x1, x2, "xor complement normalization");
    }

    #[test]
    fn mux_simplifications() {
        let mut n = Netlist::new("t");
        let s = n.add_input("s", 1)[0];
        let a = n.add_input("a", 1)[0];
        let b = n.add_input("b", 1)[0];
        assert_eq!(n.mux(Lit::TRUE, a, b), a);
        assert_eq!(n.mux(Lit::FALSE, a, b), b);
        assert_eq!(n.mux(s, a, a), a);
        let orab = n.or(s, b);
        assert_eq!(n.mux(s, Lit::TRUE, b), orab);
    }

    #[test]
    fn dff_roundtrip() {
        let mut n = Netlist::new("t");
        let d = n.add_input("d", 1)[0];
        let q = n.dff("r", false);
        n.set_dff_input(q, d);
        match n.node(q.node()) {
            Node::Dff { d: got, .. } => assert_eq!(*got, d),
            other => panic!("expected dff, got {other:?}"),
        }
        assert_eq!(n.dffs().len(), 1);
    }

    #[test]
    fn from_parts_round_trips_structure() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a", 2);
        let q = n.dff("t.q[0]", true);
        let x = n.xor(a[0], q);
        let g = n.and(x, a[1]);
        n.set_dff_input(q, g);
        n.add_output("y", vec![g, x.compl()]);

        let rebuilt = Netlist::from_parts(
            n.name.clone(),
            n.nodes().to_vec(),
            n.inputs.clone(),
            n.outputs.clone(),
        );
        assert_eq!(rebuilt.structural_hash(), n.structural_hash());
        assert_eq!(rebuilt.len(), n.len());
        // The rebuilt strash must reuse existing nodes, not grow the list.
        let mut r = rebuilt;
        let x2 = r.xor(a[0], q);
        assert_eq!(x2, x, "strash rebuilt from nodes");
        assert_eq!(r.len(), n.len());
    }

    #[test]
    fn namefree_hash_ignores_names_only() {
        let build = |port: &str, reg: &str| {
            let mut n = Netlist::new("t");
            let a = n.add_input(port, 1)[0];
            let q = n.dff(reg, false);
            let x = n.xor(a, q);
            n.set_dff_input(q, x);
            n.add_output("y", vec![x]);
            n
        };
        let n1 = build("a", "t.q[0]");
        let n2 = build("b", "t.r[0]");
        assert_ne!(n1.structural_hash(), n2.structural_hash());
        assert_eq!(n1.structural_hash_namefree(), n2.structural_hash_namefree());
        // Structure changes still change the name-free hash.
        let mut n3 = build("a", "t.q[0]");
        n3.outputs[0].1[0] = n3.outputs[0].1[0].compl();
        assert_ne!(n1.structural_hash_namefree(), n3.structural_hash_namefree());
    }

    #[test]
    fn stats_count_everything() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a", 2);
        let x = n.xor(a[0], a[1]);
        let y = n.and(a[0], a[1]);
        n.add_output("x", vec![x, y]);
        let s = n.stats();
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 2);
        assert_eq!(s.ands, 1);
        assert_eq!(s.xors, 1);
    }
}
