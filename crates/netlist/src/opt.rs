//! Netlist optimization passes: buffer removal, dead-code elimination and
//! re-simplification through the structural-hashing builder.

use crate::ir::{Lit, Netlist, Node, NodeId};
use std::collections::{HashMap, HashSet};

/// Rebuilds a netlist: removes [`Node::Buf`] placeholders, drops logic not
/// reachable from outputs (transitively through DFFs), and re-applies the
/// builder's constant folding and structural hashing.
///
/// The result is a compact netlist in topological creation order.
///
/// # Panics
///
/// Panics if the netlist contains a combinational cycle (rejected by
/// elaboration).
///
/// # Example
///
/// ```
/// use alice_netlist::ir::Netlist;
/// use alice_netlist::opt::sweep;
///
/// let mut n = Netlist::new("t");
/// let a = n.add_input("a", 1)[0];
/// let dead = n.and(a, a.compl()); // constant-folded to 0, never used
/// let _ = dead;
/// let b = n.buf_placeholder();
/// n.set_buf_input(b, a);
/// n.add_output("y", vec![b]);
/// let swept = sweep(&n);
/// assert_eq!(swept.stats().bufs, 0);
/// ```
pub fn sweep(old: &Netlist) -> Netlist {
    let order = old
        .comb_topo_order()
        .expect("combinational cycle in netlist");

    // Reachability from outputs, following DFF next-state edges.
    let mut reachable: HashSet<NodeId> = HashSet::new();
    let mut stack: Vec<NodeId> = old
        .outputs
        .iter()
        .flat_map(|(_, bits)| bits.iter().map(|l| l.node()))
        .collect();
    while let Some(id) = stack.pop() {
        if !reachable.insert(id) {
            continue;
        }
        for f in old.node(id).fanins() {
            stack.push(f.node());
        }
    }
    // Inputs are always kept so the interface stays intact.
    for (_, bits) in &old.inputs {
        for &b in bits {
            reachable.insert(b);
        }
    }

    let mut new = Netlist::new(old.name.clone());
    let mut map: HashMap<NodeId, Lit> = HashMap::new();
    map.insert(NodeId(0), Lit::FALSE);

    // Input ports keep their grouping and order.
    for (name, bits) in &old.inputs {
        let lits = new.add_input(name.as_str(), bits.len() as u32);
        for (oldb, newl) in bits.iter().zip(&lits) {
            map.insert(*oldb, *newl);
        }
    }

    // Create DFF shells first (they are sequential sources).
    let mut dff_patches: Vec<(Lit, Lit)> = Vec::new(); // (new q, old d) resolved later
    for id in &order {
        if let Node::Dff { init, name, .. } = old.node(*id) {
            if reachable.contains(id) {
                let q = new.dff(*name, *init);
                map.insert(*id, q);
            }
        }
    }

    let tr = |map: &HashMap<NodeId, Lit>, l: Lit| -> Lit {
        let base = map
            .get(&l.node())
            .copied()
            .unwrap_or_else(|| panic!("unmapped node {:?}", l.node()));
        if l.is_compl() {
            base.compl()
        } else {
            base
        }
    };

    for id in &order {
        if !reachable.contains(id) || map.contains_key(id) {
            continue;
        }
        let mapped = match old.node(*id) {
            Node::Const0 | Node::Input { .. } | Node::Dff { .. } => continue,
            Node::Buf(a) => tr(&map, *a),
            Node::And(a, b) => {
                let (a, b) = (tr(&map, *a), tr(&map, *b));
                new.and(a, b)
            }
            Node::Xor(a, b) => {
                let (a, b) = (tr(&map, *a), tr(&map, *b));
                new.xor(a, b)
            }
            Node::Mux { s, t, e } => {
                let (s, t, e) = (tr(&map, *s), tr(&map, *t), tr(&map, *e));
                new.mux(s, t, e)
            }
        };
        map.insert(*id, mapped);
    }

    // Patch DFF inputs.
    for id in &order {
        if let Node::Dff { d, .. } = old.node(*id) {
            if reachable.contains(id) {
                dff_patches.push((map[id], tr(&map, *d)));
            }
        }
    }
    for (q, d) in dff_patches {
        new.set_dff_input(q, d);
    }

    for (name, bits) in &old.outputs {
        let mapped = bits.iter().map(|l| tr(&map, *l)).collect();
        new.add_output(*name, mapped);
    }
    new
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use alice_verilog::Bits;

    #[test]
    fn sweep_removes_bufs_and_dead_logic() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a", 2);
        let live = n.xor(a[0], a[1]);
        let _dead = n.and(a[0], a[1]);
        let b = n.buf_placeholder();
        n.set_buf_input(b, live);
        n.add_output("y", vec![b]);
        let s = sweep(&n);
        assert_eq!(s.stats().bufs, 0);
        assert_eq!(s.stats().ands, 0, "dead AND dropped");
        assert_eq!(s.stats().xors, 1);
    }

    #[test]
    fn sweep_preserves_behaviour_with_dffs() {
        // q <= q ^ in, through a buffer chain
        let mut n = Netlist::new("t");
        let i = n.add_input("i", 1)[0];
        let q = n.dff("q", false);
        let b = n.buf_placeholder();
        let x = n.xor(b, i);
        n.set_buf_input(b, q);
        n.set_dff_input(q, x);
        n.add_output("q", vec![q]);

        let s = sweep(&n);
        let mut sim_old = Simulator::new(&n);
        let mut sim_new = Simulator::new(&s);
        for step in 0..8 {
            let iv = Bits::from_u64((step % 3 == 0) as u64, 1);
            sim_old.set_input("i", &iv);
            sim_new.set_input("i", &iv);
            sim_old.step();
            sim_new.step();
            assert_eq!(sim_old.output("q"), sim_new.output("q"), "step {step}");
        }
    }

    #[test]
    fn sweep_keeps_unused_inputs() {
        let mut n = Netlist::new("t");
        let _a = n.add_input("a", 4);
        let b = n.add_input("b", 1);
        n.add_output("y", vec![b[0]]);
        let s = sweep(&n);
        assert_eq!(s.inputs.len(), 2);
        assert_eq!(s.stats().inputs, 5);
    }

    #[test]
    fn sweep_is_idempotent() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a", 3);
        let g1 = n.and(a[0], a[1]);
        let g2 = n.xor(g1, a[2]);
        n.add_output("y", vec![g2]);
        let s1 = sweep(&n);
        let s2 = sweep(&s1);
        assert_eq!(s1.len(), s2.len());
    }
}
