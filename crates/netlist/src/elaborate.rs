//! RTL elaboration: lowers the parsed Verilog subset into a flat gate-level
//! [`Netlist`]. This is the Yosys substitute of the reproduction.
//!
//! Supported semantics (documented deviations from full Verilog):
//!
//! * two-state logic only (no `x`/`z`),
//! * all operators are unsigned,
//! * a single implicit clock domain; `@(posedge clk or posedge rst)` async
//!   resets are modelled as synchronous (identical steady-state behaviour),
//! * blocking and non-blocking assignments inside one `always` block are
//!   both executed in statement order (correct for the conventional
//!   all-blocking-comb / all-nonblocking-seq styles),
//! * combinational `always` targets must be fully assigned on every path
//!   (no inferred latches — an [`ElabError::InferredLatch`] otherwise).

use crate::ir::{Lit, Netlist};
use crate::words::{self, Word};
use alice_verilog::ast::*;
use alice_verilog::hierarchy::const_eval;
use alice_verilog::Bits;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// Errors produced during elaboration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElabError {
    /// Referenced module has no definition.
    UnknownModule(String),
    /// Referenced net/port/parameter is not declared.
    UnknownNet {
        /// Enclosing module.
        module: String,
        /// The undeclared name.
        net: String,
    },
    /// A net has no driver but is read.
    Undriven {
        /// Enclosing module instance path.
        path: String,
        /// Net name.
        net: String,
    },
    /// A net is driven more than once.
    MultipleDrivers {
        /// Enclosing module instance path.
        path: String,
        /// Net name (with bit index).
        net: String,
    },
    /// Combinational cycle through the named net.
    CombLoop(String),
    /// A combinational always block leaves a target unassigned on some path.
    InferredLatch(String),
    /// Constructs outside the synthesizable subset.
    Unsupported(String),
    /// A range or parameter did not evaluate to a constant.
    NonConstant(String),
    /// Instance port connection mismatch.
    BadConnection {
        /// Instance path.
        path: String,
        /// Port name.
        port: String,
        /// Explanation.
        why: String,
    },
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElabError::UnknownModule(m) => write!(f, "unknown module `{m}`"),
            ElabError::UnknownNet { module, net } => {
                write!(f, "unknown net `{net}` in module `{module}`")
            }
            ElabError::Undriven { path, net } => {
                write!(f, "net `{net}` in `{path}` is read but never driven")
            }
            ElabError::MultipleDrivers { path, net } => {
                write!(f, "net `{net}` in `{path}` has multiple drivers")
            }
            ElabError::CombLoop(net) => write!(f, "combinational loop through `{net}`"),
            ElabError::InferredLatch(net) => {
                write!(f, "combinational always block infers a latch on `{net}`")
            }
            ElabError::Unsupported(what) => write!(f, "unsupported construct: {what}"),
            ElabError::NonConstant(what) => write!(f, "non-constant expression: {what}"),
            ElabError::BadConnection { path, port, why } => {
                write!(f, "bad connection `.{port}` on `{path}`: {why}")
            }
        }
    }
}

impl std::error::Error for ElabError {}

/// Elaborates `top` (and everything below it) into a flat netlist.
///
/// Clock and (a)synchronous reset inputs named in edge sensitivity lists are
/// treated as control: the clock is implicit, and edge-listed resets are
/// folded into DFF next-state logic.
///
/// # Errors
///
/// See [`ElabError`].
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let f = alice_verilog::parse_source(
///     "module inv(input wire [3:0] a, output wire [3:0] y); assign y = ~a; endmodule",
/// )?;
/// let n = alice_netlist::elaborate::elaborate(&f, "inv")?;
/// assert_eq!(n.stats().inputs, 4);
/// # Ok(())
/// # }
/// ```
pub fn elaborate(file: &SourceFile, top: &str) -> Result<Netlist, ElabError> {
    let tdef = file
        .module(top)
        .ok_or_else(|| ElabError::UnknownModule(top.to_string()))?;
    let mut netlist = Netlist::new(top);
    // Create primary inputs.
    let params = default_params(tdef)?;
    let mut bound_inputs: HashMap<String, Word> = HashMap::new();
    for p in &tdef.ports {
        if p.dir == Direction::Input {
            let w = port_width(&params, &p.range)?;
            let lits = netlist.add_input(&p.name, w);
            bound_inputs.insert(p.name.clone(), lits);
        }
        if p.dir == Direction::Inout {
            return Err(ElabError::Unsupported(format!(
                "inout port `{}` at the top level",
                p.name
            )));
        }
    }
    let mut elab = Elaborator { file };
    let outputs = elab.instantiate(&mut netlist, tdef, params, bound_inputs, top.to_string())?;
    for p in &tdef.ports {
        if p.dir == Direction::Output {
            let bits = outputs
                .get(&p.name)
                .cloned()
                .ok_or_else(|| ElabError::Undriven {
                    path: top.to_string(),
                    net: p.name.clone(),
                })?;
            netlist.add_output(&p.name, bits);
        }
    }
    // Cross-instance combinational loops are only visible globally.
    netlist.comb_topo_order().map_err(ElabError::CombLoop)?;
    Ok(netlist)
}

fn default_params(m: &Module) -> Result<BTreeMap<String, i64>, ElabError> {
    let mut env = BTreeMap::new();
    for p in &m.params {
        let v = const_eval(&p.value, &env)
            .ok_or_else(|| ElabError::NonConstant(format!("parameter {}", p.name)))?;
        env.insert(p.name.clone(), v);
    }
    Ok(env)
}

fn port_width(params: &BTreeMap<String, i64>, r: &Option<Range>) -> Result<u32, ElabError> {
    match r {
        None => Ok(1),
        Some(r) => {
            let msb = const_eval(&r.msb, params)
                .ok_or_else(|| ElabError::NonConstant("range msb".into()))?;
            let lsb = const_eval(&r.lsb, params)
                .ok_or_else(|| ElabError::NonConstant("range lsb".into()))?;
            Ok((msb - lsb).unsigned_abs() as u32 + 1)
        }
    }
}

struct Elaborator<'a> {
    file: &'a SourceFile,
}

/// How a (net, bit-range) gets its value.
#[derive(Debug, Clone)]
enum Driver {
    /// `assign` item index in the module.
    Assign(usize),
    /// Output port of an instance (item index).
    InstPort(usize),
    /// `always` block item index.
    Always(usize),
    /// Net initializer (`wire x = expr`).
    NetInit(usize),
}

struct Scope<'m> {
    module: &'m Module,
    path: String,
    params: BTreeMap<String, i64>,
    widths: HashMap<String, u32>,
    /// Per-bit resolved values.
    values: HashMap<String, Vec<Option<Lit>>>,
    /// Per-bit driver table.
    drivers: HashMap<String, Vec<Option<Driver>>>,
    /// Bits currently being resolved (combinational-loop detection).
    resolving: HashSet<(String, u32)>,
    /// Instances already elaborated (outputs filled into `values`).
    insts_done: HashSet<usize>,
    /// Always blocks already executed.
    always_done: HashSet<usize>,
}

impl<'a> Elaborator<'a> {
    /// Elaborates one module instance; returns its output-port values.
    fn instantiate(
        &mut self,
        n: &mut Netlist,
        m: &Module,
        params: BTreeMap<String, i64>,
        inputs: HashMap<String, Word>,
        path: String,
    ) -> Result<HashMap<String, Word>, ElabError> {
        let mut scope = self.build_scope(m, params, path)?;
        // Seed input-port values.
        for (name, word) in inputs {
            let w = *scope
                .widths
                .get(&name)
                .ok_or_else(|| ElabError::UnknownNet {
                    module: m.name.clone(),
                    net: name.clone(),
                })?;
            let word = words::resize(&word, w);
            let slot = scope.values.get_mut(&name).expect("declared");
            for (i, l) in word.iter().enumerate() {
                slot[i] = Some(*l);
            }
        }
        // Resolve outputs on demand.
        let mut out = HashMap::new();
        for p in &m.ports {
            if matches!(p.dir, Direction::Output | Direction::Inout) {
                let w = scope.widths[&p.name];
                let mut word = Vec::with_capacity(w as usize);
                for b in 0..w {
                    word.push(self.bit_value(n, &mut scope, &p.name, b)?);
                }
                out.insert(p.name.clone(), word);
            }
        }
        Ok(out)
    }

    fn build_scope<'m>(
        &self,
        m: &'m Module,
        mut params: BTreeMap<String, i64>,
        path: String,
    ) -> Result<Scope<'m>, ElabError> {
        // localparams and body parameters join the environment.
        for item in &m.items {
            if let Item::Param(p) | Item::Localparam(p) = item {
                if !params.contains_key(&p.name) {
                    let v = const_eval(&p.value, &params)
                        .ok_or_else(|| ElabError::NonConstant(format!("parameter {}", p.name)))?;
                    params.insert(p.name.clone(), v);
                }
            }
        }
        let mut widths = HashMap::new();
        for p in &m.ports {
            widths.insert(p.name.clone(), port_width(&params, &p.range)?);
        }
        for item in &m.items {
            if let Item::Net(d) = item {
                widths.insert(d.name.clone(), port_width(&params, &d.range)?);
            }
        }
        let mut values: HashMap<String, Vec<Option<Lit>>> = HashMap::new();
        let mut drivers: HashMap<String, Vec<Option<Driver>>> = HashMap::new();
        for (name, &w) in &widths {
            values.insert(name.clone(), vec![None; w as usize]);
            drivers.insert(name.clone(), vec![None; w as usize]);
        }
        // Scan items to fill the driver table.
        for (idx, item) in m.items.iter().enumerate() {
            match item {
                Item::Assign(a) => {
                    Self::mark_lvalue(
                        &m.name,
                        &path,
                        &params,
                        &widths,
                        &mut drivers,
                        &a.lhs,
                        || Driver::Assign(idx),
                    )?;
                }
                Item::Net(d) if d.init.is_some() => {
                    let w = widths[&d.name];
                    Self::mark_range(&path, &mut drivers, &d.name, 0, w, || Driver::NetInit(idx))?;
                }
                Item::Instance(inst) => {
                    let child = self
                        .file
                        .module(&inst.module)
                        .ok_or_else(|| ElabError::UnknownModule(inst.module.clone()))?;
                    let conns = normalize_conns(child, inst, &path)?;
                    for (port, expr) in conns {
                        let pd = child.port(&port).ok_or_else(|| ElabError::BadConnection {
                            path: format!("{path}.{}", inst.name),
                            port: port.clone(),
                            why: "no such port".into(),
                        })?;
                        if matches!(pd.dir, Direction::Output | Direction::Inout) {
                            if let Some(expr) = expr {
                                Self::mark_expr_as_sink(
                                    &m.name,
                                    &path,
                                    &params,
                                    &widths,
                                    &mut drivers,
                                    &expr,
                                    || Driver::InstPort(idx),
                                )?;
                            }
                        }
                    }
                }
                Item::Always(ab) => {
                    let mut targets = Vec::new();
                    collect_targets(&ab.body, &mut targets);
                    for t in targets {
                        if !widths.contains_key(&t) {
                            return Err(ElabError::UnknownNet {
                                module: m.name.clone(),
                                net: t,
                            });
                        }
                        let w = widths[&t];
                        // Whole reg is driven by this block; allow the same
                        // block to be marked repeatedly (multiple statements).
                        let slots = drivers.get_mut(&t).expect("declared");
                        #[allow(clippy::needless_range_loop)]
                        for b in 0..w as usize {
                            match &slots[b] {
                                None => slots[b] = Some(Driver::Always(idx)),
                                Some(Driver::Always(j)) if *j == idx => {}
                                Some(_) => {
                                    return Err(ElabError::MultipleDrivers {
                                        path: path.clone(),
                                        net: format!("{t}[{b}]"),
                                    })
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(Scope {
            module: m,
            path,
            params,
            widths,
            values,
            drivers,
            resolving: HashSet::new(),
            insts_done: HashSet::new(),
            always_done: HashSet::new(),
        })
    }

    fn mark_lvalue(
        module: &str,
        path: &str,
        params: &BTreeMap<String, i64>,
        widths: &HashMap<String, u32>,
        drivers: &mut HashMap<String, Vec<Option<Driver>>>,
        lv: &LValue,
        mk: impl Fn() -> Driver + Copy,
    ) -> Result<(), ElabError> {
        match lv {
            LValue::Id(name) => {
                let w = *widths.get(name).ok_or_else(|| ElabError::UnknownNet {
                    module: module.to_string(),
                    net: name.clone(),
                })?;
                Self::mark_range(path, drivers, name, 0, w, mk)
            }
            LValue::Bit(name, idx) => {
                let i = const_eval(idx, params)
                    .ok_or_else(|| ElabError::NonConstant(format!("index of {name}")))?
                    as u32;
                Self::mark_range(path, drivers, name, i, i + 1, mk)
            }
            LValue::Part(name, msb, lsb) => {
                let m = const_eval(msb, params)
                    .ok_or_else(|| ElabError::NonConstant(format!("msb of {name}")))?
                    as u32;
                let l = const_eval(lsb, params)
                    .ok_or_else(|| ElabError::NonConstant(format!("lsb of {name}")))?
                    as u32;
                Self::mark_range(path, drivers, name, l, m + 1, mk)
            }
            LValue::Concat(parts) => {
                for p in parts {
                    Self::mark_lvalue(module, path, params, widths, drivers, p, mk)?;
                }
                Ok(())
            }
        }
    }

    /// Marks an instance output connection target as driven by the instance.
    fn mark_expr_as_sink(
        module: &str,
        path: &str,
        params: &BTreeMap<String, i64>,
        widths: &HashMap<String, u32>,
        drivers: &mut HashMap<String, Vec<Option<Driver>>>,
        e: &Expr,
        mk: impl Fn() -> Driver + Copy,
    ) -> Result<(), ElabError> {
        let lv = expr_to_lvalue(e).ok_or_else(|| {
            ElabError::Unsupported(format!(
                "instance output connected to non-lvalue expression in `{module}`"
            ))
        })?;
        Self::mark_lvalue(module, path, params, widths, drivers, &lv, mk)
    }

    fn mark_range(
        path: &str,
        drivers: &mut HashMap<String, Vec<Option<Driver>>>,
        name: &str,
        from: u32,
        to: u32,
        mk: impl Fn() -> Driver,
    ) -> Result<(), ElabError> {
        let slots = drivers
            .get_mut(name)
            .unwrap_or_else(|| panic!("net `{name}` missing from driver table"));
        for b in from..to {
            let slot = &mut slots[b as usize];
            if slot.is_some() {
                return Err(ElabError::MultipleDrivers {
                    path: path.to_string(),
                    net: format!("{name}[{b}]"),
                });
            }
            *slot = Some(mk());
        }
        Ok(())
    }

    /// Demand-driven resolution of one net bit.
    fn bit_value(
        &mut self,
        n: &mut Netlist,
        scope: &mut Scope<'_>,
        name: &str,
        bit: u32,
    ) -> Result<Lit, ElabError> {
        if let Some(Some(v)) = scope.values.get(name).and_then(|v| v.get(bit as usize)) {
            return Ok(*v);
        }
        let key = (name.to_string(), bit);
        if !scope.resolving.insert(key.clone()) {
            return Err(ElabError::CombLoop(format!("{}.{name}[{bit}]", scope.path)));
        }
        let driver = scope
            .drivers
            .get(name)
            .and_then(|d| d.get(bit as usize))
            .cloned()
            .flatten();
        let result = match driver {
            None => Err(ElabError::Undriven {
                path: scope.path.clone(),
                net: name.to_string(),
            }),
            Some(Driver::Assign(idx)) => {
                self.run_assign(n, scope, idx)?;
                Ok(())
            }
            Some(Driver::NetInit(idx)) => {
                self.run_net_init(n, scope, idx)?;
                Ok(())
            }
            Some(Driver::InstPort(idx)) => {
                self.run_instance(n, scope, idx)?;
                Ok(())
            }
            Some(Driver::Always(idx)) => {
                self.run_always(n, scope, idx)?;
                Ok(())
            }
        };
        scope.resolving.remove(&key);
        result?;
        scope
            .values
            .get(name)
            .and_then(|v| v.get(bit as usize))
            .copied()
            .flatten()
            .ok_or_else(|| ElabError::Undriven {
                path: scope.path.clone(),
                net: format!("{name}[{bit}]"),
            })
    }

    fn word_value(
        &mut self,
        n: &mut Netlist,
        scope: &mut Scope<'_>,
        name: &str,
    ) -> Result<Word, ElabError> {
        let w = *scope
            .widths
            .get(name)
            .ok_or_else(|| ElabError::UnknownNet {
                module: scope.module.name.clone(),
                net: name.to_string(),
            })?;
        (0..w).map(|b| self.bit_value(n, scope, name, b)).collect()
    }

    fn run_assign(
        &mut self,
        n: &mut Netlist,
        scope: &mut Scope<'_>,
        idx: usize,
    ) -> Result<(), ElabError> {
        let (lhs, rhs) = match &scope.module.items[idx] {
            Item::Assign(a) => (a.lhs.clone(), a.rhs.clone()),
            other => unreachable!("driver points at non-assign {other:?}"),
        };
        let lhs_width = self.lvalue_width(scope, &lhs)?;
        let mut value = self.eval_expr(n, scope, &rhs, None)?;
        value = words::resize(&value, lhs_width);
        self.store_lvalue(scope, &lhs, &value)
    }

    fn run_net_init(
        &mut self,
        n: &mut Netlist,
        scope: &mut Scope<'_>,
        idx: usize,
    ) -> Result<(), ElabError> {
        let (name, init) = match &scope.module.items[idx] {
            Item::Net(d) => (d.name.clone(), d.init.clone().expect("has init")),
            other => unreachable!("driver points at non-net {other:?}"),
        };
        let w = scope.widths[&name];
        let mut value = self.eval_expr(n, scope, &init, None)?;
        value = words::resize(&value, w);
        self.store_lvalue(scope, &LValue::Id(name), &value)
    }

    fn run_instance(
        &mut self,
        n: &mut Netlist,
        scope: &mut Scope<'_>,
        idx: usize,
    ) -> Result<(), ElabError> {
        if scope.insts_done.contains(&idx) {
            return Ok(());
        }
        scope.insts_done.insert(idx);
        let inst = match &scope.module.items[idx] {
            Item::Instance(i) => i.clone(),
            other => unreachable!("driver points at non-instance {other:?}"),
        };
        let child = self
            .file
            .module(&inst.module)
            .ok_or_else(|| ElabError::UnknownModule(inst.module.clone()))?;
        // Child parameters: defaults overridden by instance bindings.
        let mut cparams = default_params(child)?;
        for (pname, pval) in &inst.params {
            let v = const_eval(pval, &scope.params).ok_or_else(|| {
                ElabError::NonConstant(format!("parameter {pname} of {}", inst.name))
            })?;
            cparams.insert(pname.clone(), v);
        }
        let conns = normalize_conns(child, &inst, &scope.path)?;
        // Feed the child through buffer placeholders so that cross-instance
        // feedback (controller <-> datapath through registers) elaborates
        // without a resolution order; buffers are patched afterwards and a
        // global combinational-cycle check runs at the end of `elaborate`.
        let mut child_inputs = HashMap::new();
        let mut patches: Vec<(Word, Expr)> = Vec::new();
        for (port, expr) in &conns {
            let pd = child.port(port).expect("validated in build_scope");
            if pd.dir == Direction::Input {
                let w = port_width(&cparams, &pd.range)?;
                let word: Word = match expr {
                    Some(e) => {
                        let bufs: Word = (0..w).map(|_| n.buf_placeholder()).collect();
                        patches.push((bufs.clone(), e.clone()));
                        bufs
                    }
                    None => vec![Lit::FALSE; w as usize],
                };
                child_inputs.insert(port.clone(), word);
            }
        }
        let child_path = format!("{}.{}", scope.path, inst.name);
        let outputs = self.instantiate(n, child, cparams, child_inputs, child_path)?;
        // Store outputs into connected nets.
        for (port, expr) in &conns {
            let pd = child.port(port).expect("validated");
            if matches!(pd.dir, Direction::Output | Direction::Inout) {
                if let Some(e) = expr {
                    let lv = expr_to_lvalue(e).expect("validated in build_scope");
                    let w = self.lvalue_width(scope, &lv)?;
                    let value = words::resize(&outputs[port], w);
                    self.store_lvalue(scope, &lv, &value)?;
                }
            }
        }
        // Now resolve the actual input expressions and patch the buffers.
        for (bufs, expr) in patches {
            let v = self.eval_expr(n, scope, &expr, None)?;
            let v = words::resize(&v, bufs.len() as u32);
            for (b, src) in bufs.iter().zip(&v) {
                n.set_buf_input(*b, *src);
            }
        }
        Ok(())
    }

    fn run_always(
        &mut self,
        n: &mut Netlist,
        scope: &mut Scope<'_>,
        idx: usize,
    ) -> Result<(), ElabError> {
        if scope.always_done.contains(&idx) {
            return Ok(());
        }
        scope.always_done.insert(idx);
        let ab = match &scope.module.items[idx] {
            Item::Always(a) => a.clone(),
            other => unreachable!("driver points at non-always {other:?}"),
        };
        let mut targets = Vec::new();
        collect_targets(&ab.body, &mut targets);
        targets.sort();
        targets.dedup();
        match &ab.sensitivity {
            Sensitivity::Edges(edges) => {
                // Sequential: create DFFs for all target bits first so the
                // block can read its own registers.
                let mut qs: HashMap<String, Word> = HashMap::new();
                for t in &targets {
                    let w = scope.widths[t];
                    let q: Word = (0..w)
                        .map(|b| n.dff(format!("{}.{t}[{b}]", scope.path), false))
                        .collect();
                    let slot = scope.values.get_mut(t).expect("declared");
                    for (i, l) in q.iter().enumerate() {
                        slot[i] = Some(*l);
                    }
                    qs.insert(t.clone(), q);
                }
                // Symbolic execution computes next-state functions.
                let mut env: HashMap<String, Word> = HashMap::new();
                self.exec_stmt(n, scope, &ab.body, &mut env, true)?;
                // Edge-listed reset signals other than the clock are folded
                // in already (they appear as ordinary condition reads).
                let _ = edges;
                for t in &targets {
                    let q = &qs[t];
                    let d = match env.get(t) {
                        Some(v) => words::resize(v, q.len() as u32),
                        None => q.clone(), // never assigned: hold
                    };
                    for (qb, db) in q.iter().zip(&d) {
                        n.set_dff_input(*qb, *db);
                    }
                }
            }
            Sensitivity::Comb => {
                let mut env: HashMap<String, Word> = HashMap::new();
                self.exec_stmt(n, scope, &ab.body, &mut env, false)?;
                for t in &targets {
                    let w = scope.widths[t];
                    let v = env
                        .get(t)
                        .ok_or_else(|| ElabError::InferredLatch(t.clone()))?;
                    let v = words::resize(v, w);
                    let slot = scope.values.get_mut(t).expect("declared");
                    for (i, l) in v.iter().enumerate() {
                        if slot[i].is_some() {
                            return Err(ElabError::MultipleDrivers {
                                path: scope.path.clone(),
                                net: format!("{t}[{i}]"),
                            });
                        }
                        slot[i] = Some(*l);
                    }
                }
            }
        }
        Ok(())
    }

    /// Symbolically executes a statement, updating `env` with assigned
    /// values. `seq` selects the read-before-write fallback: register Q for
    /// sequential blocks, error (latch) for combinational ones.
    fn exec_stmt(
        &mut self,
        n: &mut Netlist,
        scope: &mut Scope<'_>,
        s: &Stmt,
        env: &mut HashMap<String, Word>,
        seq: bool,
    ) -> Result<(), ElabError> {
        match s {
            Stmt::Block(stmts) => {
                for st in stmts {
                    self.exec_stmt(n, scope, st, env, seq)?;
                }
                Ok(())
            }
            Stmt::Blocking(lv, rhs) | Stmt::NonBlocking(lv, rhs) => {
                let value = self.eval_expr(n, scope, rhs, Some(env))?;
                self.assign_in_env(n, scope, env, lv, &value, seq)
            }
            Stmt::If {
                cond,
                then_stmt,
                else_stmt,
            } => {
                let c = self.eval_expr(n, scope, cond, Some(env))?;
                let c = words::reduce_or(n, &c);
                let mut then_env = env.clone();
                self.exec_stmt(n, scope, then_stmt, &mut then_env, seq)?;
                let mut else_env = env.clone();
                if let Some(e) = else_stmt {
                    self.exec_stmt(n, scope, e, &mut else_env, seq)?;
                }
                self.merge_envs(n, scope, env, c, then_env, else_env, seq)
            }
            Stmt::Case {
                expr,
                arms,
                default,
            } => {
                // Desugar to an if-else chain, last arm first.
                let scrut = self.eval_expr(n, scope, expr, Some(env))?;
                let mut base_env = env.clone();
                if let Some(d) = default {
                    self.exec_stmt(n, scope, d, &mut base_env, seq)?;
                }
                for arm in arms.iter().rev() {
                    let mut cond = Lit::FALSE;
                    for label in &arm.labels {
                        let lv = self.eval_expr(n, scope, label, Some(env))?;
                        let e = words::eq(n, &scrut, &lv);
                        cond = n.or(cond, e);
                    }
                    let mut arm_env = env.clone();
                    self.exec_stmt(n, scope, &arm.body, &mut arm_env, seq)?;
                    let mut merged = env.clone();
                    self.merge_envs(n, scope, &mut merged, cond, arm_env, base_env, seq)?;
                    base_env = merged;
                }
                *env = base_env;
                Ok(())
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn merge_envs(
        &mut self,
        n: &mut Netlist,
        scope: &mut Scope<'_>,
        env: &mut HashMap<String, Word>,
        cond: Lit,
        then_env: HashMap<String, Word>,
        else_env: HashMap<String, Word>,
        seq: bool,
    ) -> Result<(), ElabError> {
        let mut keys: Vec<&String> = then_env.keys().chain(else_env.keys()).collect();
        keys.sort();
        keys.dedup();
        let keys: Vec<String> = keys.into_iter().cloned().collect();
        for t in keys {
            let w = *scope.widths.get(&t).ok_or_else(|| ElabError::UnknownNet {
                module: scope.module.name.clone(),
                net: t.clone(),
            })?;
            let fallback = |me: &mut Self,
                            n: &mut Netlist,
                            scope: &mut Scope<'_>|
             -> Result<Word, ElabError> {
                if seq {
                    me.word_value(n, scope, &t)
                } else {
                    Err(ElabError::InferredLatch(t.clone()))
                }
            };
            let tv = match then_env.get(&t) {
                Some(v) => words::resize(v, w),
                None => match env.get(&t) {
                    Some(v) => words::resize(v, w),
                    None => fallback(self, n, scope)?,
                },
            };
            let ev = match else_env.get(&t) {
                Some(v) => words::resize(v, w),
                None => match env.get(&t) {
                    Some(v) => words::resize(v, w),
                    None => fallback(self, n, scope)?,
                },
            };
            let merged = words::mux(n, cond, &tv, &ev);
            env.insert(t, merged);
        }
        Ok(())
    }

    fn assign_in_env(
        &mut self,
        n: &mut Netlist,
        scope: &mut Scope<'_>,
        env: &mut HashMap<String, Word>,
        lv: &LValue,
        value: &Word,
        seq: bool,
    ) -> Result<(), ElabError> {
        match lv {
            LValue::Id(name) => {
                let w = *scope
                    .widths
                    .get(name)
                    .ok_or_else(|| ElabError::UnknownNet {
                        module: scope.module.name.clone(),
                        net: name.clone(),
                    })?;
                env.insert(name.clone(), words::resize(value, w));
                Ok(())
            }
            LValue::Bit(name, idx) => {
                let i = const_eval(idx, &scope.params)
                    .ok_or_else(|| ElabError::NonConstant(format!("index of {name}")))?
                    as usize;
                let mut cur = self.read_target(n, scope, env, name, seq)?;
                if i < cur.len() {
                    cur[i] = value.first().copied().unwrap_or(Lit::FALSE);
                }
                env.insert(name.clone(), cur);
                Ok(())
            }
            LValue::Part(name, msb, lsb) => {
                let m = const_eval(msb, &scope.params)
                    .ok_or_else(|| ElabError::NonConstant(format!("msb of {name}")))?
                    as usize;
                let l = const_eval(lsb, &scope.params)
                    .ok_or_else(|| ElabError::NonConstant(format!("lsb of {name}")))?
                    as usize;
                let mut cur = self.read_target(n, scope, env, name, seq)?;
                for (k, b) in (l..=m).enumerate() {
                    if b < cur.len() {
                        cur[b] = value.get(k).copied().unwrap_or(Lit::FALSE);
                    }
                }
                env.insert(name.clone(), cur);
                Ok(())
            }
            LValue::Concat(parts) => {
                // Verilog concat lvalue: MSB-first; assign from the top.
                let mut offset = 0usize;
                let total: u32 = parts
                    .iter()
                    .map(|p| self.lvalue_width(scope, p))
                    .sum::<Result<u32, _>>()?;
                let value = words::resize(value, total);
                for p in parts.iter().rev() {
                    let w = self.lvalue_width(scope, p)? as usize;
                    let chunk: Word = value[offset..offset + w].to_vec();
                    self.assign_in_env(n, scope, env, p, &chunk, seq)?;
                    offset += w;
                }
                Ok(())
            }
        }
    }

    /// Reads a target's current value during symbolic execution.
    fn read_target(
        &mut self,
        n: &mut Netlist,
        scope: &mut Scope<'_>,
        env: &HashMap<String, Word>,
        name: &str,
        seq: bool,
    ) -> Result<Word, ElabError> {
        if let Some(v) = env.get(name) {
            return Ok(v.clone());
        }
        if seq {
            self.word_value(n, scope, name)
        } else {
            // Partial bit-assigns before full init in a comb block would
            // infer a latch.
            Err(ElabError::InferredLatch(name.to_string()))
        }
    }

    fn lvalue_width(&self, scope: &Scope<'_>, lv: &LValue) -> Result<u32, ElabError> {
        match lv {
            LValue::Id(name) => {
                scope
                    .widths
                    .get(name)
                    .copied()
                    .ok_or_else(|| ElabError::UnknownNet {
                        module: scope.module.name.clone(),
                        net: name.clone(),
                    })
            }
            LValue::Bit(..) => Ok(1),
            LValue::Part(name, msb, lsb) => {
                let m = const_eval(msb, &scope.params)
                    .ok_or_else(|| ElabError::NonConstant(format!("msb of {name}")))?;
                let l = const_eval(lsb, &scope.params)
                    .ok_or_else(|| ElabError::NonConstant(format!("lsb of {name}")))?;
                Ok((m - l).unsigned_abs() as u32 + 1)
            }
            LValue::Concat(parts) => parts.iter().map(|p| self.lvalue_width(scope, p)).sum(),
        }
    }

    fn store_lvalue(
        &mut self,
        scope: &mut Scope<'_>,
        lv: &LValue,
        value: &Word,
    ) -> Result<(), ElabError> {
        match lv {
            LValue::Id(name) => {
                let slot = scope
                    .values
                    .get_mut(name)
                    .ok_or_else(|| ElabError::UnknownNet {
                        module: scope.module.name.clone(),
                        net: name.clone(),
                    })?;
                for (i, l) in value.iter().enumerate() {
                    if i < slot.len() {
                        slot[i] = Some(*l);
                    }
                }
                Ok(())
            }
            LValue::Bit(name, idx) => {
                let i = const_eval(idx, &scope.params)
                    .ok_or_else(|| ElabError::NonConstant(format!("index of {name}")))?
                    as usize;
                let slot = scope.values.get_mut(name).expect("declared");
                slot[i] = Some(value.first().copied().unwrap_or(Lit::FALSE));
                Ok(())
            }
            LValue::Part(name, msb, lsb) => {
                let m = const_eval(msb, &scope.params)
                    .ok_or_else(|| ElabError::NonConstant(format!("msb of {name}")))?
                    as usize;
                let l = const_eval(lsb, &scope.params)
                    .ok_or_else(|| ElabError::NonConstant(format!("lsb of {name}")))?
                    as usize;
                let slot = scope.values.get_mut(name).expect("declared");
                for (k, b) in (l..=m).enumerate() {
                    slot[b] = Some(value.get(k).copied().unwrap_or(Lit::FALSE));
                }
                Ok(())
            }
            LValue::Concat(parts) => {
                let mut offset = 0usize;
                for p in parts.iter().rev() {
                    let w = self.lvalue_width(scope, p)? as usize;
                    let chunk: Word = value
                        .iter()
                        .skip(offset)
                        .take(w)
                        .copied()
                        .chain(std::iter::repeat(Lit::FALSE))
                        .take(w)
                        .collect();
                    self.store_lvalue(scope, p, &chunk)?;
                    offset += w;
                }
                Ok(())
            }
        }
    }

    /// Evaluates an expression to a word. `env` (when inside an always
    /// block) shadows net reads with in-flight assignments.
    fn eval_expr(
        &mut self,
        n: &mut Netlist,
        scope: &mut Scope<'_>,
        e: &Expr,
        env: Option<&HashMap<String, Word>>,
    ) -> Result<Word, ElabError> {
        match e {
            Expr::Id(name) => {
                if let Some(env) = env {
                    if let Some(v) = env.get(name) {
                        return Ok(v.clone());
                    }
                }
                if let Some(&pv) = scope.params.get(name) {
                    return Ok(words::const_word(&Bits::from_u64(pv as u64, 32)));
                }
                self.word_value(n, scope, name)
            }
            Expr::Literal(num) => Ok(words::const_word(&num.value)),
            Expr::Unary(op, a) => {
                let av = self.eval_expr(n, scope, a, env)?;
                Ok(match op {
                    UnaryOp::Not => words::not(&av),
                    UnaryOp::LogicNot => vec![words::reduce_or(n, &av).compl()],
                    UnaryOp::Neg => words::neg(n, &av),
                    UnaryOp::RedAnd => vec![words::reduce_and(n, &av)],
                    UnaryOp::RedOr => vec![words::reduce_or(n, &av)],
                    UnaryOp::RedXor => vec![words::reduce_xor(n, &av)],
                    UnaryOp::RedNand => vec![words::reduce_and(n, &av).compl()],
                    UnaryOp::RedNor => vec![words::reduce_or(n, &av).compl()],
                    UnaryOp::RedXnor => vec![words::reduce_xor(n, &av).compl()],
                })
            }
            Expr::Binary(op, a, b) => {
                let av = self.eval_expr(n, scope, a, env)?;
                let bv = self.eval_expr(n, scope, b, env)?;
                Ok(match op {
                    BinaryOp::And => words::and(n, &av, &bv),
                    BinaryOp::Or => words::or(n, &av, &bv),
                    BinaryOp::Xor => words::xor(n, &av, &bv),
                    BinaryOp::Xnor => words::not(&words::xor(n, &av, &bv)),
                    BinaryOp::LogicAnd => {
                        let ar = words::reduce_or(n, &av);
                        let br = words::reduce_or(n, &bv);
                        vec![n.and(ar, br)]
                    }
                    BinaryOp::LogicOr => {
                        let ar = words::reduce_or(n, &av);
                        let br = words::reduce_or(n, &bv);
                        vec![n.or(ar, br)]
                    }
                    BinaryOp::Eq => vec![words::eq(n, &av, &bv)],
                    BinaryOp::Ne => vec![words::eq(n, &av, &bv).compl()],
                    BinaryOp::Lt => vec![words::lt(n, &av, &bv)],
                    BinaryOp::Ge => vec![words::lt(n, &av, &bv).compl()],
                    BinaryOp::Gt => vec![words::lt(n, &bv, &av)],
                    BinaryOp::Le => vec![words::lt(n, &bv, &av).compl()],
                    BinaryOp::Add => words::add(n, &av, &bv),
                    BinaryOp::Sub => words::sub(n, &av, &bv),
                    BinaryOp::Mul => words::mul(n, &av, &bv),
                    BinaryOp::Shl => match word_as_const(&bv) {
                        Some(amt) => words::shl_const(&av, amt as u32),
                        None => words::shl_dyn(n, &av, &bv),
                    },
                    BinaryOp::Shr => match word_as_const(&bv) {
                        Some(amt) => words::shr_const(&av, amt as u32),
                        None => words::shr_dyn(n, &av, &bv),
                    },
                    BinaryOp::Div | BinaryOp::Mod => match word_as_const(&bv) {
                        // Power-of-two divisors stay pure wiring.
                        Some(amt) if amt.is_power_of_two() => {
                            let k = amt.trailing_zeros();
                            if *op == BinaryOp::Div {
                                words::shr_const(&av, k)
                            } else {
                                let mut v = av.clone();
                                v.truncate(k as usize);
                                v
                            }
                        }
                        // Everything else lowers to a restoring divider
                        // array (constant non-power-of-two divisors
                        // included — constant folding inside the netlist
                        // builder collapses their compare rows).
                        _ => {
                            let (q, r) = words::divmod(n, &av, &bv);
                            if *op == BinaryOp::Div {
                                q
                            } else {
                                r
                            }
                        }
                    },
                })
            }
            Expr::Ternary(c, t, f) => {
                let cv = self.eval_expr(n, scope, c, env)?;
                let cl = words::reduce_or(n, &cv);
                let tv = self.eval_expr(n, scope, t, env)?;
                let fv = self.eval_expr(n, scope, f, env)?;
                Ok(words::mux(n, cl, &tv, &fv))
            }
            Expr::Bit(base, idx) => {
                let bv = self.eval_expr(n, scope, base, env)?;
                match self.try_const(scope, idx) {
                    Some(i) => Ok(vec![bv.get(i as usize).copied().unwrap_or(Lit::FALSE)]),
                    None => {
                        let iv = self.eval_expr(n, scope, idx, env)?;
                        Ok(vec![words::bit_select(n, &bv, &iv)])
                    }
                }
            }
            Expr::Part(base, msb, lsb) => {
                let bv = self.eval_expr(n, scope, base, env)?;
                let m = self
                    .try_const(scope, msb)
                    .ok_or_else(|| ElabError::NonConstant("part-select msb".into()))?
                    as usize;
                let l = self
                    .try_const(scope, lsb)
                    .ok_or_else(|| ElabError::NonConstant("part-select lsb".into()))?
                    as usize;
                Ok((l..=m)
                    .map(|i| bv.get(i).copied().unwrap_or(Lit::FALSE))
                    .collect())
            }
            Expr::Concat(parts) => {
                // Verilog concat: first element is MSB.
                let mut out = Vec::new();
                for p in parts.iter().rev() {
                    let v = self.eval_expr(n, scope, p, env)?;
                    out.extend(v);
                }
                Ok(out)
            }
            Expr::Repeat(count, parts) => {
                let k = self
                    .try_const(scope, count)
                    .ok_or_else(|| ElabError::NonConstant("replication count".into()))?;
                let mut unit = Vec::new();
                for p in parts.iter().rev() {
                    let v = self.eval_expr(n, scope, p, env)?;
                    unit.extend(v);
                }
                let mut out = Vec::new();
                for _ in 0..k {
                    out.extend(unit.iter().copied());
                }
                Ok(out)
            }
        }
    }

    fn try_const(&self, scope: &Scope<'_>, e: &Expr) -> Option<i64> {
        const_eval(e, &scope.params)
    }
}

fn word_as_const(w: &Word) -> Option<u64> {
    let mut v: u64 = 0;
    for (i, l) in w.iter().enumerate() {
        if *l == Lit::TRUE {
            if i < 64 {
                v |= 1 << i;
            } else {
                return None;
            }
        } else if *l != Lit::FALSE {
            return None;
        }
    }
    Some(v)
}

/// Collects the assignment targets of a statement tree.
fn collect_targets(s: &Stmt, out: &mut Vec<String>) {
    match s {
        Stmt::Block(ss) => ss.iter().for_each(|s| collect_targets(s, out)),
        Stmt::If {
            then_stmt,
            else_stmt,
            ..
        } => {
            collect_targets(then_stmt, out);
            if let Some(e) = else_stmt {
                collect_targets(e, out);
            }
        }
        Stmt::Case { arms, default, .. } => {
            for a in arms {
                collect_targets(&a.body, out);
            }
            if let Some(d) = default {
                collect_targets(d, out);
            }
        }
        Stmt::Blocking(lv, _) | Stmt::NonBlocking(lv, _) => {
            out.extend(lv.targets().iter().map(|s| s.to_string()));
        }
    }
}

/// Converts an expression used as an instance output connection into an
/// lvalue (nets, bit/part selects, concats).
fn expr_to_lvalue(e: &Expr) -> Option<LValue> {
    match e {
        Expr::Id(s) => Some(LValue::Id(s.clone())),
        Expr::Bit(b, i) => match b.as_ref() {
            Expr::Id(s) => Some(LValue::Bit(s.clone(), (**i).clone())),
            _ => None,
        },
        Expr::Part(b, m, l) => match b.as_ref() {
            Expr::Id(s) => Some(LValue::Part(s.clone(), (**m).clone(), (**l).clone())),
            _ => None,
        },
        Expr::Concat(parts) => {
            let lvs: Option<Vec<LValue>> = parts.iter().map(expr_to_lvalue).collect();
            Some(LValue::Concat(lvs?))
        }
        _ => None,
    }
}

/// Normalizes instance connections to `(port_name, Option<Expr>)` pairs.
fn normalize_conns(
    child: &Module,
    inst: &Instance,
    path: &str,
) -> Result<Vec<(String, Option<Expr>)>, ElabError> {
    match &inst.conns {
        PortConns::Named(named) => Ok(named.clone()),
        PortConns::Ordered(exprs) => {
            if exprs.len() > child.ports.len() {
                return Err(ElabError::BadConnection {
                    path: format!("{path}.{}", inst.name),
                    port: "<ordered>".into(),
                    why: format!(
                        "{} connections for {} ports",
                        exprs.len(),
                        child.ports.len()
                    ),
                });
            }
            Ok(child
                .ports
                .iter()
                .zip(exprs.iter())
                .map(|(p, e)| (p.name.clone(), Some(e.clone())))
                .collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use alice_verilog::parse_source;

    fn build(src: &str, top: &str) -> Netlist {
        let f = parse_source(src).expect("parse");
        elaborate(&f, top).expect("elaborate")
    }

    #[test]
    fn combinational_assign() {
        let n = build(
            "module m(input wire [3:0] a, input wire [3:0] b, output wire [3:0] y);\
             assign y = (a & b) | (~a & ~b); endmodule",
            "m",
        );
        let mut sim = Simulator::new(&n);
        sim.set_input("a", &Bits::from_u64(0b1100, 4));
        sim.set_input("b", &Bits::from_u64(0b1010, 4));
        sim.settle();
        assert_eq!(sim.output("y").to_u64(), Some(0b1001));
    }

    #[test]
    fn arithmetic_and_comparison() {
        let n = build(
            "module m(input wire [7:0] a, input wire [7:0] b, output wire [7:0] s, output wire lt);\
             assign s = a + b; assign lt = a < b; endmodule",
            "m",
        );
        let mut sim = Simulator::new(&n);
        sim.set_input("a", &Bits::from_u64(100, 8));
        sim.set_input("b", &Bits::from_u64(57, 8));
        sim.settle();
        assert_eq!(sim.output("s").to_u64(), Some(157));
        assert_eq!(sim.output("lt").to_u64(), Some(0));
    }

    #[test]
    fn hierarchical_instances() {
        let src = r#"
module full_add(input wire a, input wire b, input wire ci, output wire s, output wire co);
  assign s = a ^ b ^ ci;
  assign co = (a & b) | (ci & (a ^ b));
endmodule
module add2(input wire [1:0] a, input wire [1:0] b, output wire [2:0] y);
  wire c0;
  full_add f0(.a(a[0]), .b(b[0]), .ci(1'b0), .s(y[0]), .co(c0));
  full_add f1(.a(a[1]), .b(b[1]), .ci(c0), .s(y[1]), .co(y[2]));
endmodule
"#;
        let n = build(src, "add2");
        let mut sim = Simulator::new(&n);
        for a in 0..4u64 {
            for b in 0..4u64 {
                sim.set_input("a", &Bits::from_u64(a, 2));
                sim.set_input("b", &Bits::from_u64(b, 2));
                sim.settle();
                assert_eq!(sim.output("y").to_u64(), Some(a + b), "{a}+{b}");
            }
        }
    }

    #[test]
    fn sequential_register_with_sync_reset() {
        let src = r#"
module reg8(input wire clk, input wire rst, input wire [7:0] d, output reg [7:0] q);
  always @(posedge clk) begin
    if (rst) q <= 8'd0;
    else q <= d;
  end
endmodule
"#;
        let n = build(src, "reg8");
        let mut sim = Simulator::new(&n);
        sim.set_input("rst", &Bits::from_u64(0, 1));
        sim.set_input("d", &Bits::from_u64(42, 8));
        sim.step();
        assert_eq!(sim.output("q").to_u64(), Some(42));
        sim.set_input("rst", &Bits::from_u64(1, 1));
        sim.step();
        assert_eq!(sim.output("q").to_u64(), Some(0));
    }

    #[test]
    fn comb_always_with_case() {
        let src = r#"
module dec(input wire [1:0] s, output reg [3:0] y);
  always @(*) begin
    case (s)
      2'd0: y = 4'b0001;
      2'd1: y = 4'b0010;
      2'd2: y = 4'b0100;
      default: y = 4'b1000;
    endcase
  end
endmodule
"#;
        let n = build(src, "dec");
        let mut sim = Simulator::new(&n);
        for (s, y) in [(0u64, 1u64), (1, 2), (2, 4), (3, 8)] {
            sim.set_input("s", &Bits::from_u64(s, 2));
            sim.settle();
            assert_eq!(sim.output("y").to_u64(), Some(y), "case {s}");
        }
    }

    #[test]
    fn latch_inference_is_rejected() {
        let src = r#"
module bad(input wire c, input wire d, output reg q);
  always @(*) begin
    if (c) q = d;
  end
endmodule
"#;
        let f = parse_source(src).expect("parse");
        let err = elaborate(&f, "bad").unwrap_err();
        assert!(matches!(err, ElabError::InferredLatch(_)), "{err}");
    }

    #[test]
    fn comb_default_then_override_is_fine() {
        let src = r#"
module ok(input wire c, input wire d, output reg q);
  always @(*) begin
    q = 1'b0;
    if (c) q = d;
  end
endmodule
"#;
        let n = build(src, "ok");
        let mut sim = Simulator::new(&n);
        sim.set_input("c", &Bits::from_u64(1, 1));
        sim.set_input("d", &Bits::from_u64(1, 1));
        sim.settle();
        assert_eq!(sim.output("q").to_u64(), Some(1));
        sim.set_input("c", &Bits::from_u64(0, 1));
        sim.settle();
        assert_eq!(sim.output("q").to_u64(), Some(0));
    }

    #[test]
    fn undriven_net_is_rejected() {
        let src = "module u(output wire y); wire a; assign y = a; endmodule";
        let f = parse_source(src).expect("parse");
        assert!(matches!(
            elaborate(&f, "u").unwrap_err(),
            ElabError::Undriven { .. }
        ));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let src = "module d(input wire a, output wire y); assign y = a; assign y = ~a; endmodule";
        let f = parse_source(src).expect("parse");
        assert!(matches!(
            elaborate(&f, "d").unwrap_err(),
            ElabError::MultipleDrivers { .. }
        ));
    }

    #[test]
    fn comb_loop_detected() {
        let src = "module l(output wire y); wire a; wire b; assign a = ~b; assign b = ~a; assign y = a; endmodule";
        let f = parse_source(src).expect("parse");
        assert!(matches!(
            elaborate(&f, "l").unwrap_err(),
            ElabError::CombLoop(_)
        ));
    }

    #[test]
    fn parameterized_instance() {
        let src = r#"
module pass #(parameter W = 2) (input wire [W-1:0] a, output wire [W-1:0] y);
  assign y = a;
endmodule
module top(input wire [7:0] x, output wire [7:0] z);
  pass #(.W(8)) p0 (.a(x), .y(z));
endmodule
"#;
        let n = build(src, "top");
        let mut sim = Simulator::new(&n);
        sim.set_input("x", &Bits::from_u64(0x5a, 8));
        sim.settle();
        assert_eq!(sim.output("z").to_u64(), Some(0x5a));
    }

    #[test]
    fn concat_and_partselect_routing() {
        let src = r#"
module swz(input wire [7:0] a, output wire [7:0] y);
  assign y = {a[3:0], a[7:4]};
endmodule
"#;
        let n = build(src, "swz");
        let mut sim = Simulator::new(&n);
        sim.set_input("a", &Bits::from_u64(0xab, 8));
        sim.settle();
        assert_eq!(sim.output("y").to_u64(), Some(0xba));
    }

    #[test]
    fn counter_with_enable() {
        let src = r#"
module cnt(input wire clk, input wire rst, input wire en, output reg [3:0] q);
  always @(posedge clk) begin
    if (rst) q <= 4'd0;
    else if (en) q <= q + 4'd1;
  end
endmodule
"#;
        let n = build(src, "cnt");
        let mut sim = Simulator::new(&n);
        sim.set_input("rst", &Bits::from_u64(1, 1));
        sim.set_input("en", &Bits::from_u64(0, 1));
        sim.step();
        sim.set_input("rst", &Bits::from_u64(0, 1));
        sim.set_input("en", &Bits::from_u64(1, 1));
        for expect in 1..=5u64 {
            sim.step();
            assert_eq!(sim.output("q").to_u64(), Some(expect));
        }
        sim.set_input("en", &Bits::from_u64(0, 1));
        sim.step();
        assert_eq!(sim.output("q").to_u64(), Some(5), "hold when disabled");
    }

    #[test]
    fn instance_output_to_concat() {
        let src = r#"
module pair(output wire [1:0] y);
  assign y = 2'b10;
endmodule
module top(output wire a, output wire b);
  pair p(.y({a, b}));
endmodule
"#;
        let n = build(src, "top");
        let mut sim = Simulator::new(&n);
        sim.settle();
        assert_eq!(sim.output("a").to_u64(), Some(1));
        assert_eq!(sim.output("b").to_u64(), Some(0));
    }
}
