//! Word-level gate constructors: vectors of [`Lit`]s (LSB first) with
//! Verilog-flavoured unsigned semantics. These are the building blocks the
//! RTL elaborator lowers expressions onto.

use crate::ir::{Lit, Netlist};
use alice_verilog::Bits;

/// A bit vector of literals, LSB first.
pub type Word = Vec<Lit>;

/// Builds a constant word from `bits`.
pub fn const_word(bits: &Bits) -> Word {
    bits.iter()
        .map(|b| if b { Lit::TRUE } else { Lit::FALSE })
        .collect()
}

/// Zero-extends or truncates `w` to `width`.
pub fn resize(w: &Word, width: u32) -> Word {
    let mut out = w.clone();
    out.resize(width as usize, Lit::FALSE);
    out.truncate(width as usize);
    out
}

/// Bitwise AND of equal-width words (shorter operand zero-extended).
pub fn and(n: &mut Netlist, a: &Word, b: &Word) -> Word {
    let w = a.len().max(b.len()) as u32;
    let (a, b) = (resize(a, w), resize(b, w));
    a.iter().zip(&b).map(|(&x, &y)| n.and(x, y)).collect()
}

/// Bitwise OR.
pub fn or(n: &mut Netlist, a: &Word, b: &Word) -> Word {
    let w = a.len().max(b.len()) as u32;
    let (a, b) = (resize(a, w), resize(b, w));
    a.iter().zip(&b).map(|(&x, &y)| n.or(x, y)).collect()
}

/// Bitwise XOR.
pub fn xor(n: &mut Netlist, a: &Word, b: &Word) -> Word {
    let w = a.len().max(b.len()) as u32;
    let (a, b) = (resize(a, w), resize(b, w));
    a.iter().zip(&b).map(|(&x, &y)| n.xor(x, y)).collect()
}

/// Bitwise NOT.
pub fn not(a: &Word) -> Word {
    a.iter().map(|l| l.compl()).collect()
}

/// OR-reduction (non-zero test).
pub fn reduce_or(n: &mut Netlist, a: &Word) -> Lit {
    a.iter().copied().fold(Lit::FALSE, |acc, b| n.or(acc, b))
}

/// AND-reduction.
pub fn reduce_and(n: &mut Netlist, a: &Word) -> Lit {
    a.iter().copied().fold(Lit::TRUE, |acc, b| n.and(acc, b))
}

/// XOR-reduction (parity).
pub fn reduce_xor(n: &mut Netlist, a: &Word) -> Lit {
    a.iter().copied().fold(Lit::FALSE, |acc, b| n.xor(acc, b))
}

/// Per-bit 2:1 mux: `s ? t : e` (operands resized to the max width).
pub fn mux(n: &mut Netlist, s: Lit, t: &Word, e: &Word) -> Word {
    let w = t.len().max(e.len()) as u32;
    let (t, e) = (resize(t, w), resize(e, w));
    t.iter().zip(&e).map(|(&x, &y)| n.mux(s, x, y)).collect()
}

/// Ripple-carry adder; result has the width of the wider operand
/// (carry-out dropped, as in a Verilog assignment of equal width).
pub fn add(n: &mut Netlist, a: &Word, b: &Word) -> Word {
    let w = a.len().max(b.len()) as u32;
    let (a, b) = (resize(a, w), resize(b, w));
    let mut carry = Lit::FALSE;
    let mut out = Vec::with_capacity(w as usize);
    for i in 0..w as usize {
        let axb = n.xor(a[i], b[i]);
        let sum = n.xor(axb, carry);
        let c1 = n.and(a[i], b[i]);
        let c2 = n.and(axb, carry);
        carry = n.or(c1, c2);
        out.push(sum);
    }
    out
}

/// Two's-complement subtraction `a - b` (borrow dropped).
pub fn sub(n: &mut Netlist, a: &Word, b: &Word) -> Word {
    let w = a.len().max(b.len()) as u32;
    let (a, b) = (resize(a, w), resize(b, w));
    let nb = not(&b);
    let mut carry = Lit::TRUE;
    let mut out = Vec::with_capacity(w as usize);
    for i in 0..w as usize {
        let axb = n.xor(a[i], nb[i]);
        let sum = n.xor(axb, carry);
        let c1 = n.and(a[i], nb[i]);
        let c2 = n.and(axb, carry);
        carry = n.or(c1, c2);
        out.push(sum);
    }
    out
}

/// Arithmetic negation `-a`.
pub fn neg(n: &mut Netlist, a: &Word) -> Word {
    let zero = vec![Lit::FALSE; a.len()];
    sub(n, &zero, a)
}

/// Shift-and-add array multiplier; result truncated to the wider width.
pub fn mul(n: &mut Netlist, a: &Word, b: &Word) -> Word {
    let w = a.len().max(b.len());
    let mut acc = vec![Lit::FALSE; w];
    for (i, &bi) in b.iter().enumerate() {
        if i >= w {
            break;
        }
        // partial = (a << i) & {w{bi}}
        let mut partial = vec![Lit::FALSE; w];
        for j in 0..w.saturating_sub(i) {
            if j < a.len() {
                partial[i + j] = n.and(a[j], bi);
            }
        }
        acc = add(n, &acc, &partial);
    }
    acc
}

/// Restoring array divider: `(a / b, a % b)` with Verilog unsigned
/// semantics at the wider operand width. One shift–compare–subtract row
/// per dividend bit, MSB first: the candidate remainder is the previous
/// remainder shifted left with the next dividend bit appended; when it
/// reaches the divisor, the divisor is subtracted and that quotient bit
/// is 1. Division by zero falls out of the same array as an all-ones
/// quotient with `a` as the remainder (every compare trivially passes).
pub fn divmod(n: &mut Netlist, a: &Word, b: &Word) -> (Word, Word) {
    let w = a.len().max(b.len());
    let (a, b) = (resize(a, w as u32), resize(b, w as u32));
    // Compare and subtract one bit wider than the remainder: the shifted
    // candidate needs w+1 bits before the restore step shrinks it again.
    let bx = resize(&b, w as u32 + 1);
    let mut rem = vec![Lit::FALSE; w];
    let mut q = vec![Lit::FALSE; w];
    for i in (0..w).rev() {
        // shifted = (rem << 1) | a[i], LSB first.
        let mut shifted = Vec::with_capacity(w + 1);
        shifted.push(a[i]);
        shifted.extend_from_slice(&rem);
        let ge = lt(n, &shifted, &bx).compl();
        let diff = sub(n, &shifted, &bx);
        // Either branch fits back into w bits: after a subtraction the
        // remainder is < b, otherwise it *is* the rejected candidate < b.
        rem = resize(&mux(n, ge, &diff, &shifted), w as u32);
        q[i] = ge;
    }
    (q, rem)
}

/// Equality comparison, 1-bit result.
pub fn eq(n: &mut Netlist, a: &Word, b: &Word) -> Lit {
    let w = a.len().max(b.len()) as u32;
    let (a, b) = (resize(a, w), resize(b, w));
    let mut acc = Lit::TRUE;
    for i in 0..w as usize {
        let x = n.xor(a[i], b[i]);
        acc = n.and(acc, x.compl());
    }
    acc
}

/// Unsigned less-than `a < b`, 1-bit result.
pub fn lt(n: &mut Netlist, a: &Word, b: &Word) -> Lit {
    let w = a.len().max(b.len()) as u32;
    let (a, b) = (resize(a, w), resize(b, w));
    // Iterate from LSB: lt = (!a & b) | (a==b) & lt_prev
    let mut acc = Lit::FALSE;
    for i in 0..w as usize {
        let altb = n.and(a[i].compl(), b[i]);
        let aeqb = n.xor(a[i], b[i]).compl();
        let keep = n.and(aeqb, acc);
        acc = n.or(altb, keep);
    }
    acc
}

/// Left shift by a constant amount.
pub fn shl_const(a: &Word, amt: u32) -> Word {
    let w = a.len();
    let mut out = vec![Lit::FALSE; w];
    for i in 0..w {
        if i >= amt as usize {
            out[i] = a[i - amt as usize];
        }
    }
    out
}

/// Logical right shift by a constant amount.
pub fn shr_const(a: &Word, amt: u32) -> Word {
    let w = a.len();
    let mut out = vec![Lit::FALSE; w];
    for i in 0..w {
        if i + (amt as usize) < w {
            out[i] = a[i + amt as usize];
        }
    }
    out
}

/// Barrel shifter for a dynamic left shift.
pub fn shl_dyn(n: &mut Netlist, a: &Word, amt: &Word) -> Word {
    let mut cur = a.clone();
    for (k, &bit) in amt.iter().enumerate() {
        let shift = 1u32 << k.min(31);
        if shift as usize >= cur.len() * 2 {
            // Further stages can only zero everything when the bit is set.
            let z = vec![Lit::FALSE; cur.len()];
            cur = mux(n, bit, &z, &cur);
            continue;
        }
        let shifted = shl_const(&cur, shift);
        cur = mux(n, bit, &shifted, &cur);
    }
    cur
}

/// Barrel shifter for a dynamic logical right shift.
pub fn shr_dyn(n: &mut Netlist, a: &Word, amt: &Word) -> Word {
    let mut cur = a.clone();
    for (k, &bit) in amt.iter().enumerate() {
        let shift = 1u32 << k.min(31);
        if shift as usize >= cur.len() * 2 {
            let z = vec![Lit::FALSE; cur.len()];
            cur = mux(n, bit, &z, &cur);
            continue;
        }
        let shifted = shr_const(&cur, shift);
        cur = mux(n, bit, &shifted, &cur);
    }
    cur
}

/// Dynamic bit select `a[idx]` as a mux tree.
pub fn bit_select(n: &mut Netlist, a: &Word, idx: &Word) -> Lit {
    let shifted = shr_dyn(n, a, idx);
    shifted.first().copied().unwrap_or(Lit::FALSE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;
    use alice_verilog::Bits;

    fn eval2(
        f: impl Fn(&mut Netlist, &Word, &Word) -> Word,
        wa: u32,
        wb: u32,
        a: u64,
        b: u64,
    ) -> u64 {
        let mut n = Netlist::new("t");
        let aw = n.add_input("a", wa);
        let bw = n.add_input("b", wb);
        let y = f(&mut n, &aw, &bw);
        n.add_output("y", y);
        let mut sim = Simulator::new(&n);
        sim.set_input("a", &Bits::from_u64(a, wa));
        sim.set_input("b", &Bits::from_u64(b, wb));
        sim.settle();
        sim.output("y").to_u64().expect("fits")
    }

    #[test]
    fn adder_matches_reference() {
        for (a, b) in [(0u64, 0u64), (1, 1), (13, 7), (255, 1), (200, 100)] {
            assert_eq!(eval2(add, 8, 8, a, b), (a + b) & 0xff, "{a}+{b}");
        }
    }

    #[test]
    fn subtractor_matches_reference() {
        for (a, b) in [(5u64, 3u64), (3, 5), (0, 1), (255, 255)] {
            assert_eq!(eval2(sub, 8, 8, a, b), a.wrapping_sub(b) & 0xff, "{a}-{b}");
        }
    }

    #[test]
    fn multiplier_matches_reference() {
        for (a, b) in [(0u64, 7u64), (3, 5), (15, 15), (12, 10)] {
            assert_eq!(eval2(mul, 8, 8, a, b), (a * b) & 0xff, "{a}*{b}");
        }
    }

    #[test]
    fn divider_matches_reference() {
        for (a, b) in [(0u64, 7u64), (13, 4), (255, 16), (200, 3), (7, 9), (42, 1)] {
            assert_eq!(eval2(|n, a, b| divmod(n, a, b).0, 8, 8, a, b), a / b);
            assert_eq!(eval2(|n, a, b| divmod(n, a, b).1, 8, 8, a, b), a % b);
        }
        // Division by zero: all-ones quotient, dividend as remainder.
        assert_eq!(eval2(|n, a, b| divmod(n, a, b).0, 8, 8, 77, 0), 0xff);
        assert_eq!(eval2(|n, a, b| divmod(n, a, b).1, 8, 8, 77, 0), 77);
    }

    #[test]
    fn divider_handles_mixed_widths() {
        assert_eq!(eval2(|n, a, b| divmod(n, a, b).0, 8, 4, 250, 9), 27);
        assert_eq!(eval2(|n, a, b| divmod(n, a, b).1, 4, 8, 15, 200), 15);
    }

    #[test]
    fn comparisons_match_reference() {
        for (a, b) in [(1u64, 2u64), (2, 1), (7, 7), (0, 255)] {
            let lt_got = eval2(|n, a, b| vec![lt(n, a, b)], 8, 8, a, b);
            assert_eq!(lt_got, (a < b) as u64, "{a}<{b}");
            let eq_got = eval2(|n, a, b| vec![eq(n, a, b)], 8, 8, a, b);
            assert_eq!(eq_got, (a == b) as u64, "{a}=={b}");
        }
    }

    #[test]
    fn dynamic_shifts_match_reference() {
        for (a, s) in [(0b1011u64, 1u64), (0xff, 3), (1, 7), (0x80, 4)] {
            assert_eq!(eval2(shl_dyn, 8, 3, a, s), (a << s) & 0xff, "{a}<<{s}");
            assert_eq!(eval2(shr_dyn, 8, 3, a, s), a >> s, "{a}>>{s}");
        }
    }

    #[test]
    fn mixed_width_operands_zero_extend() {
        assert_eq!(eval2(add, 4, 8, 0xf, 0xf0), 0xff);
    }
}
