//! Gate-level netlist substrate for the ALICE reproduction.
//!
//! Replaces the Yosys + ABC portion of the original flow:
//!
//! * [`ir`] — an AND/XOR/MUX/DFF netlist with complemented edges,
//!   structural hashing and constant folding,
//! * [`words`] — word-level operators (adders, comparators, shifters...)
//!   used to lower RTL expressions,
//! * [`mod@elaborate`] — flattening RTL elaboration from the
//!   [`alice_verilog`] AST into gates,
//! * [`opt`] — buffer removal / dead-code elimination,
//! * [`sim`] — a two-state cycle-accurate simulator (equivalence checks
//!   and the SAT-attack oracle),
//! * [`lutmap`] — cut-based k-LUT technology mapping with truth tables
//!   (feeding the eFPGA bitstream).
//!
//! # Example: RTL to LUTs
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "module maj(input wire a, input wire b, input wire c, output wire y);
//!              assign y = (a & b) | (b & c) | (a & c);
//!            endmodule";
//! let file = alice_verilog::parse_source(src)?;
//! let netlist = alice_netlist::elaborate::elaborate(&file, "maj")?;
//! let mapped = alice_netlist::lutmap::map_luts(&netlist, 4)?;
//! assert_eq!(mapped.lut_count(), 1); // majority fits one 4-LUT
//! # Ok(())
//! # }
//! ```

pub mod elaborate;
pub mod ir;
pub mod lutmap;
pub mod opt;
pub mod sim;
pub mod words;

pub use elaborate::{elaborate, ElabError};
pub use ir::{Lit, Netlist, NetlistStats, Node, NodeId};
pub use lutmap::{map_luts, Lut, MapError, MappedDff, MappedNetlist, MappedSrc};
pub use opt::sweep;
pub use sim::{eval_comb, Simulator};
