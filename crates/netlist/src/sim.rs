//! Two-state cycle-accurate netlist simulator.
//!
//! Serves three roles in the reproduction:
//! 1. equivalence checking of elaborated RTL against reference software
//!    models (validating the Yosys-substitute synthesis),
//! 2. the *oracle* for the SAT attack (standing in for the unlocked chip of
//!    the paper's threat model),
//! 3. validation that redacted designs with the correct bitstream behave
//!    identically to the original.

use crate::ir::{Lit, Netlist, Node, NodeId};
use alice_verilog::Bits;

/// A simulator instance bound to a netlist.
///
/// # Example
///
/// ```
/// use alice_netlist::ir::Netlist;
/// use alice_netlist::sim::Simulator;
/// use alice_verilog::Bits;
///
/// let mut n = Netlist::new("xor2");
/// let a = n.add_input("a", 1)[0];
/// let b = n.add_input("b", 1)[0];
/// let y = n.xor(a, b);
/// n.add_output("y", vec![y]);
///
/// let mut sim = Simulator::new(&n);
/// sim.set_input("a", &Bits::from_u64(1, 1));
/// sim.set_input("b", &Bits::from_u64(0, 1));
/// sim.settle();
/// assert_eq!(sim.output("y").to_u64(), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    values: Vec<bool>,
    dff_state: Vec<(NodeId, bool)>,
    order: Vec<NodeId>,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator with DFFs at their init values and inputs at 0.
    ///
    /// # Panics
    ///
    /// Panics if the netlist contains a combinational cycle (elaboration
    /// rejects those, so this only fires on hand-built netlists).
    pub fn new(netlist: &'a Netlist) -> Self {
        let values = vec![false; netlist.len()];
        let dff_state = netlist
            .iter()
            .filter_map(|(id, n)| match n {
                Node::Dff { init, .. } => Some((id, *init)),
                _ => None,
            })
            .collect();
        let order = netlist
            .comb_topo_order()
            .expect("combinational cycle in netlist");
        let mut sim = Simulator {
            netlist,
            values,
            dff_state,
            order,
        };
        sim.load_state();
        sim
    }

    fn load_state(&mut self) {
        for &(id, v) in &self.dff_state {
            self.values[id.0 as usize] = v;
        }
    }

    /// Sets an input port value (LSB-first bits of `value`).
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn set_input(&mut self, port: &str, value: &Bits) {
        let (_, bits) = self
            .netlist
            .inputs
            .iter()
            .find(|(n, _)| n.as_str() == port)
            .unwrap_or_else(|| panic!("no input port `{port}`"));
        for (i, &node) in bits.iter().enumerate() {
            self.values[node.0 as usize] = value.bit(i as u32);
        }
    }

    fn lit_value(&self, l: Lit) -> bool {
        self.values[l.node().0 as usize] ^ l.is_compl()
    }

    /// Propagates combinational logic (inputs and DFF outputs held fixed).
    pub fn settle(&mut self) {
        for i in 0..self.order.len() {
            let id = self.order[i];
            let v = match self.netlist.node(id) {
                Node::Const0 => false,
                Node::Input { .. } | Node::Dff { .. } => continue,
                Node::And(a, b) => self.lit_value(*a) && self.lit_value(*b),
                Node::Xor(a, b) => self.lit_value(*a) ^ self.lit_value(*b),
                Node::Buf(a) => self.lit_value(*a),
                Node::Mux { s, t, e } => {
                    if self.lit_value(*s) {
                        self.lit_value(*t)
                    } else {
                        self.lit_value(*e)
                    }
                }
            };
            self.values[id.0 as usize] = v;
        }
    }

    /// Advances one clock cycle: settles, then latches all DFFs.
    pub fn step(&mut self) {
        self.settle();
        let mut next = Vec::with_capacity(self.dff_state.len());
        for &(id, _) in &self.dff_state {
            let d = match self.netlist.node(id) {
                Node::Dff { d, .. } => *d,
                _ => unreachable!("dff_state holds only DFFs"),
            };
            next.push((id, self.lit_value(d)));
        }
        self.dff_state = next;
        self.load_state();
        self.settle();
    }

    /// Resets all DFFs to their init values.
    pub fn reset(&mut self) {
        self.dff_state = self
            .netlist
            .iter()
            .filter_map(|(id, n)| match n {
                Node::Dff { init, .. } => Some((id, *init)),
                _ => None,
            })
            .collect();
        self.load_state();
    }

    /// Reads an output port as a bit vector.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist.
    pub fn output(&self, port: &str) -> Bits {
        let (_, bits) = self
            .netlist
            .outputs
            .iter()
            .find(|(n, _)| n.as_str() == port)
            .unwrap_or_else(|| panic!("no output port `{port}`"));
        let vals: Vec<bool> = bits.iter().map(|&l| self.lit_value(l)).collect();
        Bits::from_bits(&vals)
    }

    /// Reads the value of an arbitrary literal (after `settle`).
    pub fn probe(&self, l: Lit) -> bool {
        self.lit_value(l)
    }
}

/// Convenience: runs a purely combinational netlist on the given inputs.
///
/// Inputs are `(port, value)` pairs; returns `(port, value)` outputs.
pub fn eval_comb(netlist: &Netlist, inputs: &[(&str, Bits)]) -> Vec<(String, Bits)> {
    let mut sim = Simulator::new(netlist);
    for (p, v) in inputs {
        sim.set_input(p, v);
    }
    sim.settle();
    netlist
        .outputs
        .iter()
        .map(|(name, _)| (name.to_string(), sim.output(name.as_str())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        // 3-bit counter: q <= q + 1
        let mut n = Netlist::new("cnt");
        let q: Vec<Lit> = (0..3).map(|i| n.dff(format!("q[{i}]"), false)).collect();
        let one = vec![Lit::TRUE, Lit::FALSE, Lit::FALSE];
        let next = crate::words::add(&mut n, &q, &one);
        for (qi, di) in q.iter().zip(&next) {
            n.set_dff_input(*qi, *di);
        }
        n.add_output("q", q.clone());

        let mut sim = Simulator::new(&n);
        sim.settle();
        for expect in 1..=10u64 {
            sim.step();
            assert_eq!(sim.output("q").to_u64(), Some(expect % 8));
        }
        sim.reset();
        sim.settle();
        assert_eq!(sim.output("q").to_u64(), Some(0));
    }

    #[test]
    fn eval_comb_helper() {
        let mut n = Netlist::new("mux");
        let s = n.add_input("s", 1)[0];
        let a = n.add_input("a", 4);
        let b = n.add_input("b", 4);
        let y = crate::words::mux(&mut n, s, &a, &b);
        n.add_output("y", y);
        let outs = eval_comb(
            &n,
            &[
                ("s", Bits::from_u64(1, 1)),
                ("a", Bits::from_u64(0xA, 4)),
                ("b", Bits::from_u64(0x5, 4)),
            ],
        );
        assert_eq!(outs[0].1.to_u64(), Some(0xA));
    }

    #[test]
    fn dff_init_value_respected() {
        let mut n = Netlist::new("init");
        let q = n.dff("q", true);
        n.set_dff_input(q, q); // hold
        n.add_output("q", vec![q]);
        let mut sim = Simulator::new(&n);
        sim.settle();
        assert_eq!(sim.output("q").to_u64(), Some(1));
        sim.step();
        assert_eq!(sim.output("q").to_u64(), Some(1));
    }
}
