//! Dominator trees over rooted directed graphs.
//!
//! ALICE uses dominator analysis on the module hierarchy to pick the
//! insertion point of a multi-module eFPGA instance (§6 of the paper): the
//! lowest common dominator of the redacted instances minimizes re-routing.
//! The implementation is the iterative algorithm of Cooper, Harvey and
//! Kennedy, which is simple and fast at hierarchy scale.

/// A rooted directed graph described by predecessor lists.
#[derive(Debug, Clone)]
pub struct DiGraph {
    /// `preds[v]` lists the predecessors of `v`.
    pub preds: Vec<Vec<usize>>,
    /// The root node (no predecessors needed).
    pub root: usize,
}

/// The immediate-dominator table of a [`DiGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomTree {
    /// `idom[v]` is the immediate dominator of `v`; `idom[root] == root`.
    /// Unreachable nodes map to `usize::MAX`.
    pub idom: Vec<usize>,
    root: usize,
}

impl DomTree {
    /// Computes the dominator tree of `g`.
    ///
    /// # Example
    ///
    /// ```
    /// use alice_dataflow::domtree::{DiGraph, DomTree};
    ///
    /// // 0 -> 1 -> 2 and 0 -> 2 : node 2 is dominated only by 0.
    /// let g = DiGraph { preds: vec![vec![], vec![0], vec![0, 1]], root: 0 };
    /// let dt = DomTree::compute(&g);
    /// assert_eq!(dt.immediate_dominator(2), Some(0));
    /// ```
    pub fn compute(g: &DiGraph) -> DomTree {
        let n = g.preds.len();
        // Reverse post-order over successors (derived from preds).
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (v, ps) in g.preds.iter().enumerate() {
            for &p in ps {
                succs[p].push(v);
            }
        }
        let mut order = Vec::with_capacity(n); // post-order
        let mut seen = vec![false; n];
        let mut stack = vec![(g.root, 0usize)];
        seen[g.root] = true;
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            if *i < succs[v].len() {
                let next = succs[v][*i];
                *i += 1;
                if !seen[next] {
                    seen[next] = true;
                    stack.push((next, 0));
                }
            } else {
                order.push(v);
                stack.pop();
            }
        }
        let rpo: Vec<usize> = order.iter().rev().copied().collect();
        let mut rpo_num = vec![usize::MAX; n];
        for (i, &v) in rpo.iter().enumerate() {
            rpo_num[v] = i;
        }

        let mut idom = vec![usize::MAX; n];
        idom[g.root] = g.root;
        let intersect = |idom: &[usize], rpo_num: &[usize], mut a: usize, mut b: usize| {
            while a != b {
                while rpo_num[a] > rpo_num[b] {
                    a = idom[a];
                }
                while rpo_num[b] > rpo_num[a] {
                    b = idom[b];
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &v in &rpo {
                if v == g.root {
                    continue;
                }
                let mut new_idom = usize::MAX;
                for &p in &g.preds[v] {
                    if idom[p] == usize::MAX {
                        continue;
                    }
                    new_idom = if new_idom == usize::MAX {
                        p
                    } else {
                        intersect(&idom, &rpo_num, new_idom, p)
                    };
                }
                if new_idom != usize::MAX && idom[v] != new_idom {
                    idom[v] = new_idom;
                    changed = true;
                }
            }
        }
        DomTree { idom, root: g.root }
    }

    /// The immediate dominator of `v` (`None` for the root or unreachable
    /// nodes).
    pub fn immediate_dominator(&self, v: usize) -> Option<usize> {
        if v == self.root || self.idom.get(v).copied() == Some(usize::MAX) {
            None
        } else {
            self.idom.get(v).copied()
        }
    }

    /// Whether `a` dominates `b`.
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        let mut v = b;
        loop {
            if v == a {
                return true;
            }
            if v == self.root || self.idom[v] == usize::MAX {
                return false;
            }
            v = self.idom[v];
        }
    }

    /// The nearest node dominating every node in `nodes` (the lowest common
    /// dominator). Returns the root for an empty slice.
    pub fn common_dominator(&self, nodes: &[usize]) -> usize {
        let mut it = nodes.iter();
        let Some(&first) = it.next() else {
            return self.root;
        };
        let mut acc = first;
        for &v in it {
            acc = self.intersect_pair(acc, v);
        }
        acc
    }

    fn intersect_pair(&self, mut a: usize, mut b: usize) -> usize {
        // Walk both up to the root, collecting depths.
        let depth = |mut v: usize| {
            let mut d = 0;
            while v != self.root {
                v = self.idom[v];
                d += 1;
            }
            d
        };
        let (mut da, mut db) = (depth(a), depth(b));
        while da > db {
            a = self.idom[a];
            da -= 1;
        }
        while db > da {
            b = self.idom[b];
            db -= 1;
        }
        while a != b {
            a = self.idom[a];
            b = self.idom[b];
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic example from the Cooper-Harvey-Kennedy paper.
    #[test]
    fn chk_paper_example() {
        // Nodes: 0=R,1,2,3,4 with edges R->1, R->2, 1->3, 2->3, 3->4, 4->3
        let g = DiGraph {
            preds: vec![vec![], vec![0], vec![0], vec![1, 2, 4], vec![3]],
            root: 0,
        };
        let dt = DomTree::compute(&g);
        assert_eq!(dt.immediate_dominator(1), Some(0));
        assert_eq!(dt.immediate_dominator(2), Some(0));
        assert_eq!(dt.immediate_dominator(3), Some(0));
        assert_eq!(dt.immediate_dominator(4), Some(3));
    }

    #[test]
    fn tree_graph_dominators_are_parents() {
        // 0 -> {1, 2}; 1 -> {3, 4}
        let g = DiGraph {
            preds: vec![vec![], vec![0], vec![0], vec![1], vec![1]],
            root: 0,
        };
        let dt = DomTree::compute(&g);
        assert_eq!(dt.immediate_dominator(3), Some(1));
        assert!(dt.dominates(1, 4));
        assert!(!dt.dominates(2, 4));
        assert_eq!(dt.common_dominator(&[3, 4]), 1);
        assert_eq!(dt.common_dominator(&[3, 2]), 0);
        assert_eq!(dt.common_dominator(&[4]), 4);
    }

    #[test]
    fn unreachable_nodes_have_no_idom() {
        let g = DiGraph {
            preds: vec![vec![], vec![0], vec![]],
            root: 0,
        };
        let dt = DomTree::compute(&g);
        assert_eq!(dt.immediate_dominator(2), None);
    }
}
