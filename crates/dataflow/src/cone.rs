//! Output-cone dataflow analysis over the RTL module hierarchy.
//!
//! This implements the analysis behind line 7 of Algorithm 1 in the paper
//! (`IdentifyModules(M, o)`): for a selected top-level output, find every
//! module instance whose logic can influence that output. The analysis is
//! conservative (always-block reads are treated as dependencies of every
//! target the block assigns) and descends the hierarchy using per-module
//! summaries computed bottom-up.

use alice_intern::Symbol;
use alice_verilog::ast::*;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;

/// Per-module dataflow summary.
#[derive(Debug, Clone, Default)]
pub struct ModuleDeps {
    /// For each output port: input ports it transitively depends on.
    pub out_to_in: BTreeMap<String, BTreeSet<String>>,
    /// For each output port: relative instance paths in its cone
    /// (e.g. `u0` or `u0.sub1`).
    pub out_to_insts: BTreeMap<String, BTreeSet<String>>,
}

/// Whole-design dataflow: per-module summaries plus the top name.
#[derive(Debug, Clone)]
pub struct DesignDataflow {
    /// Summaries keyed by interned module name.
    pub modules: BTreeMap<Symbol, ModuleDeps>,
    /// Top module name.
    pub top: Symbol,
}

/// Errors from dataflow analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataflowError {
    /// A module referenced by an instance is missing.
    UnknownModule(String),
    /// The selected output does not exist on the top module.
    UnknownOutput(String),
}

impl fmt::Display for DataflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataflowError::UnknownModule(m) => write!(f, "unknown module `{m}`"),
            DataflowError::UnknownOutput(o) => write!(f, "unknown top output `{o}`"),
        }
    }
}

impl std::error::Error for DataflowError {}

/// Local dataflow source inside one module.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Source {
    Net(String),
    InstOut { inst: String, port: String },
}

/// Analyzes the design rooted at `top`.
///
/// # Errors
///
/// Returns [`DataflowError::UnknownModule`] if an instance references an
/// undefined module.
pub fn analyze(file: &SourceFile, top: &str) -> Result<DesignDataflow, DataflowError> {
    let mut analyzer = Analyzer {
        file,
        done: BTreeMap::new(),
    };
    analyzer.module_deps(top)?;
    Ok(DesignDataflow {
        modules: analyzer.done,
        top: Symbol::intern(top),
    })
}

impl DesignDataflow {
    /// Full instance paths (rooted at `top.`) in the cone of `output`.
    ///
    /// # Errors
    ///
    /// Returns [`DataflowError::UnknownOutput`] if `output` is not an output
    /// port of the top module.
    pub fn cone_of(&self, output: &str) -> Result<BTreeSet<Symbol>, DataflowError> {
        let deps = self
            .modules
            .get(&self.top)
            .expect("top analyzed in constructor");
        let insts = deps
            .out_to_insts
            .get(output)
            .ok_or_else(|| DataflowError::UnknownOutput(output.to_string()))?;
        Ok(insts
            .iter()
            .map(|rel| Symbol::intern(&format!("{}.{rel}", self.top)))
            .collect())
    }

    /// Scores every instance path by how many of `outputs` it affects
    /// (lines 6–9 of Algorithm 1).
    ///
    /// # Errors
    ///
    /// Propagates [`DataflowError::UnknownOutput`] for bad output names.
    pub fn score_instances(
        &self,
        outputs: &[String],
    ) -> Result<BTreeMap<Symbol, u32>, DataflowError> {
        let mut scores: BTreeMap<Symbol, u32> = BTreeMap::new();
        for o in outputs {
            for inst in self.cone_of(o)? {
                *scores.entry(inst).or_insert(0) += 1;
            }
        }
        Ok(scores)
    }
}

struct Analyzer<'a> {
    file: &'a SourceFile,
    done: BTreeMap<Symbol, ModuleDeps>,
}

impl<'a> Analyzer<'a> {
    fn module_deps(&mut self, name: &str) -> Result<(), DataflowError> {
        if self.done.contains_key(&Symbol::intern(name)) {
            return Ok(());
        }
        let m = self
            .file
            .module(name)
            .ok_or_else(|| DataflowError::UnknownModule(name.to_string()))?;
        // Ensure children are summarized first (hierarchy is acyclic; the
        // verilog crate rejects recursion).
        for inst in m.instances() {
            self.module_deps(&inst.module)?;
        }

        // Build the local predecessor map: net -> sources that drive it.
        let mut preds: HashMap<String, Vec<Source>> = HashMap::new();
        let mut add_pred = |target: &str, src: Source| {
            preds.entry(target.to_string()).or_default().push(src);
        };
        for item in &m.items {
            match item {
                Item::Assign(a) => {
                    let mut ids = Vec::new();
                    a.rhs.collect_ids(&mut ids);
                    for t in a.lhs.targets() {
                        for id in &ids {
                            add_pred(t, Source::Net(id.to_string()));
                        }
                    }
                }
                Item::Net(d) => {
                    if let Some(init) = &d.init {
                        let mut ids = Vec::new();
                        init.collect_ids(&mut ids);
                        for id in &ids {
                            add_pred(&d.name, Source::Net(id.to_string()));
                        }
                    }
                }
                Item::Always(ab) => {
                    // Conservative: every net read anywhere in the block is
                    // a dependency of every target. Edge signals (clock,
                    // async reset) count as reads.
                    let mut reads = Vec::new();
                    if let Sensitivity::Edges(edges) = &ab.sensitivity {
                        reads.extend(edges.iter().map(|(_, s)| s.clone()));
                    }
                    collect_reads(&ab.body, &mut reads);
                    let mut targets = Vec::new();
                    collect_stmt_targets(&ab.body, &mut targets);
                    for t in &targets {
                        for r in &reads {
                            add_pred(t, Source::Net(r.clone()));
                        }
                    }
                }
                Item::Instance(inst) => {
                    let child = self.file.module(&inst.module).expect("checked above");
                    let conns = conn_pairs(child, inst);
                    for (port, expr) in conns {
                        let Some(expr) = expr else { continue };
                        let dir = child.port(&port).map(|p| p.dir);
                        match dir {
                            Some(Direction::Output) | Some(Direction::Inout) => {
                                // nets written by the instance
                                let mut ids = Vec::new();
                                expr.collect_ids(&mut ids);
                                for id in ids {
                                    add_pred(
                                        id,
                                        Source::InstOut {
                                            inst: inst.name.clone(),
                                            port: port.clone(),
                                        },
                                    );
                                }
                            }
                            _ => {}
                        }
                    }
                }
                _ => {}
            }
        }

        // Map each instance input port to its source nets (for summary
        // expansion).
        let mut inst_in_srcs: HashMap<(String, String), Vec<String>> = HashMap::new();
        let mut inst_module: HashMap<String, String> = HashMap::new();
        for inst in m.instances() {
            inst_module.insert(inst.name.clone(), inst.module.clone());
            let child = self.file.module(&inst.module).expect("checked above");
            for (port, expr) in conn_pairs(child, inst) {
                let Some(expr) = expr else { continue };
                if child.port(&port).map(|p| p.dir) == Some(Direction::Input) {
                    let mut ids = Vec::new();
                    expr.collect_ids(&mut ids);
                    inst_in_srcs.insert(
                        (inst.name.clone(), port.clone()),
                        ids.into_iter().map(|s| s.to_string()).collect(),
                    );
                }
            }
        }

        // Backward reachability from each output port.
        let mut deps = ModuleDeps::default();
        let input_ports: BTreeSet<String> = m
            .ports
            .iter()
            .filter(|p| matches!(p.dir, Direction::Input | Direction::Inout))
            .map(|p| p.name.clone())
            .collect();
        for port in &m.ports {
            if !matches!(port.dir, Direction::Output | Direction::Inout) {
                continue;
            }
            let mut need_in: BTreeSet<String> = BTreeSet::new();
            let mut insts: BTreeSet<String> = BTreeSet::new();
            let mut visited_nets: BTreeSet<String> = BTreeSet::new();
            let mut visited_ports: BTreeSet<(String, String)> = BTreeSet::new();
            let mut queue: VecDeque<String> = VecDeque::new();
            queue.push_back(port.name.clone());
            visited_nets.insert(port.name.clone());
            while let Some(net) = queue.pop_front() {
                if input_ports.contains(&net) {
                    need_in.insert(net.clone());
                }
                let Some(srcs) = preds.get(&net) else {
                    continue;
                };
                for s in srcs {
                    match s {
                        Source::Net(n) => {
                            if visited_nets.insert(n.clone()) {
                                queue.push_back(n.clone());
                            }
                        }
                        Source::InstOut { inst, port: cport } => {
                            if !visited_ports.insert((inst.clone(), cport.clone())) {
                                continue;
                            }
                            insts.insert(inst.clone());
                            let child_mod = Symbol::intern(&inst_module[inst]);
                            let cdeps = &self.done[&child_mod];
                            // instances inside the child on this port's cone
                            if let Some(sub) = cdeps.out_to_insts.get(cport) {
                                for rel in sub {
                                    insts.insert(format!("{inst}.{rel}"));
                                }
                            }
                            // inputs of the child needed by this port
                            if let Some(needed) = cdeps.out_to_in.get(cport) {
                                for ip in needed {
                                    if let Some(srcs) =
                                        inst_in_srcs.get(&(inst.clone(), ip.clone()))
                                    {
                                        for sn in srcs {
                                            if visited_nets.insert(sn.clone()) {
                                                queue.push_back(sn.clone());
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
            deps.out_to_in.insert(port.name.clone(), need_in);
            deps.out_to_insts.insert(port.name.clone(), insts);
        }
        self.done.insert(Symbol::intern(name), deps);
        Ok(())
    }
}

fn conn_pairs(child: &Module, inst: &Instance) -> Vec<(String, Option<Expr>)> {
    match &inst.conns {
        PortConns::Named(named) => named.clone(),
        PortConns::Ordered(exprs) => child
            .ports
            .iter()
            .zip(exprs.iter())
            .map(|(p, e)| (p.name.clone(), Some(e.clone())))
            .collect(),
    }
}

fn collect_reads(s: &Stmt, out: &mut Vec<String>) {
    match s {
        Stmt::Block(ss) => ss.iter().for_each(|s| collect_reads(s, out)),
        Stmt::If {
            cond,
            then_stmt,
            else_stmt,
        } => {
            let mut ids = Vec::new();
            cond.collect_ids(&mut ids);
            out.extend(ids.iter().map(|s| s.to_string()));
            collect_reads(then_stmt, out);
            if let Some(e) = else_stmt {
                collect_reads(e, out);
            }
        }
        Stmt::Case {
            expr,
            arms,
            default,
        } => {
            let mut ids = Vec::new();
            expr.collect_ids(&mut ids);
            for a in arms {
                for l in &a.labels {
                    l.collect_ids(&mut ids);
                }
            }
            out.extend(ids.iter().map(|s| s.to_string()));
            for a in arms {
                collect_reads(&a.body, out);
            }
            if let Some(d) = default {
                collect_reads(d, out);
            }
        }
        Stmt::Blocking(_, rhs) | Stmt::NonBlocking(_, rhs) => {
            let mut ids = Vec::new();
            rhs.collect_ids(&mut ids);
            out.extend(ids.iter().map(|s| s.to_string()));
        }
    }
}

fn collect_stmt_targets(s: &Stmt, out: &mut Vec<String>) {
    match s {
        Stmt::Block(ss) => ss.iter().for_each(|s| collect_stmt_targets(s, out)),
        Stmt::If {
            then_stmt,
            else_stmt,
            ..
        } => {
            collect_stmt_targets(then_stmt, out);
            if let Some(e) = else_stmt {
                collect_stmt_targets(e, out);
            }
        }
        Stmt::Case { arms, default, .. } => {
            for a in arms {
                collect_stmt_targets(&a.body, out);
            }
            if let Some(d) = default {
                collect_stmt_targets(d, out);
            }
        }
        Stmt::Blocking(lv, _) | Stmt::NonBlocking(lv, _) => {
            out.extend(lv.targets().iter().map(|s| s.to_string()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alice_verilog::parse_source;

    const SRC: &str = r#"
module mixer(input wire [3:0] a, input wire [3:0] b, output wire [3:0] y);
  assign y = a ^ b;
endmodule
module shifter(input wire [3:0] a, output wire [3:0] y);
  assign y = {a[0], a[3:1]};
endmodule
module top(input wire [3:0] p, input wire [3:0] q,
           output wire [3:0] o1, output wire [3:0] o2);
  wire [3:0] t;
  mixer m0(.a(p), .b(q), .y(t));
  shifter s0(.a(t), .y(o1));
  shifter s1(.a(q), .y(o2));
endmodule
"#;

    #[test]
    fn cone_tracks_through_hierarchy() {
        let f = parse_source(SRC).expect("parse");
        let df = analyze(&f, "top").expect("analyze");
        let c1 = df.cone_of("o1").expect("o1");
        assert!(c1.contains(&Symbol::intern("top.m0")), "{c1:?}");
        assert!(c1.contains(&Symbol::intern("top.s0")));
        assert!(!c1.contains(&Symbol::intern("top.s1")));
        let c2 = df.cone_of("o2").expect("o2");
        assert_eq!(c2.len(), 1);
        assert!(c2.contains(&Symbol::intern("top.s1")));
    }

    #[test]
    fn scores_count_affected_outputs() {
        let f = parse_source(SRC).expect("parse");
        let df = analyze(&f, "top").expect("analyze");
        let scores = df
            .score_instances(&["o1".to_string(), "o2".to_string()])
            .expect("scores");
        assert_eq!(scores.get(&Symbol::intern("top.m0")), Some(&1));
        assert_eq!(scores.get(&Symbol::intern("top.s0")), Some(&1));
        assert_eq!(scores.get(&Symbol::intern("top.s1")), Some(&1));
    }

    #[test]
    fn out_to_in_summary() {
        let f = parse_source(SRC).expect("parse");
        let df = analyze(&f, "top").expect("analyze");
        let mixer = &df.modules[&Symbol::intern("mixer")];
        let ins = &mixer.out_to_in["y"];
        assert!(ins.contains("a") && ins.contains("b"));
    }

    #[test]
    fn nested_instances_appear_with_relative_paths() {
        let src = r#"
module leaf(input wire x, output wire y); assign y = ~x; endmodule
module mid(input wire x, output wire y);
  leaf l0(.x(x), .y(y));
endmodule
module top(input wire a, output wire o);
  mid m0(.x(a), .y(o));
endmodule
"#;
        let f = parse_source(src).expect("parse");
        let df = analyze(&f, "top").expect("analyze");
        let cone = df.cone_of("o").expect("cone");
        assert!(cone.contains(&Symbol::intern("top.m0")));
        assert!(cone.contains(&Symbol::intern("top.m0.l0")), "{cone:?}");
    }

    #[test]
    fn unknown_output_is_reported() {
        let f = parse_source(SRC).expect("parse");
        let df = analyze(&f, "top").expect("analyze");
        assert!(matches!(
            df.cone_of("nope"),
            Err(DataflowError::UnknownOutput(_))
        ));
    }

    #[test]
    fn always_block_dependencies_are_conservative() {
        let src = r#"
module seq(input wire clk, input wire en, input wire d, output reg q);
  always @(posedge clk) begin
    if (en) q <= d;
  end
endmodule
module top(input wire clk, input wire en, input wire d, output wire o);
  seq s0(.clk(clk), .en(en), .d(d), .q(o));
endmodule
"#;
        let f = parse_source(src).expect("parse");
        let df = analyze(&f, "top").expect("analyze");
        let seq = &df.modules[&Symbol::intern("seq")];
        let ins = &seq.out_to_in["q"];
        assert!(ins.contains("en") && ins.contains("d") && ins.contains("clk"));
    }
}
