//! RTL dataflow analysis for the ALICE flow.
//!
//! Replaces PyVerilog's dataflow analyzer:
//!
//! * [`cone`] — per-output dataflow cones over the module hierarchy,
//!   used by module filtering (Algorithm 1) to score candidate modules,
//! * [`domtree`] — dominator trees, used to place multi-module eFPGA
//!   instances at the lowest common dominator of the redacted instances.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "
//! module inv(input wire a, output wire y); assign y = ~a; endmodule
//! module top(input wire a, output wire o);
//!   inv i0(.a(a), .y(o));
//! endmodule";
//! let file = alice_verilog::parse_source(src)?;
//! let df = alice_dataflow::analyze(&file, "top")?;
//! assert!(df.cone_of("o")?.contains(&alice_intern::Symbol::intern("top.i0")));
//! # Ok(())
//! # }
//! ```

pub mod cone;
pub mod domtree;

pub use cone::{analyze, DataflowError, DesignDataflow, ModuleDeps};
pub use domtree::{DiGraph, DomTree};

use alice_intern::Symbol;
use alice_verilog::hierarchy::InstanceNode;

/// Builds a [`DiGraph`] over the instance tree (edges parent → child),
/// returning the graph and the path-indexed node table.
///
/// In a pure tree, each node's immediate dominator is its parent, so the
/// common dominator of a set of instances is their lowest common ancestor —
/// the insertion point ALICE uses for a multi-module eFPGA.
pub fn hierarchy_graph(root: &InstanceNode) -> (DiGraph, Vec<Symbol>) {
    let nodes = root.walk();
    let paths: Vec<Symbol> = nodes.iter().map(|n| n.path).collect();
    let index: std::collections::HashMap<Symbol, usize> =
        paths.iter().enumerate().map(|(i, &p)| (p, i)).collect();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); paths.len()];
    for n in &nodes {
        let pi = index[&n.path];
        for c in &n.children {
            preds[index[&c.path]].push(pi);
        }
    }
    (DiGraph { preds, root: 0 }, paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use alice_verilog::hierarchy::build_hierarchy;
    use alice_verilog::parse_source;

    #[test]
    fn hierarchy_lca_via_domtree() {
        let src = r#"
module leaf(input wire a, output wire y); assign y = a; endmodule
module mid(input wire a, output wire y);
  wire t;
  leaf l0(.a(a), .y(t));
  leaf l1(.a(t), .y(y));
endmodule
module top(input wire a, output wire y);
  mid m0(.a(a), .y(y));
endmodule
"#;
        let f = parse_source(src).expect("parse");
        let h = build_hierarchy(&f, None).expect("hierarchy");
        let (g, paths) = hierarchy_graph(&h.tree);
        let dt = DomTree::compute(&g);
        let idx = |p: &str| paths.iter().position(|x| *x == p).expect("path");
        let lca = dt.common_dominator(&[idx("top.m0.l0"), idx("top.m0.l1")]);
        assert_eq!(paths[lca], "top.m0");
        let lca2 = dt.common_dominator(&[idx("top.m0.l0"), idx("top.m0")]);
        assert_eq!(paths[lca2], "top.m0");
    }
}
