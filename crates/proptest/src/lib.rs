//! A minimal, dependency-free stand-in for the [proptest] crate.
//!
//! The workspace builds offline, so the real `proptest` is unavailable;
//! this crate implements the slice of its API that the workspace's
//! property tests use:
//!
//! * the [`proptest!`] macro (`#![proptest_config(...)]` plus
//!   `#[test] fn name(arg in strategy, ...)` items — one block per file),
//! * [`prop_assert!`] / [`prop_assert_eq!`] (mapped onto `assert!`),
//! * integer-range, `any::<T>()`, tuple, and `prop::collection::vec`
//!   strategies.
//!
//! Sampling is deterministic: each test derives its RNG seed from its own
//! name, so failures reproduce exactly across runs. There is no shrinking
//! — a failing case panics with the sampled values left to the assertion
//! message.
//!
//! [proptest]: https://docs.rs/proptest

use std::ops::Range;

/// Run-count configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// A config running `cases` samples per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic splitmix64 RNG seeded from the test name.
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from an arbitrary string (the test name), FNV-1a style.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit sample.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A value source: proptest's `Strategy`, without shrinking.
pub trait Strategy {
    /// The produced value type.
    type Value;
    /// Samples one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                // i128 arithmetic so signed ranges with negative bounds
                // sample correctly instead of sign-extending into u128.
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(hi > lo, "empty range strategy");
                (lo + (rng.next_u64() as i128).rem_euclid(hi - lo)) as $t
            }
        }
    )*};
}
int_range_strategy!(u16, u32, u64, usize, i32, i64);

/// Marker produced by [`any`], sampling the full domain of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Full-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! any_uint_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
any_uint_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn pick(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn pick(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.pick(rng),)+)
            }
        }
    };
}
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);

/// Collection strategies (`prop::collection` in real proptest).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A `Vec` strategy with a length range and an element strategy.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn pick(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.elem.pick(rng)).collect()
        }
    }
}

/// Everything the property tests import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};

    /// Mirrors `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Property assertion; panics on failure (no rejection machinery).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property equality assertion; panics on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Declares deterministic property tests.
///
/// Supports one block per file: an optional
/// `#![proptest_config(ProptestConfig::with_cases(N))]` inner attribute
/// followed by `#[test] fn name(arg in strategy, ...) { ... }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        fn __proptest_cases() -> u32 {
            let c: $crate::ProptestConfig = $cfg;
            c.cases
        }
        $crate::__proptest_impl! { $($rest)* }
    };
    ($($rest:tt)*) => {
        fn __proptest_cases() -> u32 {
            $crate::ProptestConfig::default().cases
        }
        $crate::__proptest_impl! { $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = __proptest_cases();
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..__cases {
                    $(let $arg = $crate::Strategy::pick(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (3u32..17).pick(&mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn signed_ranges_sample_negative_bounds() {
        let mut rng = TestRng::deterministic("signed");
        let mut saw_negative = false;
        for _ in 0..1000 {
            let v = (-8i32..8).pick(&mut rng);
            assert!((-8..8).contains(&v));
            saw_negative |= v < 0;
        }
        assert!(saw_negative);
        for _ in 0..100 {
            let v = (i64::MIN..0).pick(&mut rng);
            assert!(v < 0);
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = TestRng::deterministic("vec");
        let s = collection::vec((0usize..8, any::<bool>()), 1..4);
        for _ in 0..100 {
            let v = s.pick(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&(i, _)| i < 8));
        }
    }

    #[test]
    fn seeding_is_deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::deterministic("x");
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::deterministic("x");
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = TestRng::deterministic("y").next_u64();
        assert_ne!(a[0], c);
    }
}
