//! Hand-written lexer for the Verilog subset.

use crate::bits::Bits;
use crate::error::{ParseError, ParseErrorKind};
use crate::token::{Keyword, Span, Token, TokenKind};

/// Lexes `src` into a token stream terminated by [`TokenKind::Eof`].
///
/// Line (`//`) and block (`/* */`) comments are skipped. Numeric literals
/// support the sized/based forms (`8'hff`, `4'b1010`, `12'o777`, `6'd42`)
/// and unsized decimals (parsed at 32 bits, as in Verilog).
///
/// # Errors
///
/// Returns a [`ParseError`] on stray characters or malformed numbers.
pub fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    _src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            _src: src,
        }
    }

    fn span(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Result<Vec<Token>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let span = self.span();
            let Some(c) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    span,
                });
                return Ok(out);
            };
            let kind = if c.is_ascii_alphabetic() || c == '_' || c == '\\' {
                self.lex_ident()
            } else if c.is_ascii_digit() || (c == '\'' && self.peek2().is_some()) {
                self.lex_number(span)?
            } else {
                self.lex_punct(span)?
            };
            out.push(Token { kind, span });
        }
    }

    fn skip_trivia(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    let start = self.span();
                    self.bump();
                    self.bump();
                    let mut closed = false;
                    while let Some(c) = self.bump() {
                        if c == '*' && self.peek() == Some('/') {
                            self.bump();
                            closed = true;
                            break;
                        }
                    }
                    if !closed {
                        return Err(ParseError::new(
                            ParseErrorKind::Unsupported("unterminated block comment".into()),
                            start,
                        ));
                    }
                }
                Some('`') => {
                    // Compiler directives (`timescale etc.) are skipped to end of line.
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_ident(&mut self) -> TokenKind {
        let mut s = String::new();
        if self.peek() == Some('\\') {
            // Escaped identifier: backslash up to whitespace.
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_whitespace() {
                    break;
                }
                s.push(c);
                self.bump();
            }
            return TokenKind::Ident(s);
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' || c == '$' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match Keyword::from_str(&s) {
            Some(kw) => TokenKind::Kw(kw),
            None => TokenKind::Ident(s),
        }
    }

    fn lex_number(&mut self, span: Span) -> Result<TokenKind, ParseError> {
        let mut digits = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == '_' {
                digits.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if self.peek() == Some('\'') {
            self.bump();
            let base = self.bump().ok_or_else(|| {
                ParseError::new(ParseErrorKind::BadNumber("missing base".into()), span)
            })?;
            let radix = match base.to_ascii_lowercase() {
                'b' => 2,
                'o' => 8,
                'd' => 10,
                'h' => 16,
                other => {
                    return Err(ParseError::new(
                        ParseErrorKind::BadNumber(format!("bad base `{other}`")),
                        span,
                    ))
                }
            };
            let width: u32 = if digits.is_empty() {
                32
            } else {
                digits
                    .replace('_', "")
                    .parse()
                    .map_err(|_| ParseError::new(ParseErrorKind::BadNumber(digits.clone()), span))?
            };
            let mut value_digits = String::new();
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    value_digits.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            let value = Bits::parse_radix(&value_digits, radix, width).ok_or_else(|| {
                ParseError::new(ParseErrorKind::BadNumber(value_digits.clone()), span)
            })?;
            Ok(TokenKind::Number {
                width: Some(width),
                value,
            })
        } else {
            let value = Bits::parse_radix(&digits, 10, 32)
                .ok_or_else(|| ParseError::new(ParseErrorKind::BadNumber(digits.clone()), span))?;
            Ok(TokenKind::Number { width: None, value })
        }
    }

    fn lex_punct(&mut self, span: Span) -> Result<TokenKind, ParseError> {
        const TWO: &[&str] = &[
            "<=", ">=", "==", "!=", "&&", "||", "<<", ">>", "~&", "~|", "~^", "^~", "**",
        ];
        const ONE: &[&str] = &[
            "(", ")", "[", "]", "{", "}", ";", ",", ".", ":", "=", "+", "-", "*", "/", "%", "&",
            "|", "^", "~", "!", "<", ">", "?", "@", "#",
        ];
        let c1 = self.peek().expect("peeked before");
        let c2 = self.peek2();
        if let Some(c2) = c2 {
            let pair: String = [c1, c2].iter().collect();
            if let Some(&p) = TWO.iter().find(|&&p| p == pair) {
                self.bump();
                self.bump();
                return Ok(TokenKind::Punct(p));
            }
        }
        let single: String = c1.to_string();
        if let Some(&p) = ONE.iter().find(|&&p| p == single) {
            self.bump();
            return Ok(TokenKind::Punct(p));
        }
        Err(ParseError::new(ParseErrorKind::UnexpectedChar(c1), span))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).expect("lex").into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_basic_module() {
        let ks = kinds("module m(input wire a); endmodule");
        assert_eq!(ks[0], TokenKind::Kw(Keyword::Module));
        assert_eq!(ks[1], TokenKind::Ident("m".into()));
        assert_eq!(ks[2], TokenKind::Punct("("));
        assert!(matches!(ks.last(), Some(TokenKind::Eof)));
    }

    #[test]
    fn lex_sized_literals() {
        let ks = kinds("8'hff 4'b1010 16'd65535");
        match &ks[0] {
            TokenKind::Number { width, value } => {
                assert_eq!(*width, Some(8));
                assert_eq!(value.to_u64(), Some(0xff));
            }
            other => panic!("expected number, got {other:?}"),
        }
        match &ks[1] {
            TokenKind::Number { value, .. } => assert_eq!(value.to_u64(), Some(0b1010)),
            other => panic!("expected number, got {other:?}"),
        }
    }

    #[test]
    fn lex_skips_comments_and_directives() {
        let ks = kinds("`timescale 1ns/1ps\n// hi\n/* multi\nline */ module");
        assert_eq!(ks[0], TokenKind::Kw(Keyword::Module));
    }

    #[test]
    fn lex_two_char_ops() {
        let ks = kinds("a <= b == c");
        assert_eq!(ks[1], TokenKind::Punct("<="));
        assert_eq!(ks[3], TokenKind::Punct("=="));
    }

    #[test]
    fn lex_reports_position() {
        let err = lex("module m;\n  $$$ @@").and(lex("\n  \x07")).unwrap_err();
        assert_eq!(err.span.line, 2);
    }

    #[test]
    fn unterminated_comment_is_error() {
        assert!(lex("/* nope").is_err());
    }

    #[test]
    fn underscores_in_numbers() {
        let ks = kinds("32'hdead_beef");
        match &ks[0] {
            TokenKind::Number { value, .. } => assert_eq!(value.to_u64(), Some(0xdead_beef)),
            other => panic!("expected number, got {other:?}"),
        }
    }
}
