//! Token definitions produced by the [`lexer`](crate::lexer).

use crate::bits::Bits;
use std::fmt;

/// A position in the source text (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Verilog keywords recognized by the subset grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Keyword {
    Module,
    Endmodule,
    Input,
    Output,
    Inout,
    Wire,
    Reg,
    Assign,
    Always,
    Begin,
    End,
    If,
    Else,
    Case,
    Casez,
    Endcase,
    Default,
    Posedge,
    Negedge,
    Or,
    Parameter,
    Localparam,
    Integer,
}

impl Keyword {
    /// Returns the keyword for an identifier-like lexeme, if any.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Keyword> {
        Some(match s {
            "module" => Keyword::Module,
            "endmodule" => Keyword::Endmodule,
            "input" => Keyword::Input,
            "output" => Keyword::Output,
            "inout" => Keyword::Inout,
            "wire" => Keyword::Wire,
            "reg" => Keyword::Reg,
            "assign" => Keyword::Assign,
            "always" => Keyword::Always,
            "begin" => Keyword::Begin,
            "end" => Keyword::End,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "case" => Keyword::Case,
            "casez" => Keyword::Casez,
            "endcase" => Keyword::Endcase,
            "default" => Keyword::Default,
            "posedge" => Keyword::Posedge,
            "negedge" => Keyword::Negedge,
            "or" => Keyword::Or,
            "parameter" => Keyword::Parameter,
            "localparam" => Keyword::Localparam,
            "integer" => Keyword::Integer,
            _ => return None,
        })
    }

    /// The canonical source spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Module => "module",
            Keyword::Endmodule => "endmodule",
            Keyword::Input => "input",
            Keyword::Output => "output",
            Keyword::Inout => "inout",
            Keyword::Wire => "wire",
            Keyword::Reg => "reg",
            Keyword::Assign => "assign",
            Keyword::Always => "always",
            Keyword::Begin => "begin",
            Keyword::End => "end",
            Keyword::If => "if",
            Keyword::Else => "else",
            Keyword::Case => "case",
            Keyword::Casez => "casez",
            Keyword::Endcase => "endcase",
            Keyword::Default => "default",
            Keyword::Posedge => "posedge",
            Keyword::Negedge => "negedge",
            Keyword::Or => "or",
            Keyword::Parameter => "parameter",
            Keyword::Localparam => "localparam",
            Keyword::Integer => "integer",
        }
    }
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier (module names, nets, ports...).
    Ident(String),
    /// A keyword from [`Keyword`].
    Kw(Keyword),
    /// A numeric literal; `width` is `None` for unsized decimals.
    Number { width: Option<u32>, value: Bits },
    /// Punctuation or operator, e.g. `"<="`, `"("`.
    Punct(&'static str),
    /// End of input sentinel.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Kw(k) => write!(f, "keyword `{}`", k.as_str()),
            TokenKind::Number { value, .. } => write!(f, "number `{value}`"),
            TokenKind::Punct(p) => write!(f, "`{p}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token together with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it starts.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trip() {
        for kw in [
            Keyword::Module,
            Keyword::Endmodule,
            Keyword::Posedge,
            Keyword::Localparam,
        ] {
            assert_eq!(Keyword::from_str(kw.as_str()), Some(kw));
        }
        assert_eq!(Keyword::from_str("not_a_keyword"), None);
    }

    #[test]
    fn span_display() {
        let s = Span { line: 3, col: 14 };
        assert_eq!(s.to_string(), "3:14");
    }
}
