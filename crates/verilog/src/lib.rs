//! Verilog-2001 subset frontend for the ALICE eFPGA-redaction flow.
//!
//! This crate replaces the PyVerilog toolkit used by the original ALICE
//! prototype. It provides:
//!
//! * a [`lexer`] and recursive-descent [`parser`] for a synthesizable
//!   Verilog subset (ANSI-style modules, vector ports, parameters,
//!   `assign`, `always` blocks, hierarchical instances),
//! * a typed abstract syntax tree ([`ast`]),
//! * a pretty [`printer`] that regenerates legal Verilog from the AST
//!   (the round-trip property ALICE relies on to re-emit redacted designs),
//! * [`hierarchy`] utilities: module tables, instance trees and top-module
//!   detection,
//! * [`bits`], an arbitrary-width bit-vector used for literal values.
//!
//! # Example
//!
//! ```
//! use alice_verilog::parse_source;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "module inv(input wire a, output wire y); assign y = ~a; endmodule";
//! let file = parse_source(src)?;
//! assert_eq!(file.modules.len(), 1);
//! assert_eq!(file.modules[0].name, "inv");
//! # Ok(())
//! # }
//! ```

pub mod ast;
pub mod bits;
pub mod error;
pub mod hierarchy;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod token;

pub use ast::{
    AlwaysBlock, BinaryOp, CaseArm, Direction, EdgeKind, Expr, Instance, Item, LValue, Module,
    NetDecl, NetKind, Number, Parameter, Port, PortConns, Range, Sensitivity, SourceFile, Stmt,
    UnaryOp,
};
pub use bits::Bits;
pub use error::{ParseError, ParseErrorKind};
pub use parser::parse_source;
pub use printer::{print_module_to_string, print_source};

#[cfg(test)]
mod round_trip_tests {
    use super::*;

    #[test]
    fn parse_print_parse_fixed_point() {
        let src = r#"
module add8(input wire [7:0] a, input wire [7:0] b, output wire [8:0] s);
  assign s = {1'b0, a} + {1'b0, b};
endmodule
module top(input wire clk, input wire [7:0] x, output reg [8:0] y);
  wire [8:0] s;
  add8 u0(.a(x), .b(8'd3), .s(s));
  always @(posedge clk) begin
    y <= s;
  end
endmodule
"#;
        let f1 = parse_source(src).expect("first parse");
        let printed = print_source(&f1);
        let f2 = parse_source(&printed).expect("reparse of printed output");
        assert_eq!(print_source(&f2), printed, "printer must be a fixed point");
    }
}
