//! Error types for lexing and parsing.

use crate::token::Span;
use std::error::Error;
use std::fmt;

/// The category of a [`ParseError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// An unexpected character in the input stream.
    UnexpectedChar(char),
    /// A malformed numeric literal, e.g. `8'q12`.
    BadNumber(String),
    /// The parser expected something else at this point.
    Unexpected {
        /// What the parser was looking for.
        expected: String,
        /// What it actually found (formatted token).
        found: String,
    },
    /// A construct outside the supported synthesizable subset.
    Unsupported(String),
}

/// An error produced while lexing or parsing Verilog source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// The kind of failure.
    pub kind: ParseErrorKind,
    /// The source location of the failure.
    pub span: Span,
}

impl ParseError {
    /// Creates a new error at `span`.
    pub fn new(kind: ParseErrorKind, span: Span) -> Self {
        ParseError { kind, span }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::UnexpectedChar(c) => {
                write!(f, "unexpected character `{c}` at {}", self.span)
            }
            ParseErrorKind::BadNumber(s) => {
                write!(f, "malformed number `{s}` at {}", self.span)
            }
            ParseErrorKind::Unexpected { expected, found } => {
                write!(f, "expected {expected}, found {found} at {}", self.span)
            }
            ParseErrorKind::Unsupported(what) => {
                write!(f, "unsupported construct ({what}) at {}", self.span)
            }
        }
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ParseError::new(
            ParseErrorKind::Unexpected {
                expected: "`;`".into(),
                found: "`)`".into(),
            },
            Span { line: 2, col: 7 },
        );
        let msg = e.to_string();
        assert!(msg.contains("expected `;`"));
        assert!(msg.contains("2:7"));
    }
}
