//! Abstract syntax tree for the supported Verilog subset.

use crate::bits::Bits;

/// A parsed source file: an ordered list of module definitions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SourceFile {
    /// Modules in declaration order.
    pub modules: Vec<Module>,
}

impl SourceFile {
    /// Creates an empty source file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finds a module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }
}

/// Port/net direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Driven from outside the module.
    Input,
    /// Driven by the module.
    Output,
    /// Bidirectional (accepted but treated as both for pin counting).
    Inout,
}

/// A vector range `[msb:lsb]`; scalar nets use `None`.
///
/// Bounds are expressions so parameterized widths like `[W-1:0]` parse;
/// they must be constant after parameter binding.
#[derive(Debug, Clone, PartialEq)]
pub struct Range {
    /// Most significant bit index expression.
    pub msb: Expr,
    /// Least significant bit index expression.
    pub lsb: Expr,
}

/// An ANSI-style module port.
#[derive(Debug, Clone, PartialEq)]
pub struct Port {
    /// Direction of the port.
    pub dir: Direction,
    /// Declared as `reg` (output regs only).
    pub is_reg: bool,
    /// Port name.
    pub name: String,
    /// Optional vector range.
    pub range: Option<Range>,
}

/// Kind of net declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetKind {
    /// A `wire`.
    Wire,
    /// A `reg` (or `integer`, normalized to a 32-bit reg).
    Reg,
}

/// A net (wire/reg) declaration inside a module body.
#[derive(Debug, Clone, PartialEq)]
pub struct NetDecl {
    /// Wire or reg.
    pub kind: NetKind,
    /// Net name.
    pub name: String,
    /// Optional vector range.
    pub range: Option<Range>,
    /// Optional initializer (for `wire x = expr;` sugar).
    pub init: Option<Expr>,
}

/// A `parameter` or `localparam` binding.
#[derive(Debug, Clone, PartialEq)]
pub struct Parameter {
    /// Parameter name.
    pub name: String,
    /// Default/bound value expression (must be constant).
    pub value: Expr,
}

/// A module definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Header parameters (`#(parameter N = 4, ...)`).
    pub params: Vec<Parameter>,
    /// ANSI ports in declaration order.
    pub ports: Vec<Port>,
    /// Body items in declaration order.
    pub items: Vec<Item>,
}

impl Module {
    /// Finds a port by name.
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// Iterates over the instances declared in the module body.
    pub fn instances(&self) -> impl Iterator<Item = &Instance> {
        self.items.iter().filter_map(|i| match i {
            Item::Instance(inst) => Some(inst),
            _ => None,
        })
    }
}

/// A module body item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `wire`/`reg` declaration.
    Net(NetDecl),
    /// `parameter` inside the body.
    Param(Parameter),
    /// `localparam`.
    Localparam(Parameter),
    /// `assign lhs = rhs;`
    Assign(Assign),
    /// A child module instantiation.
    Instance(Instance),
    /// An `always` block.
    Always(AlwaysBlock),
}

/// A continuous assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Assign {
    /// Assignment target.
    pub lhs: LValue,
    /// Driven expression.
    pub rhs: Expr,
}

/// Port connections of an instance.
#[derive(Debug, Clone, PartialEq)]
pub enum PortConns {
    /// `.port(expr)` style; `None` expression means explicitly unconnected.
    Named(Vec<(String, Option<Expr>)>),
    /// Positional style.
    Ordered(Vec<Expr>),
}

/// A module instantiation.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Name of the instantiated module.
    pub module: String,
    /// Instance name.
    pub name: String,
    /// Parameter overrides (`#(.N(8))`).
    pub params: Vec<(String, Expr)>,
    /// Port connections.
    pub conns: PortConns,
}

/// Edge polarity in a sensitivity list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// `posedge`.
    Pos,
    /// `negedge`.
    Neg,
}

/// The sensitivity of an `always` block.
#[derive(Debug, Clone, PartialEq)]
pub enum Sensitivity {
    /// `@(*)` — combinational.
    Comb,
    /// `@(posedge a or negedge b ...)` — sequential.
    Edges(Vec<(EdgeKind, String)>),
}

/// An `always` block.
#[derive(Debug, Clone, PartialEq)]
pub struct AlwaysBlock {
    /// What triggers the block.
    pub sensitivity: Sensitivity,
    /// The body statement (often a `begin` block).
    pub body: Stmt,
}

/// One arm of a `case` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseArm {
    /// Match labels (comparison is equality on constant labels).
    pub labels: Vec<Expr>,
    /// The statement executed on match.
    pub body: Stmt,
}

/// A procedural statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `begin ... end`.
    Block(Vec<Stmt>),
    /// `if (c) s1 [else s2]`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_stmt: Box<Stmt>,
        /// Optional else branch.
        else_stmt: Option<Box<Stmt>>,
    },
    /// `case (expr) ... endcase`.
    Case {
        /// Scrutinee.
        expr: Expr,
        /// Labelled arms.
        arms: Vec<CaseArm>,
        /// Optional `default:` arm.
        default: Option<Box<Stmt>>,
    },
    /// Blocking assignment `lhs = rhs;`.
    Blocking(LValue, Expr),
    /// Non-blocking assignment `lhs <= rhs;`.
    NonBlocking(LValue, Expr),
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A whole net.
    Id(String),
    /// A single bit `x[i]`.
    Bit(String, Expr),
    /// A constant part-select `x[msb:lsb]`.
    Part(String, Expr, Expr),
    /// A concatenation of lvalues `{a, b[3:0]}`.
    Concat(Vec<LValue>),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Bitwise not `~`.
    Not,
    /// Logical not `!`.
    LogicNot,
    /// Arithmetic negate `-`.
    Neg,
    /// Reduction AND `&`.
    RedAnd,
    /// Reduction OR `|`.
    RedOr,
    /// Reduction XOR `^`.
    RedXor,
    /// Reduction NAND `~&`.
    RedNand,
    /// Reduction NOR `~|`.
    RedNor,
    /// Reduction XNOR `~^`.
    RedXnor,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `~^` / `^~`
    Xnor,
    /// `&&`
    LogicAnd,
    /// `||`
    LogicOr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

/// A numeric literal.
#[derive(Debug, Clone, PartialEq)]
pub struct Number {
    /// Explicit width if sized (`8'hff`), `None` for bare decimals.
    pub width: Option<u32>,
    /// The two-state value.
    pub value: Bits,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Net/port/parameter reference.
    Id(String),
    /// Numeric literal.
    Literal(Number),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operation.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// `cond ? a : b`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Bit select `base[index]` (index may be dynamic).
    Bit(Box<Expr>, Box<Expr>),
    /// Constant part select `base[msb:lsb]`.
    Part(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Concatenation `{a, b, ...}` (MSB first, as in Verilog).
    Concat(Vec<Expr>),
    /// Replication `{n{expr, ...}}`.
    Repeat(Box<Expr>, Vec<Expr>),
}

impl Expr {
    /// Convenience constructor for an unsized decimal literal.
    pub fn num(v: u64) -> Expr {
        Expr::Literal(Number {
            width: None,
            value: Bits::from_u64(v, 32),
        })
    }

    /// Convenience constructor for a sized literal.
    pub fn sized(v: u64, width: u32) -> Expr {
        Expr::Literal(Number {
            width: Some(width),
            value: Bits::from_u64(v, width),
        })
    }

    /// Convenience constructor for an identifier.
    pub fn id(name: impl Into<String>) -> Expr {
        Expr::Id(name.into())
    }

    /// Collects the identifiers referenced by this expression into `out`.
    pub fn collect_ids<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Id(s) => out.push(s),
            Expr::Literal(_) => {}
            Expr::Unary(_, e) => e.collect_ids(out),
            Expr::Binary(_, a, b) => {
                a.collect_ids(out);
                b.collect_ids(out);
            }
            Expr::Ternary(c, a, b) => {
                c.collect_ids(out);
                a.collect_ids(out);
                b.collect_ids(out);
            }
            Expr::Bit(b, i) => {
                b.collect_ids(out);
                i.collect_ids(out);
            }
            Expr::Part(b, m, l) => {
                b.collect_ids(out);
                m.collect_ids(out);
                l.collect_ids(out);
            }
            Expr::Concat(es) => {
                for e in es {
                    e.collect_ids(out);
                }
            }
            Expr::Repeat(n, es) => {
                n.collect_ids(out);
                for e in es {
                    e.collect_ids(out);
                }
            }
        }
    }
}

impl LValue {
    /// The base identifiers assigned by this lvalue.
    pub fn targets(&self) -> Vec<&str> {
        match self {
            LValue::Id(s) | LValue::Bit(s, _) | LValue::Part(s, _, _) => vec![s],
            LValue::Concat(ls) => ls.iter().flat_map(|l| l.targets()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_ids_walks_all_forms() {
        let e = Expr::Ternary(
            Box::new(Expr::id("c")),
            Box::new(Expr::Binary(
                BinaryOp::Add,
                Box::new(Expr::id("a")),
                Box::new(Expr::num(1)),
            )),
            Box::new(Expr::Concat(vec![Expr::id("b"), Expr::id("d")])),
        );
        let mut ids = Vec::new();
        e.collect_ids(&mut ids);
        assert_eq!(ids, vec!["c", "a", "b", "d"]);
    }

    #[test]
    fn lvalue_targets() {
        let lv = LValue::Concat(vec![
            LValue::Id("x".into()),
            LValue::Bit("y".into(), Expr::num(0)),
        ]);
        assert_eq!(lv.targets(), vec!["x", "y"]);
    }

    #[test]
    fn module_lookup_helpers() {
        let m = Module {
            name: "m".into(),
            params: vec![],
            ports: vec![Port {
                dir: Direction::Input,
                is_reg: false,
                name: "a".into(),
                range: None,
            }],
            items: vec![],
        };
        assert!(m.port("a").is_some());
        assert!(m.port("zz").is_none());
    }
}
