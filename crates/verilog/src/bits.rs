//! Arbitrary-width bit vectors for Verilog literal values.
//!
//! Verilog designs in this code base carry constants far wider than 128 bits
//! (SHA-256 uses 256-bit state vectors), so literals are stored as a
//! little-endian limb array. Only two-state values are supported: the ALICE
//! flow operates on synthesizable designs, where `x`/`z` never survive
//! synthesis.

use std::fmt;

/// An arbitrary-width two-state bit vector (bit 0 = LSB).
///
/// # Example
///
/// ```
/// use alice_verilog::Bits;
///
/// let v = Bits::from_u64(0b1011, 4);
/// assert_eq!(v.width(), 4);
/// assert!(v.bit(0) && v.bit(1) && !v.bit(2) && v.bit(3));
/// assert_eq!(v.to_u64(), Some(0b1011));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bits {
    width: u32,
    limbs: Vec<u64>,
}

impl Bits {
    /// Creates an all-zero vector of `width` bits.
    pub fn zeros(width: u32) -> Self {
        let n = Self::limb_count(width);
        Bits {
            width,
            limbs: vec![0; n],
        }
    }

    /// Creates an all-ones vector of `width` bits.
    pub fn ones(width: u32) -> Self {
        let mut b = Self::zeros(width);
        for limb in &mut b.limbs {
            *limb = u64::MAX;
        }
        b.mask_top();
        b
    }

    /// Creates a vector from the low `width` bits of `value`.
    pub fn from_u64(value: u64, width: u32) -> Self {
        let mut b = Self::zeros(width);
        if !b.limbs.is_empty() {
            b.limbs[0] = value;
        }
        b.mask_top();
        b
    }

    /// Creates a vector from individual bits, index 0 being the LSB.
    pub fn from_bits(bits: &[bool]) -> Self {
        let mut b = Self::zeros(bits.len() as u32);
        for (i, &v) in bits.iter().enumerate() {
            b.set_bit(i as u32, v);
        }
        b
    }

    fn limb_count(width: u32) -> usize {
        (width as usize).div_ceil(64)
    }

    fn mask_top(&mut self) {
        let rem = self.width % 64;
        if rem != 0 {
            if let Some(last) = self.limbs.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
        if self.width == 0 {
            self.limbs.clear();
        }
    }

    /// The number of bits in the vector.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Returns bit `i` (false if out of range, mirroring zero-extension).
    pub fn bit(&self, i: u32) -> bool {
        if i >= self.width {
            return false;
        }
        (self.limbs[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn set_bit(&mut self, i: u32, v: bool) {
        assert!(i < self.width, "bit index {i} out of range {}", self.width);
        let limb = &mut self.limbs[(i / 64) as usize];
        if v {
            *limb |= 1 << (i % 64);
        } else {
            *limb &= !(1 << (i % 64));
        }
    }

    /// Returns the value as a `u64` if it fits (ignoring leading zeros).
    pub fn to_u64(&self) -> Option<u64> {
        if self.limbs.iter().skip(1).any(|&l| l != 0) {
            return None;
        }
        Some(self.limbs.first().copied().unwrap_or(0))
    }

    /// True if every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Returns a resized copy: truncated or zero-extended to `width`.
    pub fn resized(&self, width: u32) -> Self {
        let mut out = Self::zeros(width);
        let n = out.limbs.len().min(self.limbs.len());
        out.limbs[..n].copy_from_slice(&self.limbs[..n]);
        out.mask_top();
        out
    }

    /// Concatenates `hi` above `self` (`{hi, self}` in Verilog terms).
    pub fn concat_with_high(&self, hi: &Bits) -> Self {
        let mut out = Self::zeros(self.width + hi.width);
        for i in 0..self.width {
            out.set_bit(i, self.bit(i));
        }
        for i in 0..hi.width {
            out.set_bit(self.width + i, hi.bit(i));
        }
        out
    }

    /// Extracts bits `[msb:lsb]` as a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `msb < lsb`.
    pub fn slice(&self, msb: u32, lsb: u32) -> Self {
        assert!(msb >= lsb, "slice [{msb}:{lsb}] is reversed");
        let mut out = Self::zeros(msb - lsb + 1);
        for i in lsb..=msb {
            out.set_bit(i - lsb, self.bit(i));
        }
        out
    }

    /// Parses a digit string in the given radix (2, 8, 10 or 16) into bits,
    /// producing a vector of exactly `width` bits. Underscores are skipped.
    ///
    /// Returns `None` on an invalid digit or unsupported radix.
    pub fn parse_radix(digits: &str, radix: u32, width: u32) -> Option<Self> {
        let mut acc = Self::zeros(width.max(1));
        for ch in digits.chars() {
            if ch == '_' {
                continue;
            }
            let d = ch.to_digit(radix)? as u64;
            acc = acc.mul_small(radix as u64).add_small(d);
        }
        acc.width = width;
        acc.limbs.resize(Self::limb_count(width), 0);
        acc.mask_top();
        Some(acc)
    }

    fn mul_small(&self, m: u64) -> Self {
        let mut out = Self::zeros(self.width);
        let mut carry: u128 = 0;
        for i in 0..self.limbs.len() {
            let prod = self.limbs[i] as u128 * m as u128 + carry;
            out.limbs[i] = prod as u64;
            carry = prod >> 64;
        }
        out.mask_top();
        out
    }

    fn add_small(&self, a: u64) -> Self {
        let mut out = self.clone();
        let mut carry = a as u128;
        for limb in &mut out.limbs {
            let sum = *limb as u128 + carry;
            *limb = sum as u64;
            carry = sum >> 64;
            if carry == 0 {
                break;
            }
        }
        out.mask_top();
        out
    }

    /// Iterator over bits from LSB to MSB.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.width).map(move |i| self.bit(i))
    }

    /// Formats as a Verilog sized hex literal, e.g. `8'hff`.
    pub fn to_verilog(&self) -> String {
        if self.width == 0 {
            return "0".to_string();
        }
        let mut digits = String::new();
        let nds = self.width.div_ceil(4) as usize;
        for d in (0..nds).rev() {
            let mut v = 0u32;
            for b in 0..4 {
                let idx = (d * 4 + b) as u32;
                if self.bit(idx) {
                    v |= 1 << b;
                }
            }
            digits.push(char::from_digit(v, 16).expect("hex digit"));
        }
        format!("{}'h{}", self.width, digits)
    }
}

impl fmt::Debug for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bits({})", self.to_verilog())
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_verilog())
    }
}

impl From<bool> for Bits {
    fn from(v: bool) -> Self {
        Bits::from_u64(v as u64, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = Bits::zeros(70);
        assert!(z.is_zero());
        assert_eq!(z.width(), 70);
        let o = Bits::ones(70);
        assert!((0..70).all(|i| o.bit(i)));
        assert!(!o.bit(70));
    }

    #[test]
    fn from_u64_masks_width() {
        let b = Bits::from_u64(0xFF, 4);
        assert_eq!(b.to_u64(), Some(0xF));
    }

    #[test]
    fn parse_hex_wide() {
        let b = Bits::parse_radix("deadbeefdeadbeef00", 16, 72).expect("parse");
        assert_eq!(b.width(), 72);
        assert!(!b.bit(0));
        assert!(b.bit(8)); // 0xef ends ...1110_1111 -> bit 8 of 0xef00 region
    }

    #[test]
    fn parse_decimal() {
        let b = Bits::parse_radix("1000000000000000000000", 10, 80).expect("parse");
        // 10^21 = 0x3635C9ADC5DEA00000
        assert_eq!(b.slice(63, 0).to_u64(), Some(0x35C9ADC5DEA00000));
        assert_eq!(b.slice(79, 64).to_u64(), Some(0x36));
    }

    #[test]
    fn concat_and_slice_roundtrip() {
        let lo = Bits::from_u64(0b1010, 4);
        let hi = Bits::from_u64(0b11, 2);
        let cat = lo.concat_with_high(&hi);
        assert_eq!(cat.width(), 6);
        assert_eq!(cat.to_u64(), Some(0b11_1010));
        assert_eq!(cat.slice(3, 0), lo);
        assert_eq!(cat.slice(5, 4), hi);
    }

    #[test]
    fn verilog_formatting() {
        assert_eq!(Bits::from_u64(0xab, 8).to_verilog(), "8'hab");
        assert_eq!(Bits::from_u64(1, 1).to_verilog(), "1'h1");
        assert_eq!(Bits::from_u64(5, 3).to_verilog(), "3'h5");
    }

    #[test]
    fn resize_truncates_and_extends() {
        let b = Bits::from_u64(0b111, 3);
        assert_eq!(b.resized(2).to_u64(), Some(0b11));
        assert_eq!(b.resized(10).to_u64(), Some(0b111));
    }
}
