//! Verilog pretty-printer: regenerates source text from the AST.
//!
//! The printer is the back half of ALICE's PyVerilog replacement: after the
//! flow rewires a design (replacing redacted instances with an eFPGA
//! instance) the updated AST is printed back to a `.v` file for the ASIC
//! tools. Printing is deterministic and idempotent: `print(parse(print(x)))
//! == print(x)`.

use crate::ast::*;
use std::fmt::Write;

/// Prints a whole source file.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let f = alice_verilog::parse_source("module m(input wire a, output wire y); assign y = a; endmodule")?;
/// let text = alice_verilog::print_source(&f);
/// assert!(text.contains("assign y = a;"));
/// # Ok(())
/// # }
/// ```
pub fn print_source(file: &SourceFile) -> String {
    let mut out = String::new();
    for m in &file.modules {
        print_module(&mut out, m);
        out.push('\n');
    }
    out
}

/// Prints a single module.
pub fn print_module_to_string(m: &Module) -> String {
    let mut out = String::new();
    print_module(&mut out, m);
    out
}

fn print_module(out: &mut String, m: &Module) {
    let _ = write!(out, "module {}", m.name);
    if !m.params.is_empty() {
        let ps: Vec<String> = m
            .params
            .iter()
            .map(|p| format!("parameter {} = {}", p.name, expr_str(&p.value)))
            .collect();
        let _ = write!(out, " #({})", ps.join(", "));
    }
    if m.ports.is_empty() {
        let _ = writeln!(out, ";");
    } else {
        let _ = writeln!(out, "(");
        for (i, p) in m.ports.iter().enumerate() {
            let dir = match p.dir {
                Direction::Input => "input",
                Direction::Output => "output",
                Direction::Inout => "inout",
            };
            let kind = if p.is_reg { "reg" } else { "wire" };
            let range = p
                .range
                .as_ref()
                .map(|r| format!(" [{}:{}]", expr_str(&r.msb), expr_str(&r.lsb)))
                .unwrap_or_default();
            let comma = if i + 1 == m.ports.len() { "" } else { "," };
            let _ = writeln!(out, "  {dir} {kind}{range} {}{comma}", p.name);
        }
        let _ = writeln!(out, ");");
    }
    for item in &m.items {
        print_item(out, item);
    }
    let _ = writeln!(out, "endmodule");
}

fn print_item(out: &mut String, item: &Item) {
    match item {
        Item::Net(n) => {
            let kind = match n.kind {
                NetKind::Wire => "wire",
                NetKind::Reg => "reg",
            };
            let range = n
                .range
                .as_ref()
                .map(|r| format!(" [{}:{}]", expr_str(&r.msb), expr_str(&r.lsb)))
                .unwrap_or_default();
            match &n.init {
                Some(e) => {
                    let _ = writeln!(out, "  {kind}{range} {} = {};", n.name, expr_str(e));
                }
                None => {
                    let _ = writeln!(out, "  {kind}{range} {};", n.name);
                }
            }
        }
        Item::Param(p) => {
            let _ = writeln!(out, "  parameter {} = {};", p.name, expr_str(&p.value));
        }
        Item::Localparam(p) => {
            let _ = writeln!(out, "  localparam {} = {};", p.name, expr_str(&p.value));
        }
        Item::Assign(a) => {
            let _ = writeln!(
                out,
                "  assign {} = {};",
                lvalue_str(&a.lhs),
                expr_str(&a.rhs)
            );
        }
        Item::Instance(inst) => {
            let params = if inst.params.is_empty() {
                String::new()
            } else {
                let ps: Vec<String> = inst
                    .params
                    .iter()
                    .map(|(n, v)| format!(".{n}({})", expr_str(v)))
                    .collect();
                format!(" #({})", ps.join(", "))
            };
            let conns = match &inst.conns {
                PortConns::Named(named) => named
                    .iter()
                    .map(|(n, e)| match e {
                        Some(e) => format!(".{n}({})", expr_str(e)),
                        None => format!(".{n}()"),
                    })
                    .collect::<Vec<_>>()
                    .join(", "),
                PortConns::Ordered(es) => es.iter().map(expr_str).collect::<Vec<_>>().join(", "),
            };
            let _ = writeln!(out, "  {}{params} {} ({conns});", inst.module, inst.name);
        }
        Item::Always(ab) => {
            let sens = match &ab.sensitivity {
                Sensitivity::Comb => "*".to_string(),
                Sensitivity::Edges(edges) => edges
                    .iter()
                    .map(|(k, s)| {
                        let kw = match k {
                            EdgeKind::Pos => "posedge",
                            EdgeKind::Neg => "negedge",
                        };
                        format!("{kw} {s}")
                    })
                    .collect::<Vec<_>>()
                    .join(" or "),
            };
            let _ = writeln!(out, "  always @({sens})");
            print_stmt(out, &ab.body, 2);
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn print_stmt(out: &mut String, s: &Stmt, depth: usize) {
    match s {
        Stmt::Block(stmts) => {
            indent(out, depth);
            out.push_str("begin\n");
            for st in stmts {
                print_stmt(out, st, depth + 1);
            }
            indent(out, depth);
            out.push_str("end\n");
        }
        Stmt::If {
            cond,
            then_stmt,
            else_stmt,
        } => {
            indent(out, depth);
            let _ = writeln!(out, "if ({})", expr_str(cond));
            print_stmt(out, then_stmt, depth + 1);
            if let Some(e) = else_stmt {
                indent(out, depth);
                out.push_str("else\n");
                print_stmt(out, e, depth + 1);
            }
        }
        Stmt::Case {
            expr,
            arms,
            default,
        } => {
            indent(out, depth);
            let _ = writeln!(out, "case ({})", expr_str(expr));
            for arm in arms {
                indent(out, depth + 1);
                let labels: Vec<String> = arm.labels.iter().map(expr_str).collect();
                let _ = writeln!(out, "{}:", labels.join(", "));
                print_stmt(out, &arm.body, depth + 2);
            }
            if let Some(d) = default {
                indent(out, depth + 1);
                out.push_str("default:\n");
                print_stmt(out, d, depth + 2);
            }
            indent(out, depth);
            out.push_str("endcase\n");
        }
        Stmt::Blocking(lhs, rhs) => {
            indent(out, depth);
            let _ = writeln!(out, "{} = {};", lvalue_str(lhs), expr_str(rhs));
        }
        Stmt::NonBlocking(lhs, rhs) => {
            indent(out, depth);
            let _ = writeln!(out, "{} <= {};", lvalue_str(lhs), expr_str(rhs));
        }
    }
}

fn lvalue_str(lv: &LValue) -> String {
    match lv {
        LValue::Id(s) => s.clone(),
        LValue::Bit(s, i) => format!("{s}[{}]", expr_str(i)),
        LValue::Part(s, m, l) => format!("{s}[{}:{}]", expr_str(m), expr_str(l)),
        LValue::Concat(ls) => {
            let parts: Vec<String> = ls.iter().map(lvalue_str).collect();
            format!("{{{}}}", parts.join(", "))
        }
    }
}

/// Renders an expression with full parenthesization of compound children
/// (safe and idempotent, at the cost of extra parentheses).
pub fn expr_str(e: &Expr) -> String {
    match e {
        Expr::Id(s) => s.clone(),
        Expr::Literal(n) => match n.width {
            Some(_) => n.value.to_verilog(),
            None => format!("{}", n.value.to_u64().unwrap_or(0)),
        },
        Expr::Unary(op, a) => format!("{}{}", unary_str(*op), atom(a)),
        Expr::Binary(op, a, b) => format!("{} {} {}", atom(a), binary_str(*op), atom(b)),
        Expr::Ternary(c, a, b) => format!("{} ? {} : {}", atom(c), atom(a), atom(b)),
        Expr::Bit(b, i) => format!("{}[{}]", atom_base(b), expr_str(i)),
        Expr::Part(b, m, l) => format!("{}[{}:{}]", atom_base(b), expr_str(m), expr_str(l)),
        Expr::Concat(es) => {
            let parts: Vec<String> = es.iter().map(expr_str).collect();
            format!("{{{}}}", parts.join(", "))
        }
        Expr::Repeat(n, es) => {
            let parts: Vec<String> = es.iter().map(expr_str).collect();
            format!("{{{}{{{}}}}}", expr_str(n), parts.join(", "))
        }
    }
}

fn atom(e: &Expr) -> String {
    match e {
        Expr::Id(_)
        | Expr::Literal(_)
        | Expr::Concat(_)
        | Expr::Repeat(..)
        | Expr::Bit(..)
        | Expr::Part(..) => expr_str(e),
        _ => format!("({})", expr_str(e)),
    }
}

fn atom_base(e: &Expr) -> String {
    match e {
        Expr::Id(s) => s.clone(),
        _ => format!("({})", expr_str(e)),
    }
}

fn unary_str(op: UnaryOp) -> &'static str {
    match op {
        UnaryOp::Not => "~",
        UnaryOp::LogicNot => "!",
        UnaryOp::Neg => "-",
        UnaryOp::RedAnd => "&",
        UnaryOp::RedOr => "|",
        UnaryOp::RedXor => "^",
        UnaryOp::RedNand => "~&",
        UnaryOp::RedNor => "~|",
        UnaryOp::RedXnor => "~^",
    }
}

fn binary_str(op: BinaryOp) -> &'static str {
    match op {
        BinaryOp::And => "&",
        BinaryOp::Or => "|",
        BinaryOp::Xor => "^",
        BinaryOp::Xnor => "~^",
        BinaryOp::LogicAnd => "&&",
        BinaryOp::LogicOr => "||",
        BinaryOp::Eq => "==",
        BinaryOp::Ne => "!=",
        BinaryOp::Lt => "<",
        BinaryOp::Le => "<=",
        BinaryOp::Gt => ">",
        BinaryOp::Ge => ">=",
        BinaryOp::Shl => "<<",
        BinaryOp::Shr => ">>",
        BinaryOp::Add => "+",
        BinaryOp::Sub => "-",
        BinaryOp::Mul => "*",
        BinaryOp::Div => "/",
        BinaryOp::Mod => "%",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_source;

    #[test]
    fn printer_emits_parseable_text() {
        let src = r#"
module m(input wire clk, input wire [3:0] a, output reg [3:0] q);
  wire [3:0] n;
  assign n = a + 4'd1;
  always @(posedge clk)
    q <= n;
endmodule
"#;
        let f = parse_source(src).expect("parse");
        let text = print_source(&f);
        let f2 = parse_source(&text).expect("reparse");
        assert_eq!(f, f2);
    }

    #[test]
    fn idempotent_printing() {
        let src = r#"
module m(input wire [7:0] a, input wire s, output wire [7:0] y);
  assign y = s ? (a << 1) : {4'b0000, a[7:4]};
endmodule
"#;
        let f = parse_source(src).expect("parse");
        let p1 = print_source(&f);
        let p2 = print_source(&parse_source(&p1).expect("reparse"));
        assert_eq!(p1, p2);
    }

    #[test]
    fn case_round_trip() {
        let src = r#"
module c(input wire [1:0] s, output reg y);
  always @(*)
    case (s)
      2'd0:
        y = 1'b0;
      default:
        y = 1'b1;
    endcase
endmodule
"#;
        let f = parse_source(src).expect("parse");
        let text = print_source(&f);
        assert_eq!(parse_source(&text).expect("reparse"), f);
    }
}
