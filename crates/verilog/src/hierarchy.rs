//! Module-hierarchy utilities: module tables, instance trees, top detection,
//! and per-module I/O pin counting (the structural metric ALICE filters on).

use crate::ast::{Direction, Expr, Module, SourceFile};
use alice_intern::{PathTree, Symbol};
use std::collections::{BTreeMap, BTreeSet};

/// A fully qualified instance path, e.g. `top.u_core.u_alu` (interned).
pub type InstancePath = Symbol;

/// Summary of one module definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleInfo {
    /// The module name.
    pub name: Symbol,
    /// Total I/O pin count (sum of port bit widths, including clock/reset).
    pub io_pins: u32,
    /// Number of input pins.
    pub input_pins: u32,
    /// Number of output pins.
    pub output_pins: u32,
    /// Names of child modules instantiated (with multiplicity).
    pub children: Vec<Symbol>,
}

/// A node in the elaborated instance tree.
#[derive(Debug, Clone, PartialEq)]
pub struct InstanceNode {
    /// Hierarchical path of this instance (`top` for the root).
    pub path: InstancePath,
    /// Instance name (equal to the module name for the root).
    pub inst_name: Symbol,
    /// The module this instance refers to.
    pub module: Symbol,
    /// Child instances.
    pub children: Vec<InstanceNode>,
}

impl InstanceNode {
    /// Depth-first iteration over all nodes (including `self`).
    pub fn walk(&self) -> Vec<&InstanceNode> {
        let mut out = vec![self];
        for c in &self.children {
            out.extend(c.walk());
        }
        out
    }

    /// Finds a node by hierarchical path.
    pub fn find(&self, path: impl Into<Symbol>) -> Option<&InstanceNode> {
        let path = path.into();
        self.walk().into_iter().find(|n| n.path == path)
    }

    /// Collects this subtree's parent/child edges into a [`PathTree`]
    /// (the structural source for ancestor queries — no string parsing).
    pub fn path_tree(&self) -> PathTree {
        fn go(n: &InstanceNode, t: &mut PathTree) {
            for c in &n.children {
                t.insert_child(n.path, c.path);
                go(c, t);
            }
        }
        let mut t = PathTree::new();
        t.insert_root(self.path);
        go(self, &mut t);
        t
    }
}

/// A design hierarchy extracted from a [`SourceFile`].
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// Per-module summaries, keyed by interned module name.
    pub modules: BTreeMap<Symbol, ModuleInfo>,
    /// The detected (or requested) top module.
    pub top: Symbol,
    /// The elaborated instance tree rooted at `top`.
    pub tree: InstanceNode,
}

impl Hierarchy {
    /// Looks up a module summary by name.
    pub fn module_info(&self, name: impl Into<Symbol>) -> Option<&ModuleInfo> {
        self.modules.get(&name.into())
    }
}

/// Errors from hierarchy extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierarchyError {
    /// The file contains no modules.
    EmptyDesign,
    /// No unique top candidate (give one explicitly).
    AmbiguousTop(Vec<String>),
    /// The requested top module does not exist.
    UnknownTop(String),
    /// An instance refers to an undefined module.
    UndefinedModule {
        /// The referring module.
        parent: String,
        /// The missing definition.
        child: String,
    },
    /// The instance graph contains a cycle.
    RecursiveInstantiation(String),
    /// A port range bound did not evaluate to a constant.
    NonConstantRange(String),
}

impl std::fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HierarchyError::EmptyDesign => write!(f, "design contains no modules"),
            HierarchyError::AmbiguousTop(cands) => {
                write!(f, "ambiguous top module, candidates: {}", cands.join(", "))
            }
            HierarchyError::UnknownTop(t) => write!(f, "unknown top module `{t}`"),
            HierarchyError::UndefinedModule { parent, child } => {
                write!(
                    f,
                    "module `{parent}` instantiates undefined module `{child}`"
                )
            }
            HierarchyError::RecursiveInstantiation(m) => {
                write!(f, "recursive instantiation of module `{m}`")
            }
            HierarchyError::NonConstantRange(m) => {
                write!(f, "non-constant port range in module `{m}`")
            }
        }
    }
}

impl std::error::Error for HierarchyError {}

/// Evaluates a constant expression using parameter bindings in `env`.
///
/// Supports the arithmetic/bitwise/comparison operators of the subset; used
/// for port ranges and parameter values.
pub fn const_eval(e: &Expr, env: &BTreeMap<String, i64>) -> Option<i64> {
    use crate::ast::{BinaryOp, UnaryOp};
    Some(match e {
        Expr::Id(s) => *env.get(s)?,
        Expr::Literal(n) => n.value.to_u64()? as i64,
        Expr::Unary(op, a) => {
            let a = const_eval(a, env)?;
            match op {
                UnaryOp::Neg => -a,
                UnaryOp::Not => !a,
                UnaryOp::LogicNot => (a == 0) as i64,
                _ => return None,
            }
        }
        Expr::Binary(op, a, b) => {
            let a = const_eval(a, env)?;
            let b = const_eval(b, env)?;
            match op {
                BinaryOp::Add => a + b,
                BinaryOp::Sub => a - b,
                BinaryOp::Mul => a * b,
                BinaryOp::Div => {
                    if b == 0 {
                        return None;
                    }
                    a / b
                }
                BinaryOp::Mod => {
                    if b == 0 {
                        return None;
                    }
                    a % b
                }
                BinaryOp::Shl => a << b,
                BinaryOp::Shr => a >> b,
                BinaryOp::And => a & b,
                BinaryOp::Or => a | b,
                BinaryOp::Xor => a ^ b,
                BinaryOp::Eq => (a == b) as i64,
                BinaryOp::Ne => (a != b) as i64,
                BinaryOp::Lt => (a < b) as i64,
                BinaryOp::Le => (a <= b) as i64,
                BinaryOp::Gt => (a > b) as i64,
                BinaryOp::Ge => (a >= b) as i64,
                _ => return None,
            }
        }
        Expr::Ternary(c, a, b) => {
            if const_eval(c, env)? != 0 {
                const_eval(a, env)?
            } else {
                const_eval(b, env)?
            }
        }
        _ => return None,
    })
}

/// Computes the bit width of a port given the module's parameter defaults.
fn port_width(m: &Module, range: &Option<crate::ast::Range>) -> Option<u32> {
    let env: BTreeMap<String, i64> = m
        .params
        .iter()
        .filter_map(|p| Some((p.name.clone(), const_eval(&p.value, &BTreeMap::new())?)))
        .collect();
    match range {
        None => Some(1),
        Some(r) => {
            let msb = const_eval(&r.msb, &env)?;
            let lsb = const_eval(&r.lsb, &env)?;
            Some((msb - lsb).unsigned_abs() as u32 + 1)
        }
    }
}

/// Builds per-module summaries and the instance tree.
///
/// If `top` is `None`, the unique module never instantiated by another is
/// selected as top.
///
/// # Errors
///
/// See [`HierarchyError`] for the failure modes.
pub fn build_hierarchy(file: &SourceFile, top: Option<&str>) -> Result<Hierarchy, HierarchyError> {
    if file.modules.is_empty() {
        return Err(HierarchyError::EmptyDesign);
    }
    let mut modules = BTreeMap::new();
    for m in &file.modules {
        let mut io = 0u32;
        let mut inp = 0u32;
        let mut outp = 0u32;
        for p in &m.ports {
            let w = port_width(m, &p.range)
                .ok_or_else(|| HierarchyError::NonConstantRange(m.name.clone()))?;
            io += w;
            match p.dir {
                Direction::Input => inp += w,
                Direction::Output => outp += w,
                Direction::Inout => {
                    inp += w;
                    outp += w;
                }
            }
        }
        let children = m.instances().map(|i| Symbol::intern(&i.module)).collect();
        modules.insert(
            Symbol::intern(&m.name),
            ModuleInfo {
                name: Symbol::intern(&m.name),
                io_pins: io,
                input_pins: inp,
                output_pins: outp,
                children,
            },
        );
    }
    // check child references
    for (name, info) in &modules {
        for c in &info.children {
            if !modules.contains_key(c) {
                return Err(HierarchyError::UndefinedModule {
                    parent: name.to_string(),
                    child: c.to_string(),
                });
            }
        }
    }
    let top = match top {
        Some(t) => {
            let t_sym = Symbol::intern(t);
            if !modules.contains_key(&t_sym) {
                return Err(HierarchyError::UnknownTop(t.to_string()));
            }
            t_sym
        }
        None => {
            let instantiated: BTreeSet<Symbol> = modules
                .values()
                .flat_map(|i| i.children.iter().copied())
                .collect();
            let roots: Vec<Symbol> = modules
                .keys()
                .filter(|k| !instantiated.contains(k))
                .copied()
                .collect();
            match roots.len() {
                1 => roots.into_iter().next().expect("len checked"),
                _ => {
                    return Err(HierarchyError::AmbiguousTop(
                        roots.iter().map(Symbol::to_string).collect(),
                    ))
                }
            }
        }
    };
    let top_str = top.as_str();
    let tree = build_tree(file, top_str, top_str, top_str, &mut Vec::new())?;
    Ok(Hierarchy { modules, top, tree })
}

fn build_tree(
    file: &SourceFile,
    module: &str,
    path: &str,
    inst_name: &str,
    stack: &mut Vec<String>,
) -> Result<InstanceNode, HierarchyError> {
    if stack.iter().any(|m| m == module) {
        return Err(HierarchyError::RecursiveInstantiation(module.to_string()));
    }
    stack.push(module.to_string());
    let mdef = file.module(module).expect("validated by caller");
    let mut children = Vec::new();
    for inst in mdef.instances() {
        let child_path = format!("{path}.{}", inst.name);
        children.push(build_tree(
            file,
            &inst.module,
            &child_path,
            &inst.name,
            stack,
        )?);
    }
    stack.pop();
    Ok(InstanceNode {
        path: Symbol::intern(path),
        inst_name: Symbol::intern(inst_name),
        module: Symbol::intern(module),
        children,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_source;

    const SRC: &str = r#"
module leaf(input wire [3:0] a, output wire [3:0] y);
  assign y = ~a;
endmodule
module mid(input wire [3:0] a, output wire [3:0] y);
  wire [3:0] t;
  leaf l0(.a(a), .y(t));
  leaf l1(.a(t), .y(y));
endmodule
module top(input wire clk, input wire [3:0] a, output wire [3:0] y);
  mid m0(.a(a), .y(y));
endmodule
"#;

    #[test]
    fn detects_top_and_counts_pins() {
        let f = parse_source(SRC).expect("parse");
        let h = build_hierarchy(&f, None).expect("hierarchy");
        assert_eq!(h.top, "top");
        assert_eq!(h.module_info("leaf").expect("leaf").io_pins, 8);
        assert_eq!(h.module_info("top").expect("top").io_pins, 9);
        assert_eq!(h.module_info("leaf").expect("leaf").input_pins, 4);
    }

    #[test]
    fn builds_instance_tree_paths() {
        let f = parse_source(SRC).expect("parse");
        let h = build_hierarchy(&f, None).expect("hierarchy");
        let paths: Vec<&str> = h.tree.walk().iter().map(|n| n.path.as_str()).collect();
        assert_eq!(paths, vec!["top", "top.m0", "top.m0.l0", "top.m0.l1"]);
        assert!(h.tree.find("top.m0.l1").is_some());
        let t = h.tree.path_tree();
        let m0 = alice_intern::Symbol::intern("top.m0");
        let l1 = alice_intern::Symbol::intern("top.m0.l1");
        assert!(t.is_ancestor_or_self(m0, l1));
        assert!(!t.is_ancestor_or_self(l1, m0));
    }

    #[test]
    fn explicit_top_override() {
        let f = parse_source(SRC).expect("parse");
        let h = build_hierarchy(&f, Some("mid")).expect("hierarchy");
        assert_eq!(h.top, "mid");
        assert_eq!(h.tree.walk().len(), 3);
    }

    #[test]
    fn undefined_module_is_reported() {
        let f = parse_source("module a; b u0(); endmodule").expect("parse");
        let err = build_hierarchy(&f, None).unwrap_err();
        assert!(matches!(err, HierarchyError::UndefinedModule { .. }));
    }

    #[test]
    fn recursion_is_reported() {
        let f = parse_source("module a; a u0(); endmodule").expect("parse");
        let err = build_hierarchy(&f, Some("a")).unwrap_err();
        assert!(matches!(err, HierarchyError::RecursiveInstantiation(_)));
    }

    #[test]
    fn parameterized_port_width() {
        let f = parse_source(
            "module p #(parameter W = 8) (input wire [W-1:0] a, output wire y); assign y = ^a; endmodule",
        )
        .expect("parse");
        let h = build_hierarchy(&f, None).expect("hierarchy");
        assert_eq!(h.module_info("p").expect("p").io_pins, 9);
    }

    #[test]
    fn const_eval_operators() {
        let f = parse_source(
            "module q #(parameter W = 4) (input wire [(W*2)-1:0] a, output wire [W/2:0] y); endmodule",
        )
        .expect("parse");
        let h = build_hierarchy(&f, None).expect("hierarchy");
        assert_eq!(h.module_info("q").expect("q").io_pins, 8 + 3);
    }
}
