//! Recursive-descent parser for the Verilog subset.

use crate::ast::*;
use crate::error::{ParseError, ParseErrorKind};
use crate::lexer::lex;
use crate::token::{Keyword, Span, Token, TokenKind};

/// Parses a full source file.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered; the parser does not
/// attempt recovery (the flow treats any malformed input as fatal, as the
/// original PyVerilog-based prototype did).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let f = alice_verilog::parse_source("module m(input wire a); endmodule")?;
/// assert_eq!(f.modules[0].ports.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse_source(src: &str) -> Result<SourceFile, ParseError> {
    let tokens = lex(src)?;
    Parser {
        tokens,
        pos: 0,
        pending_nets: Vec::new(),
    }
    .source_file()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Extra declarations from `wire a, b, c;` waiting to be emitted as items.
    pending_nets: Vec<NetDecl>,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, expected: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError::new(
            ParseErrorKind::Unexpected {
                expected: expected.into(),
                found: self.peek().to_string(),
            },
            self.peek_span(),
        ))
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), TokenKind::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("`{p}`"))
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        if matches!(self.peek(), TokenKind::Kw(k) if *k == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("`{}`", kw.as_str()))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        if let TokenKind::Ident(s) = self.peek() {
            let s = s.clone();
            self.bump();
            Ok(s)
        } else {
            self.err("identifier")
        }
    }

    fn source_file(mut self) -> Result<SourceFile, ParseError> {
        let mut modules = Vec::new();
        while !matches!(self.peek(), TokenKind::Eof) {
            self.expect_kw(Keyword::Module)?;
            modules.push(self.module()?);
        }
        Ok(SourceFile { modules })
    }

    fn module(&mut self) -> Result<Module, ParseError> {
        let name = self.expect_ident()?;
        let mut params = Vec::new();
        if self.eat_punct("#") {
            self.expect_punct("(")?;
            loop {
                self.eat_kw(Keyword::Parameter);
                let pname = self.expect_ident()?;
                self.expect_punct("=")?;
                let value = self.expr()?;
                params.push(Parameter { name: pname, value });
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        let mut ports = Vec::new();
        if self.eat_punct("(") && !self.eat_punct(")") {
            loop {
                ports.push(self.ansi_port(ports.last())?);
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        self.expect_punct(";")?;
        let mut items = Vec::new();
        loop {
            if !self.pending_nets.is_empty() {
                items.push(Item::Net(self.pending_nets.remove(0)));
                continue;
            }
            if self.eat_kw(Keyword::Endmodule) {
                break;
            }
            if matches!(self.peek(), TokenKind::Eof) {
                return self.err("`endmodule`");
            }
            items.push(self.item()?);
        }
        Ok(Module {
            name,
            params,
            ports,
            items,
        })
    }

    /// One ANSI port. If direction keywords are omitted, it inherits the
    /// previous port's direction/type (`input [3:0] a, b`).
    fn ansi_port(&mut self, prev: Option<&Port>) -> Result<Port, ParseError> {
        let dir = if self.eat_kw(Keyword::Input) {
            Some(Direction::Input)
        } else if self.eat_kw(Keyword::Output) {
            Some(Direction::Output)
        } else if self.eat_kw(Keyword::Inout) {
            Some(Direction::Inout)
        } else {
            None
        };
        let mut is_reg = false;
        if self.eat_kw(Keyword::Wire) {
            is_reg = false;
        } else if self.eat_kw(Keyword::Reg) {
            is_reg = true;
        } else if dir.is_none() {
            // bare identifier: inherit everything from previous port
            let name = self.expect_ident()?;
            let prev = prev.ok_or_else(|| {
                ParseError::new(
                    ParseErrorKind::Unsupported(
                        "non-ANSI port list (declare directions in the header)".into(),
                    ),
                    self.peek_span(),
                )
            })?;
            return Ok(Port {
                dir: prev.dir,
                is_reg: prev.is_reg,
                name,
                range: prev.range.clone(),
            });
        }
        let dir = match (dir, prev) {
            (Some(d), _) => d,
            (None, Some(p)) => p.dir,
            (None, None) => {
                return self.err("port direction");
            }
        };
        let range = self.opt_range()?;
        let name = self.expect_ident()?;
        Ok(Port {
            dir,
            is_reg,
            name,
            range,
        })
    }

    fn opt_range(&mut self) -> Result<Option<Range>, ParseError> {
        if self.eat_punct("[") {
            let msb = self.expr()?;
            self.expect_punct(":")?;
            let lsb = self.expr()?;
            self.expect_punct("]")?;
            Ok(Some(Range { msb, lsb }))
        } else {
            Ok(None)
        }
    }

    fn item(&mut self) -> Result<Item, ParseError> {
        if !self.pending_nets.is_empty() {
            return Ok(Item::Net(self.pending_nets.remove(0)));
        }
        match self.peek().clone() {
            TokenKind::Kw(Keyword::Wire) | TokenKind::Kw(Keyword::Reg) => {
                let kind = if self.eat_kw(Keyword::Wire) {
                    NetKind::Wire
                } else {
                    self.expect_kw(Keyword::Reg)?;
                    NetKind::Reg
                };
                let range = self.opt_range()?;
                // Multiple comma-separated declarations become one item per
                // name; we fold the extras into a Block-like sequence by
                // returning the first and pushing the rest lazily.
                let mut decls = Vec::new();
                loop {
                    let name = self.expect_ident()?;
                    let init = if self.eat_punct("=") {
                        Some(self.expr()?)
                    } else {
                        None
                    };
                    decls.push(NetDecl {
                        kind,
                        name,
                        range: range.clone(),
                        init,
                    });
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_punct(";")?;
                let first = decls.remove(0);
                // Re-queue remaining declarations as synthetic tokens is
                // messy; instead we return a fused item when only one decl
                // and expand multi-decls into a MultiNet holder below.
                if decls.is_empty() {
                    Ok(Item::Net(first))
                } else {
                    // Represent as consecutive items via a small trick: we
                    // stash extras and the caller loop pulls them on the next
                    // `item()` call.
                    self.pending_nets = decls;
                    Ok(Item::Net(first))
                }
            }
            TokenKind::Kw(Keyword::Integer) => {
                self.bump();
                let name = self.expect_ident()?;
                self.expect_punct(";")?;
                Ok(Item::Net(NetDecl {
                    kind: NetKind::Reg,
                    name,
                    range: Some(Range {
                        msb: Expr::num(31),
                        lsb: Expr::num(0),
                    }),
                    init: None,
                }))
            }
            TokenKind::Kw(Keyword::Parameter) => {
                self.bump();
                let name = self.expect_ident()?;
                self.expect_punct("=")?;
                let value = self.expr()?;
                self.expect_punct(";")?;
                Ok(Item::Param(Parameter { name, value }))
            }
            TokenKind::Kw(Keyword::Localparam) => {
                self.bump();
                let name = self.expect_ident()?;
                self.expect_punct("=")?;
                let value = self.expr()?;
                self.expect_punct(";")?;
                Ok(Item::Localparam(Parameter { name, value }))
            }
            TokenKind::Kw(Keyword::Assign) => {
                self.bump();
                let lhs = self.lvalue()?;
                self.expect_punct("=")?;
                let rhs = self.expr()?;
                self.expect_punct(";")?;
                Ok(Item::Assign(Assign { lhs, rhs }))
            }
            TokenKind::Kw(Keyword::Always) => {
                self.bump();
                Ok(Item::Always(self.always_block()?))
            }
            TokenKind::Ident(_) => self.instance(),
            _ => self.err("module item"),
        }
    }

    fn always_block(&mut self) -> Result<AlwaysBlock, ParseError> {
        self.expect_punct("@")?;
        self.expect_punct("(")?;
        let sensitivity = if self.eat_punct("*") {
            Sensitivity::Comb
        } else {
            let mut edges = Vec::new();
            loop {
                let kind = if self.eat_kw(Keyword::Posedge) {
                    EdgeKind::Pos
                } else if self.eat_kw(Keyword::Negedge) {
                    EdgeKind::Neg
                } else {
                    // Plain identifier list @(a or b) — treat as comb.
                    let _ = self.expect_ident()?;
                    while self.eat_kw(Keyword::Or) || self.eat_punct(",") {
                        let _ = self.expect_ident()?;
                    }
                    self.expect_punct(")")?;
                    let body = self.stmt()?;
                    return Ok(AlwaysBlock {
                        sensitivity: Sensitivity::Comb,
                        body,
                    });
                };
                let sig = self.expect_ident()?;
                edges.push((kind, sig));
                if !(self.eat_kw(Keyword::Or) || self.eat_punct(",")) {
                    break;
                }
            }
            Sensitivity::Edges(edges)
        };
        self.expect_punct(")")?;
        let body = self.stmt()?;
        Ok(AlwaysBlock { sensitivity, body })
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_kw(Keyword::Begin) {
            // optional label
            if self.eat_punct(":") {
                let _ = self.expect_ident()?;
            }
            let mut stmts = Vec::new();
            while !self.eat_kw(Keyword::End) {
                if matches!(self.peek(), TokenKind::Eof) {
                    return self.err("`end`");
                }
                stmts.push(self.stmt()?);
            }
            return Ok(Stmt::Block(stmts));
        }
        if self.eat_kw(Keyword::If) {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then_stmt = Box::new(self.stmt()?);
            let else_stmt = if self.eat_kw(Keyword::Else) {
                Some(Box::new(self.stmt()?))
            } else {
                None
            };
            return Ok(Stmt::If {
                cond,
                then_stmt,
                else_stmt,
            });
        }
        if self.eat_kw(Keyword::Case) || self.eat_kw(Keyword::Casez) {
            self.expect_punct("(")?;
            let expr = self.expr()?;
            self.expect_punct(")")?;
            let mut arms = Vec::new();
            let mut default = None;
            while !self.eat_kw(Keyword::Endcase) {
                if matches!(self.peek(), TokenKind::Eof) {
                    return self.err("`endcase`");
                }
                if self.eat_kw(Keyword::Default) {
                    self.eat_punct(":");
                    default = Some(Box::new(self.stmt()?));
                    continue;
                }
                let mut labels = vec![self.expr()?];
                while self.eat_punct(",") {
                    labels.push(self.expr()?);
                }
                self.expect_punct(":")?;
                let body = self.stmt()?;
                arms.push(CaseArm { labels, body });
            }
            return Ok(Stmt::Case {
                expr,
                arms,
                default,
            });
        }
        // assignment
        let lhs = self.lvalue()?;
        if self.eat_punct("<=") {
            let rhs = self.expr()?;
            self.expect_punct(";")?;
            Ok(Stmt::NonBlocking(lhs, rhs))
        } else if self.eat_punct("=") {
            let rhs = self.expr()?;
            self.expect_punct(";")?;
            Ok(Stmt::Blocking(lhs, rhs))
        } else {
            self.err("`=` or `<=`")
        }
    }

    fn instance(&mut self) -> Result<Item, ParseError> {
        let module = self.expect_ident()?;
        let mut params = Vec::new();
        if self.eat_punct("#") {
            self.expect_punct("(")?;
            loop {
                self.expect_punct(".")?;
                let pname = self.expect_ident()?;
                self.expect_punct("(")?;
                let v = self.expr()?;
                self.expect_punct(")")?;
                params.push((pname, v));
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.expect_punct(")")?;
        }
        let name = self.expect_ident()?;
        self.expect_punct("(")?;
        let conns = if matches!(self.peek(), TokenKind::Punct(".")) {
            let mut named = Vec::new();
            loop {
                self.expect_punct(".")?;
                let pname = self.expect_ident()?;
                self.expect_punct("(")?;
                let e = if matches!(self.peek(), TokenKind::Punct(")")) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect_punct(")")?;
                named.push((pname, e));
                if !self.eat_punct(",") {
                    break;
                }
            }
            PortConns::Named(named)
        } else if matches!(self.peek(), TokenKind::Punct(")")) {
            PortConns::Ordered(Vec::new())
        } else {
            let mut exprs = vec![self.expr()?];
            while self.eat_punct(",") {
                exprs.push(self.expr()?);
            }
            PortConns::Ordered(exprs)
        };
        self.expect_punct(")")?;
        self.expect_punct(";")?;
        Ok(Item::Instance(Instance {
            module,
            name,
            params,
            conns,
        }))
    }

    fn lvalue(&mut self) -> Result<LValue, ParseError> {
        if self.eat_punct("{") {
            let mut parts = vec![self.lvalue()?];
            while self.eat_punct(",") {
                parts.push(self.lvalue()?);
            }
            self.expect_punct("}")?;
            return Ok(LValue::Concat(parts));
        }
        let name = self.expect_ident()?;
        if self.eat_punct("[") {
            let first = self.expr()?;
            if self.eat_punct(":") {
                let lsb = self.expr()?;
                self.expect_punct("]")?;
                Ok(LValue::Part(name, first, lsb))
            } else {
                self.expect_punct("]")?;
                Ok(LValue::Bit(name, first))
            }
        } else {
            Ok(LValue::Id(name))
        }
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.logic_or()?;
        if self.eat_punct("?") {
            let a = self.expr()?;
            self.expect_punct(":")?;
            let b = self.expr()?;
            Ok(Expr::Ternary(Box::new(cond), Box::new(a), Box::new(b)))
        } else {
            Ok(cond)
        }
    }

    fn binary_level<F>(&mut self, next: F, ops: &[(&str, BinaryOp)]) -> Result<Expr, ParseError>
    where
        F: Fn(&mut Self) -> Result<Expr, ParseError>,
    {
        let mut lhs = next(self)?;
        'outer: loop {
            for &(p, op) in ops {
                if matches!(self.peek(), TokenKind::Punct(q) if *q == p) {
                    self.bump();
                    let rhs = next(self)?;
                    lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn logic_or(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(Self::logic_and, &[("||", BinaryOp::LogicOr)])
    }

    fn logic_and(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(Self::bit_or, &[("&&", BinaryOp::LogicAnd)])
    }

    fn bit_or(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(Self::bit_xor, &[("|", BinaryOp::Or)])
    }

    fn bit_xor(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            Self::bit_and,
            &[
                ("^", BinaryOp::Xor),
                ("~^", BinaryOp::Xnor),
                ("^~", BinaryOp::Xnor),
            ],
        )
    }

    fn bit_and(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(Self::equality, &[("&", BinaryOp::And)])
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            Self::relational,
            &[("==", BinaryOp::Eq), ("!=", BinaryOp::Ne)],
        )
    }

    fn relational(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            Self::shift,
            &[
                ("<=", BinaryOp::Le),
                (">=", BinaryOp::Ge),
                ("<", BinaryOp::Lt),
                (">", BinaryOp::Gt),
            ],
        )
    }

    fn shift(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            Self::additive,
            &[("<<", BinaryOp::Shl), (">>", BinaryOp::Shr)],
        )
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            Self::multiplicative,
            &[("+", BinaryOp::Add), ("-", BinaryOp::Sub)],
        )
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        self.binary_level(
            Self::unary,
            &[
                ("*", BinaryOp::Mul),
                ("/", BinaryOp::Div),
                ("%", BinaryOp::Mod),
            ],
        )
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let ops: &[(&str, UnaryOp)] = &[
            ("~&", UnaryOp::RedNand),
            ("~|", UnaryOp::RedNor),
            ("~^", UnaryOp::RedXnor),
            ("~", UnaryOp::Not),
            ("!", UnaryOp::LogicNot),
            ("-", UnaryOp::Neg),
            ("&", UnaryOp::RedAnd),
            ("|", UnaryOp::RedOr),
            ("^", UnaryOp::RedXor),
        ];
        for &(p, op) in ops {
            if matches!(self.peek(), TokenKind::Punct(q) if *q == p) {
                self.bump();
                let e = self.unary()?;
                return Ok(Expr::Unary(op, Box::new(e)));
            }
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        while self.eat_punct("[") {
            let first = self.expr()?;
            if self.eat_punct(":") {
                let lsb = self.expr()?;
                self.expect_punct("]")?;
                e = Expr::Part(Box::new(e), Box::new(first), Box::new(lsb));
            } else {
                self.expect_punct("]")?;
                e = Expr::Bit(Box::new(e), Box::new(first));
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(Expr::Id(s))
            }
            TokenKind::Number { width, value } => {
                self.bump();
                Ok(Expr::Literal(Number { width, value }))
            }
            TokenKind::Punct("(") => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            TokenKind::Punct("{") => {
                self.bump();
                let first = self.expr()?;
                if self.eat_punct("{") {
                    // replication {N{expr, ...}}
                    let mut inner = vec![self.expr()?];
                    while self.eat_punct(",") {
                        inner.push(self.expr()?);
                    }
                    self.expect_punct("}")?;
                    self.expect_punct("}")?;
                    Ok(Expr::Repeat(Box::new(first), inner))
                } else {
                    let mut parts = vec![first];
                    while self.eat_punct(",") {
                        parts.push(self.expr()?);
                    }
                    self.expect_punct("}")?;
                    Ok(Expr::Concat(parts))
                }
            }
            _ => self.err("expression"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_module_with_params_and_instance() {
        let src = r#"
module child #(parameter W = 4) (input wire [W-1:0] a, output wire [W-1:0] y);
  assign y = ~a;
endmodule
module top(input wire [7:0] x, output wire [7:0] y);
  child #(.W(8)) c0 (.a(x), .y(y));
endmodule
"#;
        let f = parse_source(src).expect("parse");
        assert_eq!(f.modules.len(), 2);
        let top = f.module("top").expect("top exists");
        let inst = top.instances().next().expect("instance");
        assert_eq!(inst.module, "child");
        assert_eq!(inst.params.len(), 1);
    }

    #[test]
    fn parse_always_ff_with_reset() {
        let src = r#"
module d(input wire clk, input wire rst, input wire d, output reg q);
  always @(posedge clk) begin
    if (rst) q <= 1'b0;
    else q <= d;
  end
endmodule
"#;
        let f = parse_source(src).expect("parse");
        let m = &f.modules[0];
        assert!(matches!(
            m.items[0],
            Item::Always(AlwaysBlock {
                sensitivity: Sensitivity::Edges(_),
                ..
            })
        ));
    }

    #[test]
    fn parse_case_statement() {
        let src = r#"
module c(input wire [1:0] s, output reg [3:0] y);
  always @(*) begin
    case (s)
      2'd0: y = 4'b0001;
      2'd1: y = 4'b0010;
      2'd2, 2'd3: y = 4'b0100;
      default: y = 4'b0000;
    endcase
  end
endmodule
"#;
        let f = parse_source(src).expect("parse");
        match &f.modules[0].items[0] {
            Item::Always(ab) => {
                let inner = match &ab.body {
                    Stmt::Block(stmts) => &stmts[0],
                    other => other,
                };
                match inner {
                    Stmt::Case { arms, default, .. } => {
                        assert_eq!(arms.len(), 3);
                        assert_eq!(arms[2].labels.len(), 2);
                        assert!(default.is_some());
                    }
                    other => panic!("expected case, got {other:?}"),
                }
            }
            other => panic!("expected always, got {other:?}"),
        }
    }

    #[test]
    fn parse_concat_replication_partselect() {
        let src = r#"
module x(input wire [7:0] a, output wire [15:0] y);
  assign y = {2{a[7:4], a[3:0]}};
endmodule
"#;
        assert!(parse_source(src).is_ok());
    }

    #[test]
    fn parse_multi_net_declaration() {
        let src = "module m; wire [3:0] a, b, c; endmodule";
        let f = parse_source(src).expect("parse");
        let nets: Vec<_> = f.modules[0]
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Net(n) => Some(n.name.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(nets, vec!["a", "b", "c"]);
    }

    #[test]
    fn error_on_missing_semicolon() {
        let err = parse_source("module m(input wire a) endmodule").unwrap_err();
        assert!(err.to_string().contains("expected"));
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse_source("modulo m; endmodule").is_err());
    }

    #[test]
    fn precedence_of_ternary_and_or() {
        let src = "module m(input wire a, input wire b, input wire c, output wire y);\
                   assign y = a | b ? a & c : b ^ c; endmodule";
        let f = parse_source(src).expect("parse");
        match &f.modules[0].items[0] {
            Item::Assign(a) => assert!(matches!(a.rhs, Expr::Ternary(..))),
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn ordered_port_connections() {
        let src = "module inv(input wire a, output wire y); assign y = ~a; endmodule\n\
                   module t(input wire x, output wire z); inv i0(x, z); endmodule";
        let f = parse_source(src).expect("parse");
        let inst = f.module("t").expect("t").instances().next().expect("i0");
        match &inst.conns {
            PortConns::Ordered(es) => assert_eq!(es.len(), 2),
            other => panic!("expected ordered, got {other:?}"),
        }
    }
}
