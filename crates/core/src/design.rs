//! A loaded design: parsed source plus hierarchy, the flow's input.

use alice_intern::{HierPath, PathTree, Symbol};
use alice_verilog::hierarchy::{build_hierarchy, Hierarchy, HierarchyError};
use alice_verilog::{parse_source, ParseError, SourceFile};
use std::fmt;

/// A design ready for the ALICE flow.
#[derive(Debug, Clone)]
pub struct Design {
    /// Short name used in reports (e.g. `GCD`).
    pub name: String,
    /// The parsed source.
    pub file: SourceFile,
    /// Elaborated hierarchy (instance tree, pin counts).
    pub hierarchy: Hierarchy,
    /// Parent-pointer tree over the instance paths (built from the real
    /// hierarchy edges; the structural oracle for ancestor queries).
    pub paths: PathTree,
}

/// Errors while loading a design.
#[derive(Debug, Clone, PartialEq)]
pub enum DesignError {
    /// Verilog did not parse.
    Parse(ParseError),
    /// Hierarchy extraction failed.
    Hierarchy(HierarchyError),
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::Parse(e) => write!(f, "parse: {e}"),
            DesignError::Hierarchy(e) => write!(f, "hierarchy: {e}"),
        }
    }
}

impl std::error::Error for DesignError {}

impl From<ParseError> for DesignError {
    fn from(e: ParseError) -> Self {
        DesignError::Parse(e)
    }
}

impl From<HierarchyError> for DesignError {
    fn from(e: HierarchyError) -> Self {
        DesignError::Hierarchy(e)
    }
}

impl Design {
    /// Loads a design from Verilog source.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError`] on parse or hierarchy failures.
    ///
    /// # Example
    ///
    /// ```
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let d = alice_core::design::Design::from_source(
    ///     "demo",
    ///     "module top(input wire a, output wire y); assign y = ~a; endmodule",
    ///     None,
    /// )?;
    /// assert_eq!(d.hierarchy.top, "top");
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_source(
        name: impl Into<String>,
        src: &str,
        top: Option<&str>,
    ) -> Result<Design, DesignError> {
        let file = parse_source(src)?;
        let hierarchy = build_hierarchy(&file, top)?;
        let paths = hierarchy.tree.path_tree();
        Ok(Design {
            name: name.into(),
            file,
            hierarchy,
            paths,
        })
    }

    /// All redactable instance paths (every instance except the root),
    /// as typed [`HierPath`]s.
    pub fn instance_paths(&self) -> Vec<HierPath> {
        self.hierarchy
            .tree
            .walk()
            .iter()
            .skip(1)
            .map(|n| HierPath::from_symbol(n.path))
            .collect()
    }

    /// The module name implemented by an instance path.
    pub fn module_of(&self, path: impl Into<Symbol>) -> Option<Symbol> {
        self.hierarchy.tree.find(path).map(|n| n.module)
    }

    /// I/O pin count of the module behind an instance path.
    pub fn io_pins_of(&self, path: impl Into<Symbol>) -> Option<u32> {
        let m = self.module_of(path)?;
        self.hierarchy.modules.get(&m).map(|i| i.io_pins)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
module a(input wire x, output wire y); assign y = ~x; endmodule
module top(input wire x, output wire y);
  wire t;
  a u0(.x(x), .y(t));
  a u1(.x(t), .y(y));
endmodule
"#;

    #[test]
    fn loads_and_lists_instances() {
        let d = Design::from_source("t", SRC, None).expect("load");
        assert_eq!(
            d.instance_paths(),
            ["top.u0", "top.u1"].map(HierPath::intern).to_vec()
        );
        assert_eq!(d.module_of("top.u1"), Some(Symbol::intern("a")));
        assert_eq!(d.io_pins_of("top.u0"), Some(2));
        assert!(d
            .paths
            .is_ancestor_or_self(Symbol::intern("top"), Symbol::intern("top.u1")));
    }

    #[test]
    fn parse_error_propagates() {
        assert!(matches!(
            Design::from_source("t", "module broken(", None),
            Err(DesignError::Parse(_))
        ));
    }
}
