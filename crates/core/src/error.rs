//! The unified flow error type.
//!
//! Earlier revisions carried one error enum per phase (`FilterError`,
//! `SelectError`, `RedactError`, plus a stringly dataflow wrapper) and a
//! `FlowError` that wrapped each by hand. The staged pipeline uses one
//! [`AliceError`] across every phase; [`AliceError::phase`] names the
//! Figure 3 phase an error came from.

use std::fmt;

/// Any error the ALICE flow can produce, across all four phases.
#[derive(Debug, Clone, PartialEq)]
pub enum AliceError {
    /// Dataflow analysis failed (filter phase; Algorithm 1 needs the
    /// output cones).
    Dataflow(String),
    /// A selected output does not exist on the top module (filter phase).
    UnknownOutput(String),
    /// A candidate module failed to elaborate or LUT-map (select phase).
    Elaborate(String),
    /// Redaction was asked to apply a selection with no solution.
    NoSolution,
    /// Internal inconsistency while rewriting the hierarchy (redact
    /// phase; should not happen on flow-produced inputs).
    Inconsistent(String),
    /// A solution member failed to map onto the fabric (redact phase).
    Map(String),
    /// The post-redaction equivalence check could not be set up (verify
    /// phase): the redacted output failed to re-parse/elaborate or its
    /// boundary could not be paired with the original. An *inequivalence*
    /// is not an error — it is reported in the verify artifact.
    Verify(String),
}

impl AliceError {
    /// The Figure 3 phase this error belongs to.
    pub fn phase(&self) -> &'static str {
        match self {
            AliceError::Dataflow(_) | AliceError::UnknownOutput(_) => "filter",
            AliceError::Elaborate(_) => "select",
            AliceError::NoSolution | AliceError::Inconsistent(_) | AliceError::Map(_) => "redact",
            AliceError::Verify(_) => "verify",
        }
    }
}

impl fmt::Display for AliceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.phase())?;
        match self {
            AliceError::Dataflow(e) => write!(f, "dataflow analysis failed: {e}"),
            AliceError::UnknownOutput(o) => write!(f, "unknown selected output `{o}`"),
            AliceError::Elaborate(m) => write!(f, "elaboration failed: {m}"),
            AliceError::NoSolution => write!(f, "no solution selected"),
            AliceError::Inconsistent(m) => write!(f, "inconsistent redaction state: {m}"),
            AliceError::Map(m) => write!(f, "mapping failed: {m}"),
            AliceError::Verify(m) => write!(f, "equivalence check setup failed: {m}"),
        }
    }
}

impl std::error::Error for AliceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_phase() {
        assert_eq!(
            AliceError::UnknownOutput("dout".into()).to_string(),
            "filter: unknown selected output `dout`"
        );
        assert_eq!(AliceError::NoSolution.phase(), "redact");
        assert_eq!(AliceError::Elaborate("m".into()).phase(), "select");
    }
}
