//! Post-redaction verification: the pipeline's `Verify` stage.
//!
//! The paper's functional claim — *the redacted design with the correct
//! bitstream is the original design* — was previously spot-checked by
//! random simulation. This stage proves it: it re-parses the flow's own
//! Verilog output (top ASIC + fabric netlists, exactly what ships),
//! elaborates both sides to gate level, and runs a SAT miter from
//! `alice-cec` with
//!
//! * every fabric configuration register pinned to the bitstream value
//!   the chain would load ([`crate::redact::RedactedEfpga::binding`]),
//! * `cfg_en` pinned low (functional mode) and the remaining config pins
//!   free,
//! * each fabric FF paired with the original register it replaced, so
//!   sequential designs are checked under the standard scan model
//!   (outputs *and* next-state functions, over all states).
//!
//! The same miter, with key bits flipped instead of correct, drives the
//! wrong-key corruptibility sweep: for each of N wrong bitstreams it
//! computes the exact set of output/next-state bits an attacker-visible
//! difference can reach — the security-relevant converse of the
//! equivalence proof. By default (see [`AliceConfig::incremental_cec`])
//! the sweep is *incremental*: unique flip sets are partitioned into
//! contiguous slices across workers, each worker encodes the pair
//! **once** as an assumption-parameterized [`KeyedMiter`] and answers
//! its whole slice by `solve_with(assumptions)` on one long-lived
//! solver — learned clauses, variable activities, and saved phases
//! carry across keys, and the correct-key proof's already-warm engine
//! is handed to the first worker. Verdicts and corruption counts are
//! bit-identical to the pinned-constant baseline.

use crate::config::AliceConfig;
use crate::db::DesignDb;
use crate::design::Design;
use crate::error::AliceError;
use crate::par::shard;
use crate::redact::RedactedDesign;
use alice_cec::cache::{self as cec_cache, CachedCorruption, CachedProof};
use alice_cec::{
    miter_fingerprint, prove_equivalent_raced, CecResult, Counterexample, EngineStats, KeyedMiter,
    Miter, MiterOptions,
};
use alice_intern::Symbol;
use alice_netlist::ir::Netlist;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Both sides of the check, elaborated; the inner `Err` is the
/// "unsupported at gate level" reason, not a flow error.
type ElaboratedSides = Result<(Arc<Netlist>, Arc<Netlist>), String>;

/// The verdict of the verify stage's equivalence proof.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyOutcome {
    /// Proven: redacted + correct bitstream ≡ original, for all inputs
    /// and states.
    Equivalent,
    /// A concrete disagreement was found (a redaction bug).
    NotEquivalent(Box<Counterexample>),
    /// The solver budget ran out before a verdict.
    ResourceLimit,
    /// The design uses constructs the gate-level elaborator cannot
    /// handle, so no netlist-level check is possible (reason attached).
    Unsupported(String),
}

impl VerifyOutcome {
    /// True only for a completed equivalence proof.
    pub fn is_equivalent(&self) -> bool {
        matches!(self, VerifyOutcome::Equivalent)
    }
}

impl fmt::Display for VerifyOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyOutcome::Equivalent => write!(f, "equivalent"),
            VerifyOutcome::NotEquivalent(cex) => {
                write!(f, "NOT equivalent ({} differing point(s))", cex.diffs.len())
            }
            VerifyOutcome::ResourceLimit => write!(f, "undecided (budget exhausted)"),
            VerifyOutcome::Unsupported(why) => write!(f, "unsupported ({why})"),
        }
    }
}

/// One wrong bitstream's corruptibility result.
///
/// Equality compares the *analysis verdict* (flips, corruption counts,
/// completeness) and deliberately ignores [`WrongKeyOutcome::solve_us`]
/// and [`WrongKeyOutcome::from_cache`]: a warm run serving the same
/// verdict from the proof cache is the same outcome, just faster.
#[derive(Debug, Clone)]
pub struct WrongKeyOutcome {
    /// Which key-bit indices (into the concatenated per-fabric
    /// [`crate::redact::VerifyBinding::key_bits`]) were flipped.
    pub flipped: Vec<usize>,
    /// Output/next-state points provably corrupted by this key.
    pub corrupted: usize,
    /// Total compared points.
    pub total: usize,
    /// False when the solver budget cut the analysis short.
    pub complete: bool,
    /// Wall-clock of this key's miter build + SAT analysis, in
    /// microseconds — per-miter, so one pathological key is visible
    /// instead of hiding inside the sweep's aggregate mean.
    pub solve_us: u64,
    /// True when the verdict was served from the persistent proof
    /// cache instead of being solved.
    pub from_cache: bool,
}

impl PartialEq for WrongKeyOutcome {
    fn eq(&self, other: &Self) -> bool {
        self.flipped == other.flipped
            && self.corrupted == other.corrupted
            && self.total == other.total
            && self.complete == other.complete
    }
}

impl WrongKeyOutcome {
    /// Corrupted fraction of compared points.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.corrupted as f64 / self.total as f64
        }
    }
}

/// Summary of the portfolio race behind the equivalence proof, present
/// only when [`AliceConfig::portfolio`] > 1 and the proof actually ran
/// (cache hits race nothing). On the incremental keyed-miter path the
/// "winner" is the member that won the most assumption solves, and the
/// clause-database counters describe the long-lived engine's retention
/// behavior across the whole run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortfolioSummary {
    /// Configurations raced.
    pub configs: usize,
    /// Index of the winning configuration (0 = the classic defaults).
    pub winner: usize,
    /// Conflicts spent by the winner (sweeping + proof).
    pub conflicts: u64,
    /// Clauses the winner learned.
    pub learned: u64,
    /// Luby restarts taken by winning members.
    pub restarts: u64,
    /// Incremental `solve_with(assumptions)` calls answered.
    pub assumption_solves: u64,
    /// Learned clauses surviving clause-database reductions.
    pub learned_kept: u64,
    /// Learned clauses dropped by clause-database reductions.
    pub learned_dropped: u64,
}

impl PortfolioSummary {
    fn new(configs: usize, winner: usize, stats: EngineStats) -> Self {
        PortfolioSummary {
            configs,
            winner,
            conflicts: stats.conflicts,
            learned: stats.learned,
            restarts: stats.restarts,
            assumption_solves: stats.assumption_solves,
            learned_kept: stats.learned_kept,
            learned_dropped: stats.learned_dropped,
        }
    }
}

impl fmt::Display for PortfolioSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "config {}/{} won ({} conflicts, {} learned, {} restarts, {} asm, db {}+/{}-)",
            self.winner,
            self.configs,
            self.conflicts,
            self.learned,
            self.restarts,
            self.assumption_solves,
            self.learned_kept,
            self.learned_dropped
        )
    }
}

/// The verify stage's artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyReport {
    /// Equivalence verdict under the correct bitstream.
    pub outcome: VerifyOutcome,
    /// Compared difference points (output bits + paired next-states).
    pub diff_points: usize,
    /// Miter CNF size `(variables, clauses)`, zero when unsupported.
    pub cnf_vars: usize,
    /// Miter CNF clause count.
    pub cnf_clauses: usize,
    /// Wrong-key corruptibility sweep results (empty when disabled).
    pub wrong_keys: Vec<WrongKeyOutcome>,
    /// Portfolio race summary (`None` in classic single-solver runs and
    /// on proof-cache hits).
    pub portfolio: Option<PortfolioSummary>,
}

impl VerifyReport {
    /// Mean corrupted fraction over the wrong-key sweep, if it ran.
    pub fn corruption_fraction(&self) -> Option<f64> {
        if self.wrong_keys.is_empty() {
            return None;
        }
        let sum: f64 = self.wrong_keys.iter().map(WrongKeyOutcome::fraction).sum();
        Some(sum / self.wrong_keys.len() as f64)
    }
}

/// Observability: per-miter wall-clock of wrong-key analyses (µs).
/// One pathological key shows up in the tail buckets instead of being
/// averaged away by the sweep's aggregate duration.
static WRONG_KEY_SOLVE_US: alice_obs::Histogram = alice_obs::Histogram::new(
    "alice_verify_wrong_key_solve_us",
    "Per-miter wall-clock of wrong-key corruption analyses (µs)",
);

/// Builds the miter options shared by the proof and the sweep: state
/// renames and cfg pins from every fabric's binding, `cfg_en` low.
///
/// The binding's pin and state names were minted by the emitter's own
/// naming contract ([`alice_fabric::emit::cfg_bit_name`] /
/// [`alice_fabric::emit::ff_bit_name`] over
/// [`alice_fabric::emit::le_path`]), so they match the hierarchical DFF
/// names the re-elaboration of the emitted netlist produces by
/// construction — no string surgery happens here.
fn base_options(redacted: &RedactedDesign, cfg: &AliceConfig) -> MiterOptions {
    let mut opts = MiterOptions {
        conflict_budget: cfg.verify_conflict_budget,
        ..MiterOptions::default()
    };
    opts.pin_inputs
        .push((Symbol::intern("cfg_en"), vec![false]));
    for e in &redacted.efpgas {
        opts.pin_state.extend(e.binding.cfg_pins.iter().copied());
        opts.state_rename
            .extend(e.binding.state_map.iter().copied());
    }
    opts
}

/// Elaborates both sides of the check. `Err` carries the *reason* the
/// design is unsupported at gate level (an [`VerifyOutcome::Unsupported`]
/// verdict, not a flow error); genuine flow bugs — the redacted output
/// failing to re-parse — surface as [`AliceError::Verify`] from
/// [`verify_redaction`] instead.
fn elaborate_sides(
    design: &Design,
    redacted: &RedactedDesign,
    db: &DesignDb,
) -> Result<ElaboratedSides, AliceError> {
    let top = design.hierarchy.top.as_str();
    // Both sides go through the DesignDb, so suite-style repeat runs
    // re-elaborate neither the original nor an identical redaction.
    let golden = match db.elaborate(&design.file, top) {
        Ok(n) => n,
        Err(e) => return Ok(Err(format!("original does not elaborate: {e}"))),
    };
    let combined = redacted.combined_verilog();
    let parsed = alice_verilog::parse_source(&combined)
        .map_err(|e| AliceError::Verify(format!("redacted output does not re-parse: {e}")))?;
    let revised = db
        .elaborate(&parsed, top)
        .map_err(|e| AliceError::Verify(format!("redacted output does not elaborate: {e}")))?;
    Ok(Ok((golden, revised)))
}

/// Runs the equivalence proof and (optionally) the wrong-key sweep.
///
/// # Errors
///
/// Returns [`AliceError::Verify`] when the flow's own output cannot be
/// checked (re-parse/elaboration failure of the redacted design, or a
/// boundary that cannot be paired) — conditions that indicate a redaction
/// bug. Designs whose *original* cannot be elaborated are reported as
/// [`VerifyOutcome::Unsupported`], not as errors.
pub fn verify_redaction(
    design: &Design,
    redacted: &RedactedDesign,
    cfg: &AliceConfig,
    db: &DesignDb,
) -> Result<VerifyReport, AliceError> {
    let (golden, revised) = match elaborate_sides(design, redacted, db)? {
        Ok(pair) => pair,
        Err(reason) => {
            return Ok(VerifyReport {
                outcome: VerifyOutcome::Unsupported(reason),
                diff_points: 0,
                cnf_vars: 0,
                cnf_clauses: 0,
                wrong_keys: Vec::new(),
                portfolio: None,
            })
        }
    };
    let mut opts = base_options(redacted, cfg);
    // Hand the sweep the store's lemma segment: even when the
    // whole-miter fingerprint below misses (a novel query), per-pair
    // equalities proven by any past sweep warm-start this one.
    opts.lemma_store = db.store().cloned();

    // The persistent proof cache: an identical (golden, revised, pins)
    // query across suite re-runs or CLI invocations skips the whole
    // miter build *and* the SAT proof. Only proven-Equivalent entries
    // exist (see `alice_cec::cache`), so a hit is always a proof.
    let store = db.store().map(Arc::as_ref);
    let fp = miter_fingerprint(&golden, &revised, &opts);
    let cached = store.and_then(|s| cec_cache::lookup_proof(s, fp));
    // The keyed-miter engine behind an incremental correct-key proof,
    // handed to the wrong-key sweep afterwards so its learned clauses,
    // activities, and saved phases keep working across the wrong keys.
    let mut seed: Option<KeyedMiter> = None;
    // Incremental solving pays when its encode and search effort is
    // amortized over many keys; a lone correct-key proof stays on the
    // pinned-constant path, whose encode-time folding is unbeatable for
    // a single key (and whose portfolio also diversifies the encoding).
    let incremental = cfg.incremental_cec && cfg.verify_wrong_keys > 0;
    let (outcome, diff_points, cnf_vars, cnf_clauses, portfolio) = match cached {
        Some(proof) => {
            db.count_external_disk_hit();
            (
                VerifyOutcome::Equivalent,
                proof.diff_points as usize,
                proof.cnf_vars as usize,
                proof.cnf_clauses as usize,
                None,
            )
        }
        None if incremental => {
            // One assumption-parameterized miter proves the correct key
            // and then serves the wrong-key sweep from the same engine.
            let _span = alice_obs::span("verify.prove");
            let mut km = KeyedMiter::build(&golden, &revised, &opts, cfg.portfolio)
                .map_err(|e| AliceError::Verify(e.to_string()))?;
            let result = km
                .prove(&opts.pin_state)
                .map_err(|e| AliceError::Verify(e.to_string()))?;
            let diff_points = km.diff_points();
            let (cnf_vars, cnf_clauses) = km.cnf_size();
            let outcome = match result {
                CecResult::Equivalent => VerifyOutcome::Equivalent,
                CecResult::NotEquivalent(cex) => VerifyOutcome::NotEquivalent(cex),
                CecResult::ResourceLimit => VerifyOutcome::ResourceLimit,
            };
            if let Some(s) = store {
                if outcome.is_equivalent() {
                    cec_cache::record_proof(
                        s,
                        fp,
                        CachedProof {
                            diff_points: diff_points as u64,
                            cnf_vars: cnf_vars as u64,
                            cnf_clauses: cnf_clauses as u64,
                        },
                    );
                    db.count_external_miss();
                }
            }
            let summary = (cfg.portfolio > 1).then(|| {
                let winner = km
                    .portfolio_stats()
                    .map(|ps| {
                        let (w, _) = ps
                            .wins
                            .iter()
                            .enumerate()
                            .max_by_key(|&(_, &n)| n)
                            .unwrap_or((0, &0));
                        w
                    })
                    .unwrap_or(0);
                PortfolioSummary::new(cfg.portfolio, winner, km.stats())
            });
            seed = Some(km);
            (outcome, diff_points, cnf_vars, cnf_clauses, summary)
        }
        None => {
            // `portfolio == 1` takes the classic single-solver path
            // inside `prove_equivalent_raced` (no extra threads, no
            // behavior change); larger widths race diversified solver
            // and encoding configurations, first definitive answer wins.
            let _span = alice_obs::span("verify.prove");
            let ro = prove_equivalent_raced(
                &golden,
                &revised,
                &opts,
                cfg.portfolio,
                cfg.effective_jobs(),
            )
            .map_err(|e| AliceError::Verify(e.to_string()))?;
            let outcome = match ro.result {
                CecResult::Equivalent => VerifyOutcome::Equivalent,
                CecResult::NotEquivalent(cex) => VerifyOutcome::NotEquivalent(cex),
                CecResult::ResourceLimit => VerifyOutcome::ResourceLimit,
            };
            if let Some(s) = store {
                if outcome.is_equivalent() {
                    cec_cache::record_proof(
                        s,
                        fp,
                        CachedProof {
                            diff_points: ro.diff_points as u64,
                            cnf_vars: ro.cnf_vars as u64,
                            cnf_clauses: ro.cnf_clauses as u64,
                        },
                    );
                    db.count_external_miss();
                }
            }
            let summary =
                (cfg.portfolio > 1).then(|| PortfolioSummary::new(ro.configs, ro.winner, ro.stats));
            (
                outcome,
                ro.diff_points,
                ro.cnf_vars,
                ro.cnf_clauses,
                summary,
            )
        }
    };

    // Wrong-key sweep: only meaningful once the correct key is proven.
    let wrong_keys = if cfg.verify_wrong_keys > 0 && outcome.is_equivalent() {
        let _span = alice_obs::span("verify.wrong_key_sweep");
        wrong_key_sweep(&golden, &revised, redacted, cfg, db, seed)
            .map_err(|e| AliceError::Verify(e.to_string()))?
    } else {
        Vec::new()
    };

    Ok(VerifyReport {
        outcome,
        diff_points,
        cnf_vars,
        cnf_clauses,
        wrong_keys,
        portfolio,
    })
}

/// Deterministic splitmix64 (the workspace's stand-in for `rand`).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Runs the corruptibility sweep: N wrong bitstreams, each flipping a few
/// meaningful truth-table bits.
///
/// Identical flip sets are deduplicated up front — duplicates share one
/// analysis — and the unique keys are partitioned into contiguous slices
/// across [`shard`] workers. With [`AliceConfig::incremental_cec`] on,
/// each worker owns one long-lived [`KeyedMiter`] (the first worker
/// steals the engine `seed`ed by the correct-key proof, complete with
/// its learned clauses and saved phases) and answers its whole slice by
/// assumption solves; otherwise every key builds a fresh pinned
/// [`Miter`], the classic baseline. Either way each wrong key remains
/// its own cacheable query (its pins are part of the miter fingerprint,
/// computed on the *pinned* options), so re-sweeping an identical
/// redaction serves every complete analysis from the store, and caches
/// written by one path are served verbatim by the other.
fn wrong_key_sweep(
    golden: &Netlist,
    revised: &Netlist,
    redacted: &RedactedDesign,
    cfg: &AliceConfig,
    db: &DesignDb,
    seed: Option<KeyedMiter>,
) -> Result<Vec<WrongKeyOutcome>, alice_cec::MiterError> {
    // Global key-bit table: (cfg-register name, correct value), over all
    // fabrics, restricted to reachable truth-table bits.
    let key_bits: Vec<(Symbol, bool)> = redacted
        .efpgas
        .iter()
        .flat_map(|e| e.binding.key_bits.iter().map(|&i| e.binding.cfg_pins[i]))
        .collect();
    if key_bits.is_empty() {
        return Ok(Vec::new());
    }
    let mut base = base_options(redacted, cfg);
    // Each wrong key is a *novel* miter (its pins differ), but the
    // key-independent cones repeat across all N of them — exactly the
    // case the persisted sweep lemmas exist for.
    base.lemma_store = db.store().cloned();
    let n = cfg.verify_wrong_keys;

    // Pre-draw the flip sets (deterministic, independent of sharding).
    let mut rng: u64 = 0xA11C_E0DD ^ key_bits.len() as u64;
    let flips: Vec<Vec<usize>> = (0..n)
        .map(|_| {
            let count = 1 + (splitmix64(&mut rng) % 4) as usize;
            let mut f: Vec<usize> = (0..count)
                .map(|_| (splitmix64(&mut rng) % key_bits.len() as u64) as usize)
                .collect();
            f.sort_unstable();
            f.dedup();
            f
        })
        .collect();

    // Dedupe identical flip sets: `uniq` holds one representative key
    // index per distinct set, `rep[k]` maps every key to its entry.
    let mut uniq: Vec<usize> = Vec::new();
    let mut rep: Vec<usize> = Vec::with_capacity(n);
    {
        let mut index: HashMap<&[usize], usize> = HashMap::new();
        for f in &flips {
            let u = *index.entry(f.as_slice()).or_insert_with(|| {
                uniq.push(rep.len());
                uniq.len() - 1
            });
            rep.push(u);
        }
    }

    let store = db.store().map(Arc::as_ref);
    let seed = Mutex::new(seed);
    let jobs = cfg.effective_jobs();
    let workers = jobs.min(uniq.len()).max(1);
    let per = uniq.len().div_ceil(workers);
    let sliced = shard(workers, jobs, |w| {
        let lo = w * per;
        let hi = (lo + per).min(uniq.len());
        // The worker's engine, built on first uncached key of the slice.
        let mut km: Option<KeyedMiter> = None;
        let mut out: Vec<WrongKeyOutcome> = Vec::with_capacity(hi - lo);
        for &k in &uniq[lo..hi] {
            let _span = alice_obs::span_with("verify.wrong_key", || format!("key {k}"));
            let started = std::time::Instant::now();
            let mut opts = base.clone();
            // Flip the chosen key bits relative to the correct bitstream.
            let flipped: HashMap<Symbol, bool> = flips[k]
                .iter()
                .map(|&i| (key_bits[i].0, !key_bits[i].1))
                .collect();
            for (name, v) in &mut opts.pin_state {
                if let Some(&nv) = flipped.get(name) {
                    *v = nv;
                }
            }
            let fp = miter_fingerprint(golden, revised, &opts);
            if let Some(hit) = store.and_then(|s| cec_cache::lookup_corruption(s, fp)) {
                db.count_external_disk_hit();
                out.push(WrongKeyOutcome {
                    flipped: flips[k].clone(),
                    corrupted: hit.corrupted as usize,
                    total: hit.total as usize,
                    complete: true,
                    solve_us: started.elapsed().as_micros() as u64,
                    from_cache: true,
                });
                continue;
            }
            let c = if cfg.incremental_cec {
                if km.is_none() {
                    // First worker to get here inherits the correct-key
                    // prover's warmed engine; the rest encode once for
                    // their whole slice.
                    km = seed.lock().unwrap().take();
                }
                if km.is_none() {
                    km = Some(KeyedMiter::build(golden, revised, &base, 1)?);
                }
                km.as_mut().unwrap().corruption(&opts.pin_state)?
            } else {
                Miter::build(golden, revised, &opts)?.corruption()
            };
            if let Some(s) = store {
                if c.complete {
                    cec_cache::record_corruption(
                        s,
                        fp,
                        CachedCorruption {
                            corrupted: c.corrupted.len() as u64,
                            total: c.total as u64,
                        },
                    );
                    db.count_external_miss();
                }
            }
            let solve_us = started.elapsed().as_micros() as u64;
            WRONG_KEY_SOLVE_US.observe(solve_us);
            out.push(WrongKeyOutcome {
                flipped: flips[k].clone(),
                corrupted: c.corrupted.len(),
                total: c.total,
                complete: c.complete,
                solve_us,
                from_cache: false,
            });
        }
        Ok(out)
    });
    let mut by_uniq: Vec<WrongKeyOutcome> = Vec::with_capacity(uniq.len());
    for slice in sliced {
        by_uniq.extend(slice?);
    }
    // Replicate each representative's verdict to its duplicates.
    Ok((0..n)
        .map(|k| {
            let mut o = by_uniq[rep[k]].clone();
            o.flipped = flips[k].clone();
            o
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Flow;

    const SRC: &str = r#"
module xorblk(input wire [3:0] a, input wire [3:0] b, output wire [3:0] y);
  assign y = a ^ b;
endmodule
module regblk(input wire clk, input wire [3:0] d, output reg [3:0] q);
  always @(posedge clk) q <= d + 4'd1;
endmodule
module top(input wire clk, input wire [3:0] p, input wire [3:0] q,
           output wire [3:0] o1, output wire [3:0] o2);
  xorblk x0(.a(p), .b(q), .y(o1));
  regblk r0(.clk(clk), .d(p), .q(o2));
endmodule
"#;

    fn verified_flow(wrong_keys: usize) -> crate::flow::FlowOutcome {
        let d = Design::from_source("demo", SRC, None).expect("load");
        let cfg = AliceConfig {
            verify: true,
            verify_wrong_keys: wrong_keys,
            ..AliceConfig::cfg1()
        };
        Flow::new(cfg).run(&d).expect("flow")
    }

    #[test]
    fn correct_bitstream_proves_equivalent() {
        let out = verified_flow(0);
        let v = out.verify.as_ref().expect("verify ran");
        assert_eq!(v.outcome, VerifyOutcome::Equivalent, "{}", v.outcome);
        // o1/o2 output bits + 4 paired register next-states.
        assert!(v.diff_points >= 12, "got {}", v.diff_points);
        assert!(v.cnf_vars > 0 && v.cnf_clauses > 0);
    }

    #[test]
    fn wrong_keys_corrupt_outputs() {
        let out = verified_flow(3);
        let v = out.verify.as_ref().expect("verify ran");
        assert!(v.outcome.is_equivalent());
        assert_eq!(v.wrong_keys.len(), 3);
        let frac = v.corruption_fraction().expect("sweep ran");
        assert!(frac > 0.0, "wrong keys must corrupt something");
        for wk in &v.wrong_keys {
            assert!(wk.complete, "tiny design must analyse exactly");
            assert!(!wk.flipped.is_empty());
        }
    }

    #[test]
    fn verify_is_opt_in() {
        let d = Design::from_source("demo", SRC, None).expect("load");
        let out = Flow::new(AliceConfig::cfg1()).run(&d).expect("flow");
        assert!(out.verify.is_none());
    }

    #[test]
    fn store_backed_verify_skips_reproving() {
        let dir = std::env::temp_dir().join(format!(
            "alice-verify-cache-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let d = Design::from_source("demo", SRC, None).expect("load");
        let cfg = AliceConfig {
            verify: true,
            verify_wrong_keys: 2,
            store: Some(dir.clone()),
            ..AliceConfig::cfg1()
        };
        let first = Flow::new(cfg.clone()).run(&d).expect("flow");
        let v1 = first.verify.clone().expect("verify ran");
        assert!(v1.outcome.is_equivalent());
        // A fresh flow over the same store models a second process: the
        // proof and both complete wrong-key analyses come from disk.
        let flow = Flow::new(cfg);
        let before = flow.db().counts();
        let second = flow.run(&d).expect("flow");
        let window = flow.db().counts().since(before);
        let v2 = second.verify.expect("verify ran");
        assert_eq!(v2.outcome, v1.outcome);
        assert_eq!(v2.diff_points, v1.diff_points);
        assert_eq!(v2.cnf_vars, v1.cnf_vars);
        assert_eq!(v2.cnf_clauses, v1.cnf_clauses);
        assert_eq!(v2.wrong_keys, v1.wrong_keys);
        assert_eq!(window.misses, 0, "nothing recomputed on the warm run");
        assert!(
            window.disk_hits >= 3,
            "proof + 2 wrong keys served from disk, got {}",
            window.disk_hits
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_design_is_caught() {
        // Sabotage the redacted output after the fact: flip one cfg pin
        // in the binding so the "correct" bitstream is wrong.
        let d = Design::from_source("demo", SRC, None).expect("load");
        let cfg = AliceConfig {
            verify: true,
            ..AliceConfig::cfg1()
        };
        let out = Flow::new(cfg.clone()).run(&d).expect("flow");
        let mut redacted = out.redacted.clone().expect("redacted");
        let bind = &mut redacted.efpgas[0].binding;
        let key = bind.key_bits[0];
        bind.cfg_pins[key].1 = !bind.cfg_pins[key].1;
        let report = verify_redaction(&d, &redacted, &cfg, &DesignDb::new()).expect("check runs");
        match report.outcome {
            VerifyOutcome::NotEquivalent(cex) => assert!(!cex.diffs.is_empty()),
            other => panic!("sabotage must be caught, got {other}"),
        }
    }
}
