//! The staged pipeline behind [`Flow`](crate::flow::Flow).
//!
//! Figure 3's four phases are modelled as [`Stage`] implementations —
//! [`FilterStage`] (Algorithm 1, timed together with dataflow analysis as
//! in the paper), [`ClusterStage`] (Algorithm 2), [`SelectStage`]
//! (Algorithm 3, the parallel hot path), and [`RedactStage`] — followed
//! by the opt-in [`VerifyStage`] (SAT equivalence proof of the redacted
//! output, `AliceConfig::verify`) — run in order over a shared
//! [`FlowContext`]. [`run_stage`] wraps each run with wall-clock timing
//! and an item counter, accumulating a [`PhaseTimings`] record that the
//! flow report is derived from; no stage or driver keeps ad-hoc
//! `Instant` pairs.

use crate::cluster::{identify_clusters, ClusterResult};
use crate::config::AliceConfig;
use crate::db::DesignDb;
use crate::design::Design;
use crate::error::AliceError;
use crate::filter::{filter_modules, FilterResult};
use crate::redact::{redact, RedactedDesign};
use crate::select::{select_efpgas, SelectionResult};
use crate::verify::{verify_redaction, VerifyReport};
use std::time::{Duration, Instant};

/// Mutable state threaded through the pipeline: the immutable inputs plus
/// each phase's artifact, filled in as its stage runs.
#[derive(Debug)]
pub struct FlowContext<'a> {
    /// The design under redaction.
    pub design: &'a Design,
    /// The run configuration.
    pub cfg: &'a AliceConfig,
    /// The shared characterization cache (possibly long-lived, shared
    /// across runs; see [`DesignDb`]).
    pub db: &'a DesignDb,
    /// Output cones and instance scoring (set by [`FilterStage`]).
    pub dataflow: Option<alice_dataflow::DesignDataflow>,
    /// Algorithm 1 output (set by [`FilterStage`]).
    pub filter: Option<FilterResult>,
    /// Algorithm 2 output (set by [`ClusterStage`]).
    pub clusters: Option<ClusterResult>,
    /// Algorithm 3 output (set by [`SelectStage`]).
    pub selection: Option<SelectionResult>,
    /// The redacted design, when a solution exists (set by
    /// [`RedactStage`]).
    pub redacted: Option<RedactedDesign>,
    /// Equivalence-check report (set by [`VerifyStage`] when
    /// [`AliceConfig::verify`] is on and a redacted design exists).
    pub verify: Option<VerifyReport>,
}

impl<'a> FlowContext<'a> {
    /// A fresh context with no phase artifacts.
    pub fn new(design: &'a Design, cfg: &'a AliceConfig, db: &'a DesignDb) -> Self {
        FlowContext {
            design,
            cfg,
            db,
            dataflow: None,
            filter: None,
            clusters: None,
            selection: None,
            redacted: None,
            verify: None,
        }
    }

    /// The candidate list `R`, empty before filtering ran.
    pub fn candidates(&self) -> &[crate::filter::Candidate] {
        self.filter
            .as_ref()
            .map(|f| f.candidates.as_slice())
            .unwrap_or(&[])
    }
}

/// One phase of the pipeline.
pub trait Stage {
    /// Stable stage name, used as the [`PhaseTimings`] key.
    fn name(&self) -> &'static str;

    /// Runs the phase, reading earlier artifacts from `cx` and writing
    /// its own.
    ///
    /// # Errors
    ///
    /// Returns [`AliceError`] on analysis failure; infeasibility (no
    /// candidates, no solution) is *not* an error.
    fn run(&self, cx: &mut FlowContext<'_>) -> Result<(), AliceError>;

    /// How many items the phase produced (|R|, |C|, |F|, #eFPGAs) —
    /// the counter recorded next to the stage's wall-clock time.
    fn items(&self, cx: &FlowContext<'_>) -> usize;
}

/// Phase 1: dataflow analysis + module filtering (Algorithm 1). The two
/// are one stage because the paper's Table 2 accounts them together.
pub struct FilterStage;

/// [`FilterStage`]'s timing key.
pub const FILTER: &str = "filter";

impl Stage for FilterStage {
    fn name(&self) -> &'static str {
        FILTER
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<(), AliceError> {
        let dataflow = alice_dataflow::analyze(&cx.design.file, cx.design.hierarchy.top.as_str())
            .map_err(|e| AliceError::Dataflow(e.to_string()))?;
        cx.filter = Some(filter_modules(cx.design, &dataflow, cx.cfg)?);
        cx.dataflow = Some(dataflow);
        Ok(())
    }

    fn items(&self, cx: &FlowContext<'_>) -> usize {
        cx.candidates().len()
    }
}

/// Phase 2: cluster identification (Algorithm 2).
pub struct ClusterStage;

/// [`ClusterStage`]'s timing key.
pub const CLUSTER: &str = "cluster";

impl Stage for ClusterStage {
    fn name(&self) -> &'static str {
        CLUSTER
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<(), AliceError> {
        cx.clusters = Some(identify_clusters(cx.candidates(), &cx.design.paths, cx.cfg));
        Ok(())
    }

    fn items(&self, cx: &FlowContext<'_>) -> usize {
        cx.clusters.as_ref().map(|c| c.clusters.len()).unwrap_or(0)
    }
}

/// Phase 3: parallel fabric characterization + selection (Algorithm 3).
pub struct SelectStage;

/// [`SelectStage`]'s timing key.
pub const SELECT: &str = "select";

impl Stage for SelectStage {
    fn name(&self) -> &'static str {
        SELECT
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<(), AliceError> {
        let clusters = cx
            .clusters
            .as_ref()
            .map(|c| c.clusters.as_slice())
            .unwrap_or(&[]);
        let selection = select_efpgas(cx.design, cx.candidates(), clusters, cx.cfg, cx.db)?;
        cx.selection = Some(selection);
        Ok(())
    }

    fn items(&self, cx: &FlowContext<'_>) -> usize {
        cx.selection.as_ref().map(|s| s.valid.len()).unwrap_or(0)
    }
}

/// Phase 4: redacted-design generation. A selection without a solution
/// makes this a no-op (the outcome simply has no redacted design).
pub struct RedactStage;

/// [`RedactStage`]'s timing key.
pub const REDACT: &str = "redact";

impl Stage for RedactStage {
    fn name(&self) -> &'static str {
        REDACT
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<(), AliceError> {
        let Some(selection) = cx.selection.as_ref() else {
            return Ok(());
        };
        if selection.best.is_some() {
            cx.redacted = Some(redact(
                cx.design,
                cx.candidates(),
                selection,
                cx.cfg,
                cx.db,
            )?);
        }
        Ok(())
    }

    fn items(&self, cx: &FlowContext<'_>) -> usize {
        cx.redacted.as_ref().map(|r| r.efpgas.len()).unwrap_or(0)
    }
}

/// Phase 5 (opt-in): SAT equivalence check of the redacted output
/// against the original design, plus the wrong-key corruptibility sweep.
/// A no-op unless [`AliceConfig::verify`] is set and a redacted design
/// exists.
pub struct VerifyStage;

/// [`VerifyStage`]'s timing key.
pub const VERIFY: &str = "verify";

impl Stage for VerifyStage {
    fn name(&self) -> &'static str {
        VERIFY
    }

    fn run(&self, cx: &mut FlowContext<'_>) -> Result<(), AliceError> {
        if !cx.cfg.verify {
            return Ok(());
        }
        let Some(redacted) = cx.redacted.as_ref() else {
            return Ok(());
        };
        cx.verify = Some(verify_redaction(cx.design, redacted, cx.cfg, cx.db)?);
        Ok(())
    }

    fn items(&self, cx: &FlowContext<'_>) -> usize {
        cx.verify.as_ref().map(|v| v.diff_points).unwrap_or(0)
    }
}

/// One stage's instrumentation record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageRecord {
    /// Stage name ([`FILTER`], [`CLUSTER`], [`SELECT`], [`REDACT`]).
    pub name: &'static str,
    /// Wall-clock time of the stage's `run`.
    pub duration: Duration,
    /// The stage's item counter after it ran.
    pub items: usize,
}

/// Per-stage wall-clock timings and counters for one flow run — the
/// single source the flow report's time columns are derived from.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Records in execution order.
    pub records: Vec<StageRecord>,
}

impl PhaseTimings {
    /// The recorded duration of `name` (zero when the stage never ran).
    pub fn duration_of(&self, name: &str) -> Duration {
        self.records
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.duration)
            .unwrap_or(Duration::ZERO)
    }

    /// The recorded item counter of `name` (zero when the stage never
    /// ran).
    pub fn items_of(&self, name: &str) -> usize {
        self.records
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.items)
            .unwrap_or(0)
    }

    /// Total wall-clock time across all recorded stages.
    pub fn total(&self) -> Duration {
        self.records.iter().map(|r| r.duration).sum()
    }
}

/// Observability: wall-clock per pipeline stage, in microseconds.
static STAGE_US: alice_obs::Histogram = alice_obs::Histogram::new(
    "alice_stage_duration_us",
    "Wall-clock per pipeline stage (µs)",
);

/// The trace-lane span name for a stage: `stage.` + [`Stage::name`].
/// Static so flame-view aggregation groups by stage across runs.
pub fn stage_span_name(name: &str) -> &'static str {
    match name {
        "filter" => "stage.filter",
        "cluster" => "stage.cluster",
        "select" => "stage.select",
        "redact" => "stage.redact",
        "verify" => "stage.verify",
        _ => "stage.other",
    }
}

/// Runs one stage, appending its timing/counter record to `timings`.
///
/// # Errors
///
/// Propagates the stage's [`AliceError`]; nothing is recorded for a
/// failed stage.
pub fn run_stage(
    stage: &dyn Stage,
    cx: &mut FlowContext<'_>,
    timings: &mut PhaseTimings,
) -> Result<(), AliceError> {
    let _span = alice_obs::span(stage_span_name(stage.name()));
    let start = Instant::now();
    stage.run(cx)?;
    let duration = start.elapsed();
    STAGE_US.observe_duration(duration);
    timings.records.push(StageRecord {
        name: stage.name(),
        duration,
        items: stage.items(cx),
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "
module inv(input wire [3:0] a, output wire [3:0] y); assign y = ~a; endmodule
module top(input wire [3:0] a, output wire [3:0] y);
  inv u0(.a(a), .y(y));
endmodule";

    #[test]
    fn stages_fill_the_context_in_order() {
        let design = Design::from_source("demo", SRC, None).expect("load");
        let cfg = AliceConfig {
            verify: true,
            ..AliceConfig::cfg1()
        };
        let db = DesignDb::new();
        let mut cx = FlowContext::new(&design, &cfg, &db);
        let mut timings = PhaseTimings::default();
        let stages: [&dyn Stage; 5] = [
            &FilterStage,
            &ClusterStage,
            &SelectStage,
            &RedactStage,
            &VerifyStage,
        ];
        for stage in stages {
            run_stage(stage, &mut cx, &mut timings).expect("stage");
        }
        assert!(cx.filter.is_some());
        assert!(cx.clusters.is_some());
        assert!(cx.selection.is_some());
        assert!(cx.redacted.is_some());
        assert!(cx.verify.is_some());
        let names: Vec<&str> = timings.records.iter().map(|r| r.name).collect();
        assert_eq!(names, vec![FILTER, CLUSTER, SELECT, REDACT, VERIFY]);
        assert_eq!(timings.items_of(FILTER), 1);
        assert_eq!(timings.items_of(REDACT), 1);
        assert!(timings.items_of(VERIFY) >= 4, "output bits compared");
        assert!(timings.total() >= timings.duration_of(SELECT));
    }

    #[test]
    fn verify_stage_is_a_noop_when_disabled() {
        let design = Design::from_source("demo", SRC, None).expect("load");
        let cfg = AliceConfig::cfg1();
        let db = DesignDb::new();
        let mut cx = FlowContext::new(&design, &cfg, &db);
        let mut timings = PhaseTimings::default();
        for stage in crate::flow::Flow::stages() {
            run_stage(stage, &mut cx, &mut timings).expect("stage");
        }
        assert!(cx.verify.is_none());
        assert_eq!(timings.items_of(VERIFY), 0);
    }

    #[test]
    fn timings_default_to_zero_for_unrun_stages() {
        let t = PhaseTimings::default();
        assert_eq!(t.duration_of(SELECT), Duration::ZERO);
        assert_eq!(t.items_of(REDACT), 0);
        assert_eq!(t.total(), Duration::ZERO);
    }
}
