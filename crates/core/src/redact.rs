//! Redacted-design generation (§6, last paragraph of the paper).
//!
//! Replaces the selected instances with eFPGA instances:
//!
//! * the insertion point of each eFPGA is the lowest common dominator of
//!   its members in the instance hierarchy (single-parent clusters insert
//!   in place),
//! * member signals are re-routed to the fabric's GPIO ports; when
//!   members live in different sub-modules, new ports are punched through
//!   the intermediate modules (which are uniquified first so unrelated
//!   instances of the same module stay untouched),
//! * the configuration-chain controls (`cfg_clk`, `cfg_en`, per-fabric
//!   `cfg_in`/`cfg_out`) are propagated to the top module,
//! * the fabric netlists are emitted separately; their bitstreams are the
//!   secret and never appear in the ASIC-bound output.

use crate::config::AliceConfig;
use crate::db::DesignDb;
use crate::design::Design;
use crate::error::AliceError;
use crate::filter::Candidate;
use crate::select::{sanitize, ClusterMapper, SelectionResult};
use alice_fabric::emit::{
    cfg_bit_name, config_stream, fabric_netlist, ff_bit_name, le_configs, le_path, le_primitive,
};
use alice_fabric::{Bitstream, FabricSize};
use alice_intern::{HierPath, PathTree, Symbol};
use alice_verilog::ast::*;
use alice_verilog::hierarchy::const_eval;
use alice_verilog::print_source;
use std::collections::BTreeMap;

/// One deployed eFPGA in the redacted design.
#[derive(Debug, Clone)]
pub struct RedactedEfpga {
    /// Fabric module name, e.g. `alice_efpga0_4x4` (interned).
    pub module_name: Symbol,
    /// Fabric size.
    pub size: FabricSize,
    /// Redacted instance paths (typed hierarchical paths).
    pub instances: Vec<HierPath>,
    /// Full fabric bitstream (the secret; includes routing bits).
    pub bitstream: Bitstream,
    /// Serial stream for the emitted netlist's config chain.
    pub config_stream: Vec<bool>,
    /// Hierarchy path where the fabric was inserted.
    pub insertion_point: HierPath,
    /// Bitstream/state binding for equivalence checking.
    pub binding: VerifyBinding,
}

/// How a deployed fabric's elaborated state maps back onto the original
/// design — the glue between [`alice_fabric::emit::le_configs`] and the
/// CEC miter's name-based pairing.
#[derive(Debug, Clone, Default)]
pub struct VerifyBinding {
    /// Configuration-register pins: hierarchical DFF bit name in the
    /// *redacted* elaboration (e.g. `top.u_alice_efpga0.le3.cfg[7]`) →
    /// the value the correct bitstream loads there.
    pub cfg_pins: Vec<(Symbol, bool)>,
    /// Fabric FF → original register: hierarchical DFF name in the
    /// redacted elaboration (`…le3.ff[0]`) → the original design's
    /// register-bit name it replaces (e.g. `top.u_rega.q[2]`).
    pub state_map: Vec<(Symbol, Symbol)>,
    /// Indices into `cfg_pins` of *meaningful* key bits: truth-table bits
    /// at input patterns the configured LUT can actually see. Wrong-key
    /// sweeps flip these (flipping padding bits would prove nothing).
    pub key_bits: Vec<usize>,
}

/// The output of the redaction phase.
#[derive(Debug, Clone)]
pub struct RedactedDesign {
    /// The modified design (Top ASIC module of Figure 3), fabric modules
    /// *not* included.
    pub top_asic: SourceFile,
    /// Verilog for the fabrics (LE primitive + one module per eFPGA).
    pub fabric_verilog: String,
    /// Per-eFPGA records.
    pub efpgas: Vec<RedactedEfpga>,
}

impl RedactedDesign {
    /// The redacted design as Verilog text.
    pub fn top_asic_verilog(&self) -> String {
        print_source(&self.top_asic)
    }

    /// Everything needed for simulation: redacted design + fabrics.
    pub fn combined_verilog(&self) -> String {
        format!("{}\n{}", self.top_asic_verilog(), self.fabric_verilog)
    }
}

/// Per-member port rerouting record.
#[derive(Debug, Clone)]
struct PunchPort {
    /// Unique signal name (`{sanitized_member_path}_{port}`).
    name: String,
    /// Direction *at the fabric*: `Input` = toward the fabric.
    fabric_dir: Direction,
    width: u32,
    /// The redacted member instance this signal reroutes.
    member_path: HierPath,
    /// The member's port the signal replaces.
    member_port: Symbol,
}

/// Applies the best solution of `selection` to the design.
///
/// # Errors
///
/// Returns [`AliceError::NoSolution`] when the selection found nothing.
pub fn redact(
    design: &Design,
    r: &[Candidate],
    selection: &SelectionResult,
    cfg: &AliceConfig,
    db: &DesignDb,
) -> Result<RedactedDesign, AliceError> {
    let best = selection.best.as_ref().ok_or(AliceError::NoSolution)?;
    let mut file = design.file.clone();
    let mut fabric_verilog = le_primitive();
    let mut efpgas = Vec::new();
    let mut mapper = ClusterMapper::new(design, cfg.arch.lut_inputs, db);
    let mut uniq_counter = 0usize;

    for (e_idx, &vi) in best.efpgas.iter().enumerate() {
        let chosen = &selection.valid[vi];
        let members: Vec<HierPath> = chosen.cluster.iter().map(|&i| r[i].path).collect();
        // Re-map the cluster to regenerate netlist + streams.
        let network = mapper
            .cluster_network(&chosen.cluster, r)
            .map_err(|e| AliceError::Map(e.to_string()))?;
        let fabric_mod = Symbol::intern(&format!("alice_efpga{e_idx}_{}", chosen.efpga.size));
        fabric_verilog.push('\n');
        fabric_verilog.push_str(&fabric_netlist(
            fabric_mod.as_str(),
            &network,
            &chosen.efpga.packing,
            &cfg.arch,
            chosen.efpga.size,
        ));
        let stream = config_stream(&network, &chosen.efpga.packing);

        // Punch list: every member port becomes a uniquely-named signal.
        let mut punches: Vec<PunchPort> = Vec::new();
        for &m in &members {
            let module = design
                .module_of(m)
                .ok_or_else(|| AliceError::Inconsistent(format!("no module for {m}")))?;
            let mdef = design
                .file
                .module(module.as_str())
                .ok_or_else(|| AliceError::Inconsistent(format!("no def for {module}")))?;
            for p in &mdef.ports {
                let width = port_width_of(mdef, p)
                    .ok_or_else(|| AliceError::Inconsistent(format!("width of {}", p.name)))?;
                punches.push(PunchPort {
                    name: format!("{}_{}", sanitize(m.as_str()), p.name),
                    fabric_dir: match p.dir {
                        Direction::Input => Direction::Input,
                        Direction::Output | Direction::Inout => Direction::Output,
                    },
                    width,
                    member_path: m,
                    member_port: Symbol::intern(&p.name),
                });
            }
        }

        let lca = common_parent(&design.paths, &members);
        let inst_name = format!("u_alice_efpga{e_idx}");
        let binding = build_binding(
            &mut mapper,
            &chosen.cluster,
            r,
            &network,
            &chosen.efpga.packing,
            lca.join(&inst_name),
        )?;
        rewrite_tree(
            &mut file,
            design,
            lca,
            &members,
            &punches,
            fabric_mod,
            &inst_name,
            e_idx,
            &mut uniq_counter,
        )?;
        // Propagate config pins from the LCA up to the top.
        punch_cfg_up(&mut file, design, lca, e_idx)?;

        efpgas.push(RedactedEfpga {
            module_name: fabric_mod,
            size: chosen.efpga.size,
            instances: members,
            bitstream: chosen.efpga.bitstream.clone(),
            config_stream: stream,
            insertion_point: lca,
            binding,
        });
    }
    Ok(RedactedDesign {
        top_asic: file,
        fabric_verilog,
        efpgas,
    })
}

/// Builds the [`VerifyBinding`] for one deployed fabric: resolves each
/// emitted LE's configuration ([`le_configs`]) to the hierarchical
/// `cfg`-register names of the redacted elaboration (via the emitter's
/// own naming contract — [`le_path`]/[`cfg_bit_name`]/[`ff_bit_name`]),
/// and pairs each FF-hosting LE with the original register bit it
/// replaces.
fn build_binding(
    mapper: &mut ClusterMapper<'_>,
    cluster: &crate::cluster::Cluster,
    r: &[Candidate],
    network: &alice_netlist::lutmap::MappedNetlist,
    packing: &alice_fabric::pack::Packing,
    inst_path: HierPath,
) -> Result<VerifyBinding, AliceError> {
    // Original-design register names for the merged cluster's DFFs, in
    // the same member-by-member order the merge concatenated them.
    let mut orig_dff_names: Vec<Symbol> = Vec::new();
    for &ci in cluster.iter() {
        let module = r[ci].module;
        let mm = mapper.module(module)?;
        for local in &mm.dff_names {
            // Standalone elaboration names registers `{module}.{reg}[{b}]`;
            // in the full design that instance lives at the member path.
            let local = local.as_str();
            let rest = local.strip_prefix(&format!("{module}.")).unwrap_or(local);
            orig_dff_names.push(r[ci].path.join(rest).symbol());
        }
    }
    if orig_dff_names.len() != network.dffs.len() {
        return Err(AliceError::Inconsistent(format!(
            "cluster DFF name count {} != merged DFF count {}",
            orig_dff_names.len(),
            network.dffs.len()
        )));
    }
    let mut binding = VerifyBinding::default();
    for (i, lc) in le_configs(network, packing).iter().enumerate() {
        let le = le_path(inst_path, i);
        let pin_base = binding.cfg_pins.len();
        for (b, &v) in lc.cfg_bits().iter().enumerate() {
            binding.cfg_pins.push((cfg_bit_name(le, b), v));
        }
        if let Some(l) = lc.lut {
            // Only patterns the wired inputs can reach are real key bits.
            let patterns = (1usize << network.luts[l].inputs.len()).min(16);
            binding.key_bits.extend((0..patterns).map(|p| pin_base + p));
        }
        if let Some(d) = lc.dff {
            binding.state_map.push((ff_bit_name(le), orig_dff_names[d]));
        }
    }
    Ok(binding)
}

/// Constant port width with the module's default parameters.
fn port_width_of(m: &Module, p: &Port) -> Option<u32> {
    let mut env = BTreeMap::new();
    for par in &m.params {
        env.insert(par.name.clone(), const_eval(&par.value, &env)?);
    }
    match &p.range {
        None => Some(1),
        Some(r) => {
            let msb = const_eval(&r.msb, &env)?;
            let lsb = const_eval(&r.lsb, &env)?;
            Some((msb - lsb).unsigned_abs() as u32 + 1)
        }
    }
}

/// Lowest common ancestor of the members' parents, walked on the
/// design's instance [`PathTree`] via [`PathTree::common_parent`]
/// (ancestor queries follow real hierarchy edges, so no string
/// inspection happens at all). The caller guarantees a non-empty member
/// set — a selected cluster always has members.
fn common_parent(paths: &PathTree, members: &[HierPath]) -> HierPath {
    paths
        .common_parent(members)
        .expect("a selected cluster has at least one member")
}

/// Direction of a punched signal as a port of a module *below* the LCA:
/// signals toward the fabric flow up (outputs), signals from the fabric
/// flow down (inputs).
fn punched_port_dir(fabric_dir: Direction) -> Direction {
    match fabric_dir {
        Direction::Input => Direction::Output,
        _ => Direction::Input,
    }
}

/// Rewrites the subtree rooted at `lca`: removes member instances, punches
/// their ports up to the LCA, and instantiates the fabric there. Modules
/// below the LCA on affected routes are uniquified.
#[allow(clippy::too_many_arguments)]
fn rewrite_tree(
    file: &mut SourceFile,
    design: &Design,
    lca: HierPath,
    members: &[HierPath],
    punches: &[PunchPort],
    fabric_mod: Symbol,
    fabric_inst: &str,
    e_idx: usize,
    uniq_counter: &mut usize,
) -> Result<(), AliceError> {
    // Recursive rewrite; returns the punched ports this node exposes.
    #[allow(clippy::too_many_arguments)]
    fn go(
        file: &mut SourceFile,
        design: &Design,
        node_path: HierPath,
        node_module: &str,
        members: &[HierPath],
        punches: &[PunchPort],
        is_lca: bool,
        fabric_mod: Symbol,
        fabric_inst: &str,
        e_idx: usize,
        uniq_counter: &mut usize,
    ) -> Result<(String, Vec<PunchPort>), AliceError> {
        let mdef = file
            .module(node_module)
            .ok_or_else(|| AliceError::Inconsistent(format!("missing module {node_module}")))?
            .clone();
        let mut new = mdef.clone();
        // Uniquify everything below the top (the top has a single instance).
        let new_name = if is_lca && node_path.symbol() == design.hierarchy.top {
            mdef.name.clone()
        } else {
            *uniq_counter += 1;
            format!("{}_rdt{}", mdef.name, *uniq_counter)
        };
        new.name = new_name.clone();

        let mut exposed: Vec<PunchPort> = Vec::new();
        // Fabric connections available at this node (LCA only).
        let mut fabric_conns: Vec<(String, Option<Expr>)> = Vec::new();

        let mut new_items: Vec<Item> = Vec::new();
        let old_items = std::mem::take(&mut new.items);
        for item in old_items {
            let Item::Instance(inst) = item else {
                new_items.push(item);
                continue;
            };
            let child_path = node_path.join(&inst.name);
            if members.contains(&child_path) {
                // Remove this member; its connections feed the punch list.
                let child_mod = design
                    .file
                    .module(&inst.module)
                    .ok_or_else(|| AliceError::Inconsistent(format!("missing {}", inst.module)))?;
                let conns = normalize(child_mod, &inst);
                for pp in punches.iter().filter(|p| p.member_path == child_path) {
                    let conn = conns
                        .iter()
                        .find(|(n, _)| pp.member_port == n.as_str())
                        .and_then(|(_, e)| e.clone());
                    match pp.fabric_dir {
                        Direction::Input => {
                            // Design value flows to the fabric.
                            let expr = conn.unwrap_or_else(|| Expr::sized(0, pp.width));
                            if is_lca {
                                fabric_conns.push((pp.name.clone(), Some(expr)));
                            } else {
                                // Expose as an output port driven here.
                                new_items.push(Item::Assign(Assign {
                                    lhs: LValue::Id(pp.name.clone()),
                                    rhs: expr,
                                }));
                                exposed.push(pp.clone());
                            }
                        }
                        _ => {
                            // Fabric drives the design.
                            match conn {
                                None => {
                                    if is_lca {
                                        fabric_conns.push((pp.name.clone(), None));
                                    } else {
                                        exposed.push(pp.clone());
                                    }
                                }
                                Some(expr) => {
                                    let lv = expr_to_lvalue(&expr).ok_or_else(|| {
                                        AliceError::Inconsistent(format!(
                                            "output `{}` of {} connects to a non-lvalue",
                                            pp.member_port, child_path
                                        ))
                                    })?;
                                    if is_lca {
                                        // Connect the fabric output port
                                        // straight to the member's old
                                        // target expression, exactly like
                                        // the removed instance did. (A
                                        // wire + assign indirection here
                                        // breaks feedback-through-instance
                                        // elaboration: instance outputs
                                        // are stored eagerly, assigns are
                                        // not.)
                                        let _ = lv;
                                        fabric_conns.push((pp.name.clone(), Some(expr)));
                                    } else {
                                        new_items.push(Item::Assign(Assign {
                                            lhs: lv,
                                            rhs: Expr::id(pp.name.clone()),
                                        }));
                                        exposed.push(pp.clone());
                                    }
                                }
                            }
                        }
                    }
                }
                continue; // instance removed
            }
            // Does this child's subtree contain members?
            let has_members = members.iter().any(|&m| child_path.is_ancestor_of(m));
            if !has_members {
                new_items.push(Item::Instance(inst));
                continue;
            }
            // Recurse into the child and rewire its punched ports.
            let (child_new_mod, child_ports) = go(
                file,
                design,
                child_path,
                &inst.module,
                members,
                punches,
                false,
                fabric_mod,
                fabric_inst,
                e_idx,
                uniq_counter,
            )?;
            let child_def = design
                .file
                .module(&inst.module)
                .expect("existed for recursion");
            let mut conns = normalize(child_def, &inst);
            for pp in &child_ports {
                if is_lca {
                    // Local wire between child port and fabric port.
                    new_items.push(Item::Net(NetDecl {
                        kind: NetKind::Wire,
                        name: pp.name.clone(),
                        range: range_of(pp.width),
                        init: None,
                    }));
                    fabric_conns.push((pp.name.clone(), Some(Expr::id(&pp.name))));
                    conns.push((pp.name.clone(), Some(Expr::id(&pp.name))));
                } else {
                    // Pass straight through.
                    conns.push((pp.name.clone(), Some(Expr::id(&pp.name))));
                    exposed.push(pp.clone());
                }
            }
            new_items.push(Item::Instance(Instance {
                module: child_new_mod,
                name: inst.name,
                params: inst.params,
                conns: PortConns::Named(conns),
            }));
        }

        // Expose punched ports on this module (below the LCA).
        for pp in &exposed {
            new.ports.push(Port {
                dir: punched_port_dir(pp.fabric_dir),
                is_reg: false,
                name: pp.name.clone(),
                range: range_of(pp.width),
            });
        }

        if is_lca {
            // Configuration pins and the fabric instance.
            new.ports.push(Port {
                dir: Direction::Input,
                is_reg: false,
                name: "cfg_clk".into(),
                range: None,
            });
            new.ports.push(Port {
                dir: Direction::Input,
                is_reg: false,
                name: "cfg_en".into(),
                range: None,
            });
            new.ports.push(Port {
                dir: Direction::Input,
                is_reg: false,
                name: format!("cfg_in_e{e_idx}"),
                range: None,
            });
            new.ports.push(Port {
                dir: Direction::Output,
                is_reg: false,
                name: format!("cfg_out_e{e_idx}"),
                range: None,
            });
            // De-duplicate cfg_clk/cfg_en if a previous eFPGA added them.
            dedup_ports(&mut new);
            let mut conns: Vec<(String, Option<Expr>)> = vec![
                ("cfg_clk".into(), Some(Expr::id("cfg_clk"))),
                ("cfg_en".into(), Some(Expr::id("cfg_en"))),
                ("cfg_in".into(), Some(Expr::id(format!("cfg_in_e{e_idx}")))),
                (
                    "cfg_out".into(),
                    Some(Expr::id(format!("cfg_out_e{e_idx}"))),
                ),
            ];
            // Fabric clock: reuse a redacted clock signal when one exists.
            let clk_conn = fabric_conns
                .iter()
                .find(|(n, _)| n.ends_with("_clk"))
                .and_then(|(_, e)| e.clone())
                .unwrap_or_else(|| Expr::id("cfg_clk"));
            conns.push(("clk".into(), Some(clk_conn)));
            conns.extend(fabric_conns);
            new_items.push(Item::Instance(Instance {
                module: fabric_mod.as_str().to_string(),
                name: fabric_inst.to_string(),
                params: vec![],
                conns: PortConns::Named(conns),
            }));
        }

        new.items = new_items;
        file.modules.push(new);
        Ok((new_name, exposed))
    }

    // Resolve the LCA's module name in the *current* (possibly already
    // rewritten) file: walk the hierarchy from the top following renamed
    // instances.
    let lca_module = resolve_module_at(file, design, lca)?;
    let (new_lca_mod, exposed) = go(
        file,
        design,
        lca,
        &lca_module,
        members,
        punches,
        true,
        fabric_mod,
        fabric_inst,
        e_idx,
        uniq_counter,
    )?;
    if !exposed.is_empty() {
        return Err(AliceError::Inconsistent(
            "LCA must not expose punched ports".into(),
        ));
    }
    // Re-point the instance referring to the old LCA module (if not top).
    if lca.symbol() != design.hierarchy.top {
        repoint_instance(file, design, lca, &new_lca_mod)?;
    } else {
        // Replace the top definition: the rewritten copy keeps the name, so
        // drop the stale original (the rewritten one was pushed last).
        let top_name = design.hierarchy.top.to_string();
        let last_idx = file.modules.len() - 1;
        let first_idx = file
            .modules
            .iter()
            .position(|m| m.name == top_name)
            .expect("top exists");
        if first_idx != last_idx {
            file.modules.swap_remove(first_idx);
        }
    }
    Ok(())
}

/// Follows the (possibly rewritten) hierarchy to find the module
/// implementing `path` in the current file.
fn resolve_module_at(
    file: &SourceFile,
    design: &Design,
    path: HierPath,
) -> Result<String, AliceError> {
    let mut cur = design.hierarchy.top.to_string();
    for seg in path.segments().skip(1) {
        let m = file
            .module(&cur)
            .ok_or_else(|| AliceError::Inconsistent(format!("missing module {cur}")))?;
        let inst = m
            .instances()
            .find(|i| i.name == seg)
            .ok_or_else(|| AliceError::Inconsistent(format!("no instance {seg} in {cur}")))?;
        cur = inst.module.clone();
    }
    Ok(cur)
}

/// Renames the module reference of the instance at `path` (and punches the
/// new cfg pins through every level above it).
fn repoint_instance(
    file: &mut SourceFile,
    design: &Design,
    path: HierPath,
    new_module: &str,
) -> Result<(), AliceError> {
    let parent_path = path
        .parent()
        .ok_or_else(|| AliceError::Inconsistent(format!("cannot repoint root {path}")))?;
    let parent_mod = resolve_module_at(file, design, parent_path)?;
    let pm = file
        .modules
        .iter_mut()
        .find(|m| m.name == parent_mod)
        .ok_or_else(|| AliceError::Inconsistent(format!("missing module {parent_mod}")))?;
    for item in &mut pm.items {
        if let Item::Instance(inst) = item {
            if inst.name == path.leaf() {
                inst.module = new_module.to_string();
                return Ok(());
            }
        }
    }
    Err(AliceError::Inconsistent(format!(
        "instance {path} not found for repointing"
    )))
}

/// Adds cfg passthroughs from the LCA's parent chain up to the top.
fn punch_cfg_up(
    file: &mut SourceFile,
    design: &Design,
    lca: HierPath,
    e_idx: usize,
) -> Result<(), AliceError> {
    if lca.symbol() == design.hierarchy.top {
        return Ok(());
    }
    // Walk from just above the LCA to the top: each step's holder is the
    // parent module and `child_inst` the instance the pins pass through.
    let mut cur = lca;
    while let Some(holder_path) = cur.parent() {
        let child_inst = cur.leaf();
        let holder_mod = resolve_module_at(file, design, holder_path)?;
        let hm = file
            .modules
            .iter_mut()
            .find(|m| m.name == holder_mod)
            .ok_or_else(|| AliceError::Inconsistent(format!("missing {holder_mod}")))?;
        for (name, dir) in [
            ("cfg_clk".to_string(), Direction::Input),
            ("cfg_en".to_string(), Direction::Input),
            (format!("cfg_in_e{e_idx}"), Direction::Input),
            (format!("cfg_out_e{e_idx}"), Direction::Output),
        ] {
            if hm.port(&name).is_none() {
                hm.ports.push(Port {
                    dir,
                    is_reg: false,
                    name: name.clone(),
                    range: None,
                });
            }
            for item in &mut hm.items {
                if let Item::Instance(inst) = item {
                    if inst.name == child_inst {
                        if let PortConns::Named(conns) = &mut inst.conns {
                            if !conns.iter().any(|(n, _)| *n == name) {
                                conns.push((name.clone(), Some(Expr::id(&name))));
                            }
                        }
                    }
                }
            }
        }
        cur = holder_path;
    }
    Ok(())
}

fn dedup_ports(m: &mut Module) {
    let mut seen = std::collections::BTreeSet::new();
    m.ports.retain(|p| seen.insert(p.name.clone()));
}

fn range_of(width: u32) -> Option<Range> {
    if width <= 1 {
        None
    } else {
        Some(Range {
            msb: Expr::num((width - 1) as u64),
            lsb: Expr::num(0),
        })
    }
}

fn normalize(child: &Module, inst: &Instance) -> Vec<(String, Option<Expr>)> {
    match &inst.conns {
        PortConns::Named(named) => named.clone(),
        PortConns::Ordered(exprs) => child
            .ports
            .iter()
            .zip(exprs.iter())
            .map(|(p, e)| (p.name.clone(), Some(e.clone())))
            .collect(),
    }
}

fn expr_to_lvalue(e: &Expr) -> Option<LValue> {
    match e {
        Expr::Id(s) => Some(LValue::Id(s.clone())),
        Expr::Bit(b, i) => match b.as_ref() {
            Expr::Id(s) => Some(LValue::Bit(s.clone(), (**i).clone())),
            _ => None,
        },
        Expr::Part(b, m, l) => match b.as_ref() {
            Expr::Id(s) => Some(LValue::Part(s.clone(), (**m).clone(), (**l).clone())),
            _ => None,
        },
        Expr::Concat(parts) => {
            let lvs: Option<Vec<LValue>> = parts.iter().map(expr_to_lvalue).collect();
            Some(LValue::Concat(lvs?))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::identify_clusters;
    use crate::filter::filter_modules;
    use crate::select::select_efpgas;

    const SRC: &str = r#"
module xorblk(input wire [3:0] a, input wire [3:0] b, output wire [3:0] y);
  assign y = a ^ b;
endmodule
module andblk(input wire [3:0] a, input wire [3:0] b, output wire [3:0] y);
  assign y = a & b;
endmodule
module top(input wire [3:0] p, input wire [3:0] q, output wire [3:0] o1, output wire [3:0] o2);
  xorblk x0(.a(p), .b(q), .y(o1));
  andblk a0(.a(p), .b(q), .y(o2));
endmodule
"#;

    fn run_redact(cfg: &AliceConfig) -> (Design, RedactedDesign) {
        let d = Design::from_source("t", SRC, None).expect("load");
        let db = crate::db::DesignDb::new();
        let df = alice_dataflow::analyze(&d.file, d.hierarchy.top.as_str()).expect("df");
        let r = filter_modules(&d, &df, cfg).expect("filter").candidates;
        let c = identify_clusters(&r, &d.paths, cfg).clusters;
        let sel = select_efpgas(&d, &r, &c, cfg, &db).expect("select");
        let rd = redact(&d, &r, &sel, cfg, &db).expect("redact");
        (d, rd)
    }

    #[test]
    fn redacted_design_parses_and_references_fabric() {
        let cfg = AliceConfig {
            max_io_pins: 64,
            max_efpgas: 1,
            ..AliceConfig::default()
        };
        let (_, rd) = run_redact(&cfg);
        assert_eq!(rd.efpgas.len(), 1);
        let combined = rd.combined_verilog();
        let parsed = alice_verilog::parse_source(&combined).expect("round trip");
        // The redacted top instantiates the fabric; the fabric module exists.
        let top = parsed.module("top").expect("top");
        let fab_inst = top
            .instances()
            .find(|i| i.module.starts_with("alice_efpga"))
            .expect("fabric instance");
        assert!(parsed.module(&fab_inst.module).is_some());
        // Config pins surface at the top.
        assert!(top.port("cfg_clk").is_some());
        assert!(top.port("cfg_in_e0").is_some());
    }

    #[test]
    fn redacted_members_are_gone() {
        let cfg = AliceConfig {
            max_io_pins: 64,
            max_efpgas: 2,
            ..AliceConfig::default()
        };
        let (_, rd) = run_redact(&cfg);
        let text = rd.top_asic_verilog();
        // The best solution with utilization reward includes the pair
        // cluster or both singles; either way original instances disappear.
        let parsed = alice_verilog::parse_source(&text).expect("parse");
        let top = parsed.module("top").expect("top");
        let remaining: Vec<&str> = top
            .instances()
            .map(|i| i.module.as_str())
            .filter(|m| *m == "xorblk" || *m == "andblk")
            .collect();
        let total_redacted: usize = rd.efpgas.iter().map(|e| e.instances.len()).sum();
        assert_eq!(remaining.len(), 2 - total_redacted.min(2));
    }

    #[test]
    fn common_parent_walks_tree_edges_not_prefixes() {
        let t = PathTree::from_paths(
            [
                "top.u1.core.s0",
                "top.u1.core.s1",
                "top.u2.core.s0",
                "top.a.x",
                "top.ab.y",
            ]
            .map(Symbol::intern),
        );
        let lca = |ms: &[&str]| {
            common_parent(
                &t,
                &ms.iter().map(|s| HierPath::intern(s)).collect::<Vec<_>>(),
            )
        };
        // Same parent: insert in place.
        assert_eq!(lca(&["top.u1.core.s0", "top.u1.core.s1"]), "top.u1.core");
        // Different subtrees: climb to the common dominator.
        assert_eq!(lca(&["top.u1.core.s0", "top.u2.core.s0"]), "top");
        // `top.a` is a textual prefix of `top.ab` but NOT an ancestor —
        // the tree walk cannot confuse them.
        assert_eq!(lca(&["top.a.x", "top.ab.y"]), "top");
        // Single member: its own parent.
        assert_eq!(lca(&["top.u2.core.s0"]), "top.u2.core");
    }

    #[test]
    fn secrets_stay_out_of_the_asic_output() {
        let cfg = AliceConfig {
            max_io_pins: 64,
            max_efpgas: 1,
            ..AliceConfig::default()
        };
        let (_, rd) = run_redact(&cfg);
        assert!(!rd.efpgas[0].config_stream.is_empty());
        // Neither output contains LUT INIT constants.
        assert!(!rd.top_asic_verilog().contains("16'h"));
        assert!(!rd.fabric_verilog.contains("16'h"));
    }
}
