//! Phase 3 — eFPGA characterization and selection (Algorithm 3).
//!
//! Every candidate cluster is pushed through the fabric oracle
//! ([`alice_fabric::create_efpga`]); valid implementations are scored with
//! Eq. 1, and a branch-and-bound enumeration finds all solutions (sets of
//! disjoint clusters, at most `max_efpgas` of them). The best solution is
//! the one maximizing the summed score.
//!
//! Characterization is the flow's dominant cost (the `select t` column of
//! Table 2), so it is sharded across [`AliceConfig::jobs`] scoped worker
//! threads: module LUT-mapping first (one task per distinct module), then
//! per-cluster merge + fabric sizing (one task per cluster). Workers pull
//! indices from a shared counter and results are reassembled in cluster
//! order, so the output is byte-identical for any thread count.

use crate::cluster::Cluster;
use crate::config::{AliceConfig, ScoreModel};
use crate::db::DesignDb;
use crate::design::Design;
use crate::error::AliceError;
use crate::filter::Candidate;
use crate::par::shard;
use alice_fabric::EfpgaImpl;
use alice_intern::Symbol;
use alice_netlist::lutmap::MappedNetlist;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// A cluster with a valid fabric implementation and its Eq. 1 score.
#[derive(Debug, Clone)]
pub struct ValidEfpga {
    /// The cluster (indices into `R`).
    pub cluster: Cluster,
    /// The fabric implementation returned by the oracle (shared with the
    /// [`DesignDb`] cache — a hit is a pointer copy, not a bitstream
    /// clone).
    pub efpga: Arc<EfpgaImpl>,
    /// Eq. 1 score (filled in once all fabrics are characterized).
    pub score: f64,
}

/// One enumerated solution: indices into the valid-eFPGA list.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Chosen eFPGA implementations.
    pub efpgas: Vec<usize>,
    /// Summed Eq. 1 score.
    pub score: f64,
}

/// The outcome of the selection phase.
#[derive(Debug, Clone, Default)]
pub struct SelectionResult {
    /// Characterized, valid fabric implementations (`F` in Algorithm 3).
    pub valid: Vec<ValidEfpga>,
    /// Clusters whose characterization failed (the "OpenFPGA returns an
    /// error" path of Algorithm 3), with the reason.
    pub failed: Vec<(Cluster, String)>,
    /// Number of solutions enumerated (`|S|` in Table 2).
    pub solutions: usize,
    /// The best solution, if any.
    pub best: Option<Solution>,
}

/// Maps each distinct module among the candidates to LUTs via the
/// [`DesignDb`] content-addressed cache (instances — and equal modules in
/// other designs — share the mapping).
///
/// The cluster's merged network is what the fabric oracle sizes; members
/// are independent, so the merge is a disjoint union (§6's synthetic top
/// that "instantiates all independent modules").
pub struct ClusterMapper<'a> {
    design: &'a Design,
    arch_k: u32,
    db: &'a DesignDb,
    cache: HashMap<Symbol, Arc<MappedNetlist>>,
}

impl<'a> ClusterMapper<'a> {
    /// Creates a mapper for the design, backed by `db`.
    pub fn new(design: &'a Design, lut_inputs: u32, db: &'a DesignDb) -> Self {
        ClusterMapper {
            design,
            arch_k: lut_inputs,
            db,
            cache: HashMap::new(),
        }
    }

    /// LUT-maps one module (memoized; instances share it).
    pub fn module(&mut self, module: Symbol) -> Result<&MappedNetlist, AliceError> {
        if !self.cache.contains_key(&module) {
            let mapped = self
                .db
                .map_module(&self.design.file, module.as_str(), self.arch_k)?;
            self.cache.insert(module, mapped);
        }
        Ok(&self.cache[&module])
    }

    /// Builds the merged network for a cluster, with instance-path
    /// prefixes keeping port names unique.
    pub fn cluster_network(
        &mut self,
        cluster: &Cluster,
        r: &[Candidate],
    ) -> Result<MappedNetlist, AliceError> {
        for &i in cluster {
            self.module(r[i].module)?;
        }
        let cache = &self.cache;
        build_cluster_network(|m| Ok(&cache[&m]), cluster, r)
    }
}

/// Pre-mapped module table shared read-only by characterization workers.
type ModuleCache = HashMap<Symbol, Result<Arc<MappedNetlist>, AliceError>>;

/// Builds a cluster's merged network from mapped modules supplied by
/// `lookup`, failing on the cluster's first unmappable member. The single
/// implementation behind both the memoized ([`ClusterMapper`]) and the
/// pre-mapped parallel paths, so their merge semantics cannot drift.
fn build_cluster_network<'a>(
    lookup: impl Fn(Symbol) -> Result<&'a MappedNetlist, AliceError>,
    cluster: &Cluster,
    r: &[Candidate],
) -> Result<MappedNetlist, AliceError> {
    let mut parts: Vec<MappedNetlist> = Vec::new();
    for &i in cluster {
        let cand = &r[i];
        parts.push(prefix_ports(
            lookup(cand.module)?,
            &sanitize(cand.path.as_str()),
        ));
    }
    Ok(merge(&parts))
}

/// [`build_cluster_network`] over the workers' pre-mapped module table.
fn cluster_network_cached(
    cache: &ModuleCache,
    cluster: &Cluster,
    r: &[Candidate],
) -> Result<MappedNetlist, AliceError> {
    build_cluster_network(
        |m| cache[&m].as_ref().map(Arc::as_ref).map_err(Clone::clone),
        cluster,
        r,
    )
}

/// Replaces `.` with `_` so hierarchical paths become legal identifiers.
pub fn sanitize(path: &str) -> String {
    path.replace('.', "_")
}

/// Prefixes every port name with `{prefix}_`.
fn prefix_ports(m: &MappedNetlist, prefix: &str) -> MappedNetlist {
    let pre = |n: &Symbol| Symbol::intern(&format!("{prefix}_{n}"));
    let mut out = m.clone();
    out.inputs = m.inputs.iter().map(|(n, b)| (pre(n), b.clone())).collect();
    out.outputs = m.outputs.iter().map(|(n, b)| (pre(n), b.clone())).collect();
    out.input_names = m.input_names.iter().map(pre).collect();
    out
}

/// Disjoint union of mapped networks (index spaces re-based).
pub fn merge(parts: &[MappedNetlist]) -> MappedNetlist {
    use alice_netlist::lutmap::MappedSrc;
    let mut out = MappedNetlist {
        name: "cluster".to_string(),
        k: parts.first().map(|p| p.k).unwrap_or(4),
        ..MappedNetlist::default()
    };
    for p in parts {
        let pi_base = out.input_names.len();
        let lut_base = out.luts.len();
        let dff_base = out.dffs.len();
        let shift = |s: &MappedSrc| -> MappedSrc {
            match s {
                MappedSrc::Const(b) => MappedSrc::Const(*b),
                MappedSrc::Pi(i) => MappedSrc::Pi(i + pi_base),
                MappedSrc::Lut(i) => MappedSrc::Lut(i + lut_base),
                MappedSrc::Dff(i) => MappedSrc::Dff(i + dff_base),
            }
        };
        out.input_names.extend(p.input_names.iter().copied());
        for (n, idxs) in &p.inputs {
            out.inputs
                .push((*n, idxs.iter().map(|i| i + pi_base).collect()));
        }
        for lut in &p.luts {
            out.luts.push(alice_netlist::lutmap::Lut {
                inputs: lut.inputs.iter().map(&shift).collect(),
                tt: lut.tt,
            });
        }
        for d in &p.dffs {
            out.dffs.push(alice_netlist::lutmap::MappedDff {
                d: shift(&d.d),
                init: d.init,
            });
        }
        out.dff_names.extend(p.dff_names.iter().copied());
        for (n, bits) in &p.outputs {
            out.outputs.push((*n, bits.iter().map(&shift).collect()));
        }
    }
    out
}

/// Eq. 1 of the paper.
///
/// `io`/`clb` are this fabric's utilizations; `max_io`/`max_clb` the maxima
/// over all characterized fabrics. The [`ScoreModel`] picks between the
/// formula as printed and the utilization-rewarding variant matching the
/// paper's prose (see DESIGN.md).
pub fn eq1_score(cfg: &AliceConfig, io: f64, clb: f64, max_io: f64, max_clb: f64) -> f64 {
    let (max_io, max_clb) = (max_io.max(1e-9), max_clb.max(1e-9));
    match cfg.score_model {
        ScoreModel::AsPrinted => {
            cfg.alpha * (max_io - io) / max_io + cfg.beta * (max_clb - clb) / max_clb
        }
        ScoreModel::UtilizationReward => cfg.alpha * io / max_io + cfg.beta * clb / max_clb,
    }
}

/// Runs Algorithm 3: characterize clusters, score, enumerate solutions.
///
/// Characterization is sharded over [`AliceConfig::jobs`] worker threads;
/// the result is identical for every thread count (see the module docs).
///
/// # Errors
///
/// This function currently always succeeds: clusters whose elaboration,
/// mapping, or fabric sizing fails are recorded in
/// [`SelectionResult::failed`] and dropped (they are simply not valid
/// implementations, mirroring OpenFPGA errors). The `Result` is kept for
/// staged-pipeline uniformity and future hard failures.
pub fn select_efpgas(
    design: &Design,
    r: &[Candidate],
    clusters: &[Cluster],
    cfg: &AliceConfig,
    db: &DesignDb,
) -> Result<SelectionResult, AliceError> {
    let jobs = cfg.effective_jobs();
    // LUT-map every distinct module once (instances share the mapping,
    // the DesignDb shares it across runs), one worker task per module,
    // deterministic order via BTreeSet.
    let modules: Vec<Symbol> = clusters
        .iter()
        .flat_map(|c| c.iter().map(|&i| r[i].module))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let cache: ModuleCache = shard(modules.len(), jobs, |m| {
        db.map_module(&design.file, modules[m].as_str(), cfg.arch.lut_inputs)
    })
    .into_iter()
    .enumerate()
    .map(|(m, res)| (modules[m], res))
    .collect();
    // Lines 2-7: characterize every cluster; keep the valid fabrics. A
    // cluster whose synthesis or sizing fails is simply not a valid
    // implementation ("OpenFPGA returns ... an error otherwise", §6).
    // Characterization goes through the DesignDb: same-shaped clusters
    // (equal name-free structural hash) share one fabric sizing.
    let characterized = shard(clusters.len(), jobs, |c| {
        let cluster = &clusters[c];
        let network = cluster_network_cached(&cache, cluster, r).map_err(|e| e.to_string())?;
        db.characterize(&network, &cfg.arch)
    });
    let mut valid: Vec<ValidEfpga> = Vec::new();
    let mut failed: Vec<(Cluster, String)> = Vec::new();
    for (cluster, res) in clusters.iter().zip(characterized) {
        match res {
            Ok(efpga) => valid.push(ValidEfpga {
                cluster: cluster.clone(),
                efpga,
                score: 0.0,
            }),
            Err(e) => failed.push((cluster.clone(), e)),
        }
    }
    // Line 8: Eq. 1 scores, normalized by the maxima over F.
    let max_io = valid.iter().map(|v| v.efpga.io_util).fold(0.0, f64::max);
    let max_clb = valid.iter().map(|v| v.efpga.clb_util).fold(0.0, f64::max);
    for v in &mut valid {
        v.score = eq1_score(cfg, v.efpga.io_util, v.efpga.clb_util, max_io, max_clb);
    }
    // Lines 9-24: branch-and-bound enumeration of disjoint combinations.
    // Work items carry the next index to try so each combination is
    // enumerated exactly once.
    let all_insts: BTreeSet<usize> = (0..r.len()).collect();
    let mut solutions: Vec<Vec<usize>> = Vec::new();
    let mut work: Vec<(Vec<usize>, BTreeSet<usize>)> = vec![(Vec::new(), BTreeSet::new())];
    while let Some((partial, used)) = work.pop() {
        let start = partial.last().map(|&i| i + 1).unwrap_or(0);
        #[allow(clippy::needless_range_loop)]
        for f in start..valid.len() {
            if solutions.len() >= cfg.max_solutions {
                break;
            }
            let cl = &valid[f].cluster;
            if cl.iter().any(|i| used.contains(i)) {
                continue; // overlapping module instances
            }
            let mut new_used = used.clone();
            new_used.extend(cl.iter().copied());
            let mut sol = partial.clone();
            sol.push(f);
            let is_final = sol.len() as u32 == cfg.max_efpgas || new_used.len() == all_insts.len();
            if is_final {
                solutions.push(sol);
            } else {
                solutions.push(sol.clone());
                work.push((sol, new_used));
            }
        }
    }
    // Line 25: rank by summed score.
    let best = solutions
        .iter()
        .map(|s| {
            let score: f64 = s.iter().map(|&i| valid[i].score).sum();
            (s, score)
        })
        .max_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| {
                    // Deterministic tie-break: more redacted instances, then
                    // lexicographic.
                    let ra: usize = a.0.iter().map(|&i| valid[i].cluster.len()).sum();
                    let rb: usize = b.0.iter().map(|&i| valid[i].cluster.len()).sum();
                    ra.cmp(&rb).then(b.0.cmp(a.0))
                })
        })
        .map(|(s, score)| Solution {
            efpgas: s.clone(),
            score,
        });
    Ok(SelectionResult {
        solutions: solutions.len(),
        valid,
        failed,
        best,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::identify_clusters;
    use crate::filter::filter_modules;

    const SRC: &str = r#"
module xorblk(input wire [7:0] a, input wire [7:0] b, output wire [7:0] y);
  assign y = a ^ b;
endmodule
module addblk(input wire [7:0] a, input wire [7:0] b, output wire [7:0] y);
  assign y = a + b;
endmodule
module top(input wire [7:0] p, input wire [7:0] q, output wire [7:0] o1, output wire [7:0] o2);
  xorblk x0(.a(p), .b(q), .y(o1));
  addblk a0(.a(p), .b(q), .y(o2));
endmodule
"#;

    fn pipeline(cfg: &AliceConfig) -> (Design, Vec<Candidate>, Vec<Cluster>) {
        let d = Design::from_source("t", SRC, None).expect("load");
        let df = alice_dataflow::analyze(&d.file, d.hierarchy.top.as_str()).expect("df");
        let r = filter_modules(&d, &df, cfg).expect("filter").candidates;
        let c = identify_clusters(&r, &d.paths, cfg).clusters;
        (d, r, c)
    }

    #[test]
    fn characterizes_and_selects() {
        let cfg = AliceConfig {
            max_io_pins: 64,
            max_efpgas: 2,
            ..AliceConfig::default()
        };
        let (d, r, c) = pipeline(&cfg);
        assert_eq!(r.len(), 2);
        // singles + the pair (24+24 <= 64)
        assert_eq!(c.len(), 3);
        let sel = select_efpgas(&d, &r, &c, &cfg, &DesignDb::new()).expect("select");
        assert_eq!(sel.valid.len(), 3);
        // solutions: {x}, {a}, {xa-pair}, {x,a} = 4
        assert_eq!(sel.solutions, 4);
        let best = sel.best.expect("has best");
        assert!(best.score > 0.0);
    }

    #[test]
    fn one_efpga_limit_shrinks_solutions() {
        let cfg = AliceConfig {
            max_io_pins: 64,
            max_efpgas: 1,
            ..AliceConfig::default()
        };
        let (d, r, c) = pipeline(&cfg);
        let sel = select_efpgas(&d, &r, &c, &cfg, &DesignDb::new()).expect("select");
        // {x}, {a}, {pair} — no two-fabric combos.
        assert_eq!(sel.solutions, 3);
    }

    #[test]
    fn as_printed_scoring_prefers_low_utilization() {
        let mut cfg = AliceConfig {
            max_io_pins: 64,
            max_efpgas: 1,
            ..AliceConfig::default()
        };
        let (d, r, c) = pipeline(&cfg);
        let db = DesignDb::new();
        let reward = select_efpgas(&d, &r, &c, &cfg, &db).expect("select");
        cfg.score_model = ScoreModel::AsPrinted;
        let printed = select_efpgas(&d, &r, &c, &cfg, &db).expect("select");
        let high = reward.best.clone().expect("best");
        let low = printed.best.clone().expect("best");
        // The two models pick differently scored solutions.
        let util = |sel: &SelectionResult, sol: &Solution| -> f64 {
            sol.efpgas
                .iter()
                .map(|&i| sel.valid[i].efpga.clb_util + sel.valid[i].efpga.io_util)
                .sum()
        };
        assert!(util(&reward, &high) >= util(&printed, &low));
    }

    #[test]
    fn eq1_scoring_ranges() {
        let cfg = AliceConfig::default();
        // Full utilization = maximal score 2.0 with alpha=beta=1.
        assert!((eq1_score(&cfg, 0.8, 0.5, 0.8, 0.5) - 2.0).abs() < 1e-9);
        let printed = AliceConfig {
            score_model: ScoreModel::AsPrinted,
            ..AliceConfig::default()
        };
        assert!((eq1_score(&printed, 0.8, 0.5, 0.8, 0.5)).abs() < 1e-9);
    }

    #[test]
    fn merge_is_disjoint_union() {
        let d = Design::from_source("t", SRC, None).expect("load");
        let db = DesignDb::new();
        let mut mapper = ClusterMapper::new(&d, 4, &db);
        let x = mapper
            .module(Symbol::intern("xorblk"))
            .expect("map")
            .clone();
        let a = mapper
            .module(Symbol::intern("addblk"))
            .expect("map")
            .clone();
        let m = merge(&[x.clone(), a.clone()]);
        assert_eq!(m.lut_count(), x.lut_count() + a.lut_count());
        assert_eq!(m.io_pins(), x.io_pins() + a.io_pins());
    }
}
