//! Minimal YAML-subset parser for the ALICE configuration file.
//!
//! The paper's flow reads "a custom YAML configuration file" (§3). The
//! offline crate set has no YAML implementation, so this module parses the
//! subset the config needs: nested maps by 2-space indentation, scalar
//! values (string/int/float/bool) and block lists of scalars. Anchors,
//! flow style, multi-line strings and tags are out of scope.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed YAML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Yaml {
    /// Scalar leaf (kept as the raw trimmed string).
    Scalar(String),
    /// Block list of values.
    List(Vec<Yaml>),
    /// Mapping with preserved insertion order not required; sorted keys.
    Map(BTreeMap<String, Yaml>),
}

/// YAML parse error with a line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct YamlError {
    /// 1-based line number.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for YamlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "yaml error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for YamlError {}

impl Yaml {
    /// Parses a document (the outermost value must be a map).
    pub fn parse(src: &str) -> Result<Yaml, YamlError> {
        let lines: Vec<(usize, usize, &str)> = src
            .lines()
            .enumerate()
            .filter_map(|(i, raw)| {
                let no_comment = match raw.find('#') {
                    Some(p) if !raw[..p].contains('"') => &raw[..p],
                    _ => raw,
                };
                let trimmed = no_comment.trim_end();
                if trimmed.trim().is_empty() {
                    return None;
                }
                let indent = trimmed.len() - trimmed.trim_start().len();
                Some((i + 1, indent, trimmed.trim_start()))
            })
            .collect();
        let mut pos = 0;
        let v = parse_block(&lines, &mut pos, 0)?;
        if pos != lines.len() {
            return Err(YamlError {
                line: lines[pos].0,
                message: "unexpected de-indent structure".into(),
            });
        }
        Ok(v)
    }

    /// Map lookup (`None` for scalars/lists or missing keys).
    pub fn get(&self, key: &str) -> Option<&Yaml> {
        match self {
            Yaml::Map(m) => m.get(key),
            _ => None,
        }
    }

    /// Scalar as string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Yaml::Scalar(s) => Some(s),
            _ => None,
        }
    }

    /// Scalar parsed as u32.
    pub fn as_u32(&self) -> Option<u32> {
        self.as_str()?.parse().ok()
    }

    /// Scalar parsed as u64 (byte budgets and other large counts).
    pub fn as_u64(&self) -> Option<u64> {
        self.as_str()?.parse().ok()
    }

    /// Scalar parsed as f64.
    pub fn as_f64(&self) -> Option<f64> {
        self.as_str()?.parse().ok()
    }

    /// Scalar parsed as bool (`true`/`false`).
    pub fn as_bool(&self) -> Option<bool> {
        match self.as_str()? {
            "true" => Some(true),
            "false" => Some(false),
            _ => None,
        }
    }

    /// List items.
    pub fn as_list(&self) -> Option<&[Yaml]> {
        match self {
            Yaml::List(l) => Some(l),
            _ => None,
        }
    }
}

fn parse_block(
    lines: &[(usize, usize, &str)],
    pos: &mut usize,
    indent: usize,
) -> Result<Yaml, YamlError> {
    if *pos >= lines.len() {
        return Ok(Yaml::Map(BTreeMap::new()));
    }
    let (_, _, first) = lines[*pos];
    if first.starts_with("- ") || first == "-" {
        // Block list.
        let mut items = Vec::new();
        while *pos < lines.len() {
            let (line_no, ind, text) = lines[*pos];
            if ind < indent {
                break;
            }
            if ind != indent || !(text.starts_with("- ") || text == "-") {
                return Err(YamlError {
                    line: line_no,
                    message: "inconsistent list indentation".into(),
                });
            }
            let item = text.trim_start_matches('-').trim();
            *pos += 1;
            if item.is_empty() {
                items.push(parse_block(lines, pos, indent + 2)?);
            } else {
                items.push(Yaml::Scalar(unquote(item)));
            }
        }
        return Ok(Yaml::List(items));
    }
    // Block map.
    let mut map = BTreeMap::new();
    while *pos < lines.len() {
        let (line_no, ind, text) = lines[*pos];
        if ind < indent {
            break;
        }
        if ind != indent {
            return Err(YamlError {
                line: line_no,
                message: "unexpected indentation".into(),
            });
        }
        let Some(colon) = text.find(':') else {
            return Err(YamlError {
                line: line_no,
                message: "expected `key: value`".into(),
            });
        };
        let key = text[..colon].trim().to_string();
        let rest = text[colon + 1..].trim();
        *pos += 1;
        let value = if rest.is_empty() {
            // Nested block (map or list) or empty.
            if *pos < lines.len() && lines[*pos].1 > indent {
                parse_block(lines, pos, lines[*pos].1)?
            } else {
                Yaml::Scalar(String::new())
            }
        } else {
            Yaml::Scalar(unquote(rest))
        };
        map.insert(key, value);
    }
    Ok(Yaml::Map(map))
}

fn unquote(s: &str) -> String {
    let s = s.trim();
    if s.len() >= 2 && (s.starts_with('"') && s.ends_with('"'))
        || (s.starts_with('\'') && s.ends_with('\''))
    {
        s[1..s.len() - 1].to_string()
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_config() {
        let src = r#"
# ALICE config
max_io_pins: 64
max_efpgas: 2
alpha: 1.0
fabric:
  lut_inputs: 4
  les_per_clb: 4
selected_outputs:
  - dout
  - valid
"#;
        let y = Yaml::parse(src).expect("parse");
        assert_eq!(y.get("max_io_pins").and_then(Yaml::as_u32), Some(64));
        assert_eq!(y.get("alpha").and_then(Yaml::as_f64), Some(1.0));
        let fabric = y.get("fabric").expect("fabric");
        assert_eq!(fabric.get("lut_inputs").and_then(Yaml::as_u32), Some(4));
        let outs = y
            .get("selected_outputs")
            .and_then(Yaml::as_list)
            .expect("list");
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0].as_str(), Some("dout"));
    }

    #[test]
    fn quoted_scalars_are_unquoted() {
        let y = Yaml::parse("name: \"top module\"").expect("parse");
        assert_eq!(y.get("name").and_then(Yaml::as_str), Some("top module"));
    }

    #[test]
    fn bad_indent_is_reported() {
        let err = Yaml::parse("a:\n  b: 1\n c: 2").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn bool_scalars() {
        let y = Yaml::parse("flag: true\nother: false").expect("parse");
        assert_eq!(y.get("flag").and_then(Yaml::as_bool), Some(true));
        assert_eq!(y.get("other").and_then(Yaml::as_bool), Some(false));
    }

    #[test]
    fn empty_value_is_empty_scalar() {
        let y = Yaml::parse("key:").expect("parse");
        assert_eq!(y.get("key").and_then(Yaml::as_str), Some(""));
    }
}
