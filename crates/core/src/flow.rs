//! The end-to-end ALICE flow (Figure 3): module filtering → cluster
//! identification → eFPGA selection → redacted-design generation, run as
//! the staged pipeline of [`crate::stage`] with per-stage instrumentation
//! for the Table 2 columns.

use crate::cluster::ClusterResult;
use crate::config::AliceConfig;
use crate::db::{CacheCounts, DesignDb};
use crate::design::Design;
use crate::error::AliceError;
use crate::filter::FilterResult;
use crate::redact::RedactedDesign;
use crate::select::SelectionResult;
use crate::stage::{
    run_stage, ClusterStage, FilterStage, FlowContext, PhaseTimings, RedactStage, SelectStage,
    Stage, VerifyStage, CLUSTER, FILTER, SELECT, VERIFY,
};
use crate::verify::{PortfolioSummary, VerifyReport};
use alice_fabric::FabricSize;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// The flow's error type: the unified [`AliceError`]. (The former
/// `FlowError` wrapper enum is gone; every phase reports through
/// `AliceError` directly.)
pub type FlowError = AliceError;

/// Summary of one flow run — one row of Table 2, derived from the
/// pipeline's [`PhaseTimings`].
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// Design name.
    pub design: String,
    /// Redactable instance count (Table 1 "Instances").
    pub instances: usize,
    /// Module-filtering time (includes dataflow analysis, as in the paper).
    pub filter_time: Duration,
    /// |R| — candidate redaction modules.
    pub candidates: usize,
    /// Cluster-identification time.
    pub cluster_time: Duration,
    /// |C| — candidate clusters.
    pub clusters: usize,
    /// eFPGA-selection time (includes all fabric characterizations).
    pub select_time: Duration,
    /// Number of valid eFPGA implementations.
    pub valid_efpgas: usize,
    /// |S| — enumerated solutions.
    pub solutions: usize,
    /// Fabric sizes of the chosen solution (empty if none).
    pub efpga_sizes: Vec<FabricSize>,
    /// Total redacted module instances in the chosen solution.
    pub redacted_modules: usize,
    /// Equivalence-check time (zero when the verify stage is off).
    pub verify_time: Duration,
    /// Equivalence verdict: `Some(true)` proven equivalent, `Some(false)`
    /// disproven, `None` when verification did not run to a verdict
    /// (disabled, no redaction, unsupported, or budget exhausted).
    pub verified: Option<bool>,
    /// Mean wrong-key corruption fraction from the sweep, if it ran.
    pub wrong_key_corruption: Option<f64>,
    /// Characterization-cache lookups answered from the [`DesignDb`]
    /// during this run's wall-clock window (elaborations, LUT mappings,
    /// fabric sizings). When the db is shared with *concurrently*
    /// running flows their lookups land in the window too, so treat
    /// per-run numbers as attribution, not an exact ledger — exact
    /// totals come from [`DesignDb::counts`] on the shared db.
    pub cache_hits: u64,
    /// Characterization-cache lookups computed (not served) during this
    /// run's window; same attribution caveat as
    /// [`FlowReport::cache_hits`].
    pub cache_misses: u64,
    /// Portfolio race summary for the equivalence proof (`None` in
    /// classic `portfolio = 1` runs and on proof-cache hits), so win
    /// counts and winner effort surface in the suite tables.
    pub portfolio: Option<PortfolioSummary>,
    /// Lookups served from the persistent on-disk store (cold in this
    /// process, warm on disk) during this run's window — the cross-
    /// process reuse the `--store` flag buys; zero without a store. Same
    /// attribution caveat as [`FlowReport::cache_hits`].
    pub cache_disk_hits: u64,
}

impl FlowReport {
    /// Derives the report from a finished pipeline context and its
    /// instrumentation (the only constructor the flow uses). `cache` is
    /// this run's hit/miss delta against the shared [`DesignDb`].
    pub fn from_timings(cx: &FlowContext<'_>, timings: &PhaseTimings, cache: CacheCounts) -> Self {
        let selection = cx.selection.as_ref();
        let (efpga_sizes, redacted_modules) = match selection.and_then(|s| s.best.as_ref()) {
            Some(best) => {
                let valid = &selection.expect("best implies selection").valid;
                let sizes: Vec<FabricSize> =
                    best.efpgas.iter().map(|&i| valid[i].efpga.size).collect();
                let n: usize = best.efpgas.iter().map(|&i| valid[i].cluster.len()).sum();
                (sizes, n)
            }
            None => (Vec::new(), 0),
        };
        let verified = cx.verify.as_ref().and_then(|v| match &v.outcome {
            crate::verify::VerifyOutcome::Equivalent => Some(true),
            crate::verify::VerifyOutcome::NotEquivalent(_) => Some(false),
            _ => None,
        });
        FlowReport {
            design: cx.design.name.clone(),
            instances: cx.design.instance_paths().len(),
            filter_time: timings.duration_of(FILTER),
            candidates: timings.items_of(FILTER),
            cluster_time: timings.duration_of(CLUSTER),
            clusters: timings.items_of(CLUSTER),
            select_time: timings.duration_of(SELECT),
            valid_efpgas: timings.items_of(SELECT),
            solutions: selection.map(|s| s.solutions).unwrap_or(0),
            efpga_sizes,
            redacted_modules,
            verify_time: timings.duration_of(VERIFY),
            verified,
            wrong_key_corruption: cx.verify.as_ref().and_then(|v| v.corruption_fraction()),
            portfolio: cx.verify.as_ref().and_then(|v| v.portfolio.clone()),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_disk_hits: cache.disk_hits,
        }
    }
}

impl fmt::Display for FlowReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sizes = if self.efpga_sizes.is_empty() {
            "-".to_string()
        } else {
            self.efpga_sizes
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        write!(
            f,
            "{:<8} {:>4} | {:>9.2?} {:>4} | {:>9.2?} {:>5} | {:>9.2?} {:>5} {:>6} | {:<12} {:>3}",
            self.design,
            self.instances,
            self.filter_time,
            self.candidates,
            self.cluster_time,
            self.clusters,
            self.select_time,
            self.valid_efpgas,
            self.solutions,
            sizes,
            self.redacted_modules
        )?;
        match self.verified {
            Some(true) => write!(f, " | cec ok ({:.2?})", self.verify_time)?,
            Some(false) => write!(f, " | cec FAIL ({:.2?})", self.verify_time)?,
            None => {}
        }
        if let Some(c) = self.wrong_key_corruption {
            write!(f, " corr={c:.2}")?;
        }
        if let Some(p) = &self.portfolio {
            write!(f, " sat[{p}]")?;
        }
        if self.cache_hits + self.cache_misses + self.cache_disk_hits > 0 {
            write!(f, " | cache {}h/{}m", self.cache_hits, self.cache_misses)?;
            if self.cache_disk_hits > 0 {
                write!(f, "+{}d", self.cache_disk_hits)?;
            }
        }
        Ok(())
    }
}

/// The result of a full flow run.
#[derive(Debug, Clone)]
pub struct FlowOutcome {
    /// Table-2-style metrics.
    pub report: FlowReport,
    /// Per-stage wall-clock timings and counters.
    pub timings: PhaseTimings,
    /// Phase results, exposed for inspection (C-INTERMEDIATE).
    pub filter: FilterResult,
    /// Cluster-identification output.
    pub clusters: ClusterResult,
    /// Selection output (scores, valid fabrics, best solution).
    pub selection: SelectionResult,
    /// The redacted design, when a solution exists.
    pub redacted: Option<RedactedDesign>,
    /// Equivalence-check report (when [`AliceConfig::verify`] is on and a
    /// redacted design exists).
    pub verify: Option<VerifyReport>,
}

/// The ALICE flow driver.
///
/// # Example
///
/// ```
/// use alice_core::config::AliceConfig;
/// use alice_core::design::Design;
/// use alice_core::flow::Flow;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let src = "
/// module inv(input wire [3:0] a, output wire [3:0] y); assign y = ~a; endmodule
/// module top(input wire [3:0] a, output wire [3:0] y);
///   inv u0(.a(a), .y(y));
/// endmodule";
/// let design = Design::from_source("demo", src, None)?;
/// let outcome = Flow::new(AliceConfig::cfg1()).run(&design)?;
/// assert_eq!(outcome.report.candidates, 1);
/// assert!(outcome.redacted.is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Flow {
    cfg: AliceConfig,
    db: Arc<DesignDb>,
}

impl Flow {
    /// Creates a flow with the given configuration and a private
    /// [`DesignDb`] (disabled when [`AliceConfig::cache`] is off). With
    /// [`AliceConfig::store`] set, the db is backed by the persistent
    /// store at that directory, so a later process starts warm; an
    /// unopenable store directory degrades to a plain in-memory db (the
    /// flow itself must never fail on cache problems).
    pub fn new(cfg: AliceConfig) -> Self {
        let db = Arc::new(if !cfg.cache {
            DesignDb::new_disabled()
        } else {
            match &cfg.store {
                Some(dir) => DesignDb::with_store(dir).unwrap_or_else(|e| {
                    eprintln!(
                        "alice: warning: cannot open store {}: {e}; caching in memory only",
                        dir.display()
                    );
                    DesignDb::new()
                }),
                None => DesignDb::new(),
            }
        });
        if let Some(store) = db.store() {
            // Opportunistic compaction: flushes past 2x the configured
            // budget LRU-compact back down to it.
            store.set_compact_budget(cfg.store_budget);
        }
        Flow { cfg, db }
    }

    /// Creates a flow sharing a long-lived [`DesignDb`], so
    /// characterizations are reused across runs (the `suite` binary
    /// shares one db over its whole benchmarks × configs matrix).
    ///
    /// [`AliceConfig::cache`] still wins: with `cache: false` the shared
    /// db is set aside and a disabled one is used, so a no-cache config
    /// means no cache on every construction path.
    /// [`AliceConfig::store`] is ignored here — the caller's db (store-
    /// backed or not) is authoritative; open the store on the shared db
    /// itself ([`DesignDb::with_store`]) to persist a shared matrix.
    pub fn with_db(cfg: AliceConfig, db: Arc<DesignDb>) -> Self {
        if !cfg.cache {
            return Flow::new(cfg);
        }
        Flow { cfg, db }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AliceConfig {
        &self.cfg
    }

    /// The characterization cache this flow runs against.
    pub fn db(&self) -> &Arc<DesignDb> {
        &self.db
    }

    /// The pipeline's stages, in execution order.
    pub fn stages() -> [&'static dyn Stage; 5] {
        [
            &FilterStage,
            &ClusterStage,
            &SelectStage,
            &RedactStage,
            &VerifyStage,
        ]
    }

    /// Runs all phases on `design` through the staged pipeline.
    ///
    /// A design where no module survives filtering (like IIR under cfg1 in
    /// the paper) is *not* an error: the outcome simply has no solution.
    ///
    /// # Errors
    ///
    /// Returns [`AliceError`] on analysis failures (bad output names,
    /// unsupported constructs, internal inconsistencies).
    pub fn run(&self, design: &Design) -> Result<FlowOutcome, AliceError> {
        let before = self.db.counts();
        let mut cx = FlowContext::new(design, &self.cfg, &self.db);
        let mut timings = PhaseTimings::default();
        for stage in Self::stages() {
            run_stage(stage, &mut cx, &mut timings)?;
        }
        let cache = self.db.counts().since(before);
        let report = FlowReport::from_timings(&cx, &timings, cache);
        Ok(FlowOutcome {
            report,
            timings,
            filter: cx.filter.unwrap_or_default(),
            clusters: cx.clusters.unwrap_or_default(),
            selection: cx.selection.unwrap_or_default(),
            redacted: cx.redacted,
            verify: cx.verify,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::REDACT;

    const SRC: &str = r#"
module blk_a(input wire [7:0] a, output wire [7:0] y); assign y = a + 8'd3; endmodule
module blk_b(input wire [7:0] a, output wire [7:0] y); assign y = a ^ 8'h55; endmodule
module top(input wire [7:0] x, output wire [7:0] o1, output wire [7:0] o2);
  blk_a u_a(.a(x), .y(o1));
  blk_b u_b(.a(x), .y(o2));
endmodule
"#;

    #[test]
    fn full_flow_produces_redaction() {
        let d = Design::from_source("demo", SRC, None).expect("load");
        let out = Flow::new(AliceConfig::cfg1()).run(&d).expect("flow");
        assert_eq!(out.report.instances, 2);
        assert_eq!(out.report.candidates, 2);
        assert!(out.report.clusters >= 3);
        assert!(out.report.solutions >= 3);
        assert!(out.redacted.is_some());
        assert!(out.report.redacted_modules >= 1);
    }

    #[test]
    fn infeasible_config_reports_no_solution() {
        // 17 pins per module > 8-pin budget: nothing survives filtering.
        let d = Design::from_source("demo", SRC, None).expect("load");
        let cfg = AliceConfig {
            max_io_pins: 8,
            ..AliceConfig::cfg1()
        };
        let out = Flow::new(cfg).run(&d).expect("flow");
        assert_eq!(out.report.candidates, 0);
        assert_eq!(out.report.clusters, 0);
        assert_eq!(out.report.solutions, 0);
        assert!(out.redacted.is_none());
        assert!(out.report.efpga_sizes.is_empty());
    }

    #[test]
    fn report_renders_one_line() {
        let d = Design::from_source("demo", SRC, None).expect("load");
        let out = Flow::new(AliceConfig::cfg2()).run(&d).expect("flow");
        let line = out.report.to_string();
        assert!(line.contains("demo"));
        assert_eq!(line.lines().count(), 1);
    }

    #[test]
    fn report_times_come_from_stage_timings() {
        let d = Design::from_source("demo", SRC, None).expect("flow");
        let out = Flow::new(AliceConfig::cfg1()).run(&d).expect("flow");
        // All five stages ran and the report mirrors their records.
        let names: Vec<&str> = out.timings.records.iter().map(|r| r.name).collect();
        assert_eq!(names, vec![FILTER, CLUSTER, SELECT, REDACT, VERIFY]);
        assert_eq!(out.report.filter_time, out.timings.duration_of(FILTER));
        assert_eq!(out.report.select_time, out.timings.duration_of(SELECT));
        assert_eq!(out.report.valid_efpgas, out.timings.items_of(SELECT));
        assert_eq!(out.report.candidates, out.filter.candidates.len());
    }
}
