//! The end-to-end ALICE flow (Figure 3): module filtering → cluster
//! identification → eFPGA selection → redacted-design generation, with
//! per-phase wall-clock timing for the Table 2 columns.

use crate::cluster::{identify_clusters, ClusterResult};
use crate::config::AliceConfig;
use crate::design::Design;
use crate::filter::{filter_modules, FilterError, FilterResult};
use crate::redact::{redact, RedactError, RedactedDesign};
use crate::select::{select_efpgas, SelectError, SelectionResult};
use alice_fabric::FabricSize;
use std::fmt;
use std::time::{Duration, Instant};

/// Summary of one flow run — one row of Table 2.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// Design name.
    pub design: String,
    /// Redactable instance count (Table 1 "Instances").
    pub instances: usize,
    /// Module-filtering time (includes dataflow analysis, as in the paper).
    pub filter_time: Duration,
    /// |R| — candidate redaction modules.
    pub candidates: usize,
    /// Cluster-identification time.
    pub cluster_time: Duration,
    /// |C| — candidate clusters.
    pub clusters: usize,
    /// eFPGA-selection time (includes all fabric characterizations).
    pub select_time: Duration,
    /// Number of valid eFPGA implementations.
    pub valid_efpgas: usize,
    /// |S| — enumerated solutions.
    pub solutions: usize,
    /// Fabric sizes of the chosen solution (empty if none).
    pub efpga_sizes: Vec<FabricSize>,
    /// Total redacted module instances in the chosen solution.
    pub redacted_modules: usize,
}

impl fmt::Display for FlowReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sizes = if self.efpga_sizes.is_empty() {
            "-".to_string()
        } else {
            self.efpga_sizes
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        write!(
            f,
            "{:<8} {:>4} | {:>9.2?} {:>4} | {:>9.2?} {:>5} | {:>9.2?} {:>5} {:>6} | {:<12} {:>3}",
            self.design,
            self.instances,
            self.filter_time,
            self.candidates,
            self.cluster_time,
            self.clusters,
            self.select_time,
            self.valid_efpgas,
            self.solutions,
            sizes,
            self.redacted_modules
        )
    }
}

/// The result of a full flow run.
#[derive(Debug, Clone)]
pub struct FlowOutcome {
    /// Table-2-style metrics.
    pub report: FlowReport,
    /// Phase results, exposed for inspection (C-INTERMEDIATE).
    pub filter: FilterResult,
    /// Cluster-identification output.
    pub clusters: ClusterResult,
    /// Selection output (scores, valid fabrics, best solution).
    pub selection: SelectionResult,
    /// The redacted design, when a solution exists.
    pub redacted: Option<RedactedDesign>,
}

/// Flow errors (any phase).
#[derive(Debug, Clone)]
pub enum FlowError {
    /// Dataflow analysis failed.
    Dataflow(String),
    /// Filtering failed.
    Filter(FilterError),
    /// Selection failed.
    Select(SelectError),
    /// Redaction failed.
    Redact(RedactError),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Dataflow(e) => write!(f, "dataflow: {e}"),
            FlowError::Filter(e) => write!(f, "filter: {e}"),
            FlowError::Select(e) => write!(f, "select: {e}"),
            FlowError::Redact(e) => write!(f, "redact: {e}"),
        }
    }
}

impl std::error::Error for FlowError {}

/// The ALICE flow driver.
///
/// # Example
///
/// ```
/// use alice_core::config::AliceConfig;
/// use alice_core::design::Design;
/// use alice_core::flow::Flow;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let src = "
/// module inv(input wire [3:0] a, output wire [3:0] y); assign y = ~a; endmodule
/// module top(input wire [3:0] a, output wire [3:0] y);
///   inv u0(.a(a), .y(y));
/// endmodule";
/// let design = Design::from_source("demo", src, None)?;
/// let outcome = Flow::new(AliceConfig::cfg1()).run(&design)?;
/// assert_eq!(outcome.report.candidates, 1);
/// assert!(outcome.redacted.is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Flow {
    cfg: AliceConfig,
}

impl Flow {
    /// Creates a flow with the given configuration.
    pub fn new(cfg: AliceConfig) -> Self {
        Flow { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AliceConfig {
        &self.cfg
    }

    /// Runs all phases on `design`.
    ///
    /// A design where no module survives filtering (like IIR under cfg1 in
    /// the paper) is *not* an error: the outcome simply has no solution.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] on analysis failures (bad output names,
    /// unsupported constructs, internal inconsistencies).
    pub fn run(&self, design: &Design) -> Result<FlowOutcome, FlowError> {
        // Phase 1: module filtering (timed together with dataflow analysis,
        // matching the paper's accounting).
        let t0 = Instant::now();
        let dataflow = alice_dataflow::analyze(&design.file, &design.hierarchy.top)
            .map_err(|e| FlowError::Dataflow(e.to_string()))?;
        let filter =
            filter_modules(design, &dataflow, &self.cfg).map_err(FlowError::Filter)?;
        let filter_time = t0.elapsed();

        // Phase 2: cluster identification.
        let t1 = Instant::now();
        let clusters = identify_clusters(&filter.candidates, &self.cfg);
        let cluster_time = t1.elapsed();

        // Phase 3: characterization + selection.
        let t2 = Instant::now();
        let selection = select_efpgas(design, &filter.candidates, &clusters.clusters, &self.cfg)
            .map_err(FlowError::Select)?;
        let select_time = t2.elapsed();

        // Redaction (when a solution exists).
        let redacted = match &selection.best {
            Some(_) => Some(
                redact(design, &filter.candidates, &selection, &self.cfg)
                    .map_err(FlowError::Redact)?,
            ),
            None => None,
        };

        let (efpga_sizes, redacted_modules) = match &selection.best {
            Some(best) => {
                let sizes: Vec<FabricSize> = best
                    .efpgas
                    .iter()
                    .map(|&i| selection.valid[i].efpga.size)
                    .collect();
                let n: usize = best
                    .efpgas
                    .iter()
                    .map(|&i| selection.valid[i].cluster.len())
                    .sum();
                (sizes, n)
            }
            None => (Vec::new(), 0),
        };
        let report = FlowReport {
            design: design.name.clone(),
            instances: design.instance_paths().len(),
            filter_time,
            candidates: filter.candidates.len(),
            cluster_time,
            clusters: clusters.clusters.len(),
            select_time,
            valid_efpgas: selection.valid.len(),
            solutions: selection.solutions,
            efpga_sizes,
            redacted_modules,
        };
        Ok(FlowOutcome {
            report,
            filter,
            clusters,
            selection,
            redacted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
module blk_a(input wire [7:0] a, output wire [7:0] y); assign y = a + 8'd3; endmodule
module blk_b(input wire [7:0] a, output wire [7:0] y); assign y = a ^ 8'h55; endmodule
module top(input wire [7:0] x, output wire [7:0] o1, output wire [7:0] o2);
  blk_a u_a(.a(x), .y(o1));
  blk_b u_b(.a(x), .y(o2));
endmodule
"#;

    #[test]
    fn full_flow_produces_redaction() {
        let d = Design::from_source("demo", SRC, None).expect("load");
        let out = Flow::new(AliceConfig::cfg1()).run(&d).expect("flow");
        assert_eq!(out.report.instances, 2);
        assert_eq!(out.report.candidates, 2);
        assert!(out.report.clusters >= 3);
        assert!(out.report.solutions >= 3);
        assert!(out.redacted.is_some());
        assert!(out.report.redacted_modules >= 1);
    }

    #[test]
    fn infeasible_config_reports_no_solution() {
        // 17 pins per module > 8-pin budget: nothing survives filtering.
        let d = Design::from_source("demo", SRC, None).expect("load");
        let cfg = AliceConfig {
            max_io_pins: 8,
            ..AliceConfig::cfg1()
        };
        let out = Flow::new(cfg).run(&d).expect("flow");
        assert_eq!(out.report.candidates, 0);
        assert_eq!(out.report.clusters, 0);
        assert_eq!(out.report.solutions, 0);
        assert!(out.redacted.is_none());
        assert!(out.report.efpga_sizes.is_empty());
    }

    #[test]
    fn report_renders_one_line() {
        let d = Design::from_source("demo", SRC, None).expect("load");
        let out = Flow::new(AliceConfig::cfg2()).run(&d).expect("flow");
        let line = out.report.to_string();
        assert!(line.contains("demo"));
        assert_eq!(line.lines().count(), 1);
    }
}
