//! # alice-core
//!
//! The ALICE flow itself — the primary contribution of *ALICE: An
//! Automatic Design Flow for eFPGA Redaction* (DAC 2022):
//!
//! * [`design`] — design loading (Verilog source → hierarchy),
//! * [`config`] + [`yaml`] — the flow's YAML configuration,
//! * [`filter`] — **Algorithm 1**: module filtering by functional
//!   (output-cone) and structural (I/O pin) criteria,
//! * [`cluster`] — **Algorithm 2**: fixed-point cluster identification,
//! * [`select`] — **Algorithm 3**: fabric characterization, Eq. 1
//!   scoring, branch-and-bound solution enumeration,
//! * [`mod@redact`] — redacted top-module regeneration with GPIO remapping
//!   and dominator-guided eFPGA insertion,
//! * [`verify`] — the opt-in post-redaction equivalence proof (SAT miter
//!   via `alice-cec`, correct-bitstream binding) and the wrong-key
//!   corruptibility sweep,
//! * [`stage`] — the staged pipeline (`Stage` trait, `FlowContext`,
//!   `PhaseTimings` instrumentation) the driver is built on,
//! * [`error`] — the unified [`AliceError`] used by every phase,
//! * [`flow`] — the end-to-end driver with Table-2-style reporting.
//!
//! # Example
//!
//! ```
//! use alice_core::config::AliceConfig;
//! use alice_core::design::Design;
//! use alice_core::flow::Flow;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "
//! module inv(input wire [3:0] a, output wire [3:0] y); assign y = ~a; endmodule
//! module top(input wire [3:0] a, output wire [3:0] y);
//!   inv u0(.a(a), .y(y));
//! endmodule";
//! let design = Design::from_source("demo", src, None)?;
//! let outcome = Flow::new(AliceConfig::cfg1()).run(&design)?;
//! println!("{}", outcome.report);
//! # Ok(())
//! # }
//! ```

pub mod cluster;
pub mod config;
pub mod db;
pub mod design;
pub mod error;
pub mod filter;
pub mod flow;
pub mod par;
pub mod redact;
pub mod select;
pub mod stage;
pub mod verify;
pub mod yaml;

pub use cluster::{identify_clusters, Cluster, ClusterResult};
pub use config::{AliceConfig, ScoreModel};
pub use db::{CacheCounts, DesignDb};
pub use design::{Design, DesignError};
pub use error::AliceError;
pub use filter::{filter_modules, Candidate, FilterResult};
pub use flow::{Flow, FlowError, FlowOutcome, FlowReport};
pub use redact::{redact, RedactedDesign, RedactedEfpga, VerifyBinding};
pub use select::{select_efpgas, SelectionResult, Solution, ValidEfpga};
pub use stage::{FlowContext, PhaseTimings, Stage, StageRecord};
pub use verify::{verify_redaction, VerifyOutcome, VerifyReport, WrongKeyOutcome};
