//! Phase 1 — module filtering (Algorithm 1 of the paper).
//!
//! Functional criterion: keep instances whose logic affects at least one
//! selected output (scored by how many outputs they affect). Structural
//! criterion: the module's I/O pin count must fit the eFPGA parameters.

use crate::config::AliceConfig;
use crate::design::Design;
use crate::error::AliceError;
use alice_dataflow::DesignDataflow;
use alice_intern::{HierPath, Symbol};

/// A candidate redaction module (an instance that survived filtering).
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Full instance path (e.g. `des3.u_crp.u_sbox1`), typed and
    /// interned.
    pub path: HierPath,
    /// Module name the instance implements (interned).
    pub module: Symbol,
    /// Module I/O pin count (structural metric).
    pub io_pins: u32,
    /// Functional score: number of selected outputs affected.
    pub score: u32,
}

/// The result of module filtering, with intermediate lists exposed
/// (C-INTERMEDIATE): `functional` is the list before the structural check.
#[derive(Debug, Clone, Default)]
pub struct FilterResult {
    /// Functionally-relevant instances (score > 0), any size.
    pub functional: Vec<Candidate>,
    /// Final candidate set `R` (functional ∩ structural).
    pub candidates: Vec<Candidate>,
}

/// Runs Algorithm 1.
///
/// `dataflow` must come from [`alice_dataflow::analyze`] on the same design.
/// With an empty `selected_outputs` in the config, every top output is
/// protected.
///
/// # Errors
///
/// Returns [`AliceError::UnknownOutput`] for bad output names.
pub fn filter_modules(
    design: &Design,
    dataflow: &DesignDataflow,
    cfg: &AliceConfig,
) -> Result<FilterResult, AliceError> {
    // Selected outputs O (default: all top outputs).
    let outputs: Vec<String> = if cfg.selected_outputs.is_empty() {
        let top = design
            .file
            .module(design.hierarchy.top.as_str())
            .expect("hierarchy was built from this file");
        top.ports
            .iter()
            .filter(|p| {
                matches!(
                    p.dir,
                    alice_verilog::ast::Direction::Output | alice_verilog::ast::Direction::Inout
                )
            })
            .map(|p| p.name.clone())
            .collect()
    } else {
        cfg.selected_outputs.clone()
    };
    // Lines 6-9: score instances by affected outputs.
    let scores = dataflow.score_instances(&outputs).map_err(|e| match e {
        alice_dataflow::DataflowError::UnknownOutput(o) => AliceError::UnknownOutput(o),
        alice_dataflow::DataflowError::UnknownModule(m) => {
            unreachable!("design validated: {m}")
        }
    })?;
    // Line 10: rank and select (all instances with positive score).
    let mut functional: Vec<Candidate> = design
        .instance_paths()
        .into_iter()
        .filter_map(|path| {
            let score = scores.get(&path.symbol()).copied().unwrap_or(0);
            if score == 0 {
                return None;
            }
            let module = design.module_of(path)?;
            let io_pins = design.io_pins_of(path)?;
            Some(Candidate {
                path,
                module,
                io_pins,
                score,
            })
        })
        .collect();
    functional.sort_by(|a, b| b.score.cmp(&a.score).then(a.path.cmp(&b.path)));
    // Lines 12-15: structural criterion (I/O pins fit the fabric budget).
    let candidates = functional
        .iter()
        .filter(|c| c.io_pins <= cfg.max_io_pins)
        .cloned()
        .collect();
    Ok(FilterResult {
        functional,
        candidates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
module small(input wire [2:0] a, output wire [2:0] y); assign y = ~a; endmodule
module wide(input wire [63:0] a, output wire [63:0] y); assign y = ~a; endmodule
module top(input wire [63:0] a, output wire [2:0] o1, output wire [63:0] o2);
  small s0(.a(a[2:0]), .y(o1));
  wide w0(.a(a), .y(o2));
endmodule
"#;

    fn design() -> Design {
        Design::from_source("t", SRC, None).expect("load")
    }

    #[test]
    fn structural_filter_drops_wide_modules() {
        let d = design();
        let df = alice_dataflow::analyze(&d.file, d.hierarchy.top.as_str()).expect("df");
        let cfg = AliceConfig {
            max_io_pins: 16,
            ..AliceConfig::default()
        };
        let r = filter_modules(&d, &df, &cfg).expect("filter");
        assert_eq!(r.functional.len(), 2, "both affect outputs");
        assert_eq!(r.candidates.len(), 1);
        assert_eq!(r.candidates[0].path, "top.s0");
    }

    #[test]
    fn selected_outputs_restrict_candidates() {
        let d = design();
        let df = alice_dataflow::analyze(&d.file, d.hierarchy.top.as_str()).expect("df");
        let cfg = AliceConfig {
            max_io_pins: 200,
            selected_outputs: vec!["o1".to_string()],
            ..AliceConfig::default()
        };
        let r = filter_modules(&d, &df, &cfg).expect("filter");
        assert_eq!(r.candidates.len(), 1);
        assert_eq!(r.candidates[0].path, "top.s0");
        assert_eq!(r.candidates[0].score, 1);
    }

    #[test]
    fn unknown_output_reported() {
        let d = design();
        let df = alice_dataflow::analyze(&d.file, d.hierarchy.top.as_str()).expect("df");
        let cfg = AliceConfig {
            selected_outputs: vec!["bogus".to_string()],
            ..AliceConfig::default()
        };
        assert!(matches!(
            filter_modules(&d, &df, &cfg),
            Err(AliceError::UnknownOutput(_))
        ));
    }

    #[test]
    fn empty_when_nothing_fits() {
        let d = design();
        let df = alice_dataflow::analyze(&d.file, d.hierarchy.top.as_str()).expect("df");
        let cfg = AliceConfig {
            max_io_pins: 2, // even `small` (6 pins) is too big
            ..AliceConfig::default()
        };
        let r = filter_modules(&d, &df, &cfg).expect("filter");
        assert!(r.candidates.is_empty());
        assert!(!r.functional.is_empty());
    }
}
