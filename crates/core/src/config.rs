//! ALICE flow configuration (the YAML file of Figure 3).

use crate::yaml::{Yaml, YamlError};
use alice_fabric::FabricArch;
use std::fmt;

/// How Eq. 1 turns fabric utilization into a score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoreModel {
    /// Reward high I/O and CLB utilization (the stated *intent* of the
    /// paper: poorly-utilized fabrics are easier to attack, §6). Default.
    #[default]
    UtilizationReward,
    /// Equation 1 exactly as printed in the paper, which rewards *low*
    /// utilization; kept for fidelity experiments. See `DESIGN.md` for the
    /// discrepancy discussion.
    AsPrinted,
}

/// Configuration for one ALICE run.
#[derive(Debug, Clone, PartialEq)]
pub struct AliceConfig {
    /// Maximum I/O pins of a candidate module / cluster (structural
    /// criterion of Algorithm 1 and 2).
    pub max_io_pins: u32,
    /// Maximum number of eFPGA instances in a solution.
    pub max_efpgas: u32,
    /// Weight of the I/O term in Eq. 1.
    pub alpha: f64,
    /// Weight of the CLB term in Eq. 1.
    pub beta: f64,
    /// Fabric architecture parameters (OpenFPGA XML equivalent).
    pub arch: FabricArch,
    /// Outputs to protect; empty means every top-level output.
    pub selected_outputs: Vec<String>,
    /// Scoring variant.
    pub score_model: ScoreModel,
    /// Optional cap on enumerated solutions (safety valve for the
    /// branch-and-bound of Algorithm 3).
    pub max_solutions: usize,
    /// Optional top module override (default: auto-detect).
    pub top: Option<String>,
    /// Worker threads for cluster characterization in the select stage
    /// (Algorithm 3's dominant cost). `0` means "use all available
    /// cores"; see [`AliceConfig::effective_jobs`]. Results are
    /// independent of this value.
    pub jobs: usize,
    /// Run the post-redaction `verify` stage: a SAT equivalence proof of
    /// the redacted design (with the correct bitstream pinned) against
    /// the original, via `alice-cec`.
    pub verify: bool,
    /// Wrong bitstreams to try in the verify stage's corruptibility
    /// sweep (`0` disables the sweep). Each flips a few truth-table key
    /// bits and measures the fraction of outputs provably corrupted.
    pub verify_wrong_keys: usize,
    /// Solver conflict budget per verify-stage SAT query; `None` is
    /// unlimited (the proof either finishes or runs forever — prefer a
    /// budget on untrusted inputs).
    pub verify_conflict_budget: Option<u64>,
    /// Portfolio width of the verify stage's equivalence proofs (the
    /// `alice` CLI's `--portfolio`, YAML `portfolio:`): race this many
    /// diversified SAT configurations per proof, first definitive answer
    /// wins. `1` (the default) is the classic single-solver path with
    /// byte-identical reports; racing never changes verdicts, only
    /// wall-clock.
    pub portfolio: usize,
    /// Use the incremental keyed-miter CEC path for the verify stage's
    /// wrong-key sweep (YAML `incremental_cec:`): encode the
    /// golden/revised pair once per worker with key bits left free and
    /// answer every key by `solve_with(assumptions)` on a long-lived
    /// solver, reusing learned clauses across keys. On by default;
    /// verdicts and corruption counts are identical either way (the
    /// pinned-constant path remains as the A/B baseline), only
    /// wall-clock changes. Only consulted when
    /// [`AliceConfig::verify_wrong_keys`] > 0 — a lone correct-key
    /// proof always uses the pinned path.
    pub incremental_cec: bool,
    /// Use the content-addressed characterization cache (the
    /// [`DesignDb`](crate::db::DesignDb)). On by default; the `alice`
    /// CLI's `--no-cache` turns it off for A/B measurements.
    pub cache: bool,
    /// Directory of the persistent artifact store backing the
    /// [`DesignDb`](crate::db::DesignDb) (the `alice` CLI's `--store`,
    /// YAML `store:`). `None` keeps caching in-memory only; ignored when
    /// [`AliceConfig::cache`] is off.
    pub store: Option<std::path::PathBuf>,
    /// Opportunistic-compaction byte budget for the persistent store
    /// (the `alice` CLI's `--store-budget`, YAML `store_budget:`): a
    /// store flush that finds more than 2× this many bytes LRU-compacts
    /// down to the budget, so long-running sweeps stay bounded without
    /// an explicit `alice store gc`. `None` disables auto-compaction;
    /// meaningless without [`AliceConfig::store`].
    pub store_budget: Option<u64>,
    /// Write a Chrome trace-event JSON file (Perfetto-loadable) of the
    /// run's span tree here (the `alice` CLI's `--trace`, YAML
    /// `trace:`). `None` leaves tracing disabled — every span costs one
    /// relaxed atomic load and a branch.
    pub trace: Option<std::path::PathBuf>,
    /// Write a Prometheus-style text snapshot of the run's metric
    /// registry here (the `alice` CLI's `--metrics`, YAML `metrics:`).
    /// `None` leaves metric recording disabled.
    pub metrics: Option<std::path::PathBuf>,
}

impl Default for AliceConfig {
    fn default() -> Self {
        AliceConfig {
            max_io_pins: 64,
            max_efpgas: 2,
            alpha: 1.0,
            beta: 1.0,
            arch: FabricArch::default(),
            selected_outputs: Vec::new(),
            score_model: ScoreModel::default(),
            max_solutions: 1_000_000,
            top: None,
            jobs: 0,
            verify: false,
            verify_wrong_keys: 0,
            verify_conflict_budget: Some(5_000_000),
            portfolio: 1,
            incremental_cec: true,
            cache: true,
            store: None,
            store_budget: None,
            trace: None,
            metrics: None,
        }
    }
}

impl AliceConfig {
    /// The paper's `cfg1`: at most 64 I/O pins and two eFPGAs, α = β = 1.
    pub fn cfg1() -> Self {
        AliceConfig {
            max_io_pins: 64,
            max_efpgas: 2,
            ..AliceConfig::default()
        }
    }

    /// The paper's `cfg2`: at most 96 I/O pins and one eFPGA, α = β = 1.
    pub fn cfg2() -> Self {
        AliceConfig {
            max_io_pins: 96,
            max_efpgas: 1,
            ..AliceConfig::default()
        }
    }

    /// The worker-thread count to actually use: `jobs` itself, or the
    /// machine's available parallelism when `jobs` is `0`.
    pub fn effective_jobs(&self) -> usize {
        crate::par::resolve_jobs(self.jobs)
    }

    /// Parses a YAML configuration file.
    ///
    /// # Errors
    ///
    /// Returns [`YamlError`] for malformed YAML or out-of-range values.
    ///
    /// # Example
    ///
    /// ```
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let cfg = alice_core::config::AliceConfig::from_yaml("
    /// max_io_pins: 96
    /// max_efpgas: 1
    /// alpha: 1.0
    /// beta: 1.0
    /// selected_outputs:
    ///   - dout
    /// ")?;
    /// assert_eq!(cfg.max_io_pins, 96);
    /// assert_eq!(cfg.selected_outputs, vec!["dout".to_string()]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_yaml(src: &str) -> Result<Self, YamlError> {
        let y = Yaml::parse(src)?;
        let mut cfg = AliceConfig::default();
        let bad = |what: &str| YamlError {
            line: 0,
            message: format!("invalid value for `{what}`"),
        };
        if let Some(v) = y.get("max_io_pins") {
            cfg.max_io_pins = v.as_u32().ok_or_else(|| bad("max_io_pins"))?;
        }
        if let Some(v) = y.get("max_efpgas") {
            cfg.max_efpgas = v.as_u32().ok_or_else(|| bad("max_efpgas"))?;
        }
        if let Some(v) = y.get("alpha") {
            cfg.alpha = v.as_f64().ok_or_else(|| bad("alpha"))?;
        }
        if let Some(v) = y.get("beta") {
            cfg.beta = v.as_f64().ok_or_else(|| bad("beta"))?;
        }
        if let Some(v) = y.get("jobs") {
            cfg.jobs = v.as_u32().ok_or_else(|| bad("jobs"))? as usize;
        }
        if let Some(v) = y.get("verify") {
            cfg.verify = v.as_bool().ok_or_else(|| bad("verify"))?;
        }
        if let Some(v) = y.get("cache") {
            cfg.cache = v.as_bool().ok_or_else(|| bad("cache"))?;
        }
        if let Some(v) = y.get("store") {
            let dir = v.as_str().ok_or_else(|| bad("store"))?;
            if dir.is_empty() {
                return Err(bad("store"));
            }
            cfg.store = Some(std::path::PathBuf::from(dir));
        }
        if let Some(v) = y.get("store_budget") {
            let budget = v.as_u64().ok_or_else(|| bad("store_budget"))?;
            if budget == 0 {
                return Err(bad("store_budget"));
            }
            cfg.store_budget = Some(budget);
        }
        if let Some(v) = y.get("trace") {
            let path = v.as_str().ok_or_else(|| bad("trace"))?;
            if path.is_empty() {
                return Err(bad("trace"));
            }
            cfg.trace = Some(std::path::PathBuf::from(path));
        }
        if let Some(v) = y.get("metrics") {
            let path = v.as_str().ok_or_else(|| bad("metrics"))?;
            if path.is_empty() {
                return Err(bad("metrics"));
            }
            cfg.metrics = Some(std::path::PathBuf::from(path));
        }
        if let Some(v) = y.get("wrong_keys") {
            cfg.verify_wrong_keys = v.as_u32().ok_or_else(|| bad("wrong_keys"))? as usize;
        }
        if let Some(v) = y.get("portfolio") {
            let n = v.as_u32().ok_or_else(|| bad("portfolio"))?;
            if n == 0 {
                return Err(bad("portfolio"));
            }
            cfg.portfolio = n as usize;
        }
        if let Some(v) = y.get("incremental_cec") {
            cfg.incremental_cec = v.as_bool().ok_or_else(|| bad("incremental_cec"))?;
        }
        if let Some(v) = y.get("verify_budget") {
            let budget = v.as_u32().ok_or_else(|| bad("verify_budget"))?;
            cfg.verify_conflict_budget = if budget == 0 {
                None
            } else {
                Some(u64::from(budget))
            };
        }
        if let Some(v) = y.get("top") {
            cfg.top = Some(v.as_str().ok_or_else(|| bad("top"))?.to_string());
        }
        if let Some(v) = y.get("score_model") {
            cfg.score_model = match v.as_str() {
                Some("utilization_reward") => ScoreModel::UtilizationReward,
                Some("as_printed") => ScoreModel::AsPrinted,
                _ => return Err(bad("score_model")),
            };
        }
        if let Some(list) = y.get("selected_outputs").and_then(Yaml::as_list) {
            cfg.selected_outputs = list
                .iter()
                .map(|v| v.as_str().map(|s| s.to_string()))
                .collect::<Option<Vec<_>>>()
                .ok_or_else(|| bad("selected_outputs"))?;
        }
        if let Some(f) = y.get("fabric") {
            if let Some(v) = f.get("lut_inputs") {
                cfg.arch.lut_inputs = v.as_u32().ok_or_else(|| bad("fabric.lut_inputs"))?;
            }
            if let Some(v) = f.get("les_per_clb") {
                cfg.arch.les_per_clb = v.as_u32().ok_or_else(|| bad("fabric.les_per_clb"))?;
            }
            if let Some(v) = f.get("gpio_per_tile") {
                cfg.arch.gpio_per_tile = v.as_u32().ok_or_else(|| bad("fabric.gpio_per_tile"))?;
            }
            if let Some(v) = f.get("max_dim") {
                cfg.arch.max_dim = v.as_u32().ok_or_else(|| bad("fabric.max_dim"))?;
            }
            if let Some(v) = f.get("channel_width") {
                cfg.arch.channel_width = v.as_u32().ok_or_else(|| bad("fabric.channel_width"))?;
            }
        }
        Ok(cfg)
    }
}

impl fmt::Display for AliceConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} I/O pins, {} eFPGA(s), alpha={}, beta={}",
            self.max_io_pins, self.max_efpgas, self.alpha, self.beta
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        let c1 = AliceConfig::cfg1();
        assert_eq!((c1.max_io_pins, c1.max_efpgas), (64, 2));
        let c2 = AliceConfig::cfg2();
        assert_eq!((c2.max_io_pins, c2.max_efpgas), (96, 1));
        assert_eq!(c1.alpha, 1.0);
        assert_eq!(c1.beta, 1.0);
    }

    #[test]
    fn yaml_overrides_fabric_params() {
        let cfg =
            AliceConfig::from_yaml("max_io_pins: 128\nfabric:\n  max_dim: 30\n  channel_width: 12")
                .expect("parse");
        assert_eq!(cfg.max_io_pins, 128);
        assert_eq!(cfg.arch.max_dim, 30);
        assert_eq!(cfg.arch.channel_width, 12);
        // untouched defaults survive
        assert_eq!(cfg.arch.lut_inputs, 4);
    }

    #[test]
    fn bad_value_is_error() {
        assert!(AliceConfig::from_yaml("max_io_pins: lots").is_err());
        assert!(AliceConfig::from_yaml("score_model: whatever").is_err());
        assert!(AliceConfig::from_yaml("jobs: many").is_err());
    }

    #[test]
    fn verify_keys_parse() {
        let cfg = AliceConfig::from_yaml("verify: true\nwrong_keys: 3\nverify_budget: 1000")
            .expect("parse");
        assert!(cfg.verify);
        assert_eq!(cfg.verify_wrong_keys, 3);
        assert_eq!(cfg.verify_conflict_budget, Some(1000));
        let unlimited = AliceConfig::from_yaml("verify_budget: 0").expect("parse");
        assert_eq!(unlimited.verify_conflict_budget, None);
        assert!(!unlimited.verify, "verify defaults to off");
        assert!(AliceConfig::from_yaml("verify: maybe").is_err());
        assert!(AliceConfig::from_yaml("wrong_keys: lots").is_err());
    }

    #[test]
    fn incremental_cec_parses() {
        assert!(AliceConfig::default().incremental_cec, "on by default");
        let cfg = AliceConfig::from_yaml("incremental_cec: false").expect("parse");
        assert!(!cfg.incremental_cec);
        assert!(AliceConfig::from_yaml("incremental_cec: maybe").is_err());
    }

    #[test]
    fn portfolio_parses() {
        assert_eq!(AliceConfig::default().portfolio, 1, "default is classic");
        let cfg = AliceConfig::from_yaml("portfolio: 4").expect("parse");
        assert_eq!(cfg.portfolio, 4);
        assert!(AliceConfig::from_yaml("portfolio: 0").is_err(), "zero");
        assert!(AliceConfig::from_yaml("portfolio: lots").is_err());
    }

    #[test]
    fn store_parses() {
        let cfg = AliceConfig::from_yaml("store: /tmp/alice-store").expect("parse");
        assert_eq!(
            cfg.store,
            Some(std::path::PathBuf::from("/tmp/alice-store"))
        );
        assert!(AliceConfig::from_yaml("store:").is_err(), "empty path");
        assert_eq!(AliceConfig::default().store, None);
    }

    #[test]
    fn store_budget_parses() {
        let cfg = AliceConfig::from_yaml("store: d\nstore_budget: 268435456").expect("parse");
        assert_eq!(cfg.store_budget, Some(268_435_456));
        assert_eq!(AliceConfig::default().store_budget, None);
        assert!(AliceConfig::from_yaml("store_budget: lots").is_err());
        assert!(
            AliceConfig::from_yaml("store_budget: 0").is_err(),
            "zero budget"
        );
    }

    #[test]
    fn trace_and_metrics_parse() {
        let cfg = AliceConfig::from_yaml("trace: out.json\nmetrics: metrics.txt").expect("parse");
        assert_eq!(cfg.trace, Some(std::path::PathBuf::from("out.json")));
        assert_eq!(cfg.metrics, Some(std::path::PathBuf::from("metrics.txt")));
        assert_eq!(AliceConfig::default().trace, None);
        assert_eq!(AliceConfig::default().metrics, None);
        assert!(AliceConfig::from_yaml("trace:").is_err(), "empty path");
        assert!(AliceConfig::from_yaml("metrics:").is_err(), "empty path");
    }

    #[test]
    fn jobs_defaults_to_auto() {
        let cfg = AliceConfig::default();
        assert_eq!(cfg.jobs, 0);
        assert!(cfg.effective_jobs() >= 1);
        let fixed = AliceConfig {
            jobs: 3,
            ..AliceConfig::default()
        };
        assert_eq!(fixed.effective_jobs(), 3);
        let parsed = AliceConfig::from_yaml("jobs: 2").expect("parse");
        assert_eq!(parsed.jobs, 2);
    }
}
