//! The shared design database: a content-addressed characterization cache.
//!
//! Algorithm 3 fabric characterization dominates the flow's runtime (the
//! `select t` column of Table 2), and it keeps redoing identical work:
//! every instance of a module re-elaborates and re-LUT-maps the same RTL,
//! every same-shaped cluster re-runs the same fabric sizing, and a
//! benchmarks × configurations sweep (the `suite` binary, ARIANNA-style
//! fabric-customization loops) repeats all of it per configuration.
//!
//! [`DesignDb`] memoizes the three expensive oracles behind
//! **content-addressed** keys, so results are shared wherever the inputs
//! are structurally identical — across instances, across clusters, across
//! flow runs, and across designs:
//!
//! | cached step | key |
//! |---|---|
//! | RTL elaboration | hash of the module's source closure (its printed definition plus every module it transitively instantiates) |
//! | LUT mapping | elaborated-netlist [structural hash](alice_netlist::ir::Netlist::structural_hash) + LUT input count `k` |
//! | fabric sizing ([`create_efpga`]) | *name-free* [structural hash](alice_netlist::lutmap::MappedNetlist::structural_hash) of the merged cluster network + the fabric architecture parameters |
//!
//! The fabric key deliberately ignores port and register names: packing,
//! sizing, bitstream generation, and the cost model never read them, so
//! two clusters that merge to the same shape — say `{sbox0, sbox1}` and
//! `{sbox2, sbox5}` in DES3 — share one characterization even though
//! their prefixed port names differ. All caches are thread-safe; the
//! select stage's sharded workers and concurrent suite flows hit them
//! freely.
//!
//! # Persistence
//!
//! A [`DesignDb::with_store`] db is additionally backed by the on-disk
//! [`Store`] (`alice-store`): misses are written through, and a *later
//! process* over the same store directory serves them as **disk hits**
//! instead of recomputing — the keys are content-addressed, so nothing
//! about the original process needs to survive. Opening a store only
//! indexes the sharded segments (offsets, not payloads); each record's
//! bytes are checksum-verified on first access and served as a
//! zero-copy [`Payload`](alice_store::Payload) view straight out of the
//! shard's memory mapping (decoders borrow the mapped bytes — no heap
//! copy on a warm disk hit), so anything corrupt, truncated, or written
//! by a different format version silently degrades to a recompute.
//! Writes land in per-key shards with per-shard locks, so concurrent
//! dbs over one directory flush without contending on a whole-kind
//! segment. Beyond the three oracles above, the store
//! also carries the CEC proof cache and the sweeper's per-pair lemma
//! segment (see `alice_cec::cache`), handed to the verify stage via
//! [`DesignDb::store`].

use crate::error::AliceError;
use alice_fabric::{create_efpga, EfpgaImpl, FabricArch};
use alice_intern::StableHasher;
use alice_netlist::ir::Netlist;
use alice_netlist::lutmap::{map_luts, MappedNetlist};
use alice_store::{artifact, Kind, Reader, Store, Writer};
use alice_verilog::ast::SourceFile;
use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A 128-bit content key.
type Key = (u64, u64);

/// One cache slot: cloned out of the map so the map lock is never held
/// during computation, while [`OnceLock::get_or_init`] guarantees a
/// missed key is computed exactly once — concurrent workers that race on
/// the same key block on the first computation instead of redoing it.
type Cell<V> = Arc<OnceLock<V>>;

/// A keyed once-cache: map lock only guards slot lookup, the slot itself
/// serializes computation.
type CacheMap<K, V> = Mutex<HashMap<K, Cell<V>>>;

/// Cumulative hit/miss counters of one [`DesignDb`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounts {
    /// Lookups answered from the in-memory cache.
    pub hits: u64,
    /// Lookups answered from the on-disk [`Store`] (cold in this
    /// process, warm on disk). Zero when no store is attached.
    pub disk_hits: u64,
    /// Lookups that had to compute (and then populated the cache).
    pub misses: u64,
}

impl CacheCounts {
    /// Counter difference since an earlier snapshot (for per-run
    /// reporting against a long-lived shared db).
    #[must_use]
    pub fn since(&self, earlier: CacheCounts) -> CacheCounts {
        CacheCounts {
            hits: self.hits - earlier.hits,
            disk_hits: self.disk_hits - earlier.disk_hits,
            misses: self.misses - earlier.misses,
        }
    }

    /// Served fraction of all lookups — memory and disk hits both count
    /// as served (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.disk_hits + self.misses;
        if total == 0 {
            0.0
        } else {
            (self.hits + self.disk_hits) as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct Stats {
    hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
}

/// Observability mirrors of the per-db [`Stats`]: process-wide oracle
/// cache resolution counts, exported via `--metrics`.
static DB_HITS: alice_obs::Counter = alice_obs::Counter::new(
    "alice_db_cache_hits_total",
    "DesignDb lookups served from the in-memory once-cache",
);
static DB_DISK_HITS: alice_obs::Counter = alice_obs::Counter::new(
    "alice_db_cache_disk_hits_total",
    "DesignDb lookups served by decoding a persistent-store record",
);
static DB_MISSES: alice_obs::Counter = alice_obs::Counter::new(
    "alice_db_cache_misses_total",
    "DesignDb lookups that ran the underlying oracle",
);

impl Stats {
    fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        DB_HITS.inc();
    }
    fn disk_hit(&self) {
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
        DB_DISK_HITS.inc();
    }
    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        DB_MISSES.inc();
    }
}

/// The shared per-run (or per-suite) design database. See the module
/// docs for what is cached and how keys are formed.
///
/// Cheap to share: wrap it in an [`Arc`] and hand clones to every flow
/// that should reuse characterizations ([`Flow::with_db`]).
///
/// [`Flow::with_db`]: crate::flow::Flow::with_db
#[derive(Debug, Default)]
pub struct DesignDb {
    disabled: bool,
    store: Option<Arc<Store>>,
    netlists: CacheMap<Key, Result<Arc<Netlist>, AliceError>>,
    lutmaps: CacheMap<(Key, u32), Result<Arc<MappedNetlist>, AliceError>>,
    fabrics: CacheMap<(Key, Key), Result<Arc<EfpgaImpl>, String>>,
    stats: Stats,
}

/// How one lookup was served, for the counters.
#[derive(Clone, Copy, PartialEq)]
enum Served {
    Memory,
    Disk,
    Computed,
}

/// Looks `key` up in `map`, with a three-level resolution: the in-memory
/// once-cache (a hit), then `load` — the on-disk store's decode path (a
/// disk hit), then `compute` + `persist` (a miss). Each level runs
/// exactly once per key even under contention; workers that block on
/// another worker's in-flight resolution count as memory hits — they
/// were served without computing.
fn cached<K: std::hash::Hash + Eq, V: Clone>(
    map: &CacheMap<K, V>,
    stats: &Stats,
    key: K,
    load: impl FnOnce() -> Option<V>,
    persist: impl FnOnce(&V),
    compute: impl FnOnce() -> V,
) -> V {
    let cell = map
        .lock()
        .expect("cache map")
        .entry(key)
        .or_insert_with(|| Arc::new(OnceLock::new()))
        .clone();
    let mut served = Served::Memory;
    let value = cell.get_or_init(|| match load() {
        Some(v) => {
            served = Served::Disk;
            v
        }
        None => {
            served = Served::Computed;
            let v = compute();
            persist(&v);
            v
        }
    });
    match served {
        Served::Memory => stats.hit(),
        Served::Disk => stats.disk_hit(),
        Served::Computed => stats.miss(),
    }
    value.clone()
}

/// Folds a composite in-memory cache key into the store's flat 128-bit
/// key space, tagged by kind so the lanes cannot alias.
fn store_key(kind: Kind, parts: &[u64]) -> Key {
    let mut h = StableHasher::new();
    h.write_str(kind.label());
    for &p in parts {
        h.write_u64(p);
    }
    h.finish()
}

/// Hashes the fabric architecture parameters into a cache key lane.
fn arch_key(arch: &FabricArch) -> Key {
    let mut h = StableHasher::new();
    h.write_u32(arch.lut_inputs);
    h.write_u32(arch.les_per_clb);
    h.write_u32(arch.gpio_per_tile);
    h.write_u32(arch.max_dim);
    h.write_u32(arch.channel_width);
    h.finish()
}

/// Content key of a module: its printed definition plus the printed
/// definitions of every module it transitively instantiates, in
/// name-sorted order. Two textually identical module closures — even in
/// different designs — get the same key.
pub fn module_fingerprint(file: &SourceFile, module: &str) -> Key {
    let mut names: Vec<&str> = Vec::new();
    let mut stack = vec![module];
    while let Some(m) = stack.pop() {
        if names.contains(&m) {
            continue;
        }
        names.push(m);
        if let Some(def) = file.module(m) {
            for inst in def.instances() {
                stack.push(&inst.module);
            }
        }
    }
    names.sort_unstable();
    let mut h = StableHasher::new();
    for name in names {
        h.write_str(name);
        match file.module(name) {
            Some(def) => h.write_str(&alice_verilog::print_module_to_string(def)),
            None => h.write_str(""),
        }
    }
    h.finish()
}

impl DesignDb {
    /// A fresh, empty, enabled database.
    pub fn new() -> DesignDb {
        DesignDb::default()
    }

    /// A database that never stores or returns anything (the `--no-cache`
    /// A/B baseline); its counters stay zero.
    pub fn new_disabled() -> DesignDb {
        DesignDb {
            disabled: true,
            ..DesignDb::default()
        }
    }

    /// A database backed by the persistent [`Store`] at `dir`: misses are
    /// written through to disk, and a later process (or a fresh db over
    /// the same directory) serves them as disk hits instead of
    /// recomputing. Corrupt or version-mismatched store contents degrade
    /// to recomputes, never errors.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] only when the store directory cannot be
    /// created.
    pub fn with_store(dir: impl Into<PathBuf>) -> io::Result<DesignDb> {
        Ok(DesignDb::with_store_handle(Arc::new(Store::open(dir)?)))
    }

    /// A database over an already-open [`Store`] handle (so several dbs —
    /// or the CEC proof cache — can share one store).
    pub fn with_store_handle(store: Arc<Store>) -> DesignDb {
        DesignDb {
            store: Some(store),
            ..DesignDb::default()
        }
    }

    /// The attached persistent store, if any.
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.store.as_ref()
    }

    /// Commits any pending store writes to disk (also happens when the
    /// last reference to the store drops); a no-op without a store.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] when the commit fails; in-memory caching
    /// is unaffected.
    pub fn flush_store(&self) -> io::Result<()> {
        match &self.store {
            Some(s) => s.flush(),
            None => Ok(()),
        }
    }

    /// Whether lookups are live (false only for [`DesignDb::new_disabled`]).
    pub fn is_enabled(&self) -> bool {
        !self.disabled
    }

    /// Snapshot of the cumulative hit/miss counters.
    pub fn counts(&self) -> CacheCounts {
        CacheCounts {
            hits: self.stats.hits.load(Ordering::Relaxed),
            disk_hits: self.stats.disk_hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
        }
    }

    /// Counts a served-from-store event from a collaborating cache (the
    /// CEC proof cache lives in `alice-cec` but shares this db's store
    /// and its disk-hit attribution).
    pub fn count_external_disk_hit(&self) {
        self.stats.disk_hit();
    }

    /// Counts a computed-and-persisted event from a collaborating cache.
    pub fn count_external_miss(&self) {
        self.stats.miss();
    }

    /// Elaborates `module` (memoized by source-closure fingerprint;
    /// failures are cached too — elaboration is deterministic, so the
    /// same source always produces the same error).
    ///
    /// # Errors
    ///
    /// Returns [`AliceError::Elaborate`] when elaboration fails.
    pub fn elaborate(&self, file: &SourceFile, module: &str) -> Result<Arc<Netlist>, AliceError> {
        let run = || {
            let _span = alice_obs::span_with("db.elaborate", || module.to_string());
            alice_netlist::elaborate::elaborate(file, module)
                .map(Arc::new)
                .map_err(|e| AliceError::Elaborate(format!("{module}: {e}")))
        };
        if self.disabled {
            return run();
        }
        let key = module_fingerprint(file, module);
        let skey = store_key(Kind::Netlist, &[key.0, key.1]);
        cached(
            &self.netlists,
            &self.stats,
            key,
            || {
                let bytes = self.store.as_ref()?.get(Kind::Netlist, skey)?;
                let mut r = Reader::new(&bytes);
                if artifact::read_result_tag(&mut r).ok()? {
                    Some(Ok(Arc::new(artifact::read_netlist(&mut r).ok()?)))
                } else {
                    Some(Err(AliceError::Elaborate(r.get_str().ok()?.to_string())))
                }
            },
            |v| {
                let Some(store) = &self.store else { return };
                let mut w = Writer::new();
                match v {
                    Ok(n) => {
                        artifact::write_result_tag(&mut w, true);
                        artifact::write_netlist(&mut w, n);
                    }
                    Err(AliceError::Elaborate(msg)) => {
                        artifact::write_result_tag(&mut w, false);
                        w.put_str(msg);
                    }
                    Err(_) => return, // only the elaborate variant occurs here
                }
                store.put(Kind::Netlist, skey, w.into_bytes());
            },
            run,
        )
    }

    /// Elaborates and LUT-maps `module` (both steps memoized).
    ///
    /// # Errors
    ///
    /// Returns [`AliceError::Elaborate`] when elaboration or mapping
    /// fails.
    pub fn map_module(
        &self,
        file: &SourceFile,
        module: &str,
        k: u32,
    ) -> Result<Arc<MappedNetlist>, AliceError> {
        let netlist = self.elaborate(file, module)?;
        let run = || {
            let _span = alice_obs::span_with("db.lutmap", || module.to_string());
            map_luts(&netlist, k)
                .map(Arc::new)
                .map_err(|e| AliceError::Elaborate(format!("{module}: {e}")))
        };
        if self.disabled {
            return run();
        }
        let nh = netlist.structural_hash();
        let key = (nh, k);
        let skey = store_key(Kind::LutMap, &[nh.0, nh.1, u64::from(k)]);
        cached(
            &self.lutmaps,
            &self.stats,
            key,
            || {
                let bytes = self.store.as_ref()?.get(Kind::LutMap, skey)?;
                let mut r = Reader::new(&bytes);
                if artifact::read_result_tag(&mut r).ok()? {
                    Some(Ok(Arc::new(artifact::read_mapped(&mut r).ok()?)))
                } else {
                    Some(Err(AliceError::Elaborate(r.get_str().ok()?.to_string())))
                }
            },
            |v| {
                let Some(store) = &self.store else { return };
                let mut w = Writer::new();
                match v {
                    Ok(m) => {
                        artifact::write_result_tag(&mut w, true);
                        artifact::write_mapped(&mut w, m);
                    }
                    Err(AliceError::Elaborate(msg)) => {
                        artifact::write_result_tag(&mut w, false);
                        w.put_str(msg);
                    }
                    Err(_) => return,
                }
                store.put(Kind::LutMap, skey, w.into_bytes());
            },
            run,
        )
    }

    /// Runs the fabric oracle on a merged cluster network (memoized by
    /// name-free structure + architecture). The `Err` branch carries the
    /// oracle's message and *is* cached — in memory and on disk —
    /// so infeasible shapes stay infeasible without re-proving it.
    ///
    /// # Errors
    ///
    /// Returns the fabric oracle's error text when the cluster fits no
    /// permitted fabric.
    pub fn characterize(
        &self,
        network: &MappedNetlist,
        arch: &FabricArch,
    ) -> Result<Arc<EfpgaImpl>, String> {
        let run = || {
            let _span = alice_obs::span("db.characterize");
            create_efpga(network, arch)
                .map(Arc::new)
                .map_err(|e| e.to_string())
        };
        if self.disabled {
            return run();
        }
        let nh = network.structural_hash();
        let ah = arch_key(arch);
        let key = (nh, ah);
        let skey = store_key(Kind::Fabric, &[nh.0, nh.1, ah.0, ah.1]);
        cached(
            &self.fabrics,
            &self.stats,
            key,
            || {
                let bytes = self.store.as_ref()?.get(Kind::Fabric, skey)?;
                let mut r = Reader::new(&bytes);
                if artifact::read_result_tag(&mut r).ok()? {
                    Some(Ok(Arc::new(artifact::read_efpga(&mut r).ok()?)))
                } else {
                    Some(Err(r.get_str().ok()?.to_string()))
                }
            },
            |v| {
                let Some(store) = &self.store else { return };
                let mut w = Writer::new();
                match v {
                    Ok(e) => {
                        artifact::write_result_tag(&mut w, true);
                        artifact::write_efpga(&mut w, e);
                    }
                    Err(msg) => {
                        artifact::write_result_tag(&mut w, false);
                        w.put_str(msg);
                    }
                }
                store.put(Kind::Fabric, skey, w.into_bytes());
            },
            run,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alice_verilog::parse_source;

    const SRC: &str = r#"
module add8(input wire [7:0] a, input wire [7:0] b, output wire [7:0] y);
  assign y = a + b;
endmodule
module top(input wire [7:0] p, input wire [7:0] q, output wire [7:0] o1, output wire [7:0] o2);
  add8 u0(.a(p), .b(q), .y(o1));
  add8 u1(.a(q), .b(p), .y(o2));
endmodule
"#;

    #[test]
    fn repeated_mapping_hits_the_cache() {
        let f = parse_source(SRC).expect("parse");
        let db = DesignDb::new();
        let m1 = db.map_module(&f, "add8", 4).expect("map");
        let c0 = db.counts();
        assert_eq!(c0.hits, 0);
        assert!(c0.misses >= 2, "elaborate + map are both misses");
        let m2 = db.map_module(&f, "add8", 4).expect("map");
        let c1 = db.counts();
        assert!(c1.hits >= 2, "second call hits elaborate + map");
        assert_eq!(c1.misses, c0.misses);
        assert_eq!(m1.lut_count(), m2.lut_count());
        assert!(Arc::ptr_eq(&m1, &m2), "cache returns the same Arc");
    }

    #[test]
    fn fingerprint_is_content_addressed_across_files() {
        let f1 = parse_source(SRC).expect("parse");
        // A different design containing a textually identical add8.
        let f2 = parse_source(
            "module add8(input wire [7:0] a, input wire [7:0] b, output wire [7:0] y);\n  assign y = a + b;\nendmodule",
        )
        .expect("parse");
        assert_eq!(
            module_fingerprint(&f1, "add8"),
            module_fingerprint(&f2, "add8")
        );
        assert_ne!(
            module_fingerprint(&f1, "add8"),
            module_fingerprint(&f1, "top")
        );
    }

    #[test]
    fn characterization_shares_same_shaped_networks() {
        let f = parse_source(SRC).expect("parse");
        let db = DesignDb::new();
        let m = db.map_module(&f, "add8", 4).expect("map");
        let arch = FabricArch::default();
        let a = db.characterize(&m, &arch).expect("fits");
        let before = db.counts();
        let b = db.characterize(&m, &arch).expect("fits");
        let after = db.counts();
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(a.size, b.size);
        assert_eq!(a.bitstream, b.bitstream);
    }

    #[test]
    fn disabled_db_computes_but_never_counts() {
        let f = parse_source(SRC).expect("parse");
        let db = DesignDb::new_disabled();
        assert!(!db.is_enabled());
        db.map_module(&f, "add8", 4).expect("map");
        db.map_module(&f, "add8", 4).expect("map");
        assert_eq!(db.counts(), CacheCounts::default());
    }

    #[test]
    fn counts_since_subtracts() {
        let a = CacheCounts {
            hits: 5,
            disk_hits: 4,
            misses: 3,
        };
        let b = CacheCounts {
            hits: 2,
            disk_hits: 1,
            misses: 1,
        };
        assert_eq!(
            a.since(b),
            CacheCounts {
                hits: 3,
                disk_hits: 3,
                misses: 2,
            }
        );
        assert!((a.hit_rate() - 9.0 / 12.0).abs() < 1e-12);
    }

    fn store_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "alice-db-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fresh_db_over_same_store_serves_disk_hits() {
        let dir = store_dir("roundtrip");
        let f = parse_source(SRC).expect("parse");
        let arch = FabricArch::default();
        let (m1, e1) = {
            let db = DesignDb::with_store(&dir).expect("open");
            let m = db.map_module(&f, "add8", 4).expect("map");
            let e = db.characterize(&m, &arch).expect("fits");
            db.flush_store().expect("flush");
            let c = db.counts();
            assert_eq!(c.disk_hits, 0, "first pass computes everything");
            assert!(c.misses >= 3, "elaborate + map + characterize");
            (m, e)
        };
        // A fresh db over the same directory models a second process.
        let db = DesignDb::with_store(&dir).expect("reopen");
        let m2 = db.map_module(&f, "add8", 4).expect("map");
        let e2 = db.characterize(&m2, &arch).expect("fits");
        let c = db.counts();
        assert_eq!(c.misses, 0, "everything is served from disk");
        assert!(c.disk_hits >= 3, "elaborate + map + characterize from disk");
        assert_eq!(m2.structural_hash(), m1.structural_hash());
        assert_eq!(e2.size, e1.size);
        assert_eq!(e2.bitstream, e1.bitstream);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn infeasible_characterizations_persist_too() {
        let dir = store_dir("infeasible");
        let f = parse_source(SRC).expect("parse");
        // An architecture too small for anything: max_dim 0 fits nothing.
        let arch = FabricArch {
            max_dim: 0,
            ..FabricArch::default()
        };
        let msg = {
            let db = DesignDb::with_store(&dir).expect("open");
            let m = db.map_module(&f, "add8", 4).expect("map");
            let msg = db.characterize(&m, &arch).expect_err("infeasible");
            db.flush_store().expect("flush");
            msg
        };
        let db = DesignDb::with_store(&dir).expect("reopen");
        let m = db.map_module(&f, "add8", 4).expect("map");
        let before = db.counts();
        let again = db.characterize(&m, &arch).expect_err("still infeasible");
        let after = db.counts();
        assert_eq!(again, msg, "identical cached message");
        assert_eq!(after.misses, before.misses, "no recompute");
        assert_eq!(after.disk_hits, before.disk_hits + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_store_record_degrades_to_recompute() {
        let dir = store_dir("bitflip");
        let f = parse_source(SRC).expect("parse");
        {
            let db = DesignDb::with_store(&dir).expect("open");
            db.map_module(&f, "add8", 4).expect("map");
            db.flush_store().expect("flush");
        }
        // Flip one payload bit in every shard segment that has content.
        for kind in alice_store::Kind::ALL {
            for shard in 0..alice_store::SHARD_COUNT {
                let path = dir.join(kind.shard_file_name(shard));
                if let Ok(mut bytes) = std::fs::read(&path) {
                    if bytes.len() > 41 {
                        let mid = 14 + 20 + (bytes.len() - 14 - 36) / 2;
                        bytes[mid] ^= 0x08;
                        std::fs::write(&path, &bytes).expect("rewrite");
                    }
                }
            }
        }
        let db = DesignDb::with_store(&dir).expect("reopen");
        let m = db.map_module(&f, "add8", 4).expect("recomputes");
        let c = db.counts();
        assert!(c.misses > 0, "corrupt records are recomputed, not errors");
        assert!(m.lut_count() > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
