//! Deterministic work-sharding over scoped threads.
//!
//! The flow's parallel sections (fabric characterization in the select
//! stage, the batch suite driver in `alice-bench`) all use the same
//! primitive: N independent index-addressed tasks, pulled from a shared
//! counter by a fixed pool of `std::thread::scope` workers, with results
//! reassembled in index order. Scheduling therefore never affects
//! output — `jobs = 1` and `jobs = 64` produce identical results.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a `jobs` knob: the value itself, or the machine's available
/// parallelism when it is `0` ("auto"). The single source of truth for
/// every jobs-style option in the workspace.
pub fn resolve_jobs(jobs: usize) -> usize {
    if jobs > 0 {
        jobs
    } else {
        std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(1)
    }
}

/// Runs `worker` over indices `0..n` on up to `jobs` scoped threads and
/// returns the results in index order.
///
/// `jobs` is clamped to `[1, n]`; with one job (or at most one task) the
/// work runs inline on the caller's thread. A panicking worker poisons
/// the run and propagates the panic once the scope joins.
pub fn shard<T: Send>(n: usize, jobs: usize, worker: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let jobs = jobs.clamp(1, n.max(1));
    if jobs <= 1 || n <= 1 {
        return (0..n).map(worker).collect();
    }
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| {
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, worker(i)));
                }
                done.lock().expect("worker panicked").extend(local);
            });
        }
    });
    let mut out = done.into_inner().expect("worker panicked");
    out.sort_by_key(|&(i, _)| i);
    out.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order_for_any_job_count() {
        let expect: Vec<usize> = (0..100).map(|i| i * i).collect();
        for jobs in [1, 2, 3, 8, 200] {
            assert_eq!(shard(100, jobs, |i| i * i), expect);
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        assert_eq!(shard(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn every_index_runs_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        let counts: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        shard(64, 7, |i| counts[i].fetch_add(1, Ordering::Relaxed));
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }
}
