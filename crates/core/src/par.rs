//! Deterministic work-sharding over scoped threads — re-exported from
//! [`alice_par`], the bottom-of-the-workspace crate that also serves the
//! portfolio SAT race in `alice-attacks`.
//!
//! The flow's parallel sections (fabric characterization in the select
//! stage, the batch suite driver in `alice-bench`) all use the same
//! primitive: N independent index-addressed tasks, pulled from a shared
//! counter by a fixed pool of `std::thread::scope` workers, with results
//! reassembled in index order. Scheduling therefore never affects
//! output — `jobs = 1` and `jobs = 64` produce identical results.

pub use alice_par::{race, resolve_jobs, shard, CancelToken};
