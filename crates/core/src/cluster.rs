//! Phase 2 — cluster identification (Algorithm 2 of the paper).
//!
//! Fixed-point pairwise recombination: start from singletons, repeatedly
//! union pairs of existing clusters, keep the admissible new ones, stop
//! when an iteration adds nothing. A cluster is admissible when
//!
//! * its aggregated I/O pin count (sum over members, as §5 prescribes for
//!   multi-module redaction) respects the designer's limit, and
//! * its members are pairwise *independent*: no member instance is nested
//!   inside another (redacting an ancestor already swallows the child).
//!
//! Independence is decided on the design's [`PathTree`] — the real
//! instance hierarchy — not on path-string prefixes, so sibling instances
//! whose names share a textual prefix (`top.a` vs `top.ab`) can never be
//! mistaken for ancestor/descendant pairs.

use crate::config::AliceConfig;
use crate::filter::Candidate;
use alice_intern::{HierPath, PathTree};
use std::collections::BTreeSet;

/// A cluster: indices into the candidate list `R`.
pub type Cluster = BTreeSet<usize>;

/// Result of cluster identification.
#[derive(Debug, Clone, Default)]
pub struct ClusterResult {
    /// All admissible clusters `C` (singletons included), in discovery
    /// order (singletons first, then growing unions).
    pub clusters: Vec<Cluster>,
}

impl ClusterResult {
    /// Aggregated I/O pins of a cluster.
    pub fn io_pins(&self, cluster: &Cluster, r: &[Candidate]) -> u32 {
        cluster.iter().map(|&i| r[i].io_pins).sum()
    }

    /// Member instance paths of a cluster.
    pub fn paths(&self, cluster: &Cluster, r: &[Candidate]) -> Vec<HierPath> {
        cluster.iter().map(|&i| r[i].path).collect()
    }
}

/// True if every pair of members is hierarchy-independent (no member is
/// an ancestor of another in `tree`).
fn independent(cluster: &Cluster, r: &[Candidate], tree: &PathTree) -> bool {
    let paths: Vec<_> = cluster.iter().map(|&i| r[i].path).collect();
    for (i, &a) in paths.iter().enumerate() {
        for &b in paths.iter().skip(i + 1) {
            if tree.path_is_ancestor_or_self(a, b) || tree.path_is_ancestor_or_self(b, a) {
                return false;
            }
        }
    }
    true
}

/// The `CheckParameters` predicate for clusters (line 12 of Algorithm 2).
/// `tree` is the design's instance hierarchy ([`crate::design::Design::paths`]).
pub fn admissible(cluster: &Cluster, r: &[Candidate], tree: &PathTree, cfg: &AliceConfig) -> bool {
    let pins: u32 = cluster.iter().map(|&i| r[i].io_pins).sum();
    pins <= cfg.max_io_pins && independent(cluster, r, tree)
}

/// Runs Algorithm 2 on the candidate set `R`; `tree` is the design's
/// instance hierarchy (see [`crate::design::Design::paths`]).
///
/// # Example
///
/// ```
/// use alice_core::cluster::identify_clusters;
/// use alice_core::config::AliceConfig;
/// use alice_core::filter::Candidate;
/// use alice_intern::{HierPath, PathTree, Symbol};
///
/// let r: Vec<Candidate> = (0..3)
///     .map(|i| Candidate {
///         path: HierPath::intern(&format!("top.u{i}")),
///         module: Symbol::intern("m"),
///         io_pins: 20,
///         score: 1,
///     })
///     .collect();
/// let tree = PathTree::from_paths(r.iter().map(|c| c.path.symbol()));
/// let cfg = AliceConfig { max_io_pins: 64, ..AliceConfig::default() };
/// // 3 singletons + 3 pairs + 1 triple = 7 clusters (3*20 <= 64).
/// let c = identify_clusters(&r, &tree, &cfg);
/// assert_eq!(c.clusters.len(), 7);
/// ```
pub fn identify_clusters(r: &[Candidate], tree: &PathTree, cfg: &AliceConfig) -> ClusterResult {
    let mut clusters: Vec<Cluster> = Vec::new();
    let mut seen: BTreeSet<Cluster> = BTreeSet::new();
    // Lines 2-4: singletons.
    for i in 0..r.len() {
        let c: Cluster = [i].into_iter().collect();
        if seen.insert(c.clone()) {
            clusters.push(c);
        }
    }
    // Lines 6-23: fixed point over pairwise unions.
    loop {
        let mut fresh: Vec<Cluster> = Vec::new();
        for a in 0..clusters.len() {
            for b in (a + 1)..clusters.len() {
                let n: Cluster = clusters[a].union(&clusters[b]).copied().collect();
                if seen.contains(&n) {
                    continue;
                }
                if admissible(&n, r, tree, cfg) {
                    seen.insert(n.clone());
                    fresh.push(n);
                }
            }
        }
        if fresh.is_empty() {
            break;
        }
        clusters.extend(fresh);
    }
    ClusterResult { clusters }
}

#[cfg(test)]
mod tests {
    use super::*;

    use alice_intern::Symbol;

    fn cand(path: &str, pins: u32) -> Candidate {
        Candidate {
            path: HierPath::intern(path),
            module: Symbol::intern("m"),
            io_pins: pins,
            score: 1,
        }
    }

    fn tree_of(r: &[Candidate]) -> PathTree {
        PathTree::from_paths(r.iter().map(|c| c.path.symbol()))
    }

    fn cfg(max_io: u32) -> AliceConfig {
        AliceConfig {
            max_io_pins: max_io,
            ..AliceConfig::default()
        }
    }

    #[test]
    fn des3_style_counts() {
        // 8 identical 12-pin sboxes: at 64 pins, clusters of up to 5 fit.
        let r: Vec<Candidate> = (0..8).map(|i| cand(&format!("top.s{i}"), 12)).collect();
        let c = identify_clusters(&r, &tree_of(&r), &cfg(64));
        // sum_{k=1..5} C(8,k) = 8 + 28 + 56 + 70 + 56 = 218 (Table 2, DES3 cfg1).
        assert_eq!(c.clusters.len(), 218);
        // At 96 pins all 8 fit: 2^8 - 1 = 255 (Table 2, DES3 cfg2).
        let c2 = identify_clusters(&r, &tree_of(&r), &cfg(96));
        assert_eq!(c2.clusters.len(), 255);
    }

    #[test]
    fn pin_budget_prunes_pairs() {
        let r = vec![cand("top.a", 40), cand("top.b", 30), cand("top.c", 20)];
        let c = identify_clusters(&r, &tree_of(&r), &cfg(64));
        // singles: 3; pairs: a+b=70 (no), a+c=60 (yes), b+c=50 (yes); triple 90 (no).
        assert_eq!(c.clusters.len(), 5);
    }

    #[test]
    fn nested_instances_never_cluster() {
        let r = vec![cand("top.u", 10), cand("top.u.v", 10), cand("top.w", 10)];
        let c = identify_clusters(&r, &tree_of(&r), &cfg(64));
        let has = |members: &[usize]| {
            let target: Cluster = members.iter().copied().collect();
            c.clusters.contains(&target)
        };
        assert!(!has(&[0, 1]), "ancestor/descendant must not pair");
        assert!(has(&[0, 2]));
        assert!(has(&[1, 2]));
        assert!(!has(&[0, 1, 2]));
    }

    #[test]
    fn empty_candidates_empty_clusters() {
        let c = identify_clusters(&[], &PathTree::new(), &cfg(64));
        assert!(c.clusters.is_empty());
    }

    #[test]
    fn ambiguous_textual_prefixes_still_cluster() {
        // `top.a` is a textual prefix of `top.ab`; a string-prefix
        // ancestor check can conflate them. The PathTree never does:
        // they are siblings and must pair.
        let r = vec![cand("top.a", 10), cand("top.ab", 10), cand("top.a.b", 10)];
        let c = identify_clusters(&r, &tree_of(&r), &cfg(64));
        let has = |members: &[usize]| {
            let target: Cluster = members.iter().copied().collect();
            c.clusters.contains(&target)
        };
        assert!(has(&[0, 1]), "siblings `top.a` + `top.ab` must pair");
        assert!(has(&[1, 2]), "`top.ab` + `top.a.b` are independent");
        assert!(!has(&[0, 2]), "`top.a` is an ancestor of `top.a.b`");
    }

    #[test]
    fn helpers_report_pins_and_paths() {
        let r = vec![cand("top.a", 10), cand("top.b", 20)];
        let c = identify_clusters(&r, &tree_of(&r), &cfg(64));
        let pair: Cluster = [0, 1].into_iter().collect();
        assert_eq!(c.io_pins(&pair, &r), 30);
        assert_eq!(c.paths(&pair, &r), vec!["top.a", "top.b"]);
    }
}
