//! # alice-cec
//!
//! SAT-based combinational equivalence checking (CEC) for the ALICE
//! flow, built on the workspace's own CDCL solver
//! ([`alice_attacks::solver`]). Where `alice_netlist::sim` spot-checks a
//! redaction by random simulation, this crate *proves* the paper's
//! functional-preservation claim and quantifies the converse security
//! claim:
//!
//! * [`encode`] — Tseitin CNF lowering of [`alice_netlist::ir::Netlist`]
//!   with constant folding and a structural hash shared across both sides
//!   of a miter, so the unchanged majority of a redacted design costs no
//!   clauses,
//! * [`miter`] — the [`Miter`] builder (shared inputs, XOR-ed outputs,
//!   scan-model next-state checks, key/bitstream inputs pinnable or
//!   free), [`CecResult`] verdicts with [`Counterexample`] witnesses, the
//!   exact per-output [`Corruption`] analysis behind the wrong-key
//!   corruptibility sweep, and [`prove_equivalent_raced`] — a portfolio
//!   race of diversified solver/encoding configurations with cooperative
//!   cancellation, first definitive verdict wins,
//! * [`sweep`] — ABC-style SAT sweeping (signature classes from 128-bit
//!   word simulation, per-pair assumption proofs, equality lemmas) that
//!   makes redacted-arithmetic miters tractable; proven lemmas are keyed
//!   by boundary-labelled cone hashes and persisted, so familiar
//!   sub-structures start warm in later processes,
//! * [`cache`] — the persistent proof cache over `alice-store`: whole
//!   miters keyed by [`miter_fingerprint`] (name-free pair structure +
//!   pinned key bits) so identical queries skip re-proving, plus the
//!   per-pair sweep lemmas — which also serve *novel* miters (e.g. the
//!   same pair under different pinned key bits) that the whole-miter
//!   fingerprint misses.
//!
//! # Example
//!
//! ```
//! use alice_cec::{prove_equivalent, CecResult};
//! use alice_netlist::ir::Netlist;
//!
//! let mut n = Netlist::new("maj");
//! let a = n.add_input("a", 1)[0];
//! let b = n.add_input("b", 1)[0];
//! let c = n.add_input("c", 1)[0];
//! let ab = n.and(a, b);
//! let bc = n.and(b, c);
//! let ac = n.and(a, c);
//! let t = n.or(ab, bc);
//! let maj = n.or(t, ac);
//! n.add_output("y", vec![maj]);
//!
//! // A design is always equivalent to itself...
//! assert_eq!(prove_equivalent(&n, &n), Ok(CecResult::Equivalent));
//!
//! // ...and a mutated copy yields a concrete counterexample.
//! let mut bad = n.clone();
//! bad.outputs[0].1[0] = bad.outputs[0].1[0].compl();
//! assert!(matches!(
//!     prove_equivalent(&n, &bad),
//!     Ok(CecResult::NotEquivalent(_))
//! ));
//! ```

pub mod cache;
pub mod encode;
pub mod miter;
pub mod sweep;

pub use alice_attacks::engine::EngineStats;
pub use cache::{CachedCorruption, CachedProof};
pub use encode::{EncodedDff, EncodedNetlist, Encoder};
pub use miter::{
    miter_fingerprint, prove_equivalent, prove_equivalent_raced, CecResult, Corruption,
    Counterexample, KeyedMiter, Miter, MiterError, MiterOptions, RaceOutcome,
};
pub use sweep::SweepStats;
