//! SAT sweeping: proving internal equivalences bottom-up before the
//! output miter is attempted.
//!
//! A plain miter over an original design and its LUT-mapped twin asks the
//! solver to rediscover, output by output, that every LUT computes the
//! cone it replaced — which blows up on arithmetic (a redacted multiplier
//! is the classic worst case). The classic fix, and what ABC's `cec`
//! does, is to work inside-out:
//!
//! 1. simulate both netlists on shared random words and group internal
//!    nodes by signature (up to complement),
//! 2. for each revised-side node whose signature matches a golden-side
//!    node, ask the solver — under an assumption, so failures leave no
//!    trace — whether the two literals can differ,
//! 3. when they cannot, assert the equality as a unit lemma.
//!
//! Random patterns alone are not enough: rarely-toggling signals (carry
//! outs, saturation flags) alias, and refuting such a false candidate is
//! itself a hard SAT call. So the pass is counterexample-guided: every
//! SAT answer's model is captured as a fresh simulation pattern, and the
//! next round re-partitions the signature classes with it — one witness
//! typically dissolves an entire family of false candidates. Candidates
//! are processed in topological order so each proof runs with its fanin
//! lemmas already in the clause database and stays local.
//!
//! **Persisted lemmas.** With a lemma store attached
//! ([`crate::miter::MiterOptions::lemma_store`]), every per-pair proof
//! consults — and on success extends — a cross-process cache keyed by
//! the pair's *boundary-labelled cone hashes* (`lemma_key`): a
//! name-free structural hash of each candidate's combinational cone,
//! whose leaves are labelled by their miter-boundary role (shared-input
//! ordinal, pinned *value*, key ordinal). The label scheme makes a hit
//! sound by construction: equal keys mean the two cones compute the
//! same pair of functions over identically-labelled leaves that the
//! solver once proved equal for *all* leaf valuations (pinned leaves
//! fold their constant value into the label, so a lemma never outlives
//! the pin value it depended on). A novel miter over the same netlist
//! pair with *different* pinned key bits therefore reuses every lemma
//! whose cones don't read the changed pins — it starts warm even though
//! its whole-miter fingerprint misses.

use crate::cache;
use crate::encode::{model_value, Encoder};
use alice_attacks::engine::SatEngine;
use alice_attacks::solver::{Lit, SatResult};
use alice_intern::{StableHasher, Symbol};
use alice_netlist::ir::{Lit as NLit, Netlist, Node};
use alice_par::CancelToken;
use alice_store::Store;
use std::collections::{HashMap, HashSet};

/// Base signature: two 64-bit words = 128 random patterns. Refinement
/// rounds append more words.
pub(crate) type Sig = [u64; 2];

/// Per-port signature words (one growable word vector per bit).
type PortWords = HashMap<Symbol, Vec<Vec<u64>>>;
/// Per-register signature words.
type StateWords = HashMap<Symbol, Vec<u64>>;

/// Refinement rounds (beyond the first) before giving up on remaining
/// false candidates.
const MAX_ROUNDS: usize = 4;

/// Counterexample patterns captured per round (one extra word).
const CEX_PER_ROUND: usize = 64;

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub(crate) fn random_sig(rng: &mut u64) -> Sig {
    [splitmix64(rng), splitmix64(rng)]
}

pub(crate) fn const_sig(v: bool) -> Sig {
    if v {
        [u64::MAX; 2]
    } else {
        [0; 2]
    }
}

/// Word-parallel simulation of `n` over arbitrarily many 64-bit words
/// per boundary bit. `input_words`/`state_words` mirror the literal
/// bindings used for CNF encoding (shared ports get shared words, pins
/// get constant words), so equal signatures are meaningful across two
/// netlists. Returns one word vector per node.
pub(crate) fn sim_words(
    n: &Netlist,
    input_words: &PortWords,
    state_words: &StateWords,
    words: usize,
) -> Vec<Vec<u64>> {
    let order = n.comb_topo_order().expect("acyclic netlist");
    let mut val: Vec<Vec<u64>> = vec![vec![0; words]; n.len()];
    for (name, bits) in &n.inputs {
        let port = &input_words[name];
        for (&id, w) in bits.iter().zip(port) {
            val[id.0 as usize] = w.clone();
        }
    }
    for (id, name, _, _) in n.dff_records() {
        val[id.0 as usize] = state_words[&name].clone();
    }
    let get = |val: &[Vec<u64>], l: NLit, k: usize| -> u64 {
        let w = val[l.node().0 as usize][k];
        if l.is_compl() {
            !w
        } else {
            w
        }
    };
    for id in order {
        let idx = id.0 as usize;
        match n.node(id) {
            Node::Const0 | Node::Input { .. } | Node::Dff { .. } => continue,
            Node::Buf(a) => {
                let a = *a;
                for k in 0..words {
                    val[idx][k] = get(&val, a, k);
                }
            }
            Node::And(a, b) => {
                let (a, b) = (*a, *b);
                for k in 0..words {
                    val[idx][k] = get(&val, a, k) & get(&val, b, k);
                }
            }
            Node::Xor(a, b) => {
                let (a, b) = (*a, *b);
                for k in 0..words {
                    val[idx][k] = get(&val, a, k) ^ get(&val, b, k);
                }
            }
            Node::Mux { s, t, e } => {
                let (s, t, e) = (*s, *t, *e);
                for k in 0..words {
                    let c = get(&val, s, k);
                    val[idx][k] = (c & get(&val, t, k)) | (!c & get(&val, e, k));
                }
            }
        }
    }
    val
}

/// Complement-canonical form: clear pattern 0 and adjust the literal so
/// equal canonical pairs are equal literals.
fn canon(mut w: Vec<u64>, l: Lit) -> (Vec<u64>, Lit) {
    if w[0] & 1 == 1 {
        for x in &mut w {
            *x = !*x;
        }
        (w, l.negate())
    } else {
        (w, l)
    }
}

/// Sweep statistics (surfaced for reporting/tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Candidate pairs whose equality was attempted (across all rounds).
    pub candidates: usize,
    /// Pairs proven equal and asserted as unit lemmas.
    pub merged: usize,
    /// Merges served from the persistent lemma store — candidates whose
    /// per-pair SAT proof was skipped entirely. Every remaining
    /// candidate (`candidates - lemma_hits`) cost a solver call.
    pub lemma_hits: usize,
    /// Pairs the per-pair budget gave up on in the final round.
    pub undecided: usize,
    /// Refinement rounds run.
    pub rounds: usize,
}

/// A 128-bit boundary label (see `crate::miter`'s label construction)
/// or cone hash.
pub(crate) type ConeHash = (u64, u64);

/// The per-netlist boundary handles the sweep needs: literal bindings (to
/// read counterexample models), base signature words, and boundary
/// labels (for the persistent lemma cache), all in lockstep.
pub(crate) struct SweepSide<'a> {
    pub n: &'a Netlist,
    pub input_lits: &'a HashMap<Symbol, Vec<Lit>>,
    pub state_lits: &'a HashMap<Symbol, Lit>,
    pub input_base: &'a HashMap<Symbol, Vec<Sig>>,
    pub state_base: &'a HashMap<Symbol, Sig>,
    pub input_labels: &'a HashMap<Symbol, Vec<ConeHash>>,
    pub state_labels: &'a HashMap<Symbol, ConeHash>,
    pub node_lits: &'a [Lit],
}

fn hash_parts(tag: &str, parts: &[ConeHash]) -> ConeHash {
    let mut h = StableHasher::new();
    h.write_str(tag);
    for &(x, y) in parts {
        h.write_u64(x);
        h.write_u64(y);
    }
    h.finish()
}

/// Hash of the function a *literal* denotes: the cone hash of its node
/// plus the complement flag.
fn lit_hash(cones: &[ConeHash], l: NLit) -> ConeHash {
    let base = cones[l.node().0 as usize];
    let mut h = StableHasher::new();
    h.write_str("lit");
    h.write_u64(base.0);
    h.write_u64(base.1);
    h.write_u32(l.is_compl() as u32);
    h.finish()
}

/// Per-node structural hashes of every combinational cone, expressed
/// over the miter's boundary labels instead of names or node ids: two
/// equal hashes (within one miter or across miters) denote structurally
/// identical cones over identically-labelled leaves — i.e. the same
/// function of the same boundary roles. Commutative gate fanins are
/// sorted so operand order cannot split otherwise-equal cones.
pub(crate) fn cone_hashes(
    n: &Netlist,
    input_labels: &HashMap<Symbol, Vec<ConeHash>>,
    state_labels: &HashMap<Symbol, ConeHash>,
) -> Vec<ConeHash> {
    let mut h: Vec<ConeHash> = vec![(0, 0); n.len()];
    for (name, bits) in &n.inputs {
        let labels = &input_labels[name];
        for (&id, &lab) in bits.iter().zip(labels) {
            h[id.0 as usize] = hash_parts("leaf", &[lab]);
        }
    }
    for (id, name, _, _) in n.dff_records() {
        h[id.0 as usize] = hash_parts("leaf", &[state_labels[&name]]);
    }
    let order = n.comb_topo_order().expect("acyclic netlist");
    for id in order {
        let idx = id.0 as usize;
        match n.node(id) {
            Node::Input { .. } | Node::Dff { .. } => {}
            Node::Const0 => h[idx] = hash_parts("const0", &[]),
            Node::Buf(a) => {
                let la = lit_hash(&h, *a);
                h[idx] = hash_parts("buf", &[la]);
            }
            Node::And(a, b) => {
                let (mut x, mut y) = (lit_hash(&h, *a), lit_hash(&h, *b));
                if x > y {
                    std::mem::swap(&mut x, &mut y);
                }
                h[idx] = hash_parts("and", &[x, y]);
            }
            Node::Xor(a, b) => {
                let (mut x, mut y) = (lit_hash(&h, *a), lit_hash(&h, *b));
                if x > y {
                    std::mem::swap(&mut x, &mut y);
                }
                h[idx] = hash_parts("xor", &[x, y]);
            }
            Node::Mux { s, t, e } => {
                let (ls, lt, le) = (lit_hash(&h, *s), lit_hash(&h, *t), lit_hash(&h, *e));
                h[idx] = hash_parts("mux", &[ls, lt, le]);
            }
        }
    }
    h
}

/// The canonical persistent key of the lemma "cone `a` (complemented if
/// `fa`) equals cone `b` (complemented if `fb`)". Equality is symmetric
/// and invariant under complementing *both* sides, so the key sorts the
/// two literal-hashes and takes the minimum over the joint-complement
/// pair — the same proven fact always lands on the same key.
pub(crate) fn lemma_key(ha: ConeHash, fa: bool, hb: ConeHash, fb: bool) -> (u64, u64) {
    let lit = |base: ConeHash, f: bool| -> ConeHash {
        let mut h = StableHasher::new();
        h.write_str("lit");
        h.write_u64(base.0);
        h.write_u64(base.1);
        h.write_u32(f as u32);
        h.finish()
    };
    let variant = |fa: bool, fb: bool| -> (u64, u64) {
        let (mut x, mut y) = (lit(ha, fa), lit(hb, fb));
        if x > y {
            std::mem::swap(&mut x, &mut y);
        }
        hash_parts("pair", &[x, y])
    };
    variant(fa, fb).min(variant(!fa, !fb))
}

impl SweepSide<'_> {
    /// Base words + one word per snapshot chunk, per boundary bit.
    fn words(
        &self,
        solver: &dyn SatEngine,
        snaps: &[Vec<HashMap<Lit, bool>>],
    ) -> (PortWords, StateWords) {
        let extend = |l: Lit, base: &Sig| -> Vec<u64> {
            let mut w = base.to_vec();
            for chunk in snaps {
                let mut word = 0u64;
                for k in 0..64usize {
                    // Pad a short chunk by replicating its last witness:
                    // every bit column must stay a *consistent* valuation
                    // (all-zero padding would violate pinned constants
                    // and poison the signature classes).
                    let snap = chunk.get(k).or(chunk.last()).expect("non-empty chunk");
                    // A boundary literal missing from a snapshot (e.g. a
                    // pinned constant) is re-read from the solver's
                    // root-level assignment via the snapshot fallback.
                    if *snap.get(&l).unwrap_or(&model_value(solver, l)) {
                        word |= 1 << k;
                    }
                }
                w.push(word);
            }
            w
        };
        let inputs = self
            .input_lits
            .iter()
            .map(|(name, lits)| {
                let base = &self.input_base[name];
                (
                    *name,
                    lits.iter()
                        .zip(base)
                        .map(|(&l, b)| extend(l, b))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let state = self
            .state_lits
            .iter()
            .map(|(name, &l)| (*name, extend(l, &self.state_base[name])))
            .collect();
        (inputs, state)
    }
}

/// Runs the counterexample-guided sweeping pass: proves golden/revised
/// internal node pairs with matching signatures equal and asserts the
/// equalities as unit lemmas in `solver`. With a `lemma_store`, pairs
/// whose canonical cone-hash key is already persisted skip their SAT
/// proof (the equality is asserted directly), and fresh proofs are
/// written back for future processes.
pub(crate) fn sweep(
    solver: &mut dyn SatEngine,
    enc: &mut Encoder,
    a: &SweepSide<'_>,
    b: &SweepSide<'_>,
    pair_budget: Option<u64>,
    lemma_store: Option<&Store>,
    cancel: Option<&CancelToken>,
) -> SweepStats {
    let _span = alice_obs::span("cec.sweep");
    let debug = std::env::var_os("ALICE_CEC_DEBUG").is_some();
    let saved_budget = solver.budget();
    solver.set_budget(pair_budget);
    // Cone hashes are boundary-relative and round-independent, so they
    // are computed once — and only when a lemma store is listening.
    let cones = lemma_store.map(|_| {
        (
            cone_hashes(a.n, a.input_labels, a.state_labels),
            cone_hashes(b.n, b.input_labels, b.state_labels),
        )
    });
    // All boundary literals whose model values a counterexample snapshot
    // must capture.
    let boundary: Vec<Lit> = a
        .input_lits
        .values()
        .chain(b.input_lits.values())
        .flatten()
        .copied()
        .chain(a.state_lits.values().copied())
        .chain(b.state_lits.values().copied())
        .collect();

    let mut stats = SweepStats::default();
    let mut merged: HashSet<(Lit, Lit)> = HashSet::new();
    let mut refuted: HashSet<(Lit, Lit)> = HashSet::new();
    let mut snaps: Vec<Vec<HashMap<Lit, bool>>> = Vec::new();
    'rounds: for round in 0..=MAX_ROUNDS {
        stats.rounds = round + 1;
        let words = 2 + snaps.len();
        let (iw_a, sw_a) = a.words(&*solver, &snaps);
        let (iw_b, sw_b) = b.words(&*solver, &snaps);
        let sig_a = sim_words(a.n, &iw_a, &sw_a, words);
        let sig_b = sim_words(b.n, &iw_b, &sw_b, words);

        // First golden literal per canonical signature, topological order
        // (inputs and registers included so buffered pass-throughs merge).
        // The node index rides along so the lemma cache can hash the
        // representative's cone.
        let mut classes: HashMap<Vec<u64>, (Lit, usize)> = HashMap::new();
        for (id, node) in a.n.iter() {
            if matches!(node, Node::Const0) {
                continue;
            }
            let idx = id.0 as usize;
            let (w, l) = canon(sig_a[idx].clone(), a.node_lits[idx]);
            classes.entry(w).or_insert((l, idx));
        }

        let mut chunk: Vec<HashMap<Lit, bool>> = Vec::new();
        let mut undecided = 0usize;
        let merged_before = stats.merged;
        for (id, node) in b.n.iter() {
            // A losing portfolio racer abandons its remaining candidate
            // proofs outright — the per-round simulation and the pending
            // SAT calls are pure wall-clock once the race is decided.
            if cancel.is_some_and(CancelToken::is_cancelled) {
                break 'rounds;
            }
            if !node.is_gate() {
                continue;
            }
            let idx_b = id.0 as usize;
            let (w, lb) = canon(sig_b[idx_b].clone(), b.node_lits[idx_b]);
            let Some(&(la, idx_a)) = classes.get(&w) else {
                continue;
            };
            if la == lb || la == lb.negate() {
                continue; // identical already, or provably different
            }
            if merged.contains(&(la, lb)) || refuted.contains(&(la, lb)) {
                continue;
            }
            stats.candidates += 1;
            let d = enc.xor(solver, la, lb);
            if d == enc.fls() {
                continue;
            }
            if d == enc.tru() {
                continue;
            }
            // The persistent lemma key: the candidate literals' cone
            // hashes with their complement-relative-to-node flags (canon
            // may have flipped either literal).
            let key = cones.as_ref().map(|(ca, cb)| {
                lemma_key(
                    ca[idx_a],
                    la != a.node_lits[idx_a],
                    cb[idx_b],
                    lb != b.node_lits[idx_b],
                )
            });
            if let (Some(store), Some(key)) = (lemma_store, key) {
                if cache::lookup_lemma(store, key) {
                    // Proven equal in a past process: assert the lemma
                    // without a solver call.
                    solver.add_clause(&[d.negate()]);
                    merged.insert((la, lb));
                    stats.merged += 1;
                    stats.lemma_hits += 1;
                    continue;
                }
            }
            let verdict = {
                let _span = alice_obs::span("cec.pair_proof");
                solver.solve_with(&[d])
            };
            match verdict {
                SatResult::Unsat => {
                    solver.add_clause(&[d.negate()]);
                    merged.insert((la, lb));
                    stats.merged += 1;
                    if let (Some(store), Some(key)) = (lemma_store, key) {
                        cache::record_lemma(store, key);
                    }
                }
                SatResult::Sat => {
                    refuted.insert((la, lb));
                    if chunk.len() < CEX_PER_ROUND {
                        chunk.push(
                            boundary
                                .iter()
                                .map(|&l| (l, model_value(solver, l)))
                                .collect(),
                        );
                    }
                }
                SatResult::Unknown => undecided += 1,
            }
        }
        stats.undecided = undecided;
        if debug {
            eprintln!(
                "cec sweep round {round}: {stats:?}, {} new witnesses",
                chunk.len()
            );
        }
        if chunk.is_empty() || (round > 0 && stats.merged == merged_before) {
            // Nothing left to dissolve, or refinement stopped paying off.
            break;
        }
        snaps.push(chunk);
    }
    solver.set_budget(saved_budget);
    SWEEP_CANDIDATES.add(stats.candidates as u64);
    SWEEP_MERGED.add(stats.merged as u64);
    SWEEP_LEMMA_HITS.add(stats.lemma_hits as u64);
    stats
}

/// Observability mirrors of [`SweepStats`], accumulated process-wide
/// across every miter build and exported via `--metrics`.
static SWEEP_CANDIDATES: alice_obs::Counter = alice_obs::Counter::new(
    "alice_cec_sweep_candidates_total",
    "Equivalence candidates the SAT sweeper examined",
);
static SWEEP_MERGED: alice_obs::Counter = alice_obs::Counter::new(
    "alice_cec_sweep_merged_total",
    "Candidate pairs proven equal and stitched together",
);
static SWEEP_LEMMA_HITS: alice_obs::Counter = alice_obs::Counter::new(
    "alice_cec_sweep_lemma_hits_total",
    "Pair merges served by persisted lemmas instead of SAT calls",
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_sim_matches_scalar_semantics() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a", 1)[0];
        let b = n.add_input("b", 1)[0];
        let x = n.xor(a, b);
        let y = n.mux(x, a, b.compl());
        n.add_output("y", vec![y]);

        let mut rng = 7u64;
        let wa = random_sig(&mut rng);
        let wb = random_sig(&mut rng);
        let inputs: HashMap<Symbol, Vec<Vec<u64>>> = [
            (Symbol::intern("a"), vec![wa.to_vec()]),
            (Symbol::intern("b"), vec![wb.to_vec()]),
        ]
        .into();
        let vals = sim_words(&n, &inputs, &HashMap::new(), 2);
        for pat in 0..128usize {
            let bit = |w: Sig| (w[pat / 64] >> (pat % 64)) & 1 == 1;
            let (va, vb) = (bit(wa), bit(wb));
            let vx = va ^ vb;
            let vy = if vx { va } else { !vb };
            let w = &vals[y.node().0 as usize];
            let got = ((w[pat / 64] >> (pat % 64)) & 1 == 1) ^ y.is_compl();
            assert_eq!(got, vy, "pattern {pat}");
        }
    }

    #[test]
    fn canonical_form_is_complement_stable() {
        let mut rng = 3u64;
        let w = random_sig(&mut rng).to_vec();
        let inv: Vec<u64> = w.iter().map(|x| !x).collect();
        let l = Lit::pos(alice_attacks::solver::Var(5));
        let (cw, cl) = canon(w.clone(), l);
        let (cw2, cl2) = canon(inv, l.negate());
        assert_eq!(cw, cw2);
        assert_eq!(cl, cl2);
        assert_eq!(cw[0] & 1, 0);
    }
}
