//! Tseitin CNF lowering of [`Netlist`]s onto the in-tree CDCL solver.
//!
//! The encoder is shared by both sides of a miter: it keeps a structural
//! hash over *solver* literals, so when two netlists are encoded against
//! the same [`Encoder`] with shared input/state variables, every cone that
//! is structurally identical in both collapses to the very same solver
//! literal. A miter over an original design and its redacted twin then
//! only carries real CNF for the logic the redaction actually changed —
//! the untouched majority of the design contributes no clauses at all.
//!
//! Constants fold at encode time (the same rules as [`Netlist`]'s
//! builders), which is what
//! makes bitstream binding effective: pinning the fabric's configuration
//! registers to constants collapses each `cfg[in]` mux tree down to the
//! configured LUT function before the solver ever sees it.

use alice_attacks::engine::SatEngine;
use alice_attacks::solver::{Lit, Var};
use alice_intern::Symbol;
use alice_netlist::ir::{Lit as NLit, Netlist, Node};
use std::collections::HashMap;

/// One encoded flip-flop: the free (or bound) current-state literal and
/// the encoded next-state function.
#[derive(Debug, Clone)]
pub struct EncodedDff {
    /// Hierarchical register-bit name from elaboration (interned).
    pub name: Symbol,
    /// Current-state (Q) literal.
    pub q: Lit,
    /// Next-state (D) literal.
    pub next: Lit,
    /// Power-on value (informational; the scan model ignores it).
    pub init: bool,
}

/// A netlist lowered to CNF: the literal handles for its boundary.
#[derive(Debug, Clone)]
pub struct EncodedNetlist {
    /// Input ports: name and per-bit literals (LSB first).
    pub inputs: Vec<(Symbol, Vec<Lit>)>,
    /// Output ports: name and per-bit literals (LSB first).
    pub outputs: Vec<(Symbol, Vec<Lit>)>,
    /// Flip-flops in [`Netlist::dffs`] order.
    pub dffs: Vec<EncodedDff>,
    /// The solver literal of every netlist node, indexed by
    /// [`NodeId`](alice_netlist::ir::NodeId) — the hook SAT sweeping uses
    /// to talk about internal points.
    pub node_lits: Vec<Lit>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum GateKey {
    And(Lit, Lit),
    Xor(Lit, Lit),
    Mux(Lit, Lit, Lit),
}

/// A structurally-hashing, constant-folding Tseitin encoder.
///
/// # Example
///
/// ```
/// use alice_attacks::solver::Solver;
/// use alice_cec::encode::Encoder;
///
/// let mut s = Solver::new();
/// let mut enc = Encoder::new(&mut s);
/// let a = enc.fresh(&mut s);
/// let o1 = enc.and(&mut s, a, enc.tru());
/// assert_eq!(o1, a, "AND with constant true folds");
/// let b = enc.fresh(&mut s);
/// let g1 = enc.xor(&mut s, a, b);
/// let g2 = enc.xor(&mut s, b.negate(), a);
/// assert_eq!(g1, g2.negate(), "strash catches complemented reuse");
/// ```
#[derive(Debug)]
pub struct Encoder {
    strash: HashMap<GateKey, Lit>,
    tru: Lit,
}

impl Encoder {
    /// Creates an encoder over `s`, allocating its constant variable.
    pub fn new(s: &mut dyn SatEngine) -> Self {
        let t = Lit::pos(s.new_var());
        s.add_clause(&[t]);
        Encoder {
            strash: HashMap::new(),
            tru: t,
        }
    }

    /// The constant-true literal.
    pub fn tru(&self) -> Lit {
        self.tru
    }

    /// The constant-false literal.
    pub fn fls(&self) -> Lit {
        self.tru.negate()
    }

    /// A fresh unconstrained literal.
    pub fn fresh(&self, s: &mut dyn SatEngine) -> Lit {
        Lit::pos(s.new_var())
    }

    /// Encodes `o = a AND b` (folded, structurally hashed).
    pub fn and(&mut self, s: &mut dyn SatEngine, a: Lit, b: Lit) -> Lit {
        if a == self.fls() || b == self.fls() || a == b.negate() {
            return self.fls();
        }
        if a == self.tru || a == b {
            return b;
        }
        if b == self.tru {
            return a;
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        let key = GateKey::And(a, b);
        if let Some(&o) = self.strash.get(&key) {
            return o;
        }
        let o = Lit::pos(s.new_var());
        s.add_clause(&[o.negate(), a]);
        s.add_clause(&[o.negate(), b]);
        s.add_clause(&[o, a.negate(), b.negate()]);
        self.strash.insert(key, o);
        o
    }

    /// Encodes `o = a OR b` via De Morgan.
    pub fn or(&mut self, s: &mut dyn SatEngine, a: Lit, b: Lit) -> Lit {
        self.and(s, a.negate(), b.negate()).negate()
    }

    /// Encodes `o = a XOR b` (folded, negation-normalized, hashed).
    pub fn xor(&mut self, s: &mut dyn SatEngine, a: Lit, b: Lit) -> Lit {
        if a == self.fls() {
            return b;
        }
        if b == self.fls() {
            return a;
        }
        if a == self.tru {
            return b.negate();
        }
        if b == self.tru {
            return a.negate();
        }
        if a == b {
            return self.fls();
        }
        if a == b.negate() {
            return self.tru;
        }
        // Negations migrate to the output so x^y and !x^!y share a node.
        let compl = a.is_neg() ^ b.is_neg();
        let (a, b) = (Lit::pos(a.var()), Lit::pos(b.var()));
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        let key = GateKey::Xor(a, b);
        let o = if let Some(&o) = self.strash.get(&key) {
            o
        } else {
            let o = Lit::pos(s.new_var());
            s.add_clause(&[o.negate(), a, b]);
            s.add_clause(&[o.negate(), a.negate(), b.negate()]);
            s.add_clause(&[o, a, b.negate()]);
            s.add_clause(&[o, a.negate(), b]);
            self.strash.insert(key, o);
            o
        };
        if compl {
            o.negate()
        } else {
            o
        }
    }

    /// Encodes `o = c ? t : e` (folded, select-polarity-normalized).
    pub fn mux(&mut self, s: &mut dyn SatEngine, c: Lit, t: Lit, e: Lit) -> Lit {
        if c == self.tru || t == e {
            return t;
        }
        if c == self.fls() {
            return e;
        }
        if t == e.negate() {
            return self.xor(s, c, e);
        }
        if t == self.tru {
            return self.or(s, c, e);
        }
        if t == self.fls() {
            return self.and(s, c.negate(), e);
        }
        if e == self.tru {
            return self.or(s, c.negate(), t);
        }
        if e == self.fls() {
            return self.and(s, c, t);
        }
        if c == t {
            return self.or(s, c, e);
        }
        if c == e {
            return self.and(s, c, t);
        }
        let (c, t, e) = if c.is_neg() {
            (c.negate(), e, t)
        } else {
            (c, t, e)
        };
        let key = GateKey::Mux(c, t, e);
        if let Some(&o) = self.strash.get(&key) {
            return o;
        }
        let o = Lit::pos(s.new_var());
        s.add_clause(&[c.negate(), t.negate(), o]);
        s.add_clause(&[c.negate(), t, o.negate()]);
        s.add_clause(&[c, e.negate(), o]);
        s.add_clause(&[c, e, o.negate()]);
        // Redundant but propagation-strengthening: t = e forces o.
        s.add_clause(&[t.negate(), e.negate(), o]);
        s.add_clause(&[t, e, o.negate()]);
        self.strash.insert(key, o);
        o
    }

    /// Lowers `n` to CNF in `s`.
    ///
    /// `input_bind` supplies pre-allocated literals for input ports (for
    /// sharing across a miter, or constants for pinned ports) and
    /// `state_bind` does the same per DFF name; everything unbound gets a
    /// fresh variable. Bound literal vectors must match the port width.
    ///
    /// # Panics
    ///
    /// Panics if the netlist has a combinational cycle or a bound input
    /// width mismatches the port (the miter builder validates widths
    /// before calling this).
    pub fn encode(
        &mut self,
        s: &mut dyn SatEngine,
        n: &Netlist,
        input_bind: &HashMap<Symbol, Vec<Lit>>,
        state_bind: &HashMap<Symbol, Lit>,
    ) -> EncodedNetlist {
        let order = n
            .comb_topo_order()
            .expect("combinational cycle in netlist under CEC");
        let mut node_lit: Vec<Option<Lit>> = vec![None; n.len()];

        // Inputs: bound or fresh.
        let mut inputs = Vec::with_capacity(n.inputs.len());
        for (name, bits) in &n.inputs {
            let lits: Vec<Lit> = match input_bind.get(name) {
                Some(bound) => {
                    assert_eq!(bound.len(), bits.len(), "width mismatch on `{name}`");
                    bound.clone()
                }
                None => bits.iter().map(|_| self.fresh(s)).collect(),
            };
            for (&id, &l) in bits.iter().zip(&lits) {
                node_lit[id.0 as usize] = Some(l);
            }
            inputs.push((*name, lits));
        }

        // DFF Q literals: bound (shared with the twin or pinned) or fresh.
        let records = n.dff_records();
        for &(id, name, _, _) in &records {
            let q = state_bind
                .get(&name)
                .copied()
                .unwrap_or_else(|| self.fresh(s));
            node_lit[id.0 as usize] = Some(q);
        }

        let resolve = |node_lit: &[Option<Lit>], l: NLit| -> Lit {
            let base = node_lit[l.node().0 as usize].expect("fanin encoded before use");
            if l.is_compl() {
                base.negate()
            } else {
                base
            }
        };

        for id in order {
            let idx = id.0 as usize;
            if node_lit[idx].is_some() {
                continue; // inputs and DFFs are pre-assigned
            }
            let lit = match n.node(id) {
                Node::Const0 => self.fls(),
                Node::Input { .. } | Node::Dff { .. } => unreachable!("pre-assigned"),
                Node::Buf(a) => resolve(&node_lit, *a),
                Node::And(a, b) => {
                    let (a, b) = (resolve(&node_lit, *a), resolve(&node_lit, *b));
                    self.and(s, a, b)
                }
                Node::Xor(a, b) => {
                    let (a, b) = (resolve(&node_lit, *a), resolve(&node_lit, *b));
                    self.xor(s, a, b)
                }
                Node::Mux { s: c, t, e } => {
                    let (c, t, e) = (
                        resolve(&node_lit, *c),
                        resolve(&node_lit, *t),
                        resolve(&node_lit, *e),
                    );
                    self.mux(s, c, t, e)
                }
            };
            node_lit[idx] = Some(lit);
        }

        let outputs = n
            .outputs
            .iter()
            .map(|(name, bits)| (*name, bits.iter().map(|&l| resolve(&node_lit, l)).collect()))
            .collect();
        let dffs = records
            .into_iter()
            .map(|(id, name, d, init)| EncodedDff {
                name,
                q: node_lit[id.0 as usize].expect("assigned above"),
                next: resolve(&node_lit, d),
                init,
            })
            .collect();
        EncodedNetlist {
            inputs,
            outputs,
            dffs,
            node_lits: node_lit
                .into_iter()
                .map(|l| l.expect("all nodes encoded"))
                .collect(),
        }
    }
}

/// Reads the model value of `l` after a SAT answer (`false` when the
/// variable went unassigned, i.e. the formula does not constrain it).
pub fn model_value(s: &dyn SatEngine, l: Lit) -> bool {
    s.value(l.var()).unwrap_or(false) ^ l.is_neg()
}

/// Convenience: the variable of a literal (for pinning via unit clauses).
pub fn lit_var(l: Lit) -> Var {
    l.var()
}

#[cfg(test)]
mod tests {
    use super::*;
    use alice_attacks::solver::{SatResult, Solver};

    #[test]
    fn constant_folding_mirrors_netlist_builders() {
        let mut s = Solver::new();
        let mut enc = Encoder::new(&mut s);
        let a = enc.fresh(&mut s);
        let b = enc.fresh(&mut s);
        assert_eq!(enc.and(&mut s, a, enc.fls()), enc.fls());
        assert_eq!(enc.xor(&mut s, a, a), enc.fls());
        assert_eq!(enc.xor(&mut s, a, a.negate()), enc.tru());
        assert_eq!(enc.mux(&mut s, enc.tru(), a, b), a);
        assert_eq!(enc.mux(&mut s, enc.fls(), a, b), b);
        assert_eq!(enc.mux(&mut s, a, b, b), b);
    }

    #[test]
    fn strash_shares_across_encodes() {
        // Two identical netlists over shared inputs produce identical
        // output literals — the CEC fast path.
        let mut n = Netlist::new("t");
        let a = n.add_input("a", 2);
        let x = n.xor(a[0], a[1]);
        let y = n.and(x, a[0]);
        n.add_output("y", vec![y]);

        let mut s = Solver::new();
        let mut enc = Encoder::new(&mut s);
        let shared: HashMap<Symbol, Vec<Lit>> = [(
            Symbol::intern("a"),
            vec![enc.fresh(&mut s), enc.fresh(&mut s)],
        )]
        .into();
        let e1 = enc.encode(&mut s, &n, &shared, &HashMap::new());
        let e2 = enc.encode(&mut s, &n, &shared, &HashMap::new());
        assert_eq!(e1.outputs[0].1, e2.outputs[0].1);
    }

    #[test]
    fn encoded_function_matches_semantics() {
        // y = (a & b) ^ c, checked by forcing each input pattern.
        let mut n = Netlist::new("t");
        let a = n.add_input("a", 1)[0];
        let b = n.add_input("b", 1)[0];
        let c = n.add_input("c", 1)[0];
        let ab = n.and(a, b);
        let y = n.xor(ab, c);
        n.add_output("y", vec![y]);

        for pat in 0..8u32 {
            let mut s = Solver::new();
            let mut enc = Encoder::new(&mut s);
            let e = enc.encode(&mut s, &n, &HashMap::new(), &HashMap::new());
            for (i, (_, bits)) in e.inputs.iter().enumerate() {
                let v = (pat >> i) & 1 == 1;
                let l = bits[0];
                s.add_clause(&[if v { l } else { l.negate() }]);
            }
            assert_eq!(s.solve(), SatResult::Sat);
            let want = ((pat & 1 == 1) && (pat >> 1 & 1 == 1)) ^ (pat >> 2 & 1 == 1);
            assert_eq!(model_value(&s, e.outputs[0].1[0]), want, "pattern {pat}");
        }
    }

    #[test]
    fn state_binding_pins_dffs_to_constants() {
        let mut n = Netlist::new("t");
        let d = n.add_input("d", 1)[0];
        let q = n.dff("r[0]", false);
        n.set_dff_input(q, d);
        n.add_output("q", vec![q]);

        let mut s = Solver::new();
        let mut enc = Encoder::new(&mut s);
        let t = enc.tru();
        let state: HashMap<Symbol, Lit> = [(Symbol::intern("r[0]"), t)].into();
        let e = enc.encode(&mut s, &n, &HashMap::new(), &state);
        assert_eq!(e.outputs[0].1[0], t, "pinned Q folds to constant");
        assert_eq!(e.dffs[0].name, "r[0]");
        assert_eq!(e.dffs[0].next, e.inputs[0].1[0]);
    }
}
