//! Miter construction and SAT-based equivalence proofs.
//!
//! A [`Miter`] composes a *golden* netlist `a` and a *revised* netlist `b`
//! over shared primary inputs and XOR-compared outputs. Sequential designs
//! are handled with the scan model standard in logic-locking analyses:
//! every paired flip-flop's Q is a shared free variable and its
//! next-state function becomes an additional compared output, so a proof
//! covers all reachable (indeed all) states.
//!
//! Ports and state that exist only in `b` are the *key*: eFPGA
//! configuration inputs and configuration-chain registers. They can be
//! pinned to a concrete bitstream (proving the legitimate user's chip
//! correct) or left free (the attacker's view; a proof then holds for
//! *every* key, which for a real redaction should instead produce a
//! counterexample).

use crate::encode::{model_value, Encoder};
use crate::sweep::{const_sig, random_sig, sweep, ConeHash, Sig, SweepSide, SweepStats};
use alice_attacks::engine::{EngineStats, SatEngine};
use alice_attacks::portfolio::{diversified_configs, PortfolioEngine, PortfolioStats};
use alice_attacks::solver::{Lit, SatResult, Solver, SolverConfig};
use alice_intern::{StableHasher, Symbol};
use alice_netlist::ir::{Netlist, NodeId};
use alice_par::{race, CancelToken};
use alice_store::Store;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// Why a miter could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MiterError {
    /// An input port of the golden netlist is missing in the revised one.
    MissingInput(String),
    /// A port exists in both netlists with different widths.
    WidthMismatch(String),
    /// An output port of the golden netlist is missing in the revised one.
    MissingOutput(String),
    /// The revised netlist has a non-key output the golden one lacks.
    ExtraOutput(String),
    /// A golden-netlist flip-flop has no counterpart in the revised one,
    /// so its next-state function would go unchecked.
    UnpairedState(String),
    /// A pin constraint names an unknown port or register.
    UnknownPin(String),
}

impl fmt::Display for MiterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MiterError::MissingInput(n) => write!(f, "input `{n}` missing in revised netlist"),
            MiterError::WidthMismatch(n) => write!(f, "port `{n}` has mismatched widths"),
            MiterError::MissingOutput(n) => write!(f, "output `{n}` missing in revised netlist"),
            MiterError::ExtraOutput(n) => {
                write!(f, "revised netlist has unexpected non-key output `{n}`")
            }
            MiterError::UnpairedState(n) => {
                write!(f, "golden flip-flop `{n}` has no revised counterpart")
            }
            MiterError::UnknownPin(n) => write!(f, "pin constraint names unknown `{n}`"),
        }
    }
}

impl std::error::Error for MiterError {}

/// A difference witness: one assignment to the shared inputs and state
/// (plus the key, when free) on which the two netlists disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// Shared primary-input values, per golden port (LSB first).
    pub inputs: Vec<(Symbol, Vec<bool>)>,
    /// Shared state values, by golden register name.
    pub state: Vec<(Symbol, bool)>,
    /// Free key-input values, per revised-only port.
    pub key_inputs: Vec<(Symbol, Vec<bool>)>,
    /// Free key-state values, by revised-only register name.
    pub key_state: Vec<(Symbol, bool)>,
    /// Names of the difference points that disagree under this assignment
    /// (`port[bit]` for outputs, `next(reg)` for next-state functions).
    pub diffs: Vec<String>,
}

/// The verdict of an equivalence query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CecResult {
    /// Proven equivalent on every compared point, for all inputs and
    /// states (and all keys, if any were left free).
    Equivalent,
    /// A concrete disagreement was found.
    NotEquivalent(Box<Counterexample>),
    /// The solver's conflict budget ran out before a verdict.
    ResourceLimit,
}

impl CecResult {
    /// True for [`CecResult::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        matches!(self, CecResult::Equivalent)
    }
}

/// Exhaustive per-output corruption analysis (used by the wrong-key
/// sweep): which difference points *can* disagree under the current
/// constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Corruption {
    /// Difference points proven corruptible (some input shows a
    /// disagreement).
    pub corrupted: BTreeSet<String>,
    /// Total difference points compared.
    pub total: usize,
    /// False when the solver budget ran out; `corrupted` is then a lower
    /// bound and the un-marked points are *not* proven clean.
    pub complete: bool,
}

impl Corruption {
    /// Corrupted fraction of all compared points.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.corrupted.len() as f64 / self.total as f64
        }
    }
}

/// Build-time options for [`Miter::build`].
#[derive(Debug, Clone)]
pub struct MiterOptions {
    /// Ports/registers present only in the revised netlist whose names
    /// start with one of these prefixes (on any hierarchy segment) are
    /// treated as key material instead of errors. Default: `["cfg_"]`.
    pub key_prefixes: Vec<String>,
    /// Renames applied to revised-netlist register names before pairing
    /// (`revised name` → `golden name`); this is how redaction maps each
    /// fabric FF back onto the register it replaced.
    pub state_rename: HashMap<Symbol, Symbol>,
    /// Revised-netlist input ports pinned to constants (LSB first).
    pub pin_inputs: Vec<(Symbol, Vec<bool>)>,
    /// Revised-netlist registers pinned to constants — the bitstream.
    pub pin_state: Vec<(Symbol, bool)>,
    /// Compare next-state functions of paired flip-flops (the scan
    /// model). Disable only for purely combinational netlists.
    pub check_next_state: bool,
    /// Solver conflict budget; `None` = unlimited.
    pub conflict_budget: Option<u64>,
    /// Run the SAT-sweeping preprocessing pass (prove matching internal
    /// nodes equal bottom-up before attempting the outputs). Nearly
    /// always a large win; disable only to measure its effect.
    pub sweep: bool,
    /// Per-candidate-pair conflict budget during sweeping. Pairs the
    /// budget gives up on are simply left unmerged.
    pub sweep_conflict_budget: Option<u64>,
    /// Heuristic configuration of the underlying CDCL solver. Steers
    /// wall-clock only, never verdicts, so it is excluded from
    /// [`miter_fingerprint`] just like the budgets.
    pub solver_config: SolverConfig,
    /// Cooperative cancellation token, observed both while sweeping at
    /// build time and inside every solve call. A cancelled miter reports
    /// [`CecResult::ResourceLimit`]; portfolio racing uses this to stop
    /// losing configurations. Excluded from [`miter_fingerprint`].
    pub cancel: Option<CancelToken>,
    /// Persistent store consulted for — and extended with — per-pair
    /// sweep lemmas (`alice_store::Kind::Lemma`): internal equivalences
    /// proven by any past sweep, keyed by boundary-labelled cone hashes
    /// so they transfer to novel miters over familiar sub-structures.
    /// A lemma only short-circuits a proof the sweep would have
    /// completed anyway, so — like the budgets — this steers wall-clock,
    /// never verdicts, and is excluded from [`miter_fingerprint`].
    pub lemma_store: Option<Arc<Store>>,
}

impl Default for MiterOptions {
    fn default() -> Self {
        MiterOptions {
            key_prefixes: vec!["cfg_".to_string()],
            state_rename: HashMap::new(),
            pin_inputs: Vec::new(),
            pin_state: Vec::new(),
            check_next_state: true,
            conflict_budget: None,
            sweep: true,
            sweep_conflict_budget: Some(2_000),
            solver_config: SolverConfig::default(),
            cancel: None,
            lemma_store: None,
        }
    }
}

/// A deterministic, *name-free* 128-bit fingerprint of the equivalence
/// query `(a, b, opts)` — the key of the persistent CEC proof cache.
///
/// Two queries get the same fingerprint exactly when they pose the same
/// verification question up to renaming: the netlists'
/// [name-free structural hashes](Netlist::structural_hash_namefree)
/// plus the *resolved* boundary binding expressed in ordinals — which
/// golden input/output port pairs with which revised position, which
/// revised register is pinned to what value, which pairs with which
/// golden register (after [`MiterOptions::state_rename`]), whether
/// next-state functions are compared, and the key-prefix set (it
/// decides whether revised-only boundary material is tolerated as key
/// or a build error). Solver budgets, sweep settings, and the
/// [`MiterOptions::lemma_store`] handle are deliberately excluded: they
/// affect how long a proof takes, never what verdict is sound, so a
/// cached `Equivalent` stays valid across them.
///
/// Infallible by design — a pair the miter would reject still
/// fingerprints fine (the mismatch is hashed as an unpaired marker);
/// failed builds are simply never cached.
pub fn miter_fingerprint(a: &Netlist, b: &Netlist, opts: &MiterOptions) -> (u64, u64) {
    const UNPAIRED: u64 = u64::MAX;
    let mut h = StableHasher::new();
    let (s0, s1) = a.structural_hash_namefree();
    h.write_u64(s0);
    h.write_u64(s1);
    let (s0, s1) = b.structural_hash_namefree();
    h.write_u64(s0);
    h.write_u64(s1);

    // Input pairing: for each golden port (in order), the revised port
    // position it binds to.
    let b_in_pos: HashMap<Symbol, u64> = b
        .inputs
        .iter()
        .enumerate()
        .map(|(i, (n, _))| (*n, i as u64))
        .collect();
    h.write_u64(a.inputs.len() as u64);
    for (name, bits) in &a.inputs {
        h.write_u64(b_in_pos.get(name).copied().unwrap_or(UNPAIRED));
        h.write_u64(bits.len() as u64);
    }

    // Pinned revised inputs, by revised position (sorted, so the
    // fingerprint is independent of the options' list order).
    let mut pins: Vec<(u64, &[bool])> = opts
        .pin_inputs
        .iter()
        .map(|(n, v)| (b_in_pos.get(n).copied().unwrap_or(UNPAIRED), v.as_slice()))
        .collect();
    pins.sort();
    h.write_u64(pins.len() as u64);
    for (pos, vals) in pins {
        h.write_u64(pos);
        h.write_u64(vals.len() as u64);
        for &v in vals {
            h.write_u32(v as u32);
        }
    }

    // Output pairing, golden ordinal → revised ordinal.
    let b_out_pos: HashMap<Symbol, u64> = b
        .outputs
        .iter()
        .enumerate()
        .map(|(i, (n, _))| (*n, i as u64))
        .collect();
    h.write_u64(a.outputs.len() as u64);
    for (name, bits) in &a.outputs {
        h.write_u64(b_out_pos.get(name).copied().unwrap_or(UNPAIRED));
        h.write_u64(bits.len() as u64);
    }

    // Revised state, in dff order: pinned value, paired golden ordinal
    // (after renaming), or free key state.
    let a_ord: HashMap<Symbol, u64> = a
        .dff_records()
        .iter()
        .enumerate()
        .map(|(i, &(_, n, _, _))| (n, i as u64))
        .collect();
    let pin_state: HashMap<Symbol, bool> = opts.pin_state.iter().copied().collect();
    let b_records = b.dff_records();
    h.write_u64(b_records.len() as u64);
    for &(_, name, _, _) in &b_records {
        if let Some(&v) = pin_state.get(&name) {
            h.write_u32(0);
            h.write_u32(v as u32);
        } else {
            let golden = opts.state_rename.get(&name).copied().unwrap_or(name);
            match a_ord.get(&golden) {
                Some(&g) => {
                    h.write_u32(1);
                    h.write_u64(g);
                }
                None => h.write_u32(2),
            }
        }
    }
    h.write_u64(a.dff_records().len() as u64);
    h.write_u32(opts.check_next_state as u32);
    // Key prefixes decide whether a revised-only non-key output is an
    // error or tolerated, so they are part of the query's meaning
    // (hashed as a sorted set — matching is any-of, order-free).
    let mut prefixes: Vec<&str> = opts.key_prefixes.iter().map(String::as_str).collect();
    prefixes.sort_unstable();
    h.write_u64(prefixes.len() as u64);
    for p in prefixes {
        h.write_str(p);
    }
    h.finish()
}

fn is_key_name(name: Symbol, prefixes: &[String]) -> bool {
    // A key name matches a prefix on its last hierarchical segment (the
    // register or port's own name) or on the whole path.
    let name = name.as_str();
    let last = name.rsplit('.').next().unwrap_or(name);
    prefixes
        .iter()
        .any(|p| name.starts_with(p) || last.starts_with(p))
}

/// Registers of `n` whose Q is in the combinational support of a
/// compared difference point: an output bit, or the next-state function
/// of a register in `next_roots` (the paired ones). Traversal stops at
/// flip-flop boundaries — in the single-cycle miter every register's Q
/// is a free state variable, so only direct support matters; a register
/// outside this set cannot influence any compared point and may be
/// dropped from the shared state.
fn observed_registers(n: &Netlist, next_roots: &BTreeSet<Symbol>) -> BTreeSet<Symbol> {
    let records = n.dff_records();
    let name_of: HashMap<NodeId, Symbol> = records.iter().map(|&(id, nm, _, _)| (id, nm)).collect();
    let mut stack: Vec<NodeId> = n
        .outputs
        .iter()
        .flat_map(|(_, lits)| lits.iter().map(|l| l.node()))
        .collect();
    stack.extend(
        records
            .iter()
            .filter(|(_, nm, _, _)| next_roots.contains(nm))
            .map(|&(_, _, d, _)| d.node()),
    );
    let mut seen: BTreeSet<NodeId> = BTreeSet::new();
    let mut observed = BTreeSet::new();
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        if let Some(&nm) = name_of.get(&id) {
            // Reached a Q: record it, but don't cross into its D cone.
            observed.insert(nm);
            continue;
        }
        for f in n.node(id).fanins() {
            stack.push(f.node());
        }
    }
    observed
}

/// Hashes a boundary leaf's *role* in the miter — shared-input ordinal,
/// pinned constant value, free-key ordinal, golden-state ordinal — into
/// the 128-bit label the sweeper's cone hashes are built over. Two
/// leaves get the same label exactly when every miter binds them the
/// same way (same shared variable, same constant, same free key slot),
/// which is what makes persisted sweep lemmas transferable across
/// miters: a lemma proven under one set of pinned key bits still names
/// the same boundary functions in any miter that reproduces the labels.
fn boundary_label(role: &str, ord: u64, bit: u64) -> ConeHash {
    let mut h = StableHasher::new();
    h.write_str(role);
    h.write_u64(ord);
    h.write_u64(bit);
    h.finish()
}

/// The composed miter, ready to solve.
pub struct Miter {
    engine: Box<dyn SatEngine>,
    shared_inputs: Vec<(Symbol, Vec<Lit>)>,
    shared_state: Vec<(Symbol, Lit)>,
    key_inputs: Vec<(Symbol, Vec<Lit>)>,
    key_state: Vec<(Symbol, Lit)>,
    /// Difference points: `(name, xor-literal)`.
    diffs: Vec<(String, Lit)>,
    /// The encoder's constant-true literal (to recognize folded diffs).
    tru: Lit,
    sweep_stats: SweepStats,
    budget: Option<u64>,
}

/// The solver-agnostic miter body shared by [`Miter`] and [`KeyedMiter`]:
/// boundary literals, difference points, and the sweep outcome, with the
/// engine owned by the caller.
struct MiterCore {
    shared_inputs: Vec<(Symbol, Vec<Lit>)>,
    shared_state: Vec<(Symbol, Lit)>,
    key_inputs: Vec<(Symbol, Vec<Lit>)>,
    key_state: Vec<(Symbol, Lit)>,
    /// Keyed mode only: the `pin_state` registers left free, in revised
    /// `dff_records` order, each with its assumption-slot literal.
    key_slots: Vec<(Symbol, Lit)>,
    diffs: Vec<(String, Lit)>,
    tru: Lit,
    sweep_stats: SweepStats,
}

/// Encodes the miter of `a` against `b` into `s`.
///
/// `keyed = false` is the classic path: [`MiterOptions::pin_state`]
/// registers fold to constants at encode time. `keyed = true` leaves
/// them as *free* variables instead, recording one assumption slot per
/// register, so the caller can pose per-key queries as assumption sets
/// over one long-lived engine. Free key slots label their sweep cones
/// exactly like ordinary free key state (`keystate` by revised ordinal):
/// a lemma proven with the key free holds for every key, so it is sound
/// wherever a free-key lemma is.
fn assemble(
    s: &mut dyn SatEngine,
    a: &Netlist,
    b: &Netlist,
    opts: &MiterOptions,
    keyed: bool,
) -> Result<MiterCore, MiterError> {
    let mut enc = Encoder::new(&mut *s);
    // Deterministic signature words for the sweeping pass, built in
    // lockstep with the literal bindings: shared literal ⇒ shared
    // word, pinned literal ⇒ constant word.
    let mut rng: u64 = 0x5EED_A11C_E000_0001 ^ (a.len() as u64) << 1 ^ b.len() as u64;
    let mut wbind_a: HashMap<Symbol, Vec<Sig>> = HashMap::new();
    let mut wbind_b: HashMap<Symbol, Vec<Sig>> = HashMap::new();
    // Boundary labels for the persisted-lemma cone hashes, also in
    // lockstep: shared inputs label by golden ordinal, pins by their
    // constant value, free key inputs/state by revised ordinal.
    let mut labels_a: HashMap<Symbol, Vec<ConeHash>> = HashMap::new();
    let mut labels_b: HashMap<Symbol, Vec<ConeHash>> = HashMap::new();
    let mut slabels_a: HashMap<Symbol, ConeHash> = HashMap::new();
    let mut slabels_b: HashMap<Symbol, ConeHash> = HashMap::new();

    // --- Shared inputs: allocate once, bind into both encodes. ---
    let b_in_widths: HashMap<Symbol, usize> =
        b.inputs.iter().map(|(n, bits)| (*n, bits.len())).collect();
    let mut bind_a: HashMap<Symbol, Vec<Lit>> = HashMap::new();
    let mut bind_b: HashMap<Symbol, Vec<Lit>> = HashMap::new();
    let mut shared_inputs = Vec::new();
    for (pi, (name, bits)) in a.inputs.iter().enumerate() {
        match b_in_widths.get(name) {
            None => return Err(MiterError::MissingInput(name.to_string())),
            Some(&w) if w != bits.len() => return Err(MiterError::WidthMismatch(name.to_string())),
            Some(_) => {}
        }
        let lits: Vec<Lit> = bits.iter().map(|_| enc.fresh(&mut *s)).collect();
        let words: Vec<Sig> = bits.iter().map(|_| random_sig(&mut rng)).collect();
        bind_a.insert(*name, lits.clone());
        bind_b.insert(*name, lits.clone());
        wbind_a.insert(*name, words.clone());
        wbind_b.insert(*name, words);
        let labels: Vec<ConeHash> = (0..bits.len())
            .map(|j| boundary_label("in", pi as u64, j as u64))
            .collect();
        labels_a.insert(*name, labels.clone());
        labels_b.insert(*name, labels);
        shared_inputs.push((*name, lits));
    }

    // --- Pinned revised inputs (e.g. cfg_en = 0). ---
    for (name, vals) in &opts.pin_inputs {
        let Some(&w) = b_in_widths.get(name) else {
            return Err(MiterError::UnknownPin(name.to_string()));
        };
        if w != vals.len() {
            return Err(MiterError::WidthMismatch(name.to_string()));
        }
        let consts: Vec<Lit> = vals
            .iter()
            .map(|&v| if v { enc.tru() } else { enc.fls() })
            .collect();
        bind_b.insert(*name, consts);
        wbind_b.insert(*name, vals.iter().map(|&v| const_sig(v)).collect());
        // A pinned bit is the constant function of its value: the
        // value alone identifies it, so lemmas over cones that read
        // it survive any renaming — but not a changed pin value.
        labels_b.insert(
            *name,
            vals.iter()
                .map(|&v| boundary_label("pin", v as u64, 0))
                .collect(),
        );
    }

    // --- Remaining revised-only inputs are free key inputs. ---
    let mut key_inputs = Vec::new();
    for (bi, (name, bits)) in b.inputs.iter().enumerate() {
        if bind_b.contains_key(name) {
            continue;
        }
        // Revised-only inputs (key or otherwise) stay free: a free
        // input can only produce spurious differences, never a false
        // Equivalent, so this is conservative for non-key extras.
        let lits: Vec<Lit> = bits.iter().map(|_| enc.fresh(&mut *s)).collect();
        bind_b.insert(*name, lits.clone());
        wbind_b.insert(*name, bits.iter().map(|_| random_sig(&mut rng)).collect());
        labels_b.insert(
            *name,
            (0..bits.len())
                .map(|j| boundary_label("key", bi as u64, j as u64))
                .collect(),
        );
        key_inputs.push((*name, lits));
    }

    // --- Golden state: fresh shared Q variables. ---
    let mut state_a: HashMap<Symbol, Lit> = HashMap::new();
    let mut wstate_a: HashMap<Symbol, Sig> = HashMap::new();
    let mut shared_state = Vec::new();
    for (gi, (_, name, _, _)) in a.dff_records().into_iter().enumerate() {
        let q = enc.fresh(&mut *s);
        state_a.insert(name, q);
        wstate_a.insert(name, random_sig(&mut rng));
        slabels_a.insert(name, boundary_label("state", gi as u64, 0));
        shared_state.push((name, q));
    }

    // --- Revised state: renamed pairing, pins, free key state. ---
    let pin_state: HashMap<Symbol, bool> = opts.pin_state.iter().copied().collect();
    let b_records = b.dff_records();
    let b_names: BTreeSet<Symbol> = b_records.iter().map(|&(_, n, _, _)| n).collect();
    for name in pin_state.keys() {
        if !b_names.contains(name) {
            return Err(MiterError::UnknownPin(name.to_string()));
        }
    }
    let mut state_b: HashMap<Symbol, Lit> = HashMap::new();
    let mut wstate_b: HashMap<Symbol, Sig> = HashMap::new();
    let mut key_state = Vec::new();
    let mut key_slots: Vec<(Symbol, Lit)> = Vec::new();
    let mut paired: Vec<(Symbol, Symbol)> = Vec::new(); // (golden, revised)
    for (bi, &(_, name, _, _)) in b_records.iter().enumerate() {
        let golden = opts.state_rename.get(&name).copied().unwrap_or(name);
        if let Some(&v) = pin_state.get(&name) {
            if keyed {
                // Assumption slot: the register stays a free
                // variable (the pinned *value* is ignored here — the
                // caller supplies it per query), labelled like any
                // other free key state so sweep lemmas stay sound
                // for every key.
                let q = enc.fresh(&mut *s);
                state_b.insert(name, q);
                wstate_b.insert(name, random_sig(&mut rng));
                slabels_b.insert(name, boundary_label("keystate", bi as u64, 0));
                key_state.push((name, q));
                key_slots.push((name, q));
            } else {
                let l = if v { enc.tru() } else { enc.fls() };
                state_b.insert(name, l);
                wstate_b.insert(name, const_sig(v));
                slabels_b.insert(name, boundary_label("pin", v as u64, 0));
                key_state.push((name, l));
            }
        } else if let Some(&q) = state_a.get(&golden) {
            state_b.insert(name, q);
            wstate_b.insert(name, wstate_a[&golden]);
            slabels_b.insert(name, slabels_a[&golden]);
            paired.push((golden, name));
        } else {
            let q = enc.fresh(&mut *s);
            state_b.insert(name, q);
            wstate_b.insert(name, random_sig(&mut rng));
            slabels_b.insert(name, boundary_label("keystate", bi as u64, 0));
            key_state.push((name, q));
        }
    }
    // Every *observable* golden register must be covered, or its
    // next-state check would silently vanish. A register outside the
    // support of every compared point — a write-only counter, say,
    // which LUT mapping rightly prunes from the revised side — is
    // dead weight: excluding it from the shared state is sound (the
    // proof then holds for *all* values of the dropped Q), so it is
    // dropped rather than reported as a pairing failure.
    let covered: BTreeSet<Symbol> = paired.iter().map(|&(g, _)| g).collect();
    let observed = observed_registers(a, &covered);
    for &(name, _) in &shared_state {
        if !covered.contains(&name) && observed.contains(&name) {
            return Err(MiterError::UnpairedState(name.to_string()));
        }
    }
    shared_state.retain(|(name, _)| covered.contains(name) || observed.contains(name));

    // --- Encode both sides against the shared encoder. ---
    let (enc_a, enc_b) = {
        let _span = alice_obs::span("cec.encode");
        (
            enc.encode(&mut *s, a, &bind_a, &state_a),
            enc.encode(&mut *s, b, &bind_b, &state_b),
        )
    };

    // --- SAT sweeping: stitch matching internal nodes together. ---
    let sweep_stats = if opts.sweep {
        sweep(
            &mut *s,
            &mut enc,
            &SweepSide {
                n: a,
                input_lits: &bind_a,
                state_lits: &state_a,
                input_base: &wbind_a,
                state_base: &wstate_a,
                input_labels: &labels_a,
                state_labels: &slabels_a,
                node_lits: &enc_a.node_lits,
            },
            &SweepSide {
                n: b,
                input_lits: &bind_b,
                state_lits: &state_b,
                input_base: &wbind_b,
                state_base: &wstate_b,
                input_labels: &labels_b,
                state_labels: &slabels_b,
                node_lits: &enc_b.node_lits,
            },
            opts.sweep_conflict_budget,
            opts.lemma_store.as_deref(),
            opts.cancel.as_ref(),
        )
    } else {
        SweepStats::default()
    };

    // --- Difference points: outputs... ---
    let b_outs: HashMap<Symbol, &Vec<Lit>> = enc_b.outputs.iter().map(|(n, l)| (*n, l)).collect();
    let mut diffs = Vec::new();
    for (name, lits_a) in &enc_a.outputs {
        let Some(lits_b) = b_outs.get(name) else {
            return Err(MiterError::MissingOutput(name.to_string()));
        };
        if lits_b.len() != lits_a.len() {
            return Err(MiterError::WidthMismatch(name.to_string()));
        }
        for (bit, (&la, &lb)) in lits_a.iter().zip(lits_b.iter()).enumerate() {
            let d = enc.xor(&mut *s, la, lb);
            diffs.push((format!("{name}[{bit}]"), d));
        }
    }
    let a_out_names: BTreeSet<Symbol> = enc_a.outputs.iter().map(|(n, _)| *n).collect();
    for &(name, _) in &enc_b.outputs {
        if !a_out_names.contains(&name) && !is_key_name(name, &opts.key_prefixes) {
            return Err(MiterError::ExtraOutput(name.to_string()));
        }
    }

    // --- ... and next-state functions of paired registers. ---
    if opts.check_next_state {
        let next_a: HashMap<Symbol, Lit> = enc_a.dffs.iter().map(|d| (d.name, d.next)).collect();
        let next_b: HashMap<Symbol, Lit> = enc_b.dffs.iter().map(|d| (d.name, d.next)).collect();
        for &(golden, revised) in &paired {
            let (na, nb) = (next_a[&golden], next_b[&revised]);
            let d = enc.xor(&mut *s, na, nb);
            diffs.push((format!("next({golden})"), d));
        }
    }

    Ok(MiterCore {
        shared_inputs,
        shared_state,
        key_inputs,
        key_state,
        key_slots,
        diffs,
        tru: enc.tru(),
        sweep_stats,
    })
}

/// Reads a [`Counterexample`] out of the engine's current model.
fn extract_model_cex(
    s: &dyn SatEngine,
    shared_inputs: &[(Symbol, Vec<Lit>)],
    shared_state: &[(Symbol, Lit)],
    key_inputs: &[(Symbol, Vec<Lit>)],
    key_state: &[(Symbol, Lit)],
    diffs_true: Vec<String>,
) -> Box<Counterexample> {
    let port = |ports: &[(Symbol, Vec<Lit>)]| -> Vec<(Symbol, Vec<bool>)> {
        ports
            .iter()
            .map(|(n, lits)| (*n, lits.iter().map(|&l| model_value(s, l)).collect()))
            .collect()
    };
    let bits = |regs: &[(Symbol, Lit)]| -> Vec<(Symbol, bool)> {
        regs.iter().map(|(n, l)| (*n, model_value(s, *l))).collect()
    };
    Box::new(Counterexample {
        inputs: port(shared_inputs),
        state: bits(shared_state),
        key_inputs: port(key_inputs),
        key_state: bits(key_state),
        diffs: diffs_true,
    })
}

/// Difference points that are true under the engine's current model.
fn model_diff_names_of(s: &dyn SatEngine, diffs: &[(String, Lit)]) -> Vec<String> {
    diffs
        .iter()
        .filter(|&&(_, d)| model_value(s, d))
        .map(|(n, _)| n.clone())
        .collect()
}

impl Miter {
    /// Builds the miter of golden `a` against revised `b`.
    ///
    /// # Errors
    ///
    /// Returns [`MiterError`] when the two netlists' boundaries cannot be
    /// paired (see the variants for the exact conditions).
    pub fn build(a: &Netlist, b: &Netlist, opts: &MiterOptions) -> Result<Miter, MiterError> {
        let _span = alice_obs::span("cec.build");
        let mut solver = Solver::with_config(opts.solver_config);
        solver.set_cancel(opts.cancel.clone());
        let core = assemble(&mut solver, a, b, opts, false)?;
        Ok(Miter {
            engine: Box::new(solver),
            shared_inputs: core.shared_inputs,
            shared_state: core.shared_state,
            key_inputs: core.key_inputs,
            key_state: core.key_state,
            diffs: core.diffs,
            tru: core.tru,
            sweep_stats: core.sweep_stats,
            budget: opts.conflict_budget,
        })
    }

    /// Number of compared difference points (output bits + paired
    /// next-state functions).
    pub fn diff_points(&self) -> usize {
        self.diffs.len()
    }

    /// CNF statistics: `(variables, clauses)` of the composed miter.
    pub fn cnf_size(&self) -> (usize, usize) {
        (self.engine.num_vars(), self.engine.num_clauses())
    }

    fn extract_cex(&self, diffs_true: Vec<String>) -> Box<Counterexample> {
        extract_model_cex(
            self.engine.as_ref(),
            &self.shared_inputs,
            &self.shared_state,
            &self.key_inputs,
            &self.key_state,
            diffs_true,
        )
    }

    /// Statistics of the SAT-sweeping pass that ran at build time.
    pub fn sweep_stats(&self) -> SweepStats {
        self.sweep_stats
    }

    /// Proves equivalence over all difference points, one assumption
    /// query per point (learned clauses are shared across queries).
    pub fn prove(self) -> CecResult {
        self.prove_with_stats().0
    }

    /// [`Miter::prove`], also reporting the engine's total search effort
    /// (sweeping plus the proof itself) — what the portfolio race
    /// surfaces as the winner's statistics.
    pub fn prove_with_stats(mut self) -> (CecResult, EngineStats) {
        let r = self.prove_inner();
        (r, self.engine.stats())
    }

    fn prove_inner(&mut self) -> CecResult {
        let _span = alice_obs::span("cec.prove");
        self.engine.set_budget(self.budget);
        let mut limited = false;
        for i in 0..self.diffs.len() {
            let d = self.diffs[i].1;
            if self.is_const_false(d) {
                continue; // folded to the same literal — trivially equal
            }
            if d == self.tru {
                // Folded to provably different — the verdict needs no
                // search. Solve without a budget for a witness model
                // (circuit-consistency CNF alone is always satisfiable);
                // if that somehow fails — e.g. the race was cancelled —
                // still report the folded points.
                self.engine.set_budget(None);
                let names = if self.engine.solve() == SatResult::Sat {
                    self.model_diff_names()
                } else {
                    self.diffs
                        .iter()
                        .filter(|&&(_, p)| p == self.tru)
                        .map(|(n, _)| n.clone())
                        .collect()
                };
                return CecResult::NotEquivalent(self.extract_cex(names));
            }
            match self.engine.solve_with(&[d]) {
                SatResult::Unsat => {}
                SatResult::Unknown => limited = true,
                SatResult::Sat => {
                    let names = self.model_diff_names();
                    return CecResult::NotEquivalent(self.extract_cex(names));
                }
            }
        }
        if limited {
            CecResult::ResourceLimit
        } else {
            CecResult::Equivalent
        }
    }

    /// Computes the exact set of corruptible difference points under the
    /// current constraints (each marked point disagrees for some input;
    /// when `complete`, every unmarked point is proven to always agree).
    ///
    /// Every SAT model marks *all* points that differ under it, so the
    /// number of solver calls is bounded by the number of corruptible
    /// points plus the number of clean points.
    pub fn corruption(mut self) -> Corruption {
        let _span = alice_obs::span("cec.corruption");
        self.engine.set_budget(self.budget);
        let total = self.diffs.len();
        let mut corrupted: BTreeSet<String> = BTreeSet::new();
        let mut complete = true;
        for i in 0..self.diffs.len() {
            let (name, d) = self.diffs[i].clone();
            if corrupted.contains(&name) || self.is_const_false(d) {
                continue;
            }
            if d == self.tru {
                corrupted.insert(name);
                continue;
            }
            match self.engine.solve_with(&[d]) {
                SatResult::Unsat => {}
                SatResult::Unknown => complete = false,
                SatResult::Sat => {
                    for n in self.model_diff_names() {
                        corrupted.insert(n);
                    }
                }
            }
        }
        Corruption {
            corrupted,
            total,
            complete,
        }
    }

    fn is_const_false(&self, d: Lit) -> bool {
        d == self.tru.negate()
    }

    fn model_diff_names(&self) -> Vec<String> {
        model_diff_names_of(self.engine.as_ref(), &self.diffs)
    }
}

/// The long-lived engine behind a [`KeyedMiter`]: one CDCL solver, or a
/// portfolio racing diversified members on every assumption solve.
enum KeyedEngine {
    Single(Box<Solver>),
    Portfolio(PortfolioEngine),
}

impl KeyedEngine {
    fn as_engine(&mut self) -> &mut dyn SatEngine {
        match self {
            KeyedEngine::Single(s) => s.as_mut(),
            KeyedEngine::Portfolio(p) => p,
        }
    }

    fn as_engine_ref(&self) -> &dyn SatEngine {
        match self {
            KeyedEngine::Single(s) => s.as_ref(),
            KeyedEngine::Portfolio(p) => p,
        }
    }
}

/// An assumption-parameterized key miter: the golden/revised pair
/// encoded **once** with the bitstream registers left as *free*
/// variables, so the correct-key equivalence proof and every wrong-key
/// corruption analysis become [`SatEngine::solve_with`] calls on one
/// long-lived engine. Learned clauses, sweep-derived equalities,
/// variable activities, and saved phases all transfer across keys —
/// the per-key cost is one assumption solve instead of a fresh Tseitin
/// encode plus a cold CDCL search.
///
/// The registers named by [`MiterOptions::pin_state`] define the
/// assumption *slots* (their pinned values are ignored at build time);
/// every query supplies concrete values for some or all slots via
/// [`KeyedMiter::prove`] / [`KeyedMiter::corruption`]. Slots a query
/// leaves unnamed stay free, so the verdict then covers every value of
/// the unnamed bits — the attacker's view, exactly as in a keyless
/// [`Miter`].
///
/// # Equivalence with the pinned-constant path
///
/// For any complete key, `prove`/`corruption` return *bit-identical*
/// verdicts and corruption sets to a fresh [`Miter`] built with the
/// same bits in [`MiterOptions::pin_state`]: both paths compute exact
/// answers to the same logical query, and assumptions constrain the
/// free key bits to precisely the pinned constants. What changes is
/// only wall-clock — the keyed CNF keeps the configuration mux trees
/// the pinned encode would have constant-folded, and in exchange
/// amortizes encode and search effort across all N keys of a sweep.
pub struct KeyedMiter {
    engine: KeyedEngine,
    shared_inputs: Vec<(Symbol, Vec<Lit>)>,
    shared_state: Vec<(Symbol, Lit)>,
    key_inputs: Vec<(Symbol, Vec<Lit>)>,
    key_state: Vec<(Symbol, Lit)>,
    key_slots: Vec<(Symbol, Lit)>,
    slot_of: HashMap<Symbol, Lit>,
    diffs: Vec<(String, Lit)>,
    tru: Lit,
    sweep_stats: SweepStats,
    budget: Option<u64>,
}

impl KeyedMiter {
    /// Builds the keyed miter of golden `a` against revised `b`.
    ///
    /// `portfolio > 1` backs the miter with a [`PortfolioEngine`] of
    /// that many diversified members (member 0 keeps the caller's
    /// [`MiterOptions::solver_config`]), racing every assumption solve;
    /// otherwise a single [`Solver`] is used. Portfolio racing steers
    /// wall-clock only — verdicts are identical for every member.
    ///
    /// # Errors
    ///
    /// Returns [`MiterError`] when the two netlists' boundaries cannot
    /// be paired (the same conditions as [`Miter::build`]).
    pub fn build(
        a: &Netlist,
        b: &Netlist,
        opts: &MiterOptions,
        portfolio: usize,
    ) -> Result<KeyedMiter, MiterError> {
        let _span = alice_obs::span("cec.keyed_build");
        let mut engine = if portfolio > 1 {
            let mut configs = diversified_configs(portfolio);
            configs[0] = opts.solver_config;
            KeyedEngine::Portfolio(PortfolioEngine::with_configs(configs))
        } else {
            KeyedEngine::Single(Box::new(Solver::with_config(opts.solver_config)))
        };
        engine.as_engine().set_cancel(opts.cancel.clone());
        let core = assemble(engine.as_engine(), a, b, opts, true)?;
        let slot_of = core.key_slots.iter().copied().collect();
        Ok(KeyedMiter {
            engine,
            shared_inputs: core.shared_inputs,
            shared_state: core.shared_state,
            key_inputs: core.key_inputs,
            key_state: core.key_state,
            key_slots: core.key_slots,
            slot_of,
            diffs: core.diffs,
            tru: core.tru,
            sweep_stats: core.sweep_stats,
            budget: opts.conflict_budget,
        })
    }

    /// The assumption slots, in revised `dff_records` order: one
    /// `(register, free literal)` per [`MiterOptions::pin_state`] entry.
    pub fn key_slots(&self) -> &[(Symbol, Lit)] {
        &self.key_slots
    }

    /// Number of compared difference points (output bits + paired
    /// next-state functions).
    pub fn diff_points(&self) -> usize {
        self.diffs.len()
    }

    /// CNF statistics: `(variables, clauses)` of the keyed miter.
    pub fn cnf_size(&self) -> (usize, usize) {
        let e = self.engine.as_engine_ref();
        (e.num_vars(), e.num_clauses())
    }

    /// Statistics of the SAT-sweeping pass that ran at build time.
    pub fn sweep_stats(&self) -> SweepStats {
        self.sweep_stats
    }

    /// Cumulative engine search effort across every query so far.
    pub fn stats(&self) -> EngineStats {
        self.engine.as_engine_ref().stats()
    }

    /// Per-config win counts of the backing portfolio, when
    /// [`KeyedMiter::build`] was given `portfolio > 1`.
    pub fn portfolio_stats(&self) -> Option<PortfolioStats> {
        match &self.engine {
            KeyedEngine::Portfolio(p) => Some(p.portfolio_stats()),
            KeyedEngine::Single(_) => None,
        }
    }

    /// Lowers a key to its assumption set: one literal per named slot,
    /// positive for `true` bits.
    ///
    /// # Errors
    ///
    /// [`MiterError::UnknownPin`] when `key` names a register that is
    /// not an assumption slot.
    pub fn assumptions(&self, key: &[(Symbol, bool)]) -> Result<Vec<Lit>, MiterError> {
        key.iter()
            .map(|&(name, v)| match self.slot_of.get(&name) {
                Some(&l) => Ok(if v { l } else { l.negate() }),
                None => Err(MiterError::UnknownPin(name.to_string())),
            })
            .collect()
    }

    /// Proves equivalence under `key`, one assumption query per
    /// difference point — the incremental counterpart of
    /// [`Miter::prove`]. The engine is reset to the root afterwards, so
    /// the next key starts from a coherent level-0 state.
    ///
    /// # Errors
    ///
    /// [`MiterError::UnknownPin`] when `key` names an unknown register.
    pub fn prove(&mut self, key: &[(Symbol, bool)]) -> Result<CecResult, MiterError> {
        let mut assumptions = self.assumptions(key)?;
        let _span = alice_obs::span("cec.prove");
        let budget = self.budget;
        self.engine.as_engine().set_budget(budget);
        let mut verdict = None;
        let mut limited = false;
        for i in 0..self.diffs.len() {
            let d = self.diffs[i].1;
            if d == self.tru.negate() {
                continue; // folded to the same literal — trivially equal
            }
            let r = if d == self.tru {
                // Folded to provably different for *every* key: solve
                // only for a witness consistent with this key (the
                // circuit CNF plus a consistent key assignment is
                // always satisfiable), without a budget.
                self.engine.as_engine().set_budget(None);
                let r = self.engine.as_engine().solve_with(&assumptions);
                self.engine.as_engine().set_budget(budget);
                if r != SatResult::Sat {
                    // Cancelled mid-witness: still report folded points.
                    let names = self
                        .diffs
                        .iter()
                        .filter(|&&(_, p)| p == self.tru)
                        .map(|(n, _)| n.clone())
                        .collect();
                    verdict = Some(CecResult::NotEquivalent(self.extract_cex(names)));
                    break;
                }
                SatResult::Sat
            } else {
                assumptions.push(d);
                let r = self.engine.as_engine().solve_with(&assumptions);
                assumptions.pop();
                r
            };
            match r {
                SatResult::Unsat => {}
                SatResult::Unknown => limited = true,
                SatResult::Sat => {
                    let names = self.model_diff_names();
                    verdict = Some(CecResult::NotEquivalent(self.extract_cex(names)));
                    break;
                }
            }
        }
        self.engine.as_engine().reset_to_root();
        Ok(verdict.unwrap_or(if limited {
            CecResult::ResourceLimit
        } else {
            CecResult::Equivalent
        }))
    }

    /// Computes the exact corruptible-point set under `key` — the
    /// incremental counterpart of [`Miter::corruption`], with identical
    /// semantics (every SAT model marks all points differing under it;
    /// `complete` is false only on budget exhaustion). The engine is
    /// reset to the root afterwards.
    ///
    /// # Errors
    ///
    /// [`MiterError::UnknownPin`] when `key` names an unknown register.
    pub fn corruption(&mut self, key: &[(Symbol, bool)]) -> Result<Corruption, MiterError> {
        let mut assumptions = self.assumptions(key)?;
        let _span = alice_obs::span("cec.corruption");
        self.engine.as_engine().set_budget(self.budget);
        let total = self.diffs.len();
        let mut corrupted: BTreeSet<String> = BTreeSet::new();
        let mut complete = true;
        for i in 0..self.diffs.len() {
            let (name, d) = self.diffs[i].clone();
            if corrupted.contains(&name) || d == self.tru.negate() {
                continue;
            }
            if d == self.tru {
                corrupted.insert(name);
                continue;
            }
            assumptions.push(d);
            let r = self.engine.as_engine().solve_with(&assumptions);
            assumptions.pop();
            match r {
                SatResult::Unsat => {}
                SatResult::Unknown => complete = false,
                SatResult::Sat => {
                    for n in self.model_diff_names() {
                        corrupted.insert(n);
                    }
                }
            }
        }
        self.engine.as_engine().reset_to_root();
        Ok(Corruption {
            corrupted,
            total,
            complete,
        })
    }

    fn extract_cex(&self, diffs_true: Vec<String>) -> Box<Counterexample> {
        extract_model_cex(
            self.engine.as_engine_ref(),
            &self.shared_inputs,
            &self.shared_state,
            &self.key_inputs,
            &self.key_state,
            diffs_true,
        )
    }

    fn model_diff_names(&self) -> Vec<String> {
        model_diff_names_of(self.engine.as_engine_ref(), &self.diffs)
    }
}

/// Proves `a` equivalent to `b` under default options (no key pins, scan
/// model for sequential logic).
///
/// # Errors
///
/// Returns [`MiterError`] when the netlists' boundaries cannot be paired.
///
/// # Example
///
/// ```
/// use alice_cec::{prove_equivalent, CecResult};
/// use alice_netlist::ir::Netlist;
///
/// let mut n = Netlist::new("xor2");
/// let a = n.add_input("a", 1)[0];
/// let b = n.add_input("b", 1)[0];
/// let y = n.xor(a, b);
/// n.add_output("y", vec![y]);
/// assert_eq!(prove_equivalent(&n, &n), Ok(CecResult::Equivalent));
/// ```
pub fn prove_equivalent(a: &Netlist, b: &Netlist) -> Result<CecResult, MiterError> {
    Ok(Miter::build(a, b, &MiterOptions::default())?.prove())
}

/// Outcome of a raced equivalence proof (see [`prove_equivalent_raced`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceOutcome {
    /// The winning configuration's verdict.
    pub result: CecResult,
    /// Index of the configuration that answered first (0 is always the
    /// caller's exact options — today's single-solver behavior).
    pub winner: usize,
    /// Search effort (sweeping + proof) spent by the winner.
    pub stats: EngineStats,
    /// Number of configurations raced.
    pub configs: usize,
    /// Difference points compared, as seen by the winner.
    pub diff_points: usize,
    /// Winner's miter CNF variable count.
    pub cnf_vars: usize,
    /// Winner's miter CNF clause count.
    pub cnf_clauses: usize,
}

/// The portfolio diversification of one miter configuration: config 0 is
/// the caller's options verbatim; odd configs flip the sweep-first vs.
/// monolithic encoding split; even configs scale the sweep budget; every
/// config beyond 0 gets its own CDCL heuristics from
/// [`diversified_configs`]. None of this can change a verdict — only
/// which verdict arrives first.
fn diversified_options(
    base: &MiterOptions,
    i: usize,
    configs: &[SolverConfig],
    token: &CancelToken,
) -> MiterOptions {
    let mut o = base.clone();
    o.solver_config = configs[i];
    o.cancel = Some(token.clone());
    if i > 0 {
        if i % 2 == 1 {
            o.sweep = !base.sweep;
        } else {
            o.sweep_conflict_budget = base
                .sweep_conflict_budget
                .map(|b| b.saturating_mul(1 << (i / 2).min(8)));
        }
    }
    o
}

/// Races `n` diversified miter configurations over up to `jobs` worker
/// threads; the first definitive verdict wins and the losers are
/// cooperatively cancelled (they stop within one propagation round and
/// are joined before this returns — no threads outlive the call).
///
/// `n <= 1` degenerates to a plain [`Miter::build`] + [`Miter::prove`]
/// on the calling thread with byte-identical behavior. A
/// [`CecResult::ResourceLimit`] answer never wins the race: a
/// budget-exhausted configuration must not outrank a slower prover, so
/// the limit verdict is returned only when *every* configuration
/// exhausts. Build errors are structural and configuration-independent,
/// hence immediately definitive.
///
/// # Errors
///
/// Returns [`MiterError`] when the netlists' boundaries cannot be paired.
pub fn prove_equivalent_raced(
    a: &Netlist,
    b: &Netlist,
    opts: &MiterOptions,
    n: usize,
    jobs: usize,
) -> Result<RaceOutcome, MiterError> {
    if n <= 1 {
        let m = Miter::build(a, b, opts)?;
        let diff_points = m.diff_points();
        let (cnf_vars, cnf_clauses) = m.cnf_size();
        let (result, stats) = m.prove_with_stats();
        return Ok(RaceOutcome {
            result,
            winner: 0,
            stats,
            configs: 1,
            diff_points,
            cnf_vars,
            cnf_clauses,
        });
    }
    let configs = diversified_configs(n);
    let outcome = race(n, jobs, |i, token| {
        if alice_obs::tracing_enabled() {
            alice_obs::set_thread_name(&format!("portfolio racer {i}"));
        }
        let _span = alice_obs::span_with("cec.race_candidate", || format!("config {i}"));
        let o = diversified_options(opts, i, &configs, token);
        match Miter::build(a, b, &o) {
            Err(e) => Some(Err(e)),
            Ok(m) => {
                let diff_points = m.diff_points();
                let (cnf_vars, cnf_clauses) = m.cnf_size();
                match m.prove_with_stats() {
                    (CecResult::ResourceLimit, _) => None,
                    (r, stats) => Some(Ok((r, stats, diff_points, cnf_vars, cnf_clauses))),
                }
            }
        }
    });
    match outcome {
        Some((winner, Ok((result, stats, diff_points, cnf_vars, cnf_clauses)))) => {
            Ok(RaceOutcome {
                result,
                winner,
                stats,
                configs: n,
                diff_points,
                cnf_vars,
                cnf_clauses,
            })
        }
        Some((_, Err(e))) => Err(e),
        None => Ok(RaceOutcome {
            result: CecResult::ResourceLimit,
            winner: 0,
            stats: EngineStats::default(),
            configs: n,
            diff_points: 0,
            cnf_vars: 0,
            cnf_clauses: 0,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_chain(flip: bool) -> Netlist {
        let mut n = Netlist::new("t");
        let a = n.add_input("a", 4);
        let b = n.add_input("b", 4);
        let mut acc = n.xor(a[0], b[0]);
        for i in 1..4 {
            let x = n.xor(a[i], b[i]);
            acc = n.and(acc, x);
        }
        n.add_output("y", vec![if flip { acc.compl() } else { acc }]);
        n
    }

    #[test]
    fn identical_netlists_are_equivalent() {
        let n = xor_chain(false);
        assert_eq!(prove_equivalent(&n, &n), Ok(CecResult::Equivalent));
    }

    #[test]
    fn flipped_output_produces_counterexample() {
        let a = xor_chain(false);
        let b = xor_chain(true);
        match prove_equivalent(&a, &b).expect("builds") {
            CecResult::NotEquivalent(cex) => {
                assert_eq!(cex.diffs, vec!["y[0]".to_string()]);
                assert_eq!(cex.inputs.len(), 2);
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn structurally_different_but_equal_circuits() {
        // a^b vs (a&!b)|(!a&b)
        let mut n1 = Netlist::new("x");
        let a = n1.add_input("a", 1)[0];
        let b = n1.add_input("b", 1)[0];
        let y = n1.xor(a, b);
        n1.add_output("y", vec![y]);

        let mut n2 = Netlist::new("x2");
        let a = n2.add_input("a", 1)[0];
        let b = n2.add_input("b", 1)[0];
        let t1 = n2.and(a, b.compl());
        let t2 = n2.and(a.compl(), b);
        let y = n2.or(t1, t2);
        n2.add_output("y", vec![y]);
        assert_eq!(prove_equivalent(&n1, &n2), Ok(CecResult::Equivalent));
    }

    #[test]
    fn sequential_next_state_is_checked() {
        // Register q <= q ^ d, versus a broken copy q <= q & d.
        let build = |broken: bool| {
            let mut n = Netlist::new("s");
            let d = n.add_input("d", 1)[0];
            let q = n.dff("s.q[0]", false);
            let nx = if broken { n.and(q, d) } else { n.xor(q, d) };
            n.set_dff_input(q, nx);
            n.add_output("q", vec![q]);
            n
        };
        let good = build(false);
        let bad = build(true);
        assert_eq!(prove_equivalent(&good, &good), Ok(CecResult::Equivalent));
        match prove_equivalent(&good, &bad).expect("builds") {
            CecResult::NotEquivalent(cex) => {
                assert_eq!(cex.diffs, vec!["next(s.q[0])".to_string()]);
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn dead_unpaired_golden_register_is_tolerated() {
        // The golden side carries a write-only register (toggles itself,
        // read by nothing) that a pruning revised implementation drops —
        // the classic dead-counter case. The pairing must tolerate it.
        let build = |with_dead: bool| {
            let mut n = Netlist::new("s");
            let d = n.add_input("d", 1)[0];
            let q = n.dff("s.q[0]", false);
            let nx = n.xor(q, d);
            n.set_dff_input(q, nx);
            if with_dead {
                let dead = n.dff("s.dead[0]", false);
                n.set_dff_input(dead, dead.compl());
            }
            n.add_output("q", vec![q]);
            n
        };
        assert_eq!(
            prove_equivalent(&build(true), &build(false)),
            Ok(CecResult::Equivalent)
        );
    }

    #[test]
    fn live_unpaired_golden_register_is_an_error() {
        // Same shape, but the extra register feeds the output: dropping
        // it would silently weaken the proof, so it must stay a hard
        // pairing failure.
        let mut a = Netlist::new("s");
        let d = a.add_input("d", 1)[0];
        let live = a.dff("s.live[0]", false);
        a.set_dff_input(live, d);
        let y = a.xor(live, d);
        a.add_output("y", vec![y]);

        let mut b = Netlist::new("s2");
        let d = b.add_input("d", 1)[0];
        b.add_output("y", vec![d]);
        assert_eq!(
            prove_equivalent(&a, &b),
            Err(MiterError::UnpairedState("s.live[0]".to_string()))
        );
    }

    #[test]
    fn unpaired_register_feeding_a_paired_next_state_is_an_error() {
        // The extra register is invisible at the outputs but drives the
        // D of a paired register — its Q is in a compared next-state
        // cone, so it is observable and must not be dropped.
        let mut a = Netlist::new("s");
        let d = a.add_input("d", 1)[0];
        let hidden = a.dff("s.hidden[0]", false);
        a.set_dff_input(hidden, d);
        let q = a.dff("s.q[0]", false);
        let nx = a.xor(q, hidden);
        a.set_dff_input(q, nx);
        a.add_output("q", vec![q]);

        let mut b = Netlist::new("s2");
        let d = b.add_input("d", 1)[0];
        let q = b.dff("s.q[0]", false);
        let nx = b.xor(q, d);
        b.set_dff_input(q, nx);
        b.add_output("q", vec![q]);
        assert_eq!(
            prove_equivalent(&a, &b),
            Err(MiterError::UnpairedState("s.hidden[0]".to_string()))
        );
    }

    #[test]
    fn key_state_free_vs_pinned() {
        // b computes y = a ^ k where k is a "cfg" register; a computes
        // y = a. Free key: inequivalent. Pinned k=0: equivalent.
        let mut a_nl = Netlist::new("a");
        let ai = a_nl.add_input("a", 1)[0];
        a_nl.add_output("y", vec![ai]);

        let mut b_nl = Netlist::new("b");
        let bi = b_nl.add_input("a", 1)[0];
        let k = b_nl.dff("top.le0.cfg[0]", false);
        b_nl.set_dff_input(k, k);
        let y = b_nl.xor(bi, k);
        b_nl.add_output("y", vec![y]);

        let free = Miter::build(&a_nl, &b_nl, &MiterOptions::default())
            .expect("builds")
            .prove();
        assert!(matches!(free, CecResult::NotEquivalent(_)));

        let opts = MiterOptions {
            pin_state: vec![(Symbol::intern("top.le0.cfg[0]"), false)],
            ..MiterOptions::default()
        };
        let pinned = Miter::build(&a_nl, &b_nl, &opts).expect("builds").prove();
        assert_eq!(pinned, CecResult::Equivalent);
    }

    #[test]
    fn corruption_marks_exactly_the_differing_outputs() {
        // y0 identical, y1 flipped: exactly one of two points corrupts.
        let mut a_nl = Netlist::new("a");
        let ai = a_nl.add_input("a", 2);
        let x = a_nl.xor(ai[0], ai[1]);
        a_nl.add_output("y0", vec![ai[0]]);
        a_nl.add_output("y1", vec![x]);

        let mut b_nl = Netlist::new("b");
        let bi = b_nl.add_input("a", 2);
        let x = b_nl.xor(bi[0], bi[1]);
        b_nl.add_output("y0", vec![bi[0]]);
        b_nl.add_output("y1", vec![x.compl()]);

        let c = Miter::build(&a_nl, &b_nl, &MiterOptions::default())
            .expect("builds")
            .corruption();
        assert!(c.complete);
        assert_eq!(c.total, 2);
        assert_eq!(
            c.corrupted.into_iter().collect::<Vec<_>>(),
            vec!["y1[0]".to_string()]
        );
    }

    #[test]
    fn boundary_mismatches_are_named_errors() {
        let mut a_nl = Netlist::new("a");
        let ai = a_nl.add_input("a", 2);
        a_nl.add_output("y", vec![ai[0]]);

        let mut b_nl = Netlist::new("b");
        let bi = b_nl.add_input("b", 2);
        b_nl.add_output("y", vec![bi[0]]);
        assert_eq!(
            Miter::build(&a_nl, &b_nl, &MiterOptions::default()).err(),
            Some(MiterError::MissingInput("a".to_string()))
        );

        let mut c_nl = Netlist::new("c");
        let ci = c_nl.add_input("a", 3);
        c_nl.add_output("y", vec![ci[0]]);
        assert_eq!(
            Miter::build(&a_nl, &c_nl, &MiterOptions::default()).err(),
            Some(MiterError::WidthMismatch("a".to_string()))
        );
    }

    #[test]
    fn fingerprint_is_name_free_but_binding_sensitive() {
        let build = |in_name: &str, reg: &str, out: &str| {
            let mut n = Netlist::new("t");
            let a = n.add_input(in_name, 2);
            let q = n.dff(reg, false);
            let x = n.xor(a[0], q);
            n.set_dff_input(q, x);
            n.add_output(out, vec![x, a[1]]);
            n
        };
        let a1 = build("a", "t.q[0]", "y");
        let b1 = build("a", "t.q[0]", "y");
        let a2 = build("p", "t.r[0]", "z");
        let b2 = build("p", "t.r[0]", "z");
        let opts = MiterOptions::default();
        // Renaming everything consistently leaves the fingerprint alone.
        assert_eq!(
            miter_fingerprint(&a1, &b1, &opts),
            miter_fingerprint(&a2, &b2, &opts)
        );
        // Pinning a register changes it.
        let pinned = MiterOptions {
            pin_state: vec![(Symbol::intern("t.q[0]"), true)],
            ..MiterOptions::default()
        };
        assert_ne!(
            miter_fingerprint(&a1, &b1, &opts),
            miter_fingerprint(&a1, &b1, &pinned)
        );
        // ...and so does the pinned *value* (a different wrong key).
        let pinned_low = MiterOptions {
            pin_state: vec![(Symbol::intern("t.q[0]"), false)],
            ..MiterOptions::default()
        };
        assert_ne!(
            miter_fingerprint(&a1, &b1, &pinned),
            miter_fingerprint(&a1, &b1, &pinned_low)
        );
        // Structure changes change it.
        let mut flipped = build("a", "t.q[0]", "y");
        flipped.outputs[0].1[0] = flipped.outputs[0].1[0].compl();
        assert_ne!(
            miter_fingerprint(&a1, &b1, &opts),
            miter_fingerprint(&a1, &flipped, &opts)
        );
        // Solver budgets do not (a cached verdict is budget-independent),
        // and neither do portfolio knobs: heuristics and cancellation
        // steer wall-clock, never verdicts.
        let budgeted = MiterOptions {
            conflict_budget: Some(1),
            sweep: false,
            solver_config: SolverConfig {
                invert_phase: true,
                seed: 42,
                ..SolverConfig::default()
            },
            cancel: Some(CancelToken::new()),
            ..MiterOptions::default()
        };
        assert_eq!(
            miter_fingerprint(&a1, &b1, &opts),
            miter_fingerprint(&a1, &b1, &budgeted)
        );
        // The key-prefix set does: it changes what would even build.
        let no_prefixes = MiterOptions {
            key_prefixes: Vec::new(),
            ..MiterOptions::default()
        };
        assert_ne!(
            miter_fingerprint(&a1, &b1, &opts),
            miter_fingerprint(&a1, &b1, &no_prefixes)
        );
        // Cross-wiring the input pairing (same shapes, different binding)
        // changes it: swap which golden port pairs with which revised
        // position by renaming ports asymmetrically.
        let crossed = build("b", "t.q[0]", "y");
        assert_ne!(
            miter_fingerprint(&a1, &crossed, &opts),
            miter_fingerprint(&a1, &b1, &opts),
            "unpaired inputs must not fingerprint like paired ones"
        );
    }

    #[test]
    fn resource_limit_is_reported() {
        // A miter hard enough to exceed a one-conflict budget: two
        // different-looking 6-bit adder-ish structures.
        let build = |swap: bool| {
            let mut n = Netlist::new("t");
            let a = n.add_input("a", 6);
            let b = n.add_input("b", 6);
            let mut carry = alice_netlist::ir::Lit::FALSE;
            let mut outs = Vec::new();
            for i in 0..6 {
                let (x, y) = if swap { (b[i], a[i]) } else { (a[i], b[i]) };
                let s1 = n.xor(x, y);
                let s2 = n.xor(s1, carry);
                let c1 = n.and(x, y);
                let c2 = n.and(s1, carry);
                carry = n.or(c1, c2);
                outs.push(s2);
            }
            n.add_output("s", outs);
            n
        };
        let a_nl = build(false);
        let b_nl = build(true);
        let opts = MiterOptions {
            conflict_budget: Some(0),
            ..MiterOptions::default()
        };
        let r = Miter::build(&a_nl, &b_nl, &opts).expect("builds").prove();
        // Commutated operands strash to the same nodes, so this may fold
        // to Equivalent without search; accept either outcome but never a
        // counterexample.
        assert!(!matches!(r, CecResult::NotEquivalent(_)));
    }

    fn adder_pair() -> (Netlist, Netlist) {
        let build = |swap: bool| {
            let mut n = Netlist::new("t");
            let a = n.add_input("a", 6);
            let b = n.add_input("b", 6);
            let mut carry = alice_netlist::ir::Lit::FALSE;
            let mut outs = Vec::new();
            for i in 0..6 {
                let (x, y) = if swap { (b[i], a[i]) } else { (a[i], b[i]) };
                let s1 = n.xor(x, y);
                let s2 = n.xor(s1, carry);
                let c1 = n.and(x, y);
                let c2 = n.and(s1, carry);
                carry = n.or(c1, c2);
                outs.push(s2);
            }
            n.add_output("s", outs);
            n
        };
        (build(false), build(true))
    }

    #[test]
    fn raced_prove_agrees_with_single_and_joins_all_shards() {
        // An Equivalent (all-UNSAT) miter raced across 3 configurations:
        // the race must return the same verdict as portfolio 1, and
        // because the race runs on scoped threads, returning at all
        // proves every loser was cancelled and joined.
        let (a, b) = adder_pair();
        let opts = MiterOptions::default();
        let single = Miter::build(&a, &b, &opts).expect("builds").prove();
        let raced = prove_equivalent_raced(&a, &b, &opts, 3, 3).expect("builds");
        assert_eq!(raced.result, single);
        assert_eq!(raced.result, CecResult::Equivalent);
        assert!(raced.winner < 3);
        assert_eq!(raced.configs, 3);

        // And a NotEquivalent pair keeps its verdict under racing too
        // (the witness itself may legitimately differ per winner).
        let mut bad = a.clone();
        bad.outputs[0].1[0] = bad.outputs[0].1[0].compl();
        let raced = prove_equivalent_raced(&a, &bad, &opts, 3, 3).expect("builds");
        assert!(matches!(raced.result, CecResult::NotEquivalent(_)));
    }

    #[test]
    fn raced_prove_with_one_config_is_the_plain_path() {
        let (a, b) = adder_pair();
        let r = prove_equivalent_raced(&a, &b, &MiterOptions::default(), 1, 4).expect("builds");
        assert_eq!(r.result, CecResult::Equivalent);
        assert_eq!((r.winner, r.configs), (0, 1));
    }

    #[test]
    fn raced_prove_propagates_build_errors_and_exhaustion() {
        let (a, b) = adder_pair();
        // Structural error: definitive regardless of configuration.
        let mut c = b.clone();
        c.inputs[0].0 = Symbol::intern("renamed");
        let err = prove_equivalent_raced(&a, &c, &MiterOptions::default(), 3, 3);
        assert_eq!(err.err(), Some(MiterError::MissingInput("a".to_string())));
        // A zero conflict budget exhausts every configuration: the limit
        // verdict is only reported when nobody answers definitively.
        let opts = MiterOptions {
            conflict_budget: Some(0),
            sweep: false,
            sweep_conflict_budget: Some(0),
            ..MiterOptions::default()
        };
        let r = prove_equivalent_raced(&a, &b, &opts, 3, 3).expect("builds");
        // Commutated operands may strash to identical nodes and fold the
        // miter closed without search; accept either non-witness verdict.
        assert!(!matches!(r.result, CecResult::NotEquivalent(_)));
    }

    fn tmp_lemma_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "alice-miter-lemma-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// a^b per bit, versus the (a&!b)|(!a&b) decomposition: equivalent,
    /// structurally different, so every bit is real sweep work.
    fn xor_vs_decomposed(width: u32) -> (Netlist, Netlist) {
        let mut n1 = Netlist::new("x");
        let a = n1.add_input("a", width);
        let b = n1.add_input("b", width);
        let ys = (0..width as usize).map(|i| n1.xor(a[i], b[i])).collect();
        n1.add_output("y", ys);

        let mut n2 = Netlist::new("x2");
        let a = n2.add_input("a", width);
        let b = n2.add_input("b", width);
        let ys = (0..width as usize)
            .map(|i| {
                let t1 = n2.and(a[i], b[i].compl());
                let t2 = n2.and(a[i].compl(), b[i]);
                n2.or(t1, t2)
            })
            .collect();
        n2.add_output("y", ys);
        (n1, n2)
    }

    #[test]
    fn warm_lemmas_skip_sweep_proofs() {
        let (a, b) = xor_vs_decomposed(4);
        let dir = tmp_lemma_dir("warm");

        // Cold run: every merge costs a per-pair SAT proof, and the
        // proven lemmas are persisted on flush.
        let store = Arc::new(Store::open(&dir).expect("open"));
        let opts = MiterOptions {
            lemma_store: Some(Arc::clone(&store)),
            ..MiterOptions::default()
        };
        let m = Miter::build(&a, &b, &opts).expect("builds");
        let s1 = m.sweep_stats();
        assert!(s1.merged > 0, "sweep must stitch the xor decompositions");
        assert_eq!(s1.lemma_hits, 0, "cold store cannot serve lemmas");
        assert_eq!(m.prove(), CecResult::Equivalent);
        store.flush().expect("flush");
        drop(store);
        drop(opts);

        // Warm run from a fresh handle (a second process): the same
        // cone pairs are served from the store, skipping their proofs,
        // and the verdict is unchanged.
        let store = Arc::new(Store::open(&dir).expect("reopen"));
        let opts = MiterOptions {
            lemma_store: Some(Arc::clone(&store)),
            ..MiterOptions::default()
        };
        let m = Miter::build(&a, &b, &opts).expect("builds");
        let s2 = m.sweep_stats();
        assert!(s2.lemma_hits > 0, "warm lemmas must be served: {s2:?}");
        assert_eq!(s2.merged, s1.merged, "lemmas change cost, not merges");
        assert!(
            s2.candidates - s2.lemma_hits < s1.candidates,
            "warm run must pose fewer per-pair SAT proofs ({s2:?} vs {s1:?})"
        );
        assert_eq!(m.prove(), CecResult::Equivalent);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lemmas_transfer_across_pinned_key_values() {
        // A *novel* miter over familiar sub-structures: the same netlist
        // pair under a different pinned key value. y0 is key-independent
        // xor-vs-decomposition work; y1 reads the cfg register k but is
        // equal to a[0] for either value of k. Lemmas proven for the y0
        // cones under k=0 must warm the k=1 miter even though its
        // whole-miter fingerprint differs.
        let width = 4u32;
        let mut g = Netlist::new("g");
        let a = g.add_input("a", width);
        let b = g.add_input("b", width);
        let ys = (0..width as usize).map(|i| g.xor(a[i], b[i])).collect();
        g.add_output("y0", ys);
        g.add_output("y1", vec![a[0]]);

        let mut r = Netlist::new("r");
        let a = r.add_input("a", width);
        let b = r.add_input("b", width);
        let ys = (0..width as usize)
            .map(|i| {
                let t1 = r.and(a[i], b[i].compl());
                let t2 = r.and(a[i].compl(), b[i]);
                r.or(t1, t2)
            })
            .collect();
        r.add_output("y0", ys);
        let k = r.dff("top.le0.cfg[0]", false);
        r.set_dff_input(k, k);
        let alt = {
            let t1 = r.and(a[0], b[0]);
            let t2 = r.and(a[0], b[0].compl());
            r.or(t1, t2) // == a[0], but not structurally
        };
        let y1 = r.mux(k, a[0], alt);
        r.add_output("y1", vec![y1]);

        let dir = tmp_lemma_dir("crosspin");
        let pin = |v: bool, store: &Arc<Store>| MiterOptions {
            pin_state: vec![(Symbol::intern("top.le0.cfg[0]"), v)],
            lemma_store: Some(Arc::clone(store)),
            ..MiterOptions::default()
        };

        let store = Arc::new(Store::open(&dir).expect("open"));
        let o0 = pin(false, &store);
        let m = Miter::build(&g, &r, &o0).expect("builds");
        let s1 = m.sweep_stats();
        assert!(s1.merged > 0);
        assert_eq!(s1.lemma_hits, 0);
        assert_eq!(m.prove(), CecResult::Equivalent);
        store.flush().expect("flush");
        drop(store);

        let store = Arc::new(Store::open(&dir).expect("reopen"));
        let o1 = pin(true, &store);
        assert_ne!(
            miter_fingerprint(&g, &r, &o0),
            miter_fingerprint(&g, &r, &o1),
            "different pinned key bits must be a whole-miter cache miss"
        );
        let m = Miter::build(&g, &r, &o1).expect("builds");
        let s2 = m.sweep_stats();
        assert!(
            s2.lemma_hits > 0,
            "key-independent lemmas must transfer: {s2:?}"
        );
        assert!(
            s2.candidates - s2.lemma_hits < s1.candidates,
            "warm novel miter must pose fewer per-pair SAT proofs ({s2:?} vs {s1:?})"
        );
        assert_eq!(m.prove(), CecResult::Equivalent);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancelled_miter_reports_resource_limit() {
        // a^b vs (a&!b)|(!a&b): equivalent but structurally different,
        // so nothing folds and a verdict genuinely needs search (the
        // sweep, which would stitch them, bails out when cancelled too).
        let mut a = Netlist::new("x");
        let i0 = a.add_input("a", 1)[0];
        let i1 = a.add_input("b", 1)[0];
        let y = a.xor(i0, i1);
        a.add_output("y", vec![y]);
        let mut b = Netlist::new("x2");
        let i0 = b.add_input("a", 1)[0];
        let i1 = b.add_input("b", 1)[0];
        let t1 = b.and(i0, i1.compl());
        let t2 = b.and(i0.compl(), i1);
        let y = b.or(t1, t2);
        b.add_output("y", vec![y]);
        let token = CancelToken::new();
        token.cancel();
        let opts = MiterOptions {
            cancel: Some(token),
            ..MiterOptions::default()
        };
        let m = Miter::build(&a, &b, &opts).expect("builds");
        assert_eq!(m.prove(), CecResult::ResourceLimit);
    }

    /// Golden `y = a`; revised `y = a ^ cfg` with a 2-bit cfg chain:
    /// correct key is `cfg[0] = cfg[1] = 0` (any set bit corrupts y).
    fn keyed_pair() -> (Netlist, Netlist, Vec<(Symbol, bool)>) {
        let mut g = Netlist::new("g");
        let a = g.add_input("a", 1)[0];
        g.add_output("y", vec![a]);

        let mut r = Netlist::new("r");
        let a = r.add_input("a", 1)[0];
        let k0 = r.dff("top.le0.cfg[0]", false);
        r.set_dff_input(k0, k0);
        let k1 = r.dff("top.le0.cfg[1]", false);
        r.set_dff_input(k1, k1);
        let k = r.xor(k0, k1);
        let y = r.xor(a, k);
        r.add_output("y", vec![y]);
        let key = vec![
            (Symbol::intern("top.le0.cfg[0]"), false),
            (Symbol::intern("top.le0.cfg[1]"), false),
        ];
        (g, r, key)
    }

    #[test]
    fn keyed_miter_matches_pinned_verdicts_across_keys() {
        let (g, r, correct) = keyed_pair();
        let base = MiterOptions {
            pin_state: correct.clone(),
            ..MiterOptions::default()
        };
        let mut km = KeyedMiter::build(&g, &r, &base, 1).expect("builds");
        assert_eq!(km.key_slots().len(), 2);
        assert_eq!(km.diff_points(), 1);

        // Every key value, interleaved and repeated: the long-lived
        // engine must keep answering exactly what a fresh pinned miter
        // answers, regardless of what it learned from earlier keys.
        for &(b0, b1) in &[
            (false, false),
            (true, false),
            (false, true),
            (true, true),
            (false, false),
        ] {
            let key = vec![(correct[0].0, b0), (correct[1].0, b1)];
            let pinned = MiterOptions {
                pin_state: key.clone(),
                ..MiterOptions::default()
            };
            let want = Miter::build(&g, &r, &pinned).expect("builds").prove();
            let got = km.prove(&key).expect("known slots");
            assert_eq!(
                got.is_equivalent(),
                want.is_equivalent(),
                "key ({b0},{b1}): keyed {got:?} vs pinned {want:?}"
            );
            let want_c = Miter::build(&g, &r, &pinned).expect("builds").corruption();
            let got_c = km.corruption(&key).expect("known slots");
            assert_eq!(got_c, want_c, "corruption must be bit-identical");
        }
        let stats = km.stats();
        assert!(
            stats.assumption_solves > 0,
            "keyed queries must be incremental: {stats:?}"
        );
    }

    #[test]
    fn keyed_counterexample_reports_the_assumed_key() {
        let (g, r, correct) = keyed_pair();
        let base = MiterOptions {
            pin_state: correct.clone(),
            ..MiterOptions::default()
        };
        let mut km = KeyedMiter::build(&g, &r, &base, 1).expect("builds");
        let wrong = vec![(correct[0].0, true), (correct[1].0, false)];
        match km.prove(&wrong).expect("known slots") {
            CecResult::NotEquivalent(cex) => {
                assert_eq!(cex.diffs, vec!["y[0]".to_string()]);
                // The witness's key-state values are the assumed key.
                let got: Vec<(Symbol, bool)> = cex.key_state.clone();
                assert_eq!(got, wrong);
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn keyed_partial_keys_and_unknown_slots() {
        let (g, r, correct) = keyed_pair();
        let base = MiterOptions {
            pin_state: correct.clone(),
            ..MiterOptions::default()
        };
        let mut km = KeyedMiter::build(&g, &r, &base, 1).expect("builds");
        // A slot left free makes the query cover every value of that
        // bit: some value corrupts y, so this cannot be Equivalent.
        let partial = vec![(correct[0].0, false)];
        assert!(matches!(
            km.prove(&partial).expect("known slot"),
            CecResult::NotEquivalent(_)
        ));
        // ...and the complete correct key still proves afterwards.
        assert_eq!(km.prove(&correct).expect("known"), CecResult::Equivalent);
        // Unknown names are rejected, not silently ignored.
        let bogus = vec![(Symbol::intern("top.le9.cfg[7]"), true)];
        assert_eq!(
            km.prove(&bogus).err(),
            Some(MiterError::UnknownPin("top.le9.cfg[7]".to_string()))
        );
    }

    #[test]
    fn keyed_portfolio_agrees_with_single() {
        let (g, r, correct) = keyed_pair();
        let base = MiterOptions {
            pin_state: correct.clone(),
            ..MiterOptions::default()
        };
        let mut single = KeyedMiter::build(&g, &r, &base, 1).expect("builds");
        let mut ported = KeyedMiter::build(&g, &r, &base, 3).expect("builds");
        assert!(single.portfolio_stats().is_none());
        for &(b0, b1) in &[(false, false), (true, true), (true, false)] {
            let key = vec![(correct[0].0, b0), (correct[1].0, b1)];
            let a = single.prove(&key).expect("known");
            let b = ported.prove(&key).expect("known");
            assert_eq!(a.is_equivalent(), b.is_equivalent(), "key ({b0},{b1})");
            assert_eq!(
                single.corruption(&key).expect("known"),
                ported.corruption(&key).expect("known")
            );
        }
        let ps = ported.portfolio_stats().expect("portfolio-backed");
        assert_eq!(ps.configs, 3);
        assert!(ps.wins.iter().sum::<u64>() > 0);
    }
}
