//! The persistent CEC proof cache — the fourth cached oracle of the
//! flow, sharing the `alice-store` artifact store with the
//! characterization caches. Lookups decode straight out of the store's
//! zero-copy [`Payload`](alice_store::Payload) views (the mapped shard
//! bytes back the `Reader`, no intermediate heap copy), and writes land
//! in per-key shards so concurrent sweeps flush without contending.
//!
//! The verify stage and wrong-key sweeps repeatedly pose the *same*
//! equivalence queries across suite re-runs and CLI invocations: the
//! (golden, revised) pair hashes identically, the bitstream pins are
//! identical, and the verdict cannot change. Entries are keyed by
//! [`miter_fingerprint`](crate::miter::miter_fingerprint) — name-free
//! netlist structure plus the ordinal-resolved binding and pinned key
//! bits — so a cached result is sound for *any* renaming of the same
//! query.
//!
//! Only conclusions that are stable by construction are cached:
//!
//! * **`Equivalent` proofs** — a proof holds forever; `NotEquivalent`
//!   (a redaction bug that will be fixed) and `ResourceLimit` (budget-
//!   dependent) are recomputed.
//! * **Complete corruption counts** — the exact wrong-key corruptibility
//!   numbers; incomplete (budget-cut) analyses are recomputed.
//! * **Sweep lemmas** — per-pair internal equivalences the SAT sweeper
//!   proved, keyed by the canonical pair of boundary-labelled cone
//!   hashes (see `crate::sweep`). Unlike whole-miter proofs these
//!   transfer to *novel* miters that reuse familiar sub-structures —
//!   e.g. the same netlist pair under different pinned key bits.

use alice_intern::StableHasher;
use alice_store::{Kind, Reader, Store, Writer};

/// A cached `Equivalent` verdict, carrying the miter statistics the
/// verify report would otherwise have measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedProof {
    /// Compared difference points of the proven miter.
    pub diff_points: u64,
    /// CNF variable count of the proven miter.
    pub cnf_vars: u64,
    /// CNF clause count of the proven miter.
    pub cnf_clauses: u64,
}

/// A cached complete corruption analysis (wrong-key sweep result).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedCorruption {
    /// Difference points proven corruptible.
    pub corrupted: u64,
    /// Total difference points compared.
    pub total: u64,
}

const TAG_PROOF: u8 = 1;
const TAG_CORRUPTION: u8 = 2;
const TAG_LEMMA: u8 = 3;

/// Folds the miter fingerprint into a store key, segregated per entry
/// type so an equivalence proof and a corruption analysis of the same
/// miter cannot alias.
fn store_key(label: &str, fp: (u64, u64)) -> (u64, u64) {
    let mut h = StableHasher::new();
    h.write_str(label);
    h.write_u64(fp.0);
    h.write_u64(fp.1);
    h.finish()
}

/// Looks up a cached `Equivalent` proof for the fingerprinted miter.
pub fn lookup_proof(store: &Store, fp: (u64, u64)) -> Option<CachedProof> {
    let bytes = store.get(Kind::Cec, store_key("prove", fp))?;
    let mut r = Reader::new(&bytes);
    if r.get_u8().ok()? != TAG_PROOF {
        return None;
    }
    Some(CachedProof {
        diff_points: r.get_u64().ok()?,
        cnf_vars: r.get_u64().ok()?,
        cnf_clauses: r.get_u64().ok()?,
    })
}

/// Records an `Equivalent` proof. The write is committed on the store's
/// next flush.
pub fn record_proof(store: &Store, fp: (u64, u64), proof: CachedProof) {
    let mut w = Writer::new();
    w.put_u8(TAG_PROOF);
    w.put_u64(proof.diff_points);
    w.put_u64(proof.cnf_vars);
    w.put_u64(proof.cnf_clauses);
    store.put(Kind::Cec, store_key("prove", fp), w.into_bytes());
}

/// Looks up a cached complete corruption analysis for the fingerprinted
/// (wrong-key-pinned) miter.
pub fn lookup_corruption(store: &Store, fp: (u64, u64)) -> Option<CachedCorruption> {
    let bytes = store.get(Kind::Cec, store_key("corruption", fp))?;
    let mut r = Reader::new(&bytes);
    if r.get_u8().ok()? != TAG_CORRUPTION {
        return None;
    }
    let corrupted = r.get_u64().ok()?;
    let total = r.get_u64().ok()?;
    if corrupted > total {
        return None; // corrupt record: impossible count
    }
    Some(CachedCorruption { corrupted, total })
}

/// Records a complete corruption analysis.
pub fn record_corruption(store: &Store, fp: (u64, u64), c: CachedCorruption) {
    let mut w = Writer::new();
    w.put_u8(TAG_CORRUPTION);
    w.put_u64(c.corrupted);
    w.put_u64(c.total);
    store.put(Kind::Cec, store_key("corruption", fp), w.into_bytes());
}

/// True when a sweep lemma is persisted for the canonical cone-pair key
/// (see `crate::sweep::lemma_key`): the two cones were once proven
/// equal, so a sweeper seeing the same pair may assert the equality
/// without re-proving it.
pub fn lookup_lemma(store: &Store, pair: (u64, u64)) -> bool {
    let Some(bytes) = store.get(Kind::Lemma, store_key("lemma", pair)) else {
        return false;
    };
    let mut r = Reader::new(&bytes);
    r.get_u8().ok() == Some(TAG_LEMMA)
}

/// Records a proven sweep lemma. The write is committed on the store's
/// next flush.
pub fn record_lemma(store: &Store, pair: (u64, u64)) {
    let mut w = Writer::new();
    w.put_u8(TAG_LEMMA);
    store.put(Kind::Lemma, store_key("lemma", pair), w.into_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> (std::path::PathBuf, Store) {
        let dir = std::env::temp_dir().join(format!(
            "alice-cec-cache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).expect("open");
        (dir, store)
    }

    #[test]
    fn proof_round_trips_and_survives_reopen() {
        let (dir, store) = tmp_store("proof");
        let fp = (0x1234, 0x5678);
        assert_eq!(lookup_proof(&store, fp), None);
        let proof = CachedProof {
            diff_points: 12,
            cnf_vars: 3456,
            cnf_clauses: 7890,
        };
        record_proof(&store, fp, proof);
        assert_eq!(lookup_proof(&store, fp), Some(proof));
        drop(store);
        let store = Store::open(&dir).expect("reopen");
        assert_eq!(lookup_proof(&store, fp), Some(proof));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn proof_and_corruption_keys_do_not_alias() {
        let (dir, store) = tmp_store("alias");
        let fp = (7, 7);
        record_proof(
            &store,
            fp,
            CachedProof {
                diff_points: 1,
                cnf_vars: 2,
                cnf_clauses: 3,
            },
        );
        assert_eq!(lookup_corruption(&store, fp), None);
        record_corruption(
            &store,
            fp,
            CachedCorruption {
                corrupted: 4,
                total: 9,
            },
        );
        assert_eq!(
            lookup_corruption(&store, fp),
            Some(CachedCorruption {
                corrupted: 4,
                total: 9
            })
        );
        assert!(lookup_proof(&store, fp).is_some(), "proof still there");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lemma_round_trips_and_survives_reopen() {
        let (dir, store) = tmp_store("lemma");
        let pair = (0xABCD, 0xEF01);
        assert!(!lookup_lemma(&store, pair));
        record_lemma(&store, pair);
        assert!(lookup_lemma(&store, pair));
        drop(store);
        // A second process sees the lemma from its own handle.
        let store = Store::open(&dir).expect("reopen");
        assert!(lookup_lemma(&store, pair));
        assert!(!lookup_lemma(&store, (0xABCD, 0xEF02)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn impossible_counts_are_rejected() {
        let (dir, store) = tmp_store("bounds");
        let fp = (1, 2);
        let mut w = Writer::new();
        w.put_u8(TAG_CORRUPTION);
        w.put_u64(10);
        w.put_u64(3); // corrupted > total
        store.put(Kind::Cec, store_key("corruption", fp), w.into_bytes());
        assert_eq!(lookup_corruption(&store, fp), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
