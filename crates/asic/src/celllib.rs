//! Standard-cell library model (NanGate 45nm Open Cell Library flavour).
//!
//! The paper validates designs with Cadence Genus/Innovus on NanGate45;
//! this module embeds the per-cell constants those tools would read from
//! the `.lib`: area, intrinsic delay and leakage for the handful of cells
//! our gate-level IR maps onto.

/// A standard cell description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Library cell name.
    pub name: &'static str,
    /// Area in µm².
    pub area_um2: f64,
    /// Intrinsic delay in ns.
    pub delay_ns: f64,
    /// Leakage power in nW.
    pub leakage_nw: f64,
}

/// Inverter.
pub const INV_X1: Cell = Cell {
    name: "INV_X1",
    area_um2: 0.532,
    delay_ns: 0.011,
    leakage_nw: 1.57,
};

/// 2-input NAND.
pub const NAND2_X1: Cell = Cell {
    name: "NAND2_X1",
    area_um2: 0.798,
    delay_ns: 0.014,
    leakage_nw: 2.15,
};

/// 2-input NOR.
pub const NOR2_X1: Cell = Cell {
    name: "NOR2_X1",
    area_um2: 0.798,
    delay_ns: 0.018,
    leakage_nw: 1.98,
};

/// 2-input XOR.
pub const XOR2_X1: Cell = Cell {
    name: "XOR2_X1",
    area_um2: 1.596,
    delay_ns: 0.035,
    leakage_nw: 4.24,
};

/// 2:1 multiplexer.
pub const MUX2_X1: Cell = Cell {
    name: "MUX2_X1",
    area_um2: 1.862,
    delay_ns: 0.032,
    leakage_nw: 4.37,
};

/// D flip-flop with reset.
pub const DFF_X1: Cell = Cell {
    name: "DFFR_X1",
    area_um2: 4.522,
    delay_ns: 0.091,
    leakage_nw: 9.12,
};

/// Buffer (used for ports and high-fanout nets).
pub const BUF_X1: Cell = Cell {
    name: "BUF_X1",
    area_um2: 0.798,
    delay_ns: 0.022,
    leakage_nw: 2.36,
};

/// All cells in the library.
pub const ALL_CELLS: [Cell; 7] = [INV_X1, NAND2_X1, NOR2_X1, XOR2_X1, MUX2_X1, DFF_X1, BUF_X1];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_is_sane() {
        for c in ALL_CELLS {
            assert!(c.area_um2 > 0.0, "{}", c.name);
            assert!(c.delay_ns > 0.0, "{}", c.name);
            assert!(c.leakage_nw > 0.0, "{}", c.name);
        }
        // Sequential cells dominate area; XOR is bigger than NAND.
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(DFF_X1.area_um2 > XOR2_X1.area_um2);
            assert!(XOR2_X1.area_um2 > NAND2_X1.area_um2);
        }
    }
}
