//! ASIC implementation cost model (Cadence Genus/Innovus substitute).
//!
//! The paper validates redacted designs with commercial logic synthesis
//! and physical design on the NanGate 45nm library. This crate provides
//! the equivalents the reproduction needs:
//!
//! * [`celllib`] — the embedded NanGate45-flavour cell library,
//! * [`report`] — gate→cell mapping plus area/timing/power reports,
//! * [`mod@floorplan`] — macro placement and die-area accounting behind
//!   Figure 4, including an ASCII layout renderer.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use alice_fabric::arch::FabricSize;
//!
//! let fp = alice_asic::floorplan::floorplan(
//!     &[FabricSize::square(4), FabricSize::square(4)], 500.0, 0.9);
//! println!("{}", fp.render_ascii(48));
//! assert!(fp.die_area_um2() > 50_000.0);
//! # Ok(())
//! # }
//! ```

pub mod celllib;
pub mod floorplan;
pub mod report;

pub use floorplan::{floorplan, floorplan_named, Floorplan, PlacedMacro};
pub use report::{synthesize, AsicReport};
