//! Gate-to-cell technology mapping and PPA (power/performance/area)
//! reporting — the Genus-substitute synthesis report.

use crate::celllib::*;
use alice_netlist::ir::{Netlist, Node};
use std::collections::HashSet;

/// Synthesis report for one netlist (Genus `report_area`/`report_timing`
/// equivalents).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AsicReport {
    /// NAND2 cells (AND = NAND + INV in this simple mapping).
    pub nand2: usize,
    /// XOR2 cells.
    pub xor2: usize,
    /// MUX2 cells.
    pub mux2: usize,
    /// Inverters (AND outputs plus complemented edges).
    pub inv: usize,
    /// Flip-flops.
    pub dff: usize,
    /// Total standard-cell area in µm².
    pub area_um2: f64,
    /// Leakage power in µW.
    pub leakage_uw: f64,
    /// Critical path delay in ns.
    pub critical_path_ns: f64,
}

impl AsicReport {
    /// Total mapped cell count.
    pub fn cells(&self) -> usize {
        self.nand2 + self.xor2 + self.mux2 + self.inv + self.dff
    }
}

/// Maps a gate-level netlist onto the cell library and reports PPA.
///
/// Mapping rules: `And` → NAND2 + INV, `Xor` → XOR2, `Mux` → MUX2,
/// `Dff` → DFFR; each node whose output is consumed complemented adds one
/// INV (shared across consumers).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let f = alice_verilog::parse_source(
///     "module m(input wire [3:0] a, output wire [3:0] y); assign y = a + 4'd1; endmodule")?;
/// let n = alice_netlist::elaborate::elaborate(&f, "m")?;
/// let report = alice_asic::report::synthesize(&n);
/// assert!(report.area_um2 > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn synthesize(netlist: &Netlist) -> AsicReport {
    let n = alice_netlist::opt::sweep(netlist);
    let mut r = AsicReport::default();
    let mut complemented: HashSet<u32> = HashSet::new();
    for (_, node) in n.iter() {
        for f in node.fanins() {
            if f.is_compl() && f != alice_netlist::ir::Lit::TRUE {
                complemented.insert(f.node().0);
            }
        }
    }
    for (_, bits) in &n.outputs {
        for l in bits {
            if l.is_compl() && *l != alice_netlist::ir::Lit::TRUE {
                complemented.insert(l.node().0);
            }
        }
    }
    for (_, node) in n.iter() {
        match node {
            Node::And(..) => {
                r.nand2 += 1;
                r.inv += 1;
            }
            Node::Xor(..) => r.xor2 += 1,
            Node::Mux { .. } => r.mux2 += 1,
            Node::Dff { .. } => r.dff += 1,
            Node::Const0 | Node::Input { .. } | Node::Buf(_) => {}
        }
    }
    r.inv += complemented.len();

    r.area_um2 = r.nand2 as f64 * NAND2_X1.area_um2
        + r.xor2 as f64 * XOR2_X1.area_um2
        + r.mux2 as f64 * MUX2_X1.area_um2
        + r.inv as f64 * INV_X1.area_um2
        + r.dff as f64 * DFF_X1.area_um2;
    r.leakage_uw = (r.nand2 as f64 * NAND2_X1.leakage_nw
        + r.xor2 as f64 * XOR2_X1.leakage_nw
        + r.mux2 as f64 * MUX2_X1.leakage_nw
        + r.inv as f64 * INV_X1.leakage_nw
        + r.dff as f64 * DFF_X1.leakage_nw)
        / 1000.0;

    // Critical path: longest combinational chain weighted by cell delay,
    // with a fixed 0.015 ns wire load per stage.
    const WIRE_NS: f64 = 0.015;
    let order = n.comb_topo_order().expect("swept netlist is acyclic");
    let mut arrival = vec![0.0f64; n.len()];
    let mut worst: f64 = 0.0;
    for id in order {
        let node = n.node(id);
        let stage = match node {
            Node::And(..) => NAND2_X1.delay_ns + INV_X1.delay_ns,
            Node::Xor(..) => XOR2_X1.delay_ns,
            Node::Mux { .. } => MUX2_X1.delay_ns,
            Node::Dff { .. } => {
                arrival[id.0 as usize] = DFF_X1.delay_ns;
                continue;
            }
            _ => {
                continue;
            }
        };
        let worst_in = node
            .fanins()
            .iter()
            .map(|f| arrival[f.node().0 as usize])
            .fold(0.0, f64::max);
        let t = worst_in + stage + WIRE_NS;
        arrival[id.0 as usize] = t;
        worst = worst.max(t);
    }
    r.critical_path_ns = worst;
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use alice_netlist::elaborate::elaborate;
    use alice_verilog::parse_source;

    fn report(src: &str, top: &str) -> AsicReport {
        let f = parse_source(src).expect("parse");
        let n = elaborate(&f, top).expect("elab");
        synthesize(&n)
    }

    #[test]
    fn adder_report_scales_with_width() {
        let r8 = report(
            "module m(input wire [7:0] a, input wire [7:0] b, output wire [7:0] y);\
             assign y = a + b; endmodule",
            "m",
        );
        let r16 = report(
            "module m(input wire [15:0] a, input wire [15:0] b, output wire [15:0] y);\
             assign y = a + b; endmodule",
            "m",
        );
        assert!(r16.area_um2 > r8.area_um2 * 1.5);
        assert!(r16.critical_path_ns > r8.critical_path_ns);
    }

    #[test]
    fn sequential_design_counts_dffs() {
        let r = report(
            "module m(input wire clk, input wire [7:0] d, output reg [7:0] q);\
             always @(posedge clk) q <= d; endmodule",
            "m",
        );
        assert_eq!(r.dff, 8);
        assert!(r.area_um2 >= 8.0 * DFF_X1.area_um2);
    }

    #[test]
    fn pure_wires_have_zero_delay() {
        let r = report(
            "module m(input wire [3:0] a, output wire [3:0] y); assign y = a; endmodule",
            "m",
        );
        assert_eq!(r.cells(), 0);
        assert_eq!(r.critical_path_ns, 0.0);
    }
}
