//! Floorplanning for redacted designs — the Innovus substitute behind
//! Figure 4 of the paper.
//!
//! A redacted chip is a set of hard eFPGA macros plus a standard-cell
//! region. The floorplanner packs the macros along a shelf, reserves
//! standard-cell rows at the target utilization, and reports the die
//! area; [`Floorplan::render_ascii`] draws the Figure-4-style layout.

use alice_fabric::arch::FabricSize;
use alice_fabric::cost::fabric_area_um2;
use alice_intern::Symbol;

/// A placed macro block.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedMacro {
    /// Macro name (interned; the deployed fabric's module name, or a
    /// generated `efpga{i} ({size})` label for anonymous planning).
    pub name: Symbol,
    /// Lower-left x in µm.
    pub x: f64,
    /// Lower-left y in µm.
    pub y: f64,
    /// Width in µm.
    pub w: f64,
    /// Height in µm.
    pub h: f64,
}

/// A completed floorplan.
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    /// Die width in µm.
    pub die_w: f64,
    /// Die height in µm.
    pub die_h: f64,
    /// Placed eFPGA macros.
    pub macros: Vec<PlacedMacro>,
    /// Standard-cell area placed around the macros (µm²).
    pub stdcell_area_um2: f64,
}

impl Floorplan {
    /// Total die area in µm².
    pub fn die_area_um2(&self) -> f64 {
        self.die_w * self.die_h
    }

    /// Core utilization: (macro + std-cell area) / die area.
    pub fn utilization(&self) -> f64 {
        let macro_area: f64 = self.macros.iter().map(|m| m.w * m.h).sum();
        (macro_area + self.stdcell_area_um2) / self.die_area_um2()
    }

    /// Renders a Figure-4-style ASCII layout (`cols` characters wide).
    pub fn render_ascii(&self, cols: usize) -> String {
        let rows = ((cols as f64) * self.die_h / self.die_w / 2.0).ceil() as usize;
        let rows = rows.max(8);
        let mut grid = vec![vec!['.'; cols]; rows];
        for (i, m) in self.macros.iter().enumerate() {
            let x0 = (m.x / self.die_w * cols as f64) as usize;
            let x1 = (((m.x + m.w) / self.die_w) * cols as f64).min(cols as f64) as usize;
            let y0 = (m.y / self.die_h * rows as f64) as usize;
            let y1 = (((m.y + m.h) / self.die_h) * rows as f64).min(rows as f64) as usize;
            let tag = char::from_digit((i % 10) as u32, 10).expect("digit");
            for row in grid.iter_mut().take(y1.max(y0 + 1)).skip(y0) {
                for cell in row.iter_mut().take(x1.max(x0 + 1)).skip(x0) {
                    *cell = tag;
                }
            }
        }
        let mut out = String::new();
        out.push('+');
        out.push_str(&"-".repeat(cols));
        out.push_str("+\n");
        for row in grid.iter().rev() {
            out.push('|');
            out.extend(row.iter());
            out.push_str("|\n");
        }
        out.push('+');
        out.push_str(&"-".repeat(cols));
        out.push('+');
        out
    }
}

/// Builds a floorplan for a set of eFPGA macros plus `stdcell_area_um2` of
/// logic, targeting the given core `utilization` (Innovus-style default is
/// around 0.7).
///
/// Macros are square (fabric arrays) and placed on a single shelf from the
/// left; standard-cell rows take the remaining space. Each macro carries a
/// generated `efpga{i} ({size})` label; use [`floorplan_named`] to place
/// the flow's actual fabric module names (e.g. `alice_efpga0_4x4`).
pub fn floorplan(fabrics: &[FabricSize], stdcell_area_um2: f64, utilization: f64) -> Floorplan {
    let named: Vec<(Symbol, FabricSize)> = fabrics
        .iter()
        .enumerate()
        .map(|(i, &size)| (Symbol::intern(&format!("efpga{i} ({size})")), size))
        .collect();
    floorplan_named(&named, stdcell_area_um2, utilization)
}

/// Like [`floorplan`], but every macro keeps its caller-supplied interned
/// name — the typed bridge from redaction output to physical design: pass
/// each deployed fabric's `module_name` so the Figure-4 report and the
/// layout speak the same names as the emitted netlists.
pub fn floorplan_named(
    fabrics: &[(Symbol, FabricSize)],
    stdcell_area_um2: f64,
    utilization: f64,
) -> Floorplan {
    let sides: Vec<f64> = fabrics
        .iter()
        .map(|&(_, s)| fabric_area_um2(s).sqrt())
        .collect();
    let shelf_w: f64 = sides.iter().sum::<f64>() + 10.0 * (fabrics.len().max(1) - 1) as f64;
    let shelf_h: f64 = sides.iter().cloned().fold(0.0, f64::max);
    // Total needed area at the target utilization.
    let macro_area: f64 = fabrics.iter().map(|&(_, s)| fabric_area_um2(s)).sum();
    let need = (macro_area + stdcell_area_um2) / utilization.clamp(0.1, 1.0);
    // Die: wide enough for the shelf, tall enough for the rest.
    let die_w = shelf_w.max(need.sqrt());
    let die_h = (need / die_w).max(shelf_h + 10.0);
    let mut macros = Vec::new();
    let mut x = 0.0;
    for (&(name, _), side) in fabrics.iter().zip(&sides) {
        macros.push(PlacedMacro {
            name,
            x,
            y: 0.0,
            w: *side,
            h: *side,
        });
        x += side + 10.0;
    }
    Floorplan {
        die_w,
        die_h,
        macros,
        stdcell_area_um2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_gcd_solutions_are_area_equivalent() {
        // cfg1: two 4x4 fabrics; cfg2: one 5x5 fabric; ~500 µm² GCD logic.
        let fp1 = floorplan(&[FabricSize::square(4), FabricSize::square(4)], 500.0, 1.0);
        let fp2 = floorplan(&[FabricSize::square(5)], 500.0, 1.0);
        let ratio = fp1.die_area_um2() / fp2.die_area_um2();
        assert!(
            (0.85..=1.15).contains(&ratio),
            "cfg1 {} vs cfg2 {} (ratio {ratio})",
            fp1.die_area_um2(),
            fp2.die_area_um2()
        );
    }

    #[test]
    fn macros_fit_in_die() {
        let fp = floorplan(&[FabricSize::square(8), FabricSize::square(4)], 2000.0, 0.7);
        for m in &fp.macros {
            assert!(m.x + m.w <= fp.die_w + 1e-6, "{m:?}");
            assert!(m.y + m.h <= fp.die_h + 1e-6, "{m:?}");
        }
        assert!(fp.utilization() <= 1.0);
    }

    #[test]
    fn ascii_rendering_shows_macros() {
        let fp = floorplan(&[FabricSize::square(4), FabricSize::square(4)], 500.0, 0.9);
        let art = fp.render_ascii(40);
        assert!(art.contains('0'), "{art}");
        assert!(art.contains('1'), "{art}");
        assert!(art.lines().count() >= 10);
    }

    #[test]
    fn named_macros_keep_their_names() {
        let names = [
            Symbol::intern("alice_efpga0_4x4"),
            Symbol::intern("alice_efpga1_5x5"),
        ];
        let fp = floorplan_named(
            &[
                (names[0], FabricSize::square(4)),
                (names[1], FabricSize::square(5)),
            ],
            500.0,
            0.8,
        );
        let placed: Vec<Symbol> = fp.macros.iter().map(|m| m.name).collect();
        assert_eq!(placed, names);
        // The anonymous wrapper places identically, only the labels differ.
        let anon = floorplan(&[FabricSize::square(4), FabricSize::square(5)], 500.0, 0.8);
        assert_eq!(anon.die_area_um2(), fp.die_area_um2());
        assert_eq!(anon.macros[0].name, "efpga0 (4x4)");
    }

    #[test]
    fn empty_macro_list_still_plans() {
        let fp = floorplan(&[], 1000.0, 0.7);
        assert!(fp.die_area_um2() >= 1000.0 / 0.7 * 0.99);
        assert!(fp.macros.is_empty());
    }
}
