//! A minimal, dependency-free stand-in for the [Criterion] bench API.
//!
//! The workspace is built offline, so the real `criterion` crate is not
//! available; this crate implements just the surface the `alice-bench`
//! benches use (`Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher`,
//! the `criterion_group!`/`criterion_main!` macros) on top of plain
//! wall-clock timing. Each benchmark runs `sample_size` samples and
//! prints min/mean/max per-iteration times — enough for relative
//! comparisons, with no statistics engine behind it.
//!
//! [Criterion]: https://docs.rs/criterion

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point handed to bench functions, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of samples for benches made from this value.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_samples(name, self.sample_size, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_samples(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (printing is per-bench; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier: `function/parameter`, either part optional.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished by parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(p)) => write!(f, "{func}/{p}"),
            (Some(func), None) => write!(f, "{func}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "?"),
        }
    }
}

/// The per-sample timing driver passed to `|b| b.iter(...)` closures.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times one sample of the routine.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed = start.elapsed();
    }
}

fn run_samples<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed);
    }
    let min = times.iter().min().copied().unwrap_or_default();
    let max = times.iter().max().copied().unwrap_or_default();
    let mean = times.iter().sum::<Duration>() / times.len().max(1) as u32;
    println!(
        "{label:<48} min {min:>10.2?}  mean {mean:>10.2?}  max {max:>10.2?}  ({samples} samples)"
    );
}

/// Mirrors `criterion::criterion_group!` — both the simple and the
/// `name/config/targets` forms used in the benches.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() { $( $group(); )+ }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("filter", "GCD").to_string(), "filter/GCD");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }

    #[test]
    fn bencher_times_a_closure() {
        let mut c = Criterion::default().sample_size(2);
        let mut ran = 0;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 2);
    }
}
