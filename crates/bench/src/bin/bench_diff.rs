//! `bench_diff` — the bench-trajectory gate: compares a freshly measured
//! `BENCH_pipeline.json` against the committed baseline and fails when
//! any phase regressed beyond a threshold.
//!
//! ```text
//! bench_diff <baseline.json> <candidate.json> [--threshold PCT]
//! ```
//!
//! Raw wall-clock numbers are not comparable across machines (a CI
//! runner is not the laptop that produced the baseline), so the check
//! normalizes first: it computes the **median** candidate/baseline ratio
//! over every shared `*_ms` phase — the machine-speed factor — and then
//! flags phases whose ratio exceeds `median × (1 + threshold)`. A
//! uniformly slower machine passes; one phase ballooning relative to the
//! others fails. Sub-millisecond phases jitter by whole multiples, so a
//! phase only fails when it is *also* more than `NOISE_FLOOR_MS` beyond
//! its scaled baseline — a 0.4 ms blip cannot gate a merge, a 50 ms one
//! can. On shared (virtualized, CPU-steal-prone) hardware even a
//! correct measurement of a short phase can land whole multiples off,
//! so phases whose baseline is under `RELIABLE_MS` are reported but
//! never gate — only phases long enough to average over scheduler noise
//! can fail the build. Effectiveness fractions — any `*_improvement`
//! leaf, like the
//! cache's `warm_vs_cold_improvement` or the CEC bench's
//! `portfolio_improvement` — are machine-independent and compared
//! absolutely: a drop of more than `threshold` (as a fraction) fails.
//!
//! The same gate understands every bench file the suite writes
//! (`BENCH_pipeline.json`, `BENCH_cec.json`): both are the JSON subset
//! parsed here, and the rules are keyed on leaf-name conventions, not
//! schemas.

use std::collections::BTreeMap;
use std::process::ExitCode;

const USAGE: &str = "usage: bench_diff <baseline.json> <candidate.json> [--threshold PCT]";

/// Minimum absolute excess (ms) over the scaled baseline before a phase
/// regression counts — timer jitter on sub-millisecond phases is larger
/// than any threshold ratio.
const NOISE_FLOOR_MS: f64 = 2.0;

/// Phases with a baseline shorter than this are informational only: on
/// shared hardware a CPU-steal burst can multiply a tens-of-milliseconds
/// measurement several-fold, so no ratio over such a baseline is
/// evidence of a code regression.
const RELIABLE_MS: f64 = 50.0;

/// Extracts every numeric leaf of a JSON-subset document (objects,
/// numbers, strings; exactly what `pipeline_bench` writes) as a dotted
/// path → value map. Not a general JSON parser — unknown constructs are
/// an error so a malformed file cannot silently pass the gate.
fn numeric_leaves(src: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut pos = 0usize;
    parse_object(&bytes, &mut pos, "", &mut out)?;
    skip_ws(&bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at offset {pos}"));
    }
    Ok(out)
}

fn skip_ws(b: &[char], pos: &mut usize) {
    while *pos < b.len() && b[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn expect(b: &[char], pos: &mut usize, c: char) -> Result<(), String> {
    skip_ws(b, pos);
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{c}` at offset {pos}", pos = *pos))
    }
}

fn parse_string(b: &[char], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, '"')?;
    let mut s = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            '"' => return Ok(s),
            '\\' => return Err("escapes are not used in bench files".to_string()),
            _ => s.push(c),
        }
    }
    Err("unterminated string".to_string())
}

fn parse_object(
    b: &[char],
    pos: &mut usize,
    prefix: &str,
    out: &mut BTreeMap<String, f64>,
) -> Result<(), String> {
    expect(b, pos, '{')?;
    skip_ws(b, pos);
    if b.get(*pos) == Some(&'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        let key = parse_string(b, pos)?;
        let path = if prefix.is_empty() {
            key
        } else {
            format!("{prefix}.{key}")
        };
        expect(b, pos, ':')?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some('{') => parse_object(b, pos, &path, out)?,
            Some('"') => {
                parse_string(b, pos)?; // schema/matrix labels: ignored
            }
            Some(c) if c.is_ascii_digit() || *c == '-' => {
                let start = *pos;
                while b
                    .get(*pos)
                    .is_some_and(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
                {
                    *pos += 1;
                }
                let text: String = b[start..*pos].iter().collect();
                let v: f64 = text.parse().map_err(|_| format!("bad number `{text}`"))?;
                out.insert(path, v);
            }
            other => return Err(format!("unexpected value start {other:?}")),
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(',') => {
                *pos += 1;
                skip_ws(b, pos);
            }
            Some('}') => {
                *pos += 1;
                return Ok(());
            }
            other => return Err(format!("expected `,` or `}}`, got {other:?}")),
        }
    }
}

fn load(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    numeric_leaves(&text).map_err(|e| format!("{path}: {e}"))
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v[v.len() / 2]
}

fn run(baseline_path: &str, candidate_path: &str, threshold: f64) -> Result<(), String> {
    let baseline = load(baseline_path)?;
    let candidate = load(candidate_path)?;

    // Machine-speed normalization over the shared timing phases.
    // A phase is any `*_ms` leaf, including per-benchmark sub-keys like
    // `elaborate_ms.GCD`.
    let shared: Vec<(&String, f64, f64)> = baseline
        .iter()
        .filter(|(k, _)| k.ends_with("_ms") || k.contains("_ms."))
        .filter_map(|(k, &b)| candidate.get(k).map(|&c| (k, b, c)))
        .filter(|&(_, b, _)| b > 0.0)
        .collect();
    if shared.is_empty() {
        return Err("no shared `*_ms` phases between the two files".to_string());
    }
    let scale = median(shared.iter().map(|&(_, b, c)| c / b).collect());
    println!(
        "bench_diff: {} shared phase(s), machine-speed factor {scale:.2}x, \
         threshold +{:.0}% beyond that",
        shared.len(),
        threshold * 100.0
    );

    let mut regressions: Vec<String> = Vec::new();
    let bar = scale * (1.0 + threshold);
    for &(key, b, c) in &shared {
        let ratio = c / b;
        let regressed = b >= RELIABLE_MS && ratio > bar && c - b * scale > NOISE_FLOOR_MS;
        let flag = if regressed { "  << REGRESSION" } else { "" };
        println!("  {key:<40} {b:>10.2} -> {c:>10.2} ms  ({ratio:>5.2}x){flag}");
        if regressed {
            regressions.push(format!(
                "{key}: {ratio:.2}x vs allowed {bar:.2}x (baseline {b:.2} ms, now {c:.2} ms)"
            ));
        }
    }

    // Effectiveness fractions (`*_improvement`) are machine-independent
    // and compared absolutely, whatever bench file they come from.
    for (path, &b) in baseline.iter().filter(|(k, _)| k.ends_with("_improvement")) {
        if let Some(&c) = candidate.get(path) {
            println!("  {path:<40} {b:>10.4} -> {c:>10.4}");
            if c < b - threshold {
                regressions.push(format!(
                    "{path}: improvement fell from {b:.4} to {c:.4} (allowed drop {threshold:.2})"
                ));
            }
        }
    }

    if regressions.is_empty() {
        println!("bench_diff: OK — no phase regressed beyond the threshold");
        Ok(())
    } else {
        Err(format!(
            "{} phase(s) regressed:\n  {}",
            regressions.len(),
            regressions.join("\n  ")
        ))
    }
}

fn main() -> ExitCode {
    let mut threshold = 0.25f64;
    let mut files: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                let v = it.next().unwrap_or_default();
                match v.parse::<f64>() {
                    Ok(pct) if pct > 0.0 => threshold = pct / 100.0,
                    _ => {
                        eprintln!("bench_diff: error: invalid value for `--threshold`: `{v}`");
                        return ExitCode::from(2);
                    }
                }
            }
            other if other.starts_with('-') => {
                eprintln!("bench_diff: error: unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
            _ => files.push(a),
        }
    }
    if files.len() != 2 {
        eprintln!("bench_diff: error: expected exactly two files\n{USAGE}");
        return ExitCode::from(2);
    }
    match run(&files[0], &files[1], threshold) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bench_diff: FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
  "schema": "alice-bench-pipeline-v2",
  "samples": 5,
  "elaborate_ms": { "GCD": 100.0, "DES3": 200.0 },
  "lutmap_ms": { "GCD": 400.0 },
  "cec_encode_ms": 10.0,
  "select_stage": {
    "matrix": "benchmarks x {cfg1, cfg2}",
    "cold_total_ms": 5000.0,
    "warm_vs_cold_improvement": 0.95
  },
  "cache": { "hits": 7, "misses": 3 }
}"#;

    #[test]
    fn numeric_leaves_flatten_nested_objects() {
        let m = numeric_leaves(BASE).expect("parse");
        assert_eq!(m["elaborate_ms.GCD"], 100.0);
        assert_eq!(m["select_stage.cold_total_ms"], 5000.0);
        assert_eq!(m["select_stage.warm_vs_cold_improvement"], 0.95);
        assert_eq!(m["cache.hits"], 7.0);
        assert!(!m.contains_key("schema"), "strings are not leaves");
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(numeric_leaves("{").is_err());
        assert!(numeric_leaves("{ \"a\": [1] }").is_err());
        assert!(numeric_leaves("{} trailing").is_err());
    }

    fn diff_files(tag: &str, base: &str, cand: &str, threshold: f64) -> Result<(), String> {
        let dir = std::env::temp_dir();
        let bp = dir.join(format!("bench-diff-base-{tag}-{}.json", std::process::id()));
        let cp = dir.join(format!("bench-diff-cand-{tag}-{}.json", std::process::id()));
        std::fs::write(&bp, base).expect("write base");
        std::fs::write(&cp, cand).expect("write cand");
        let r = run(
            bp.to_str().expect("utf8"),
            cp.to_str().expect("utf8"),
            threshold,
        );
        let _ = std::fs::remove_file(&bp);
        let _ = std::fs::remove_file(&cp);
        r
    }

    #[test]
    fn uniform_slowdown_passes() {
        // Everything exactly 3x slower: a slower machine, not a regression.
        let cand = BASE
            .replace("100.0,", "300.0,")
            .replace("200.0 }", "600.0 }")
            .replace("400.0", "1200.0")
            .replace(": 10.0", ": 30.0")
            .replace("5000.0", "15000.0");
        diff_files("uniform", BASE, &cand, 0.25).expect("uniform scale must pass");
    }

    #[test]
    fn single_phase_blowup_fails() {
        // One phase 3x slower while the rest is unchanged.
        let cand = BASE.replace("\"GCD\": 400.0", "\"GCD\": 1200.0");
        let err = diff_files("blowup", BASE, &cand, 0.25).expect_err("must fail");
        assert!(err.contains("lutmap_ms.GCD"), "{err}");
    }

    #[test]
    fn short_phases_never_gate() {
        // A 10x blowup of a phase below RELIABLE_MS: on steal-prone
        // shared hardware that is indistinguishable from a scheduler
        // burst, so it is informational only.
        let cand = BASE.replace(": 10.0", ": 100.0");
        diff_files("short", BASE, &cand, 0.25).expect("short phases must not gate");
    }

    #[test]
    fn improvement_drop_fails() {
        let cand = BASE.replace("0.95", "0.40");
        let err = diff_files("impr", BASE, &cand, 0.25).expect_err("must fail");
        assert!(err.contains("warm_vs_cold_improvement"), "{err}");
    }

    const STORE_OPEN: &str = r#"{
  "schema": "alice-bench-pipeline-v3",
  "samples": 5,
  "elaborate_ms": { "GCD": 100.0 },
  "store_open_ms": {
    "cold_small_ms": 60.0,
    "cold_large_ms": 80.0,
    "warm_small_ms": 55.0,
    "warm_large_ms": 70.0
  }
}"#;

    #[test]
    fn store_open_phases_gate_like_any_other() {
        diff_files("open-ok", STORE_OPEN, STORE_OPEN, 0.25).expect("identical files pass");
        // A large-store open ballooning relative to the rest of the file
        // is exactly the eager-open regression this section exists to
        // catch.
        let cand = STORE_OPEN.replace("\"warm_large_ms\": 70.0", "\"warm_large_ms\": 700.0");
        let err = diff_files("open-large", STORE_OPEN, &cand, 0.25).expect_err("must fail");
        assert!(err.contains("store_open_ms.warm_large_ms"), "{err}");
    }

    const CEC: &str = r#"{
  "schema": "alice-cec-bench-v1",
  "samples": 3,
  "portfolio": 4,
  "benchmarks": {
    "GCD": { "verify_p1_ms": 40.0, "verify_pN_ms": 30.0 },
    "IIR": { "verify_p1_ms": 9000.0, "verify_pN_ms": 6000.0 }
  },
  "hardest": { "design": "IIR", "p1_ms": 9000.0, "pN_ms": 6000.0, "portfolio_improvement": 0.333 }
}"#;

    #[test]
    fn cec_bench_files_gate_on_any_improvement_leaf() {
        diff_files("cec-ok", CEC, CEC, 0.25).expect("identical cec files pass");
        let cand = CEC.replace("0.333", "0.010");
        let err = diff_files("cec-impr", CEC, &cand, 0.25).expect_err("must fail");
        assert!(err.contains("hardest.portfolio_improvement"), "{err}");
        let cand = CEC.replace(
            "\"verify_pN_ms\": 6000.0 }\n  }",
            "\"verify_pN_ms\": 60000.0 }\n  }",
        );
        let err = diff_files("cec-ms", CEC, &cand, 0.25).expect_err("must fail");
        assert!(err.contains("verify_pN_ms"), "{err}");
    }
}
