//! Regenerates Table 2 of the paper: the full ALICE flow on every
//! benchmark under cfg1 (64 I/O pins, ≤2 eFPGAs) and cfg2 (96 I/O pins,
//! 1 eFPGA), α = β = 1.

use alice_bench::{paper_configs, run_flow};

fn main() {
    for (label, cfg) in paper_configs() {
        println!("── {label} ─────────────────────────────────────────────");
        println!(
            "{:<8} {:>4} | {:>11} {:>4} | {:>11} {:>5} | {:>11} {:>6} {:>6} | {:<14} {:>3}",
            "Design",
            "#Ins",
            "filter t",
            "|R|",
            "cluster t",
            "|C|",
            "select t",
            "#valid",
            "|S|",
            "eFPGA sizes",
            "#red"
        );
        for b in alice_benchmarks::suite() {
            let out = run_flow(&b, cfg.clone());
            let r = &out.report;
            let sizes = if r.efpga_sizes.is_empty() {
                "- (n.a.)".to_string()
            } else {
                r.efpga_sizes
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            println!(
                "{:<8} {:>4} | {:>11} {:>4} | {:>11} {:>5} | {:>11} {:>6} {:>6} | {:<14} {:>3}",
                r.design,
                r.instances,
                format!("{:.2?}", r.filter_time),
                r.candidates,
                format!("{:.2?}", r.cluster_time),
                r.clusters,
                format!("{:.2?}", r.select_time),
                r.valid_efpgas,
                r.solutions,
                sizes,
                r.redacted_modules
            );
        }
        println!();
    }
}
