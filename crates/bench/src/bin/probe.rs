//! Developer probe: per-module synthesis/mapping/fabric statistics for
//! every benchmark module (useful when calibrating the suite).

use alice_fabric::{create_efpga, FabricArch};
use alice_netlist::elaborate::elaborate;
use alice_netlist::lutmap::map_luts;

fn main() {
    let arch = FabricArch::default();
    for b in alice_benchmarks::suite() {
        let design = b.design().expect("load");
        println!("── {}", b.name);
        let mut modules: Vec<_> = design.hierarchy.modules.values().collect();
        modules.sort_by_key(|m| &m.name);
        for m in modules {
            if m.name == b.top {
                continue;
            }
            let Ok(n) = elaborate(&design.file, m.name.as_str()) else {
                println!(
                    "  {:<16} pins {:>4}  (elaboration fails)",
                    m.name, m.io_pins
                );
                continue;
            };
            let mapped = map_luts(&n, 4).expect("map");
            match create_efpga(&mapped, &arch) {
                Ok(e) => println!(
                    "  {:<16} pins {:>4}  luts {:>5} dffs {:>4} les {:>5} clbs {:>4} -> {} (io {:.2} clb {:.2})",
                    m.name,
                    m.io_pins,
                    mapped.lut_count(),
                    mapped.dff_count(),
                    e.packing.le_count,
                    e.packing.clb_count(),
                    e.size,
                    e.io_util,
                    e.clb_util
                ),
                Err(err) => println!(
                    "  {:<16} pins {:>4}  luts {:>5} dffs {:>4}  INVALID: {err}",
                    m.name,
                    m.io_pins,
                    mapped.lut_count(),
                    mapped.dff_count()
                ),
            }
        }
    }
}
