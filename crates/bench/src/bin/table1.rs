//! Regenerates Table 1 of the paper: benchmark characteristics.

fn main() {
    println!("Table 1: Characteristics of the selected benchmarks");
    println!(
        "{:<10} {:<8} {:>8} {:>10} {:>14}",
        "Suite", "Design", "Modules", "Instances", "I/O [min,max]"
    );
    for b in alice_benchmarks::suite() {
        let design = b.design().unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let (modules, instances, lo, hi) = b.table1_stats(&design);
        println!(
            "{:<10} {:<8} {:>8} {:>10} {:>14}",
            b.suite,
            b.name,
            modules,
            instances,
            format!("[{lo}, {hi}]")
        );
    }
}
