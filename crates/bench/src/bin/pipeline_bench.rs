//! `pipeline_bench` — the perf-trajectory runner: times the flow's hot
//! paths and writes `BENCH_pipeline.json` so future changes have a
//! machine-readable baseline.
//!
//! ```text
//! pipeline_bench [--out BENCH_pipeline.json] [--samples N] [--smoke]
//! ```
//!
//! Sections:
//!
//! * `elaborate_ms` / `lutmap_ms` — per-benchmark substrate timings,
//! * `cec_encode_ms` — GCD self-miter construction,
//! * `select_stage` — the headline number: total select-stage time over
//!   the whole benchmarks × {cfg1, cfg2} matrix, run **cold** (every
//!   flow gets its own private enabled [`DesignDb`], the `Flow::new`
//!   default), **warm** (every flow shares one already-filled db), and
//!   **disk** (a *fresh* db over a pre-filled persistent store — the
//!   cold-process/warm-disk case `--store` buys), each with its
//!   improvement over cold,
//! * `cache` — hit/miss totals of the shared-db pass plus the disk
//!   pass's disk-hit count,
//! * `store_open_ms` — `Store::open` latency over two 1000-record
//!   stores whose payload bytes differ by 256×: a lazy open indexes
//!   headers without reading payloads, so the two numbers should track
//!   record count, not store size (cold = first open of fresh files,
//!   warm = median of repeated opens),
//! * `trace_overhead` — the full GCD flow with observability dark
//!   (`disabled_ms`, the shipped default: every span is one relaxed
//!   atomic load) versus lit (`enabled_ms`, tracing + metrics
//!   recording). The disabled number doubles as the regression gate on
//!   instrumentation creep: it must track the committed baseline within
//!   `bench_diff`'s noise floor.
//!
//! `--smoke` shrinks everything to one sample for CI.

use alice_bench::{run_suite_private, run_suite_with_db};
use alice_cec::{Miter, MiterOptions};
use alice_core::config::AliceConfig;
use alice_core::db::DesignDb;
use alice_core::flow::Flow;
use alice_netlist::elaborate::elaborate;
use alice_netlist::lutmap::map_luts;
use alice_store::{Kind, Store};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "usage: pipeline_bench [--out FILE] [--samples N] [--smoke]";

/// Records per store in the `store_open_ms` section — enough that an
/// open which read payloads would be visibly payload-bound.
const STORE_OPEN_RECORDS: u64 = 1000;

fn median_ms(samples: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<Duration> = (0..samples.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2].as_secs_f64() * 1e3
}

fn json_map(pairs: &[(String, f64)]) -> String {
    let body: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("    \"{k}\": {v:.3}"))
        .collect();
    format!("{{\n{}\n  }}", body.join(",\n"))
}

fn main() -> ExitCode {
    let mut out = "BENCH_pipeline.json".to_string();
    let mut samples = 5usize;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(v) => out = v,
                None => {
                    eprintln!("pipeline_bench: error: missing value for `--out`\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--samples" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => samples = v,
                _ => {
                    eprintln!(
                        "pipeline_bench: error: invalid value for `--samples` \
                         (must be at least 1)\n{USAGE}"
                    );
                    return ExitCode::from(2);
                }
            },
            "--smoke" => samples = 1,
            other => {
                eprintln!("pipeline_bench: error: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    // --- Substrates: elaboration + LUT mapping per benchmark. ---
    let mut elab_ms: Vec<(String, f64)> = Vec::new();
    let mut lutmap_ms: Vec<(String, f64)> = Vec::new();
    for b in alice_benchmarks::suite() {
        let design = b.design().unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let top = design.hierarchy.top.as_str();
        if elaborate(&design.file, top).is_err() {
            continue; // usb_phy-style designs without a gate-level model
        }
        elab_ms.push((
            b.name.to_string(),
            median_ms(samples, || {
                elaborate(&design.file, top).expect("elaborates");
            }),
        ));
        let netlist = elaborate(&design.file, top).expect("elaborates");
        lutmap_ms.push((
            b.name.to_string(),
            median_ms(samples, || {
                map_luts(&netlist, 4).expect("maps");
            }),
        ));
    }

    // --- CEC encoding (GCD self-miter construction). ---
    let gcd = alice_benchmarks::gcd::benchmark()
        .design()
        .expect("load GCD");
    let gcd_netlist = elaborate(&gcd.file, gcd.hierarchy.top.as_str()).expect("elaborate GCD");
    let cec_encode = median_ms(samples, || {
        Miter::build(&gcd_netlist, &gcd_netlist, &MiterOptions::default()).expect("miter");
    });

    // --- Trace overhead: the GCD flow with observability dark vs lit.
    // Dark first — it measures the shipped default, where every span
    // must cost one relaxed atomic load and a branch.
    let gcd_bench = alice_benchmarks::gcd::benchmark();
    let trace_disabled_ms = median_ms(samples, || {
        Flow::new(gcd_bench.config(AliceConfig::cfg1()))
            .run(&gcd)
            .expect("GCD flow");
    });
    alice_obs::enable_tracing();
    alice_obs::enable_metrics();
    let trace_enabled_ms = median_ms(samples, || {
        Flow::new(gcd_bench.config(AliceConfig::cfg1()))
            .run(&gcd)
            .expect("GCD flow");
    });
    alice_obs::disable_tracing();
    alice_obs::disable_metrics();
    // Drop the buffered events and zero the counters so the sections
    // below measure the same dark configuration as the baseline.
    let _ = alice_obs::take_trace();
    alice_obs::reset_metrics();

    // --- Select stage over the benchmarks × configs matrix. ---
    // Cold: every flow gets its own private enabled db (the default
    // `Flow::new` behaviour — intra-run reuse, no cross-cell sharing).
    let select_total = |runs: &[alice_bench::SuiteRun]| -> f64 {
        runs.iter()
            .flat_map(|r| r.outcomes.iter())
            .map(|o| o.report.select_time.as_secs_f64() * 1e3)
            .sum()
    };
    let t = Instant::now();
    let cold_runs = run_suite_private(0, 0, false);
    let cold_wall_ms = t.elapsed().as_secs_f64() * 1e3;
    let cold_ms = select_total(&cold_runs);

    // Warm: fill a shared db with one pass, then measure a second pass.
    let shared = Arc::new(DesignDb::new());
    run_suite_with_db(0, 0, false, shared.clone());
    let t = Instant::now();
    let warm_runs = run_suite_with_db(0, 0, false, shared.clone());
    let warm_wall_ms = t.elapsed().as_secs_f64() * 1e3;
    let warm_ms = select_total(&warm_runs);
    let counts = shared.counts();
    let improvement = if cold_ms > 0.0 {
        1.0 - warm_ms / cold_ms
    } else {
        0.0
    };

    // Disk: fill a persistent store, then measure a FRESH db over it —
    // the in-memory caches start empty (a new process), every
    // characterization comes off disk.
    let store_dir =
        std::env::temp_dir().join(format!("alice-pipeline-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    {
        let db = Arc::new(DesignDb::with_store(&store_dir).expect("create store"));
        run_suite_with_db(0, 0, false, db.clone());
        db.flush_store().expect("flush store");
    }
    let disk_db = Arc::new(DesignDb::with_store(&store_dir).expect("reopen store"));
    let t = Instant::now();
    let disk_runs = run_suite_with_db(0, 0, false, disk_db.clone());
    let disk_wall_ms = t.elapsed().as_secs_f64() * 1e3;
    let disk_ms = select_total(&disk_runs);
    let disk_counts = disk_db.counts();
    drop(disk_db);
    let _ = std::fs::remove_dir_all(&store_dir);
    let disk_improvement = if cold_ms > 0.0 {
        1.0 - disk_ms / cold_ms
    } else {
        0.0
    };

    // --- Store opens: lazy indexing means open cost tracks the record
    // count, not the payload bytes. Same record count, 256x the bytes:
    // the large store's open should stay in the small store's ballpark.
    let build_store = |payload_len: usize, tag: &str| {
        let dir = std::env::temp_dir().join(format!(
            "alice-pipeline-bench-open-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).expect("create store");
        for i in 0..STORE_OPEN_RECORDS {
            store.put(
                Kind::Netlist,
                (i, i ^ 0x9E37_79B9),
                vec![(i & 0xFF) as u8; payload_len],
            );
        }
        store.flush().expect("flush store");
        dir
    };
    let small_dir = build_store(64, "small");
    let large_dir = build_store(16 * 1024, "large");
    // First open of the freshly written files, then the steady state.
    let open_cold_small = median_ms(1, || {
        Store::open(&small_dir).expect("open");
    });
    let open_cold_large = median_ms(1, || {
        Store::open(&large_dir).expect("open");
    });
    let open_warm_small = median_ms(samples, || {
        Store::open(&small_dir).expect("open");
    });
    let open_warm_large = median_ms(samples, || {
        Store::open(&large_dir).expect("open");
    });
    let _ = std::fs::remove_dir_all(&small_dir);
    let _ = std::fs::remove_dir_all(&large_dir);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"alice-bench-pipeline-v3\",");
    let _ = writeln!(json, "  \"samples\": {samples},");
    let _ = writeln!(json, "  \"elaborate_ms\": {},", json_map(&elab_ms));
    let _ = writeln!(json, "  \"lutmap_ms\": {},", json_map(&lutmap_ms));
    let _ = writeln!(json, "  \"cec_encode_ms\": {cec_encode:.3},");
    let _ = writeln!(json, "  \"select_stage\": {{");
    let _ = writeln!(json, "    \"matrix\": \"benchmarks x {{cfg1, cfg2}}\",");
    let _ = writeln!(json, "    \"cold_total_ms\": {cold_ms:.3},");
    let _ = writeln!(json, "    \"warm_total_ms\": {warm_ms:.3},");
    let _ = writeln!(json, "    \"disk_total_ms\": {disk_ms:.3},");
    let _ = writeln!(json, "    \"cold_wall_ms\": {cold_wall_ms:.3},");
    let _ = writeln!(json, "    \"warm_wall_ms\": {warm_wall_ms:.3},");
    let _ = writeln!(json, "    \"disk_wall_ms\": {disk_wall_ms:.3},");
    let _ = writeln!(json, "    \"warm_vs_cold_improvement\": {improvement:.4},");
    let _ = writeln!(
        json,
        "    \"disk_vs_cold_improvement\": {disk_improvement:.4}"
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"store_open_ms\": {{");
    let _ = writeln!(json, "    \"cold_small_ms\": {open_cold_small:.3},");
    let _ = writeln!(json, "    \"cold_large_ms\": {open_cold_large:.3},");
    let _ = writeln!(json, "    \"warm_small_ms\": {open_warm_small:.3},");
    let _ = writeln!(json, "    \"warm_large_ms\": {open_warm_large:.3}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"trace_overhead\": {{");
    let _ = writeln!(json, "    \"disabled_ms\": {trace_disabled_ms:.3},");
    let _ = writeln!(json, "    \"enabled_ms\": {trace_enabled_ms:.3}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"cache\": {{ \"hits\": {}, \"misses\": {}, \"disk_hits\": {} }}",
        counts.hits, counts.misses, disk_counts.disk_hits
    );
    let _ = writeln!(json, "}}");

    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("pipeline_bench: error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "pipeline_bench: select stage cold {cold_ms:.1} ms vs warm {warm_ms:.1} ms \
         ({:.1}% faster warm) vs warm-on-disk {disk_ms:.1} ms ({:.1}% faster than cold); \
         wrote {out}",
        improvement * 100.0,
        disk_improvement * 100.0
    );
    if improvement < 0.30 {
        eprintln!(
            "pipeline_bench: WARNING: warm-cache select improvement {:.1}% is below the 30% target",
            improvement * 100.0
        );
    }
    if disk_counts.misses > 0 {
        eprintln!(
            "pipeline_bench: WARNING: the warm-on-disk pass recomputed {} characterization(s)",
            disk_counts.misses
        );
    }
    println!(
        "pipeline_bench: store open ({STORE_OPEN_RECORDS} records) \
         small {open_warm_small:.2} ms vs 256x-larger {open_warm_large:.2} ms"
    );
    println!(
        "pipeline_bench: GCD flow dark {trace_disabled_ms:.2} ms vs \
         instrumented {trace_enabled_ms:.2} ms"
    );
    if open_warm_large > open_warm_small * 4.0 + 2.0 {
        eprintln!(
            "pipeline_bench: WARNING: large-store open {open_warm_large:.2} ms is payload-bound \
             (same record count opens in {open_warm_small:.2} ms) — lazy open may be reading payloads"
        );
    }
    ExitCode::SUCCESS
}
