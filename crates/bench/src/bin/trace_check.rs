//! `trace_check` — the trace-file gate: validates a Chrome trace-event
//! JSON file written by `--trace` (the `alice` or `suite` front ends)
//! and optionally requires specific spans to be present.
//!
//! ```text
//! trace_check <trace.json> [--require SPAN]...
//! ```
//!
//! The check fails when the file is not parseable JSON, when any
//! thread's span intervals are not properly nested (a malformed
//! exporter), or when a `--require`d span name never occurs. On success
//! it prints a one-line summary (events, threads, depth) plus the span
//! names seen — CI logs then double as a quick flame-view inventory.

use alice_obs::validate_chrome_trace;
use std::process::ExitCode;

const USAGE: &str = "usage: trace_check <trace.json> [--require SPAN]...";

fn main() -> ExitCode {
    let mut file: Option<String> = None;
    let mut required: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--require" => match it.next() {
                Some(v) => required.push(v),
                None => {
                    eprintln!("trace_check: error: missing value for `--require`\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other if other.starts_with('-') => {
                eprintln!("trace_check: error: unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
            _ if file.is_none() => file = Some(a),
            other => {
                eprintln!("trace_check: error: unexpected argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(file) = file else {
        eprintln!("trace_check: error: missing <trace.json> argument\n{USAGE}");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_check: error: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let summary = match validate_chrome_trace(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("trace_check: FAIL: {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut missing: Vec<&str> = required
        .iter()
        .map(String::as_str)
        .filter(|name| !summary.has_span(name))
        .collect();
    missing.sort_unstable();
    println!(
        "trace_check: {file}: {} event(s) across {} thread(s), max depth {}",
        summary.events, summary.threads, summary.max_depth
    );
    println!(
        "trace_check: spans: {}",
        summary
            .span_names
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>()
            .join(", ")
    );
    if !summary.thread_names.is_empty() {
        println!(
            "trace_check: threads: {}",
            summary
                .thread_names
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    if missing.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "trace_check: FAIL: required span(s) never recorded: {}",
            missing.join(", ")
        );
        ExitCode::FAILURE
    }
}
