//! `store_bench` — the artifact-store concurrency benchmark: measures
//! what the sharded, mmap-backed store buys over the PR 7 layout and
//! writes `BENCH_store.json` so `bench_diff` can gate the trajectory.
//!
//! ```text
//! store_bench [--out BENCH_store.json] [--samples N] [--smoke]
//! ```
//!
//! Sections:
//!
//! * `flush_merge` — N writer threads (each batching puts and flushing)
//!   race M reader threads over one store, twice: once with every key
//!   confined to a single shard (one lock, one file, whole-file
//!   rewrites — exactly the v2 single-segment-per-kind behaviour) and
//!   once with each writer owning its own pair of shards. The
//!   single-segment run serializes every flush-merge behind one lock
//!   and rewrites the whole accumulated segment each time; the sharded
//!   run commits disjoint shards concurrently and rewrites only each
//!   writer's own slice. `flush_merge_improvement` is the headline
//!   contention number the CI gate holds.
//! * `warm_get` — first-get latency over a prebuilt store, once through
//!   the positioned-read + copy fallback (`StoreOptions { mmap: false }`,
//!   the v2 read path) and once through the mapped zero-copy path, with
//!   `ns_per_op` and `bytes_per_get` (from [`Store::read_stats`]) for
//!   each. Both paths pay the one-time checksum verify; the mapped path
//!   skips the syscall, the heap allocation, and the payload copy.
//!
//! `--smoke` shrinks everything to one sample and smaller batches for
//! CI.

use alice_store::{shard_of, Kind, Store, StoreOptions, SHARD_COUNT};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

const USAGE: &str = "usage: store_bench [--out FILE] [--samples N] [--smoke]";

/// Writer threads in the flush-merge race (the acceptance bar is
/// phrased for ≥ 4).
const WRITERS: usize = 4;
/// Reader threads hammering warm keys while the writers flush.
const READERS: usize = 4;

struct Scale {
    /// Flush rounds per writer.
    rounds: usize,
    /// Puts per writer per round.
    batch: usize,
    /// Payload bytes per record.
    payload: usize,
    /// Pre-seeded records the readers cycle over.
    seed: usize,
    /// Records in the warm-get store.
    warm_records: usize,
}

const FULL: Scale = Scale {
    rounds: 10,
    batch: 50,
    payload: 4096,
    seed: 256,
    warm_records: 3000,
};

const SMOKE: Scale = Scale {
    rounds: 3,
    batch: 12,
    payload: 1024,
    seed: 32,
    warm_records: 200,
};

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("alice-store-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A writer's `i`-th key. In single-segment mode every key lands in
/// shard 0 (the v2 world: one file, one lock); in sharded mode writer
/// `w` owns shard `w`, so writers never share a shard — and both modes
/// commit exactly one segment file per flush, so the comparison
/// isolates lock serialization and write amplification, not fsync
/// count.
fn writer_key(sharded: bool, writer: usize, i: usize) -> (u64, u64) {
    let uniq = (writer as u64 + 1) * 1_000_000 + i as u64;
    let shard = if sharded { writer as u64 } else { 0 };
    let key = (uniq * SHARD_COUNT as u64 + shard, uniq);
    debug_assert_eq!(shard_of(key), shard as usize);
    key
}

fn seed_key(sharded: bool, i: usize) -> (u64, u64) {
    let shard = if sharded { (i % SHARD_COUNT) as u64 } else { 0 };
    (
        (0x5EED_0000 + i as u64) * SHARD_COUNT as u64 + shard,
        i as u64,
    )
}

/// One flush-merge race: seeds the store, starts the readers, then
/// times all `WRITERS` put+flush loops to completion. Returns wall ms.
fn flush_merge_race(sharded: bool, scale: &Scale) -> f64 {
    let dir = bench_dir(if sharded { "sharded" } else { "single" });
    let store = Arc::new(Store::open(&dir).expect("open bench store"));
    for i in 0..scale.seed {
        store.put(
            Kind::Netlist,
            seed_key(sharded, i),
            vec![0x5E; scale.payload],
        );
    }
    store.flush().expect("seed flush");

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let seed = scale.seed;
            std::thread::spawn(move || {
                let mut i = r;
                let mut hits = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    if store
                        .get(Kind::Netlist, seed_key(sharded, i % seed))
                        .is_some()
                    {
                        hits += 1;
                    }
                    i += 1;
                    // Yield between gets so readers exercise lock
                    // contention without starving the writers on small
                    // (single-core CI) machines.
                    std::thread::yield_now();
                }
                hits
            })
        })
        .collect();

    let t = Instant::now();
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let store = Arc::clone(&store);
            let (rounds, batch, payload) = (scale.rounds, scale.batch, scale.payload);
            std::thread::spawn(move || {
                for r in 0..rounds {
                    for b in 0..batch {
                        let key = writer_key(sharded, w, r * batch + b);
                        store.put(Kind::Netlist, key, vec![w as u8; payload]);
                    }
                    store.flush().expect("writer flush");
                }
            })
        })
        .collect();
    for h in writers {
        h.join().expect("writer thread");
    }
    let elapsed_ms = t.elapsed().as_secs_f64() * 1e3;

    stop.store(true, Ordering::Relaxed);
    let mut read_hits = 0u64;
    for h in readers {
        read_hits += h.join().expect("reader thread");
    }
    assert!(
        read_hits > 0,
        "readers must have been served during the race"
    );
    // Every writer's full record set must have survived the race.
    let total = scale.seed + WRITERS * scale.rounds * scale.batch;
    assert_eq!(
        store.stats().records(),
        total,
        "flush-merge race lost records"
    );
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    elapsed_ms
}

/// Times one full first-get pass (every record exactly once, fresh
/// open) and returns `(total_ms, bytes_copied_per_get)`.
fn warm_get_pass(dir: &PathBuf, mmap: bool, scale: &Scale) -> (f64, f64) {
    let store = Store::open_with(dir, StoreOptions { mmap }).expect("open warm store");
    let t = Instant::now();
    for i in 0..scale.warm_records {
        let p = store
            .get(Kind::LutMap, seed_key(true, i))
            .expect("warm record present");
        // Touch the payload so a lazily faulted page cannot defer its
        // cost past the timer.
        std::hint::black_box(p[p.len() / 2]);
    }
    let total_ms = t.elapsed().as_secs_f64() * 1e3;
    let rs = store.read_stats();
    assert_eq!(rs.gets, scale.warm_records as u64);
    let per_get = rs.bytes_copied as f64 / rs.gets as f64;
    // The store must not rewrite anything on drop (read-only pass), but
    // access stamps do flush; keep that out of the timed window.
    drop(store);
    (total_ms, per_get)
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v[v.len() / 2]
}

fn main() -> ExitCode {
    let mut out = "BENCH_store.json".to_string();
    let mut samples = 3usize;
    let mut scale = &FULL;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(v) => out = v,
                None => {
                    eprintln!("store_bench: error: missing value for `--out`\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--samples" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => samples = n,
                _ => {
                    eprintln!("store_bench: error: invalid value for `--samples`\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--smoke" => {
                samples = 1;
                scale = &SMOKE;
            }
            other => {
                eprintln!("store_bench: error: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    // --- flush-merge contention race -----------------------------------
    // Interleave the two modes across samples so drift (thermal, page
    // cache) hits both equally.
    let mut single: Vec<f64> = Vec::new();
    let mut sharded: Vec<f64> = Vec::new();
    for _ in 0..samples {
        single.push(flush_merge_race(false, scale));
        sharded.push(flush_merge_race(true, scale));
    }
    let single_ms = median(single);
    let sharded_ms = median(sharded);
    let flush_improvement = if single_ms > 0.0 {
        (single_ms - sharded_ms) / single_ms
    } else {
        0.0
    };

    // --- warm first-get: pread+copy vs mapped zero-copy ----------------
    let warm_dir = bench_dir("warm");
    {
        let store = Store::open(&warm_dir).expect("open warm store");
        for i in 0..scale.warm_records {
            store.put(
                Kind::LutMap,
                seed_key(true, i),
                vec![i as u8; scale.payload],
            );
        }
        store.flush().expect("warm flush");
    }
    let mut pread_totals = Vec::new();
    let mut mmap_totals = Vec::new();
    let mut pread_bytes = 0.0;
    let mut mmap_bytes = 0.0;
    for _ in 0..samples {
        let (t, b) = warm_get_pass(&warm_dir, false, scale);
        pread_totals.push(t);
        pread_bytes = b;
        let (t, b) = warm_get_pass(&warm_dir, true, scale);
        mmap_totals.push(t);
        mmap_bytes = b;
    }
    let _ = std::fs::remove_dir_all(&warm_dir);
    let pread_ms = median(pread_totals);
    let mmap_ms = median(mmap_totals);
    let ns_per = |total_ms: f64| total_ms * 1e6 / scale.warm_records as f64;
    let get_improvement = if pread_ms > 0.0 {
        (pread_ms - mmap_ms) / pread_ms
    } else {
        0.0
    };

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"alice-bench-store-v1\",");
    let _ = writeln!(json, "  \"samples\": {samples},");
    let _ = writeln!(json, "  \"writers\": {WRITERS},");
    let _ = writeln!(json, "  \"readers\": {READERS},");
    let _ = writeln!(json, "  \"flush_merge\": {{");
    let _ = writeln!(json, "    \"single_segment_ms\": {single_ms:.3},");
    let _ = writeln!(json, "    \"sharded_ms\": {sharded_ms:.3},");
    let _ = writeln!(
        json,
        "    \"flush_merge_improvement\": {flush_improvement:.4}"
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"warm_get\": {{");
    let _ = writeln!(json, "    \"pread_total_ms\": {pread_ms:.3},");
    let _ = writeln!(json, "    \"mmap_total_ms\": {mmap_ms:.3},");
    let _ = writeln!(json, "    \"pread_ns_per_op\": {:.1},", ns_per(pread_ms));
    let _ = writeln!(json, "    \"mmap_ns_per_op\": {:.1},", ns_per(mmap_ms));
    let _ = writeln!(json, "    \"pread_bytes_per_get\": {pread_bytes:.1},");
    let _ = writeln!(json, "    \"mmap_bytes_per_get\": {mmap_bytes:.1},");
    let _ = writeln!(json, "    \"warm_get_improvement\": {get_improvement:.4}");
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("store_bench: error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!(
        "store_bench: flush-merge ({WRITERS} writers x {READERS} readers) \
         single-segment {single_ms:.1} ms vs sharded {sharded_ms:.1} ms \
         ({:.1}% faster sharded)",
        flush_improvement * 100.0
    );
    println!(
        "store_bench: warm get pread {:.0} ns/op ({pread_bytes:.0} B copied/get) \
         vs mmap {:.0} ns/op ({mmap_bytes:.0} B copied/get, {:.1}% faster); wrote {out}",
        ns_per(pread_ms),
        ns_per(mmap_ms),
        get_improvement * 100.0
    );
    if flush_improvement < 0.30 {
        eprintln!(
            "store_bench: WARNING: sharded flush-merge improvement {:.1}% is below the 30% target",
            flush_improvement * 100.0
        );
    }
    if get_improvement <= 0.0 {
        eprintln!("store_bench: WARNING: mapped warm gets measured no improvement over pread");
    }
    ExitCode::SUCCESS
}
