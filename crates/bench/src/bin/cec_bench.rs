//! `cec_bench` — the SAT-portfolio trajectory runner: times the verify
//! stage's equivalence proof and the oracle-guided SAT attack under the
//! classic single solver (`portfolio = 1`) and under a diversified
//! portfolio race (`portfolio = N`), writing `BENCH_cec.json` so the
//! `bench_diff` gate can hold the line on both absolute solve times and
//! the portfolio's measured win.
//!
//! ```text
//! cec_bench [--out BENCH_cec.json] [--portfolio N] [--samples K] [--smoke]
//! ```
//!
//! Sections:
//!
//! * `benchmarks.<name>.verify_p1_ms` / `verify_pN_ms` — verify-stage
//!   time (miter build + sweep + proof) for the SAT-heavy picks
//!   (GCD, DES3), single solver vs. portfolio race,
//! * `benchmarks.<name>.attack_p1_ms` / `attack_pN_ms` — SAT-attack
//!   time against the flow's selected fabric contents (skipped for
//!   fabrics beyond the attack budget class),
//! * `benchmarks.<name>.sweep_fresh_ms` / `sweep_incremental_ms` —
//!   verify stage with a 16-wrong-key corruptibility sweep on one
//!   worker and a cold store, fresh pinned miter per key
//!   (`incremental_cec: false`) vs one assumption-parameterized keyed
//!   miter answering every key (`incremental_cec: true`),
//! * `hardest` — the headline number: the slowest `verify_p1_ms` miter
//!   re-stated with its portfolio time and the improvement fraction
//!   `(p1 - pN) / p1`, which `bench_diff` compares absolutely,
//! * `wrong_key_sweep` — the incremental headline: the slowest fresh
//!   sweep re-stated with its incremental time and
//!   `incremental_improvement = (fresh - incremental) / fresh`, also
//!   `bench_diff`-gated absolutely (target ≥ 30%).
//!
//! `--all` adds IIR, whose redacted-multiplier miter takes minutes per
//! sample — far past the CI smoke budget, and below ~4 real cores the
//! race only time-slices its sweep-dominated proof (no diversified
//! member does less total work there, unlike GCD/DES3 where skipping
//! the sweep wins outright), so IIR stays out of the committed,
//! CI-gated baseline and is measured on demand on big machines.
//!
//! Every flow run gets a fresh private [`DesignDb`], so no sample is
//! served a cached proof. `--smoke` shrinks to one sample for CI.

use alice_attacks::{sat_attack, sat_attack_portfolio, AttackBudget};
use alice_benchmarks::Benchmark;
use alice_core::config::AliceConfig;
use alice_core::db::DesignDb;
use alice_core::design::Design;
use alice_core::flow::{Flow, FlowOutcome};
use alice_core::select::ClusterMapper;
use alice_core::verify::VerifyOutcome;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

const USAGE: &str = "usage: cec_bench [--out FILE] [--portfolio N] [--samples K] [--smoke] [--all]";

/// The SAT-heavy picks in the gated baseline, lightest to heaviest miter.
const PICKS: [&str; 2] = ["GCD", "DES3"];

/// Extra picks behind `--all` (minutes per sample; see module docs).
const SLOW_PICKS: [&str; 1] = ["IIR"];

/// Fabrics beyond this LUT count are outside the attack budget class
/// (mirrors the `security` binary); their attack timings are skipped.
const LUT_CAP: usize = 220;

/// Each cell is the MINIMUM over samples, not the median: the measured
/// workload is deterministic, so run-to-run variance is pure scheduler
/// and CPU-steal noise, which only ever *adds* time — the fastest
/// observed run is the best estimate of true compute cost, and the one
/// estimator a steal burst during some samples cannot inflate.
fn best(v: Vec<f64>) -> f64 {
    v.into_iter().fold(f64::INFINITY, f64::min)
}

/// A verifying config for `b`: cfg1 where feasible, cfg2 otherwise
/// (IIR has no cfg1 solution), with the given portfolio width. The race
/// gets `portfolio` worker threads regardless of core count — on a
/// loaded or small machine the members time-slice, which is exactly the
/// deployment the portfolio must still win in.
fn bench_config(b: &Benchmark, design: &Design, portfolio: usize) -> AliceConfig {
    let mk = |base: AliceConfig| AliceConfig {
        verify: true,
        portfolio,
        jobs: portfolio.max(1),
        ..b.config(base)
    };
    let probe = Flow::new(AliceConfig {
        verify: false,
        ..mk(AliceConfig::cfg1())
    })
    .run(design)
    .unwrap_or_else(|e| panic!("{}: {e}", b.name));
    if probe.redacted.is_some() {
        mk(AliceConfig::cfg1())
    } else {
        mk(AliceConfig::cfg2())
    }
}

/// Runs the verifying flow once on a fresh private db and returns the
/// outcome, insisting on a proven-equivalent verdict.
fn verified_run(b: &Benchmark, design: &Design, cfg: &AliceConfig) -> FlowOutcome {
    let out = Flow::new(cfg.clone())
        .run(design)
        .unwrap_or_else(|e| panic!("{}: {e}", b.name));
    let v = out.verify.as_ref().expect("verify stage ran");
    assert_eq!(
        v.outcome,
        VerifyOutcome::Equivalent,
        "{}: benchmark redaction must verify",
        b.name
    );
    out
}

fn main() -> ExitCode {
    let mut out_path = "BENCH_cec.json".to_string();
    let mut samples = 3usize;
    let mut portfolio = 4usize;
    let mut all = false;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(v) => out_path = v,
                None => {
                    eprintln!("cec_bench: error: missing value for `--out`\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--samples" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => samples = v,
                _ => {
                    eprintln!(
                        "cec_bench: error: invalid value for `--samples` \
                         (must be at least 1)\n{USAGE}"
                    );
                    return ExitCode::from(2);
                }
            },
            "--portfolio" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 2 => portfolio = v,
                _ => {
                    eprintln!(
                        "cec_bench: error: invalid value for `--portfolio` \
                         (must be at least 2)\n{USAGE}"
                    );
                    return ExitCode::from(2);
                }
            },
            "--smoke" => samples = 1,
            "--all" => all = true,
            other => {
                eprintln!("cec_bench: error: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let budget = AttackBudget {
        max_dips: 12,
        conflicts_per_call: 8_000,
    };
    /// Wrong keys in the incremental-vs-fresh sweep comparison.
    const SWEEP_KEYS: usize = 16;
    let mut rows: Vec<(String, Vec<(String, f64)>)> = Vec::new();
    let mut hardest: Option<(String, f64, f64)> = None;
    let mut sweep_hardest: Option<(String, f64, f64)> = None;
    for b in alice_benchmarks::suite() {
        if !(PICKS.contains(&b.name) || (all && SLOW_PICKS.contains(&b.name))) {
            continue;
        }
        let design = b.design().unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let cfg1 = AliceConfig {
            portfolio: 1,
            jobs: 1,
            ..bench_config(&b, &design, 1)
        };
        let cfg_n = AliceConfig {
            portfolio,
            jobs: portfolio,
            ..cfg1.clone()
        };
        let mut first_run: Option<FlowOutcome> = None;
        let time_verify = |cfg: &AliceConfig, keep: &mut Option<FlowOutcome>| -> f64 {
            best(
                (0..samples)
                    .map(|_| {
                        let out = verified_run(&b, &design, cfg);
                        let ms = out.report.verify_time.as_secs_f64() * 1e3;
                        keep.get_or_insert(out);
                        ms
                    })
                    .collect(),
            )
        };
        let p1 = time_verify(&cfg1, &mut first_run);
        let mut discard: Option<FlowOutcome> = None;
        let pn = time_verify(&cfg_n, &mut discard);
        eprintln!(
            "cec_bench: {:<8} verify p1 {:>9.1} ms   p{portfolio} {:>9.1} ms",
            b.name, p1, pn
        );
        let mut cells = vec![
            ("verify_p1_ms".to_string(), p1),
            (format!("verify_p{portfolio}_ms"), pn),
        ];
        if hardest.as_ref().is_none_or(|(_, h, _)| p1 > *h) {
            hardest = Some((b.name.to_string(), p1, pn));
        }

        // Incremental wrong-key sweep vs the fresh-per-key baseline:
        // 16 wrong keys on ONE worker and a cold private db per run, so
        // the comparison is purely algorithmic — encode-once +
        // assumption solves against build-and-solve per key. Excluded
        // for the `--all` slow picks (minutes per key).
        if PICKS.contains(&b.name) {
            let sweep_cfg = |incremental: bool| AliceConfig {
                verify_wrong_keys: SWEEP_KEYS,
                incremental_cec: incremental,
                portfolio: 1,
                jobs: 1,
                ..cfg1.clone()
            };
            let sf = time_verify(&sweep_cfg(false), &mut None);
            let si = time_verify(&sweep_cfg(true), &mut None);
            eprintln!(
                "cec_bench: {:<8} sweep({SWEEP_KEYS}) fresh {:>9.1} ms   incremental {:>9.1} ms \
                 ({:.1}% faster)",
                b.name,
                sf,
                si,
                (sf - si) / sf * 100.0
            );
            cells.push(("sweep_fresh_ms".to_string(), sf));
            cells.push(("sweep_incremental_ms".to_string(), si));
            if sweep_hardest.as_ref().is_none_or(|(_, h, _)| sf > *h) {
                sweep_hardest = Some((b.name.to_string(), sf, si));
            }
        }

        // Attack the selected fabric contents, exactly as `security` does.
        let out = first_run.expect("at least one sample ran");
        if let Some(sel) = &out.selection.best {
            let db = Arc::new(DesignDb::new());
            let mut mapper = ClusterMapper::new(&design, 4, &db);
            let network = sel
                .efpgas
                .iter()
                .map(|&vi| &out.selection.valid[vi])
                .filter_map(|chosen| {
                    mapper
                        .cluster_network(&chosen.cluster, &out.filter.candidates)
                        .ok()
                })
                .filter(|n| n.lut_count() <= LUT_CAP)
                .max_by_key(|n| n.lut_count());
            if let Some(network) = network {
                let a1 = best(
                    (0..samples)
                        .map(|_| {
                            let t = Instant::now();
                            let r = sat_attack(&network, budget);
                            assert!(r.key_bits > 0, "{}: empty key", b.name);
                            t.elapsed().as_secs_f64() * 1e3
                        })
                        .collect(),
                );
                let an = best(
                    (0..samples)
                        .map(|_| {
                            let t = Instant::now();
                            let r = sat_attack_portfolio(&network, budget, portfolio);
                            assert!(r.key_bits > 0, "{}: empty key", b.name);
                            t.elapsed().as_secs_f64() * 1e3
                        })
                        .collect(),
                );
                eprintln!(
                    "cec_bench: {:<8} attack p1 {:>9.1} ms   p{portfolio} {:>9.1} ms \
                     ({} LUTs)",
                    b.name,
                    a1,
                    an,
                    network.lut_count()
                );
                cells.push(("attack_p1_ms".to_string(), a1));
                cells.push((format!("attack_p{portfolio}_ms"), an));
            } else {
                eprintln!(
                    "cec_bench: {:<8} attack skipped (fabrics beyond {LUT_CAP} LUTs)",
                    b.name
                );
            }
        }
        rows.push((b.name.to_string(), cells));
    }

    let (hd, hp1, hpn) = hardest.expect("at least one pick ran");
    let improvement = (hp1 - hpn) / hp1;
    eprintln!(
        "cec_bench: hardest miter {hd}: {hp1:.1} ms -> {hpn:.1} ms \
         (portfolio improvement {:.1}%, target >= 20%)",
        improvement * 100.0
    );
    let (sd, sf, si) = sweep_hardest.expect("at least one gated pick swept");
    let sweep_improvement = (sf - si) / sf;
    eprintln!(
        "cec_bench: hardest sweep {sd}: {sf:.1} ms -> {si:.1} ms \
         (incremental improvement {:.1}%, target >= 30%)",
        sweep_improvement * 100.0
    );

    let mut json = String::new();
    writeln!(json, "{{").expect("string write");
    writeln!(json, "  \"schema\": \"alice-cec-bench-v1\",").expect("string write");
    writeln!(json, "  \"samples\": {samples},").expect("string write");
    writeln!(json, "  \"portfolio\": {portfolio},").expect("string write");
    writeln!(json, "  \"benchmarks\": {{").expect("string write");
    for (bi, (name, cells)) in rows.iter().enumerate() {
        let body: Vec<String> = cells
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v:.3}"))
            .collect();
        let comma = if bi + 1 < rows.len() { "," } else { "" };
        writeln!(json, "    \"{name}\": {{ {} }}{comma}", body.join(", ")).expect("string write");
    }
    writeln!(json, "  }},").expect("string write");
    writeln!(json, "  \"hardest\": {{").expect("string write");
    writeln!(json, "    \"design\": \"{hd}\",").expect("string write");
    writeln!(json, "    \"p1_ms\": {hp1:.3},").expect("string write");
    writeln!(json, "    \"p{portfolio}_ms\": {hpn:.3},").expect("string write");
    writeln!(json, "    \"portfolio_improvement\": {improvement:.4}").expect("string write");
    writeln!(json, "  }},").expect("string write");
    writeln!(json, "  \"wrong_key_sweep\": {{").expect("string write");
    writeln!(json, "    \"design\": \"{sd}\",").expect("string write");
    writeln!(json, "    \"keys\": {SWEEP_KEYS},").expect("string write");
    writeln!(json, "    \"fresh_ms\": {sf:.3},").expect("string write");
    writeln!(json, "    \"incremental_ms\": {si:.3},").expect("string write");
    writeln!(
        json,
        "    \"incremental_improvement\": {sweep_improvement:.4}"
    )
    .expect("string write");
    writeln!(json, "  }}").expect("string write");
    writeln!(json, "}}").expect("string write");
    match std::fs::write(&out_path, &json) {
        Ok(()) => {
            eprintln!("cec_bench: wrote {out_path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cec_bench: error: cannot write {out_path}: {e}");
            ExitCode::FAILURE
        }
    }
}
