//! Security evaluation (threat-model extension, §2.1/\[16\]): mounts the
//! oracle-guided SAT attack against the fabric contents selected by the
//! flow for each benchmark, reporting key size and attack effort.

use alice_attacks::{sat_attack, AttackBudget, AttackStatus};
use alice_bench::run_flow;
use alice_core::config::AliceConfig;
use alice_core::select::ClusterMapper;

fn main() {
    println!(
        "{:<8} {:<10} {:>8} {:>9} {:>6} {:>10} {:>10}",
        "Design", "fabric", "LUTs", "key bits", "DIPs", "conflicts", "status"
    );
    let budget = AttackBudget {
        max_dips: 12,
        conflicts_per_call: 8_000,
    };
    // Fabrics beyond this LUT count are attack-resistant by construction at
    // this budget class; skip the CNF work and report them as such.
    const LUT_CAP: usize = 220;
    for b in alice_benchmarks::suite() {
        let out = run_flow(&b, AliceConfig::cfg2());
        let Some(best) = &out.selection.best else {
            println!("{:<8} (no solution)", b.name);
            continue;
        };
        let design = b.design().expect("load");
        let db = alice_core::db::DesignDb::new();
        let mut mapper = ClusterMapper::new(&design, 4, &db);
        for &vi in &best.efpgas {
            let chosen = &out.selection.valid[vi];
            let network = mapper
                .cluster_network(&chosen.cluster, &out.filter.candidates)
                .expect("selected clusters map");
            if network.lut_count() > LUT_CAP {
                println!(
                    "{:<8} {:<10} {:>8} {:>9} {:>6} {:>10} {:>10}",
                    b.name,
                    chosen.efpga.size.to_string(),
                    network.lut_count(),
                    network.config_bits(),
                    "-",
                    "-",
                    "resilient*"
                );
                continue;
            }
            let report = sat_attack(&network, budget);
            let status = match report.status {
                AttackStatus::KeyRecovered { .. } => "BROKEN",
                AttackStatus::Resilient => "resilient",
            };
            println!(
                "{:<8} {:<10} {:>8} {:>9} {:>6} {:>10} {:>10}",
                b.name,
                chosen.efpga.size.to_string(),
                network.lut_count(),
                report.key_bits,
                report.dips,
                report.conflicts,
                status
            );
        }
    }
    println!(
        "\nBudget: {} DIPs / {} conflicts per call; * = beyond the",
        budget.max_dips, budget.conflicts_per_call
    );
    println!("{LUT_CAP}-LUT budget class (attack cost grows with key bits).");
    println!("Larger fabrics stay resilient within budget, matching the");
    println!("paper's premise that security grows with fabric utilization.");
}
