//! Security evaluation (threat-model extension, §2.1/\[16\]): mounts the
//! oracle-guided SAT attack against the fabric contents selected by the
//! flow for each benchmark, reporting key size and attack effort.

use alice_attacks::{sat_attack, AttackBudget, AttackStatus};
use alice_bench::run_flow_on_db;
use alice_core::config::AliceConfig;
use alice_core::db::DesignDb;
use alice_core::select::ClusterMapper;
use std::sync::Arc;

fn main() {
    println!(
        "{:<8} {:<10} {:>8} {:>9} {:>6} {:>10} {:>10}",
        "Design", "fabric", "LUTs", "key bits", "DIPs", "conflicts", "status"
    );
    let budget = AttackBudget {
        max_dips: 12,
        conflicts_per_call: 8_000,
    };
    // Fabrics beyond this LUT count are attack-resistant by construction at
    // this budget class; skip the CNF work and report them as such.
    const LUT_CAP: usize = 220;
    // One shared characterization db across every benchmark's flow *and*
    // the per-fabric re-mapping below: the cluster networks the attack
    // targets were already mapped during selection, so the mapper's
    // lookups land on warm content-addressed entries instead of
    // re-elaborating.
    let db = Arc::new(DesignDb::new());
    for b in alice_benchmarks::suite() {
        let design = b.design().expect("load");
        let out = run_flow_on_db(&b, &design, AliceConfig::cfg2(), db.clone());
        let Some(best) = &out.selection.best else {
            println!("{:<8} (no solution)", b.name);
            continue;
        };
        let mut mapper = ClusterMapper::new(&design, 4, &db);
        for &vi in &best.efpgas {
            let chosen = &out.selection.valid[vi];
            let network = mapper
                .cluster_network(&chosen.cluster, &out.filter.candidates)
                .expect("selected clusters map");
            if network.lut_count() > LUT_CAP {
                println!(
                    "{:<8} {:<10} {:>8} {:>9} {:>6} {:>10} {:>10}",
                    b.name,
                    chosen.efpga.size.to_string(),
                    network.lut_count(),
                    network.config_bits(),
                    "-",
                    "-",
                    "resilient*"
                );
                continue;
            }
            let report = sat_attack(&network, budget);
            let status = match report.status {
                AttackStatus::KeyRecovered { .. } => "BROKEN",
                AttackStatus::Resilient => "resilient",
            };
            println!(
                "{:<8} {:<10} {:>8} {:>9} {:>6} {:>10} {:>10}",
                b.name,
                chosen.efpga.size.to_string(),
                network.lut_count(),
                report.key_bits,
                report.dips,
                report.conflicts,
                status
            );
        }
    }
    let counts = db.counts();
    println!(
        "\nShared characterization cache: {} hit(s), {} miss(es) ({:.1}% served)",
        counts.hits,
        counts.misses,
        100.0 * counts.hit_rate()
    );
    println!(
        "Budget: {} DIPs / {} conflicts per call; * = beyond the",
        budget.max_dips, budget.conflicts_per_call
    );
    println!("{LUT_CAP}-LUT budget class (attack cost grows with key bits).");
    println!("Larger fabrics stay resilient within budget, matching the");
    println!("paper's premise that security grows with fabric utilization.");
}
