//! One-command evaluation: regenerates Table 1 *and* Table 2 of the
//! paper, running every benchmark × {cfg1, cfg2} concurrently. With
//! `--verify`, every redaction is additionally proven equivalent to its
//! original (SAT CEC) and swept with wrong bitstreams, reported in an
//! extra verification table.
//!
//! ```text
//! suite [--jobs N] [--verify] [--wrong-keys N] [--portfolio N] [--store DIR]
//!       [--trace FILE] [--metrics FILE]
//!     # omit --jobs to use all available cores
//! ```
//!
//! `--trace FILE` records hierarchical spans across the whole matrix and
//! writes a Chrome trace-event JSON file (Perfetto-loadable); `--metrics
//! FILE` writes a Prometheus-style text snapshot of the process-wide
//! counters after the run.
//!
//! `--portfolio N` races N diversified solver configurations on every
//! equivalence proof (first definitive verdict wins); the verification
//! table then reports which configuration won each proof.
//!
//! `--store DIR` backs the matrix's shared `DesignDb` with the
//! persistent artifact store at DIR, so a *re-run* of the suite (or any
//! `alice --store DIR` invocation on the same designs) starts warm.

use alice_bench::run_suite_portfolio;
use alice_core::db::DesignDb;
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "usage: suite [--jobs N] [--verify] [--wrong-keys N] [--portfolio N] \
                     [--store DIR] [--trace FILE] [--metrics FILE]";

struct SuiteArgs {
    jobs: usize,
    verify: bool,
    wrong_keys: usize,
    portfolio: usize,
    store: Option<String>,
    trace: Option<String>,
    metrics: Option<String>,
}

fn parse_args() -> Result<SuiteArgs, String> {
    let mut args = SuiteArgs {
        jobs: 0,
        verify: false,
        wrong_keys: 0,
        portfolio: 1,
        store: None,
        trace: None,
        metrics: None,
    };
    let mut it = std::env::args().skip(1);
    let number = |flag: &str, v: Option<String>, min: usize| -> Result<usize, String> {
        let v = v.ok_or_else(|| format!("missing value for `{flag}`"))?;
        let n: usize = v
            .parse()
            .map_err(|_| format!("invalid value for `{flag}`: `{v}`"))?;
        if n < min {
            return Err(format!(
                "invalid value for `{flag}`: `{v}` (must be at least {min})"
            ));
        }
        Ok(n)
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => args.jobs = number("--jobs", it.next(), 1)?,
            "--verify" => args.verify = true,
            "--wrong-keys" => {
                args.wrong_keys = number("--wrong-keys", it.next(), 1)?;
                args.verify = true;
            }
            "--portfolio" => args.portfolio = number("--portfolio", it.next(), 1)?,
            "--store" => {
                args.store = Some(
                    it.next()
                        .ok_or_else(|| "missing value for `--store`".to_string())?,
                );
            }
            "--trace" => {
                args.trace = Some(
                    it.next()
                        .ok_or_else(|| "missing value for `--trace`".to_string())?,
                );
            }
            "--metrics" => {
                args.metrics = Some(
                    it.next()
                        .ok_or_else(|| "missing value for `--metrics`".to_string())?,
                );
            }
            other => return Err(format!("unknown argument `{other}` ({USAGE})")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("suite: error: {e}");
            return ExitCode::from(2);
        }
    };
    let jobs = args.jobs;
    if args.trace.is_some() {
        alice_obs::enable_tracing();
    }
    if args.metrics.is_some() {
        alice_obs::enable_metrics();
    }

    println!("Table 1: Characteristics of the selected benchmarks");
    println!(
        "{:<10} {:<8} {:>8} {:>10} {:>14}",
        "Suite", "Design", "Modules", "Instances", "I/O [min,max]"
    );
    for b in alice_benchmarks::suite() {
        let design = b.design().unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let (modules, instances, lo, hi) = b.table1_stats(&design);
        println!(
            "{:<10} {:<8} {:>8} {:>10} {:>14}",
            b.suite,
            b.name,
            modules,
            instances,
            format!("[{lo}, {hi}]")
        );
    }
    println!();

    println!("Table 2: The ALICE flow on every benchmark (concurrent batch)");
    let db = match &args.store {
        Some(dir) => match DesignDb::with_store(dir) {
            Ok(db) => Arc::new(db),
            Err(e) => {
                eprintln!("suite: error: cannot open store {dir}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Arc::new(DesignDb::new()),
    };
    let runs = run_suite_portfolio(
        jobs,
        args.wrong_keys,
        args.verify,
        args.portfolio,
        db.clone(),
    );
    for run in &runs {
        println!(
            "── {} ─────────────────────────────────────────────",
            run.label
        );
        println!(
            "{:<8} {:>4} | {:>11} {:>4} | {:>11} {:>5} | {:>11} {:>6} {:>6} | {:<14} {:>3} | {:>11}",
            "Design",
            "#Ins",
            "filter t",
            "|R|",
            "cluster t",
            "|C|",
            "select t",
            "#valid",
            "|S|",
            "eFPGA sizes",
            "#red",
            "cache h/m"
        );
        for out in &run.outcomes {
            let r = &out.report;
            let sizes = if r.efpga_sizes.is_empty() {
                "- (n.a.)".to_string()
            } else {
                r.efpga_sizes
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            println!(
                "{:<8} {:>4} | {:>11} {:>4} | {:>11} {:>5} | {:>11} {:>6} {:>6} | {:<14} {:>3} | {:>11}",
                r.design,
                r.instances,
                format!("{:.2?}", r.filter_time),
                r.candidates,
                format!("{:.2?}", r.cluster_time),
                r.clusters,
                format!("{:.2?}", r.select_time),
                r.valid_efpgas,
                r.solutions,
                sizes,
                r.redacted_modules,
                if r.cache_disk_hits > 0 {
                    format!("{}/{}+{}d", r.cache_hits, r.cache_misses, r.cache_disk_hits)
                } else {
                    format!("{}/{}", r.cache_hits, r.cache_misses)
                }
            );
        }
        println!();
    }
    {
        // Matrix totals come from the shared db's own counters: the
        // per-run `cache h/m` columns are wall-clock attribution windows
        // that overlap when flows run concurrently, so summing them
        // would double-count.
        let counts = db.counts();
        let total = counts.hits + counts.disk_hits + counts.misses;
        println!(
            "Characterization cache over the whole matrix: {} hit(s), {} miss(es), {} disk hit(s){}",
            counts.hits,
            counts.misses,
            counts.disk_hits,
            if total > 0 {
                format!(" ({:.1}% served)", 100.0 * counts.hit_rate())
            } else {
                String::new()
            }
        );
        if let Some(store) = db.store() {
            match db.flush_store() {
                Ok(()) => {
                    let stats = store.stats();
                    println!(
                        "Persistent store {}: {} record(s), {} byte(s)",
                        store.path().display(),
                        stats.records(),
                        stats.bytes()
                    );
                }
                Err(e) => eprintln!("suite: warning: could not persist store: {e}"),
            }
        }
        println!();
    }

    if args.verify {
        println!("Verification: CEC proof + wrong-key corruptibility");
        for run in &runs {
            println!(
                "── {} ─────────────────────────────────────────────",
                run.label
            );
            if args.portfolio > 1 {
                println!(
                    "{:<8} {:>12} {:>8} {:>10} {:>10} {:>11} {:>10}",
                    "Design", "verdict", "points", "cnf vars", "corrupt", "verify t", "sat win"
                );
            } else {
                println!(
                    "{:<8} {:>12} {:>8} {:>10} {:>10} {:>11}",
                    "Design", "verdict", "points", "cnf vars", "corrupt", "verify t"
                );
            }
            for out in &run.outcomes {
                let r = &out.report;
                let Some(v) = &out.verify else {
                    println!("{:<8} {:>12}", r.design, "-");
                    continue;
                };
                let corrupt = v
                    .corruption_fraction()
                    .map(|f| format!("{f:.3}"))
                    .unwrap_or_else(|| "-".to_string());
                print!(
                    "{:<8} {:>12} {:>8} {:>10} {:>10} {:>11}",
                    r.design,
                    v.outcome.to_string().split(' ').next().unwrap_or("-"),
                    v.diff_points,
                    v.cnf_vars,
                    corrupt,
                    format!("{:.2?}", r.verify_time)
                );
                if args.portfolio > 1 {
                    // Cached proofs race nothing, hence the "-" cell.
                    let win = v
                        .portfolio
                        .as_ref()
                        .map(|p| format!("cfg {}/{}", p.winner, p.configs))
                        .unwrap_or_else(|| "-".to_string());
                    print!(" {win:>10}");
                }
                println!();
            }
            println!();
        }
    }
    if let Some(path) = &args.trace {
        match alice_obs::write_chrome_trace(std::path::Path::new(path)) {
            Ok(n) => eprintln!("suite: trace: {n} event(s) -> {path}"),
            Err(e) => eprintln!("suite: warning: could not write trace {path}: {e}"),
        }
    }
    if let Some(path) = &args.metrics {
        match std::fs::write(path, alice_obs::snapshot_prometheus()) {
            Ok(()) => eprintln!("suite: metrics -> {path}"),
            Err(e) => eprintln!("suite: warning: could not write metrics {path}: {e}"),
        }
    }
    ExitCode::SUCCESS
}
