//! One-command evaluation: regenerates Table 1 *and* Table 2 of the
//! paper, running every benchmark × {cfg1, cfg2} concurrently.
//!
//! ```text
//! suite [--jobs N]    # N = 0 (default) uses all available cores
//! ```

use alice_bench::run_suite;
use std::process::ExitCode;

fn parse_jobs() -> Result<usize, String> {
    let mut jobs = 0usize;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => {
                let v = it.next().ok_or("missing value for `--jobs`")?;
                jobs = v
                    .parse()
                    .map_err(|_| format!("invalid value for `--jobs`: `{v}`"))?;
            }
            other => {
                return Err(format!(
                    "unknown argument `{other}` (usage: suite [--jobs N])"
                ))
            }
        }
    }
    Ok(jobs)
}

fn main() -> ExitCode {
    let jobs = match parse_jobs() {
        Ok(j) => j,
        Err(e) => {
            eprintln!("suite: error: {e}");
            return ExitCode::from(2);
        }
    };

    println!("Table 1: Characteristics of the selected benchmarks");
    println!(
        "{:<10} {:<8} {:>8} {:>10} {:>14}",
        "Suite", "Design", "Modules", "Instances", "I/O [min,max]"
    );
    for b in alice_benchmarks::suite() {
        let design = b.design().unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let (modules, instances, lo, hi) = b.table1_stats(&design);
        println!(
            "{:<10} {:<8} {:>8} {:>10} {:>14}",
            b.suite,
            b.name,
            modules,
            instances,
            format!("[{lo}, {hi}]")
        );
    }
    println!();

    println!("Table 2: The ALICE flow on every benchmark (concurrent batch)");
    for run in run_suite(jobs) {
        println!(
            "── {} ─────────────────────────────────────────────",
            run.label
        );
        println!(
            "{:<8} {:>4} | {:>11} {:>4} | {:>11} {:>5} | {:>11} {:>6} {:>6} | {:<14} {:>3}",
            "Design",
            "#Ins",
            "filter t",
            "|R|",
            "cluster t",
            "|C|",
            "select t",
            "#valid",
            "|S|",
            "eFPGA sizes",
            "#red"
        );
        for out in &run.outcomes {
            let r = &out.report;
            let sizes = if r.efpga_sizes.is_empty() {
                "- (n.a.)".to_string()
            } else {
                r.efpga_sizes
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            println!(
                "{:<8} {:>4} | {:>11} {:>4} | {:>11} {:>5} | {:>11} {:>6} {:>6} | {:<14} {:>3}",
                r.design,
                r.instances,
                format!("{:.2?}", r.filter_time),
                r.candidates,
                format!("{:.2?}", r.cluster_time),
                r.clusters,
                format!("{:.2?}", r.select_time),
                r.valid_efpgas,
                r.solutions,
                sizes,
                r.redacted_modules
            );
        }
        println!();
    }
    ExitCode::SUCCESS
}
