//! Regenerates Figure 4 of the paper: physical layouts of the two GCD
//! solutions (cfg1: two 4×4 eFPGAs; cfg2: one 5×5 eFPGA) with die areas.

use alice_asic::floorplan::floorplan_named;
use alice_asic::report::synthesize;
use alice_bench::{paper_configs, run_flow};
use alice_intern::HierPath;
use alice_netlist::elaborate::elaborate;

fn main() {
    let gcd = alice_benchmarks::gcd::benchmark();
    for (label, cfg) in paper_configs() {
        let out = run_flow(&gcd, cfg);
        let Some(redacted_design) = &out.redacted else {
            println!("{label}: no solution");
            continue;
        };
        // Each deployed fabric keeps its emitted module name on the
        // floorplan, so the layout and the netlists speak the same names.
        let macros: Vec<_> = redacted_design
            .efpgas
            .iter()
            .map(|e| (e.module_name, e.size))
            .collect();
        // Residual ASIC logic: the unredacted modules of the design.
        let design = gcd.design().expect("load");
        let redacted: Vec<HierPath> = redacted_design
            .efpgas
            .iter()
            .flat_map(|e| e.instances.iter().copied())
            .collect();
        let mut residual = 0.0;
        for path in design.instance_paths() {
            if redacted.contains(&path) {
                continue;
            }
            let module = design.module_of(path).expect("module");
            if let Ok(n) = elaborate(&design.file, module.as_str()) {
                residual += synthesize(&n).area_um2;
            }
        }
        let fp = floorplan_named(&macros, residual, 0.92);
        let size_str = macros
            .iter()
            .map(|&(name, size)| format!("{name} ({size})"))
            .collect::<Vec<_>>()
            .join(" + ");
        println!("── Figure 4 / {label}");
        println!(
            "   eFPGAs: {size_str}   std-cell logic: {residual:.0} um^2   die: {:.0} um^2",
            fp.die_area_um2()
        );
        println!("{}", fp.render_ascii(56));
        println!();
    }
}
