//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation section and hosts the Criterion performance benches.
//!
//! Binaries:
//!
//! * `table1` — benchmark characteristics (paper Table 1),
//! * `table2` — the full flow under cfg1/cfg2 (paper Table 2),
//! * `figure4` — GCD floorplans and die areas (paper Figure 4),
//! * `security` — SAT-attack resilience of selected fabrics (threat-model
//!   extension; §2.1/[16]).
//!
//! Benches (Criterion): `flow_phases`, `substrates`, `ablation`.

use alice_benchmarks::Benchmark;
use alice_core::config::AliceConfig;
use alice_core::flow::{Flow, FlowOutcome};

/// Runs one benchmark under a configuration, with its selected outputs.
///
/// # Panics
///
/// Panics if the benchmark fails to load or the flow errors (the shipped
/// suite must always run).
pub fn run_flow(bench: &Benchmark, base: AliceConfig) -> FlowOutcome {
    let design = bench
        .design()
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
    Flow::new(bench.config(base))
        .run(&design)
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name))
}

/// The two configurations of §7.
pub fn paper_configs() -> [(&'static str, AliceConfig); 2] {
    [
        ("cfg1: 64 I/O pins and 2 eFPGAs", AliceConfig::cfg1()),
        ("cfg2: 96 I/O pins and 1 eFPGA", AliceConfig::cfg2()),
    ]
}
