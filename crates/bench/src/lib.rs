//! Benchmark harness: regenerates every table and figure of the paper's
//! evaluation section and hosts the Criterion performance benches.
//!
//! Binaries:
//!
//! * `suite` — Table 1 **and** Table 2 in one command, running every
//!   benchmark × {cfg1, cfg2} concurrently via [`run_suite`],
//! * `table1` — benchmark characteristics (paper Table 1),
//! * `table2` — the full flow under cfg1/cfg2 (paper Table 2),
//! * `figure4` — GCD floorplans and die areas (paper Figure 4),
//! * `security` — SAT-attack resilience of selected fabrics (threat-model
//!   extension; §2.1/\[16\]).
//!
//! Benches (Criterion): `flow_phases`, `substrates`, `ablation`.

use alice_benchmarks::Benchmark;
use alice_core::config::AliceConfig;
use alice_core::db::DesignDb;
use alice_core::design::Design;
use alice_core::flow::{Flow, FlowOutcome};
use alice_core::par::shard;
use std::sync::Arc;

/// Runs one benchmark under a configuration, with its selected outputs.
///
/// # Panics
///
/// Panics if the benchmark fails to load or the flow errors (the shipped
/// suite must always run).
pub fn run_flow(bench: &Benchmark, base: AliceConfig) -> FlowOutcome {
    let design = bench
        .design()
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
    run_flow_on(bench, &design, base)
}

/// Like [`run_flow`], over an already-loaded design (so callers running
/// one benchmark under several configurations parse it only once).
///
/// # Panics
///
/// Panics if the flow errors.
pub fn run_flow_on(bench: &Benchmark, design: &Design, base: AliceConfig) -> FlowOutcome {
    Flow::new(bench.config(base))
        .run(design)
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name))
}

/// Like [`run_flow_on`], against a shared [`DesignDb`] so repeated runs
/// (benchmarks × configurations) reuse characterizations.
pub fn run_flow_on_db(
    bench: &Benchmark,
    design: &Design,
    base: AliceConfig,
    db: Arc<DesignDb>,
) -> FlowOutcome {
    Flow::with_db(bench.config(base), db)
        .run(design)
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name))
}

/// The two configurations of §7.
pub fn paper_configs() -> [(&'static str, AliceConfig); 2] {
    [
        ("cfg1: 64 I/O pins and 2 eFPGAs", AliceConfig::cfg1()),
        ("cfg2: 96 I/O pins and 1 eFPGA", AliceConfig::cfg2()),
    ]
}

/// One configuration's worth of suite results: every DAC'22 benchmark run
/// under that configuration, in [`alice_benchmarks::suite`] order.
pub struct SuiteRun {
    /// Human-readable configuration label (see [`paper_configs`]).
    pub label: &'static str,
    /// The base configuration the benchmarks ran under.
    pub config: AliceConfig,
    /// One flow outcome per benchmark, in suite order.
    pub outcomes: Vec<FlowOutcome>,
}

/// Runs the full evaluation batch — every DAC'22 benchmark × {cfg1, cfg2}
/// — with up to `jobs` flows in parallel (`0` = all available cores).
///
/// Results are grouped per configuration and ordered deterministically
/// (suite order within each config), independent of `jobs`. Note the
/// per-flow select stage *also* parallelizes internally; for the batch
/// driver each flow is pinned to one worker (`AliceConfig::jobs = 1` per
/// flow) so the machine is not oversubscribed.
///
/// # Panics
///
/// Panics if any benchmark fails to load or any flow errors, like
/// [`run_flow`] (the shipped suite must always run).
pub fn run_suite(jobs: usize) -> Vec<SuiteRun> {
    run_suite_verified(jobs, 0, false)
}

/// Like [`run_suite`], optionally with the post-redaction `verify` stage
/// enabled on every flow: each redaction is proven equivalent to its
/// original via the `alice-cec` SAT miter, and `wrong_keys` wrong
/// bitstreams are swept for output corruptibility.
///
/// # Panics
///
/// Panics like [`run_suite`].
pub fn run_suite_verified(jobs: usize, wrong_keys: usize, verify: bool) -> Vec<SuiteRun> {
    run_suite_with_db(jobs, wrong_keys, verify, Arc::new(DesignDb::new()))
}

/// Like [`run_suite_verified`], against a caller-supplied [`DesignDb`]
/// shared by every flow in the matrix — a module characterized for one
/// benchmark × config cell is never LUT-mapped or sized again in any
/// other cell. Pass [`DesignDb::new_disabled`] for a no-cache baseline.
pub fn run_suite_with_db(
    jobs: usize,
    wrong_keys: usize,
    verify: bool,
    db: Arc<DesignDb>,
) -> Vec<SuiteRun> {
    run_suite_matrix(jobs, wrong_keys, verify, 1, Some(db))
}

/// Like [`run_suite_with_db`], racing `portfolio` diversified solver
/// configurations on every equivalence proof ([`AliceConfig::portfolio`]);
/// `portfolio = 1` is exactly [`run_suite_with_db`].
pub fn run_suite_portfolio(
    jobs: usize,
    wrong_keys: usize,
    verify: bool,
    portfolio: usize,
    db: Arc<DesignDb>,
) -> Vec<SuiteRun> {
    run_suite_matrix(jobs, wrong_keys, verify, portfolio, Some(db))
}

/// Like [`run_suite_verified`] but with a *private* enabled [`DesignDb`]
/// per flow — intra-run reuse only, no cross-cell sharing. This is the
/// honest "cold" baseline `pipeline_bench` measures the shared-db warm
/// pass against.
pub fn run_suite_private(jobs: usize, wrong_keys: usize, verify: bool) -> Vec<SuiteRun> {
    run_suite_matrix(jobs, wrong_keys, verify, 1, None)
}

/// The matrix driver behind every suite entry point: `db = Some` shares
/// one database across all cells, `None` gives each flow its own.
fn run_suite_matrix(
    jobs: usize,
    wrong_keys: usize,
    verify: bool,
    portfolio: usize,
    db: Option<Arc<DesignDb>>,
) -> Vec<SuiteRun> {
    let benches = alice_benchmarks::suite();
    let configs = paper_configs();
    let jobs = alice_core::par::resolve_jobs(jobs);
    // Parse each benchmark once (in parallel); both configs share it.
    let designs: Vec<Design> = shard(benches.len(), jobs, |b| {
        benches[b]
            .design()
            .unwrap_or_else(|e| panic!("{}: {e}", benches[b].name))
    });
    let tasks: Vec<(usize, usize)> = configs
        .iter()
        .enumerate()
        .flat_map(|(ci, _)| (0..benches.len()).map(move |bi| (ci, bi)))
        .collect();
    let mut outcomes = shard(tasks.len(), jobs, |t| {
        let (ci, bi) = tasks[t];
        let base = AliceConfig {
            jobs: 1,
            verify,
            verify_wrong_keys: wrong_keys,
            portfolio: portfolio.max(1),
            ..configs[ci].1.clone()
        };
        match &db {
            Some(db) => run_flow_on_db(&benches[bi], &designs[bi], base, db.clone()),
            None => run_flow_on(&benches[bi], &designs[bi], base),
        }
    });
    configs
        .into_iter()
        .map(|(label, config)| SuiteRun {
            label,
            config,
            outcomes: outcomes.drain(..benches.len()).collect(),
        })
        .collect()
}
