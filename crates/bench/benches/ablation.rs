//! Ablation benches for the design choices called out in DESIGN.md:
//! Eq. 1 weight sweep (α/β), score-model variants, and the growth of
//! Algorithm 2's fixed point with the pin budget.

use alice_core::cluster::identify_clusters;
use alice_core::config::{AliceConfig, ScoreModel};
use alice_core::filter::filter_modules;
use alice_core::flow::Flow;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn ablation_benches(c: &mut Criterion) {
    let bench = alice_benchmarks::gcd::benchmark();
    let design = bench.design().expect("load");

    // alpha/beta weight sweep under Eq. 1.
    let mut group = c.benchmark_group("eq1_weights");
    group.sample_size(10);
    for (alpha, beta) in [(1.0, 1.0), (2.0, 0.5), (0.5, 2.0), (1.0, 0.0), (0.0, 1.0)] {
        let cfg = AliceConfig {
            alpha,
            beta,
            ..bench.config(AliceConfig::cfg1())
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("a{alpha}_b{beta}")),
            &cfg,
            |b, cfg| b.iter(|| Flow::new(cfg.clone()).run(&design).expect("flow")),
        );
    }
    group.finish();

    // Score model variants.
    let mut group = c.benchmark_group("score_model");
    group.sample_size(10);
    for (name, model) in [
        ("utilization_reward", ScoreModel::UtilizationReward),
        ("as_printed", ScoreModel::AsPrinted),
    ] {
        let cfg = AliceConfig {
            score_model: model,
            ..bench.config(AliceConfig::cfg1())
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| Flow::new(cfg.clone()).run(&design).expect("flow"))
        });
    }
    group.finish();

    // Cluster fixed point at increasing pin budgets (the |C| explosion of
    // DES3 between cfg1 and cfg2).
    let des3 = alice_benchmarks::des3::benchmark();
    let ddes = des3.design().expect("load");
    let df = alice_dataflow::analyze(&ddes.file, ddes.hierarchy.top.as_str()).expect("df");
    let mut group = c.benchmark_group("cluster_fixed_point");
    group.sample_size(10);
    for max_io in [24u32, 48, 64, 96] {
        let cfg = AliceConfig {
            max_io_pins: max_io,
            ..des3.config(AliceConfig::cfg1())
        };
        let r = filter_modules(&ddes, &df, &cfg).expect("filter").candidates;
        group.bench_with_input(BenchmarkId::from_parameter(max_io), &r, |b, r| {
            b.iter(|| identify_clusters(r, &ddes.paths, &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, ablation_benches);
criterion_main!(benches);
