//! Pipeline substrate benches: elaboration, LUT mapping, select-stage
//! characterization (cold vs warm `DesignDb`), and CEC miter encoding.
//!
//! These are the flow's hot paths after the interned-symbol/`DesignDb`
//! refactor; `pipeline_bench` (the `BENCH_pipeline.json` runner) reports
//! the same operations as machine-readable numbers for the perf
//! trajectory.

use alice_cec::{Miter, MiterOptions};
use alice_core::cluster::identify_clusters;
use alice_core::config::AliceConfig;
use alice_core::db::DesignDb;
use alice_core::filter::filter_modules;
use alice_core::select::select_efpgas;
use alice_netlist::elaborate::elaborate;
use alice_netlist::lutmap::map_luts;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_pipeline(c: &mut Criterion) {
    let gcd = alice_benchmarks::gcd::benchmark();
    let design = gcd.design().expect("load GCD");
    let top = design.hierarchy.top.as_str();

    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);

    g.bench_with_input(
        criterion::BenchmarkId::new("elaborate", "GCD"),
        &design,
        |b, d| b.iter(|| elaborate(&d.file, black_box(top)).expect("elaborate")),
    );

    let netlist = elaborate(&design.file, top).expect("elaborate");
    g.bench_with_input(
        criterion::BenchmarkId::new("lutmap", "GCD"),
        &netlist,
        |b, n| b.iter(|| map_luts(black_box(n), 4).expect("map")),
    );

    // Select-stage characterization, cold (fresh db each iteration) vs
    // warm (one shared db, first iteration fills it).
    let cfg = gcd.config(AliceConfig::cfg1());
    let df = alice_dataflow::analyze(&design.file, top).expect("df");
    let r = filter_modules(&design, &df, &cfg)
        .expect("filter")
        .candidates;
    let clusters = identify_clusters(&r, &design.paths, &cfg).clusters;
    g.bench_with_input(
        criterion::BenchmarkId::new("select", "GCD-cold"),
        &clusters,
        |b, cl| {
            b.iter(|| {
                let db = DesignDb::new();
                select_efpgas(&design, &r, cl, &cfg, &db).expect("select")
            })
        },
    );
    let warm = DesignDb::new();
    select_efpgas(&design, &r, &clusters, &cfg, &warm).expect("warm fill");
    g.bench_with_input(
        criterion::BenchmarkId::new("select", "GCD-warm"),
        &clusters,
        |b, cl| b.iter(|| select_efpgas(&design, &r, cl, &cfg, &warm).expect("select")),
    );

    // CEC encoding: building the self-miter (Tseitin + cross-netlist
    // strashing + sweeping setup) without solving it.
    g.bench_with_input(
        criterion::BenchmarkId::new("cec-encode", "GCD"),
        &netlist,
        |b, n| {
            b.iter(|| {
                Miter::build(black_box(n), black_box(n), &MiterOptions::default()).expect("miter")
            })
        },
    );

    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
