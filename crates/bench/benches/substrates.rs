//! Criterion benches for the substrates: Verilog parsing, elaboration,
//! LUT mapping, fabric creation and the SAT attack.

use alice_fabric::{create_efpga, FabricArch};
use alice_netlist::elaborate::elaborate;
use alice_netlist::lutmap::map_luts;
use alice_verilog::parse_source;
use criterion::{criterion_group, criterion_main, Criterion};

fn substrate_benches(c: &mut Criterion) {
    let gcd_src = alice_benchmarks::gcd::source();
    c.bench_function("verilog_parse_gcd", |b| {
        b.iter(|| parse_source(&gcd_src).expect("parse"))
    });

    let file = parse_source(&gcd_src).expect("parse");
    c.bench_function("elaborate_gcd_top", |b| {
        b.iter(|| elaborate(&file, "gcd").expect("elab"))
    });

    let sub = elaborate(&file, "gcd_sub").expect("elab");
    c.bench_function("lutmap_gcd_sub", |b| {
        b.iter(|| map_luts(&sub, 4).expect("map"))
    });

    let mapped = map_luts(&sub, 4).expect("map");
    let arch = FabricArch::default();
    c.bench_function("create_efpga_gcd_sub", |b| {
        b.iter(|| create_efpga(&mapped, &arch).expect("fits"))
    });

    c.bench_function("sat_attack_small_cluster", |b| {
        let src = "module m(input wire [3:0] a, input wire [3:0] b, output wire [3:0] y);\
                   assign y = (a & b) ^ (a + b); endmodule";
        let f = parse_source(src).expect("parse");
        let n = elaborate(&f, "m").expect("elab");
        let m = map_luts(&n, 4).expect("map");
        b.iter(|| alice_attacks::sat_attack(&m, alice_attacks::AttackBudget::default()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = substrate_benches
}
criterion_main!(benches);
