//! Criterion benches for the three flow phases (the time columns of
//! Table 2): module filtering (with dataflow), cluster identification,
//! and eFPGA selection.

use alice_core::cluster::identify_clusters;
use alice_core::filter::filter_modules;
use alice_core::select::select_efpgas;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn phase_benches(c: &mut Criterion) {
    // Representative subset: one small, one clustered, one logic-heavy.
    let picks = ["GCD", "SASC", "USB_PHY"];
    let mut group = c.benchmark_group("flow_phases");
    group.sample_size(10);
    for bench in alice_benchmarks::suite() {
        if !picks.contains(&bench.name) {
            continue;
        }
        let design = bench.design().expect("load");
        let cfg = bench.config(alice_core::config::AliceConfig::cfg1());
        let df = alice_dataflow::analyze(&design.file, design.hierarchy.top.as_str()).expect("df");
        group.bench_with_input(BenchmarkId::new("filter", bench.name), &design, |b, d| {
            b.iter(|| {
                let df = alice_dataflow::analyze(&d.file, d.hierarchy.top.as_str()).expect("df");
                filter_modules(d, &df, &cfg).expect("filter")
            })
        });
        let r = filter_modules(&design, &df, &cfg)
            .expect("filter")
            .candidates;
        group.bench_with_input(BenchmarkId::new("cluster", bench.name), &r, |b, r| {
            b.iter(|| identify_clusters(r, &design.paths, &cfg))
        });
        let clusters = identify_clusters(&r, &design.paths, &cfg).clusters;
        group.bench_with_input(
            BenchmarkId::new("select", bench.name),
            &clusters,
            |b, cl| {
                b.iter(|| {
                    select_efpgas(
                        &design,
                        &r,
                        cl,
                        &cfg,
                        &alice_core::db::DesignDb::new_disabled(),
                    )
                    .expect("select")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, phase_benches);
criterion_main!(benches);
